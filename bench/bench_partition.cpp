// bench_partition.cpp - split-brain drill: an 8-node cluster suffers a
// 60/40 asymmetric network partition mid-run, heals, and reconciles.
//
// The partition-tolerance claims under test (all knob-gated, all on here):
//
//   quorum suspicion    membership.suspicion_quorum = 4: the 3-node
//                       minority can muster at most 3 distinct accusers,
//                       so it defers every confirmation and never evicts
//                       the healthy majority from its ring (no split-brain
//                       ring divergence).  The 5-node majority reaches
//                       quorum and legitimately confirms the minority out.
//   write fencing       fencing.enabled = true: once the majority burns
//                       ring epochs, any mutating RPC stamped with an older
//                       epoch is refused kFencedEpoch instead of landing on
//                       a replica chain the sender no longer owns.  The
//                       refusal carries a kStaleView delta, so the stale
//                       client fast-forwards in the same round trip.
//   reconciliation      after heal_partition() the minority fast-forwards,
//                       refutes its own confirmations (incarnation bump +
//                       allow_rejoin reinstatement), and the lazy re-target
//                       machinery re-pushes warm standby chains that moved
//                       while the views diverged (reconcile_repushes).
//
// Two phases, same config:
//
//   single_kill   crash-stop one node, measure kill -> all-survivor
//                 convergence.  This is the baseline the post-heal
//                 convergence gate is scored against.
//   partition     healthy goodput window -> partition {majority}|{minority}
//                 -> majority detects/excludes the minority -> measured
//                 majority goodput window -> heal -> all-8 convergence.
//                 A background thread drives the minority clients the whole
//                 time (their reads are the divergent suffix; post-heal
//                 they read a fresh unwarmed batch so stale-epoch standby
//                 pushes actually happen and meet the fence).
//
// Gates (exit 0 only if all pass), recorded in BENCH_partition.json:
//
//   availability   majority goodput under partition >= 99% of healthy
//                  goodput (measured after the majority has excluded the
//                  minority — detection itself is reported separately);
//   zero_stale     no server accepted a stale-epoch mutating RPC;
//   false_confirm  minority agents confirmed <= 1 healthy majority node;
//   heal           all 8 nodes reconverge within 2x the single-kill
//                  convergence time.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/failure_injector.hpp"
#include "membership/member_table.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ftc::NodeId;
using ftc::cluster::Cluster;
using ftc::cluster::ClusterConfig;
using ftc::cluster::FtMode;
using ftc::cluster::GrayFailureInjector;
using ftc::membership::MemberState;

struct BenchArgs {
  std::uint32_t nodes = 8;
  std::uint32_t files = 48;
  std::uint32_t fresh_files = 16;  ///< staged but unwarmed; read post-heal
  std::uint32_t file_kb = 32;
  std::uint32_t passes = 300;  ///< goodput-window iterations (per client)
  double slo_ms = 5.0;  ///< a read slower than this is availability lost
  std::uint32_t probe_period_ms = 10;
  std::uint32_t quorum = 4;
  std::uint32_t timeout_s = 20;
  std::string out = "BENCH_partition.json";
};

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr,
                   "usage: %s [nodes=N] [files=N] [fresh_files=N] "
                   "[file_kb=N] [passes=N] [slo_ms=N] [probe_period_ms=N] "
                   "[quorum=N] [timeout_s=N] [out=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    const auto numeric = [&key, &value]() -> std::uint32_t {
      try {
        std::size_t used = 0;
        const unsigned long parsed = std::stoul(value, &used);
        if (used == value.size()) return static_cast<std::uint32_t>(parsed);
      } catch (const std::exception&) {
      }
      std::fprintf(stderr, "%s wants a number, got '%s'\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    };
    if (key == "nodes") args.nodes = numeric();
    else if (key == "files") args.files = numeric();
    else if (key == "fresh_files") args.fresh_files = numeric();
    else if (key == "file_kb") args.file_kb = numeric();
    else if (key == "passes") args.passes = numeric();
    else if (key == "slo_ms") args.slo_ms = numeric();
    else if (key == "probe_period_ms") args.probe_period_ms = numeric();
    else if (key == "quorum") args.quorum = numeric();
    else if (key == "timeout_s") args.timeout_s = numeric();
    else if (key == "out") args.out = value;
    else {
      std::fprintf(stderr, "unknown key: %s\n", key.c_str());
      std::exit(2);
    }
  }
  if (args.nodes < 4) {
    std::fprintf(stderr, "nodes must be >= 4 for an asymmetric split\n");
    std::exit(2);
  }
  return args;
}

ClusterConfig make_config(const BenchArgs& args) {
  ClusterConfig config;
  config.node_count = args.nodes;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = std::chrono::milliseconds(50);
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.client.replication.factor = 2;
  config.client.replication.warm_standby = true;
  config.server.async_data_mover = false;
  config.server.cache_capacity_bytes = 1ULL << 32;
  config.server.fencing.enabled = true;
  config.membership.enabled = true;
  config.membership.background = true;
  config.membership.probe_period =
      std::chrono::milliseconds(args.probe_period_ms);
  config.membership.probe_timeout = std::chrono::milliseconds(25);
  config.membership.indirect_timeout = std::chrono::milliseconds(60);
  config.membership.suspicion_periods = 3;
  config.membership.suspicion_quorum = args.quorum;
  config.membership.allow_rejoin = true;
  config.membership.seed = 17;
  return config;
}

bool survivors_converged(Cluster& cluster, NodeId victim) {
  bool first = true;
  std::uint64_t epoch = 0;
  std::uint64_t fingerprint = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (n == victim) continue;
    auto& agent = cluster.membership(n);
    if (agent.is_serving(victim)) return false;
    if (first) {
      epoch = agent.epoch();
      fingerprint = agent.ring_fingerprint();
      first = false;
      continue;
    }
    if (agent.epoch() != epoch) return false;
    if (agent.ring_fingerprint() != fingerprint) return false;
  }
  return true;
}

/// The majority agrees among itself that every minority node is out.
bool majority_excluded(Cluster& cluster, const std::vector<NodeId>& majority,
                       const std::vector<NodeId>& minority) {
  bool first = true;
  std::uint64_t epoch = 0;
  std::uint64_t fingerprint = 0;
  for (const NodeId n : majority) {
    auto& agent = cluster.membership(n);
    for (const NodeId m : minority) {
      if (agent.is_serving(m)) return false;
    }
    if (first) {
      epoch = agent.epoch();
      fingerprint = agent.ring_fingerprint();
      first = false;
      continue;
    }
    if (agent.epoch() != epoch) return false;
    if (agent.ring_fingerprint() != fingerprint) return false;
  }
  return true;
}

/// Every agent serves every node again and all views agree.
bool all_rejoined(Cluster& cluster) {
  bool first = true;
  std::uint64_t epoch = 0;
  std::uint64_t fingerprint = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    auto& agent = cluster.membership(n);
    for (NodeId m = 0; m < cluster.node_count(); ++m) {
      if (!agent.is_serving(m)) return false;
    }
    if (first) {
      epoch = agent.epoch();
      fingerprint = agent.ring_fingerprint();
      first = false;
      continue;
    }
    if (agent.epoch() != epoch) return false;
    if (agent.ring_fingerprint() != fingerprint) return false;
  }
  return true;
}

/// Phase A: crash-stop the last node, measure kill -> survivor convergence.
struct KillResult {
  bool converged = false;
  double convergence_ms = 0.0;
};

KillResult run_single_kill(const BenchArgs& args) {
  KillResult result;
  Cluster cluster(make_config(args));
  const auto paths = cluster.stage_dataset(args.files, args.file_kb * 1024);
  cluster.warm_caches(paths);
  cluster.transport().drain_async();

  GrayFailureInjector injector(cluster.transport(), /*seed=*/3);
  const NodeId victim = static_cast<NodeId>(args.nodes - 1);
  injector.kill(victim);
  const auto t0 = Clock::now();
  const auto deadline = t0 + std::chrono::seconds(args.timeout_s);
  std::size_t cursor = 0;
  while (Clock::now() < deadline) {
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      if (n == victim) continue;
      (void)cluster.client(n).read_file(paths[(cursor + n) % paths.size()]);
    }
    ++cursor;
    if (survivors_converged(cluster, victim)) {
      result.converged = true;
      result.convergence_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.transport().drain_async();
  return result;
}

/// Phase B bookkeeping.
struct PartitionResult {
  double healthy_good_fraction = 0.0;
  double partition_good_fraction = 0.0;
  double healthy_goodput_rps = 0.0;
  double partition_goodput_rps = 0.0;
  double availability_ratio = 0.0;
  double majority_detect_ms = 0.0;
  bool majority_detected = false;
  std::uint64_t false_confirms = 0;  ///< (minority agent, majority node)
  std::uint64_t confirms_deferred = 0;   ///< minority-side quorum holds
  std::uint64_t false_suspicions = 0;    ///< accusations later refuted
  double post_heal_ms = 0.0;
  bool healed = false;
  std::uint64_t fenced_writes = 0;
  std::uint64_t fenced_puts = 0;
  std::uint64_t stale_epoch_puts_accepted = 0;
  std::uint64_t reconcile_repushes = 0;
  std::uint64_t majority_reads_ok = 0;
  std::uint64_t majority_reads_failed = 0;
  std::uint64_t minority_reads_ok = 0;
  std::uint64_t minority_reads_failed = 0;
};

/// Unmeasured steady-state sweep: every majority client touches every path
/// once.  Run before each goodput window so one-time work (first-touch warm
/// markings before the split; successor recaches and warm chain re-targets
/// after it) is adoption cost, not availability loss — detection and
/// adoption are reported on their own, the gate scores steady serving.
void adoption_sweep(Cluster& cluster, const std::vector<NodeId>& majority,
                    const std::vector<std::string>& paths,
                    PartitionResult& result) {
  for (const NodeId n : majority) {
    for (const auto& path : paths) {
      if (cluster.client(n).read_file(path).is_ok()) {
        ++result.majority_reads_ok;
      } else {
        ++result.majority_reads_failed;
      }
    }
  }
}

/// One measured goodput window: `passes` iterations, one read per majority
/// client per iteration, striding the warm dataset.  A read counts toward
/// goodput only if it succeeds within `slo_ms` — 50x the warm-hit latency
/// yet far under the timeout a partition inflicts, so a read that burned a
/// cross-partition retry is availability LOST even though it eventually
/// returned ok.  The gate compares SLO-good fractions (deterministic),
/// while reads/sec is reported for context (wall-clock, scheduler-noisy).
struct GoodputWindow {
  double good_fraction = 0.0;
  double reads_per_sec = 0.0;
};

GoodputWindow goodput_window(Cluster& cluster,
                             const std::vector<NodeId>& majority,
                             const std::vector<std::string>& paths,
                             std::uint32_t passes, double slo_ms,
                             PartitionResult& result) {
  GoodputWindow window;
  std::size_t cursor = 0;
  std::uint64_t good = 0;
  std::uint64_t total = 0;
  const auto t0 = Clock::now();
  for (std::uint32_t i = 0; i < passes; ++i) {
    for (const NodeId n : majority) {
      const auto start = Clock::now();
      const bool ok =
          cluster.client(n).read_file(paths[(cursor + n) % paths.size()])
              .is_ok();
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      ++total;
      if (ok) {
        ++result.majority_reads_ok;
        if (ms <= slo_ms) ++good;
      } else {
        ++result.majority_reads_failed;
      }
    }
    ++cursor;
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  window.good_fraction =
      total > 0 ? static_cast<double>(good) / static_cast<double>(total)
                : 0.0;
  window.reads_per_sec =
      secs > 0.0 ? static_cast<double>(total) / secs : 0.0;
  return window;
}

PartitionResult run_partition(const BenchArgs& args) {
  PartitionResult result;
  Cluster cluster(make_config(args));
  const auto all_paths = cluster.stage_dataset(
      args.files + args.fresh_files, args.file_kb * 1024);
  const std::vector<std::string> paths(all_paths.begin(),
                                       all_paths.begin() + args.files);
  const std::vector<std::string> fresh(all_paths.begin() + args.files,
                                       all_paths.end());
  cluster.warm_caches(paths);
  cluster.transport().drain_async();

  // 60/40 asymmetric split: the last 3/8 of the nodes form the minority.
  const std::uint32_t minority_count = std::max(1u, args.nodes * 3 / 8);
  std::vector<NodeId> majority;
  std::vector<NodeId> minority;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (n + minority_count >= args.nodes) minority.push_back(n);
    else majority.push_back(n);
  }

  // Background load on the minority side for the whole drill: its reads
  // during the split are the divergent suffix; once `healed` flips it also
  // reads the fresh batch, whose warm standby pushes are the stale-epoch
  // writes the fence must refuse.
  std::atomic<bool> stop{false};
  std::atomic<bool> healed{false};
  std::atomic<std::uint64_t> min_ok{0};
  std::atomic<std::uint64_t> min_failed{0};
  std::thread minority_load([&] {
    std::size_t cursor = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (const NodeId n : minority) {
        const auto& path = paths[(cursor + n) % paths.size()];
        if (cluster.client(n).read_file(path).is_ok()) ++min_ok;
        else ++min_failed;
        if (healed.load(std::memory_order_relaxed)) {
          const auto& fresh_path = fresh[(cursor + n) % fresh.size()];
          if (cluster.client(n).read_file(fresh_path).is_ok()) ++min_ok;
          else ++min_failed;
        }
      }
      ++cursor;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Healthy goodput window.  Two sweeps plus a settle pause let first-touch
  // warm markings and the paced write-behind queue finish before
  // measurement starts.  (No drain_async here: the minority thread is a
  // continuous async producer, so a drain would never return.)
  adoption_sweep(cluster, majority, paths, result);
  adoption_sweep(cluster, majority, paths, result);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const GoodputWindow healthy =
      goodput_window(cluster, majority, paths, args.passes, args.slo_ms,
                     result);
  result.healthy_good_fraction = healthy.good_fraction;
  result.healthy_goodput_rps = healthy.reads_per_sec;

  // Split the fabric (symmetric cut; the asymmetry is in the side sizes).
  GrayFailureInjector injector(cluster.transport(), /*seed=*/3);
  injector.partition(minority, majority);
  const auto t_split = Clock::now();

  // Detection grace: drive majority reads until the majority has excluded
  // the whole minority and agrees on the resulting ring.
  const auto detect_deadline = t_split + std::chrono::seconds(args.timeout_s);
  std::size_t cursor = 0;
  while (Clock::now() < detect_deadline) {
    for (const NodeId n : majority) {
      if (cluster.client(n).read_file(paths[(cursor + n) % paths.size()])
              .is_ok()) {
        ++result.majority_reads_ok;
      } else {
        ++result.majority_reads_failed;
      }
    }
    ++cursor;
    if (majority_excluded(cluster, majority, minority)) {
      result.majority_detected = true;
      result.majority_detect_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t_split)
              .count();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Measured majority window under the (detected) partition.  Two sweeps
  // plus a settle pause: epoch-change standby re-pushes are paced by
  // replication.restore_concurrency, so one pass only starts the repair —
  // the remainder must not leak into the measured window as availability
  // loss (it is adoption work, like the detection grace above).
  adoption_sweep(cluster, majority, paths, result);
  adoption_sweep(cluster, majority, paths, result);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const GoodputWindow split =
      goodput_window(cluster, majority, paths, args.passes, args.slo_ms,
                     result);
  result.partition_good_fraction = split.good_fraction;
  result.partition_goodput_rps = split.reads_per_sec;
  result.availability_ratio =
      result.healthy_good_fraction > 0.0
          ? result.partition_good_fraction / result.healthy_good_fraction
          : 0.0;

  // Pre-heal split-brain audit: how many healthy majority nodes did the
  // quorum-starved minority confirm dead?  (The gate allows at most 1.)
  for (const NodeId m : minority) {
    auto& agent = cluster.membership(m);
    for (const NodeId n : majority) {
      if (agent.member_state(n) == MemberState::kFailed) {
        ++result.false_confirms;
      }
    }
    result.confirms_deferred += agent.stats_snapshot().confirms_deferred;
  }

  // Heal and reconcile: the minority fast-forwards, refutes its own
  // confirmations, and rejoins; warm chains that moved get re-pushed.
  injector.heal_partition();
  healed.store(true, std::memory_order_relaxed);
  const auto t_heal = Clock::now();
  const auto heal_deadline = t_heal + std::chrono::seconds(args.timeout_s);
  while (Clock::now() < heal_deadline) {
    for (const NodeId n : majority) {
      if (cluster.client(n).read_file(paths[(cursor + n) % paths.size()])
              .is_ok()) {
        ++result.majority_reads_ok;
      } else {
        ++result.majority_reads_failed;
      }
    }
    ++cursor;
    if (all_rejoined(cluster)) {
      result.healed = true;
      result.post_heal_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t_heal)
              .count();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!result.healed) {
    // Diagnose the stuck view so a CI failure is actionable.
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      auto& agent = cluster.membership(n);
      std::string serving;
      for (NodeId m = 0; m < cluster.node_count(); ++m) {
        serving += agent.is_serving(m) ? '1' : '0';
      }
      std::fprintf(stderr,
                   "  heal timeout: node %u epoch=%llu fp=%016llx "
                   "serving=%s\n",
                   static_cast<unsigned>(n),
                   static_cast<unsigned long long>(agent.epoch()),
                   static_cast<unsigned long long>(agent.ring_fingerprint()),
                   serving.c_str());
    }
  }

  // Let the minority thread sweep the fresh batch against the healed ring
  // (stale pushes -> fences -> fast-forward -> re-pushes), then settle.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  minority_load.join();
  cluster.transport().drain_async();
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    (void)cluster.client(n).read_file(paths[n % paths.size()]);
  }
  cluster.transport().drain_async();

  result.minority_reads_ok = min_ok.load();
  result.minority_reads_failed = min_failed.load();
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    const auto server = cluster.server(n).stats_snapshot();
    result.fenced_writes += server.fenced_writes;
    result.stale_epoch_puts_accepted += server.stale_epoch_puts_accepted;
    const auto client = cluster.client(n).stats_snapshot();
    result.fenced_puts += client.fenced_puts;
    result.reconcile_repushes += client.reconcile_repushes;
    result.false_suspicions +=
        cluster.membership(n).stats_snapshot().false_suspicions;
  }
  return result;
}

const char* json_bool(bool b) { return b ? "true" : "false"; }

void emit_json(const BenchArgs& args, const KillResult& kill,
               const PartitionResult& p, bool availability_ok,
               bool zero_stale_ok, bool false_confirm_ok, bool heal_ok) {
  std::ofstream out(args.out);
  out << "{\n  \"bench\": \"bench_partition\",\n";
  out << "  \"config\": {\"nodes\": " << args.nodes
      << ", \"files\": " << args.files
      << ", \"fresh_files\": " << args.fresh_files
      << ", \"file_kb\": " << args.file_kb << ", \"passes\": " << args.passes
      << ", \"probe_period_ms\": " << args.probe_period_ms
      << ", \"suspicion_quorum\": " << args.quorum << "},\n";
  char line[512];
  std::snprintf(line, sizeof(line),
                "  \"single_kill\": {\"converged\": %s, "
                "\"convergence_ms\": %.1f},\n",
                json_bool(kill.converged), kill.convergence_ms);
  out << line;
  std::snprintf(
      line, sizeof(line),
      "  \"partition\": {\"healthy_good_fraction\": %.4f, "
      "\"partition_good_fraction\": %.4f, \"availability_ratio\": %.4f, "
      "\"healthy_goodput_rps\": %.0f, \"partition_goodput_rps\": %.0f, "
      "\"majority_detected\": %s, \"majority_detect_ms\": %.1f, "
      "\"false_confirms\": %llu, \"confirms_deferred\": %llu, "
      "\"healed\": %s, \"post_heal_ms\": %.1f},\n",
      p.healthy_good_fraction, p.partition_good_fraction,
      p.availability_ratio, p.healthy_goodput_rps, p.partition_goodput_rps,
      json_bool(p.majority_detected), p.majority_detect_ms,
      static_cast<unsigned long long>(p.false_confirms),
      static_cast<unsigned long long>(p.confirms_deferred),
      json_bool(p.healed), p.post_heal_ms);
  out << line;
  std::snprintf(
      line, sizeof(line),
      "  \"fencing\": {\"fenced_writes\": %llu, \"fenced_puts\": %llu, "
      "\"stale_epoch_puts_accepted\": %llu, \"reconcile_repushes\": %llu, "
      "\"false_suspicions\": %llu},\n",
      static_cast<unsigned long long>(p.fenced_writes),
      static_cast<unsigned long long>(p.fenced_puts),
      static_cast<unsigned long long>(p.stale_epoch_puts_accepted),
      static_cast<unsigned long long>(p.reconcile_repushes),
      static_cast<unsigned long long>(p.false_suspicions));
  out << line;
  std::snprintf(
      line, sizeof(line),
      "  \"reads\": {\"majority_ok\": %llu, \"majority_failed\": %llu, "
      "\"minority_ok\": %llu, \"minority_failed\": %llu},\n",
      static_cast<unsigned long long>(p.majority_reads_ok),
      static_cast<unsigned long long>(p.majority_reads_failed),
      static_cast<unsigned long long>(p.minority_reads_ok),
      static_cast<unsigned long long>(p.minority_reads_failed));
  out << line;
  std::snprintf(line, sizeof(line),
                "  \"availability_ok\": %s,\n  \"zero_stale_ok\": %s,\n"
                "  \"false_confirm_ok\": %s,\n  \"heal_ok\": %s\n}\n",
                json_bool(availability_ok), json_bool(zero_stale_ok),
                json_bool(false_confirm_ok), json_bool(heal_ok));
  out << line;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", args.out.c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);

  std::printf("phase A: single-kill convergence baseline...\n");
  const KillResult kill = run_single_kill(args);
  std::printf("single_kill   converged=%s  t=%7.1f ms\n",
              kill.converged ? "yes" : "NO", kill.convergence_ms);

  std::printf("phase B: asymmetric partition + heal...\n");
  const PartitionResult p = run_partition(args);
  std::printf("partition     slo-good %.4f -> %.4f (ratio %.4f)  "
              "%.0f -> %.0f rps  detect=%.1f ms\n",
              p.healthy_good_fraction, p.partition_good_fraction,
              p.availability_ratio, p.healthy_goodput_rps,
              p.partition_goodput_rps, p.majority_detect_ms);
  std::printf("split-brain   false_confirms=%llu  confirms_deferred=%llu\n",
              static_cast<unsigned long long>(p.false_confirms),
              static_cast<unsigned long long>(p.confirms_deferred));
  std::printf("fencing       fenced_writes=%llu  stale_accepted=%llu  "
              "reconcile_repushes=%llu\n",
              static_cast<unsigned long long>(p.fenced_writes),
              static_cast<unsigned long long>(p.stale_epoch_puts_accepted),
              static_cast<unsigned long long>(p.reconcile_repushes));
  std::printf("heal          healed=%s  t=%7.1f ms (bound %.1f ms)\n",
              p.healed ? "yes" : "NO", p.post_heal_ms,
              2.0 * kill.convergence_ms);

  const bool availability_ok =
      p.majority_detected && p.availability_ratio >= 0.99;
  const bool zero_stale_ok = p.stale_epoch_puts_accepted == 0;
  const bool false_confirm_ok = p.false_confirms <= 1;
  const bool heal_ok = kill.converged && p.healed &&
                       p.post_heal_ms <= 2.0 * kill.convergence_ms;
  emit_json(args, kill, p, availability_ok, zero_stale_ok, false_confirm_ok,
            heal_ok);

  const bool pass =
      availability_ok && zero_stale_ok && false_confirm_ok && heal_ok;
  std::printf("gates: availability=%s zero_stale=%s false_confirm=%s "
              "heal=%s -> %s\n",
              availability_ok ? "ok" : "FAIL", zero_stale_ok ? "ok" : "FAIL",
              false_confirm_ok ? "ok" : "FAIL", heal_ok ? "ok" : "FAIL",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
