// Ablation (Sec IV-B / V-B2 trade-off): the resource cost of virtual
// nodes.  The paper notes that more vnodes improve balance but "enlarge
// the hash table, which heightens resource consumption and prolongs
// computational time"; production uses 100.  This bench measures ring
// memory footprint (map entries), construction time, lookup latency and
// removal latency across vnode counts, alongside the balance benefit.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "hash/murmur3.hpp"
#include "ring/consistent_hash_ring.hpp"
#include "ring/load_distribution.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  const Config args = bench::parse_args(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 1024));
  const auto lookups = static_cast<std::uint32_t>(
      args.get_int("lookups", 200000));

  std::vector<std::uint32_t> vnode_counts;
  for (std::int64_t v :
       args.get_int_list("vnodes", {10, 50, 100, 200, 500, 1000})) {
    vnode_counts.push_back(static_cast<std::uint32_t>(v));
  }

  TextTable table({"Vnodes/node", "Ring entries", "Build (ms)",
                   "Lookup (ns/op)", "Node removal (us)",
                   "Peak/mean arc share", "Receiver nodes (100 trials)"});

  using Clock = std::chrono::steady_clock;
  for (const std::uint32_t vnodes : vnode_counts) {
    ring::RingConfig config;
    config.vnodes_per_node = vnodes;

    const auto build_start = Clock::now();
    ring::ConsistentHashRing ring(nodes, config);
    const double build_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - build_start)
            .count();

    // Lookup latency over precomputed hashes (pure map cost).
    std::vector<std::uint64_t> hashes(lookups);
    for (std::uint32_t i = 0; i < lookups; ++i) {
      hashes[i] = hash::fmix64(i * 0x9E3779B97F4A7C15ULL + 1);
    }
    const auto lookup_start = Clock::now();
    std::uint64_t sink = 0;
    for (const std::uint64_t h : hashes) sink += ring.owner_of_hash(h);
    const double lookup_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - lookup_start)
            .count() /
        lookups;

    // Removal cost (the fault-handling path).
    auto clone = ring.clone();
    const auto removal_start = Clock::now();
    clone->remove_node(nodes / 2);
    const double removal_us =
        std::chrono::duration<double, std::micro>(Clock::now() -
                                                  removal_start)
            .count();

    const auto share = ring.arc_share();
    double peak = 0.0;
    for (const auto& [node, s] : share) peak = std::max(peak, s);
    const double peak_to_mean = peak * nodes;

    ring::LoadDistributionParams load;
    load.physical_nodes = nodes;
    load.vnodes_per_node = vnodes;
    load.file_count = 65536;
    load.trials = 100;
    const auto balance = ring::run_load_distribution(load);

    table.add_row({std::to_string(vnodes),
                   std::to_string(ring.position_count()),
                   format_double(build_ms, 2), format_double(lookup_ns, 1),
                   format_double(removal_us, 1),
                   format_double(peak_to_mean, 2),
                   format_double(balance.receiver_nodes.mean(), 1)});
    std::fprintf(stderr, "[vnode ablation] %u vnodes done (sink=%llu)\n",
                 vnodes, static_cast<unsigned long long>(sink % 10));
  }
  bench::print_table(
      "Ablation: virtual-node cost/benefit trade-off (" +
          std::to_string(nodes) + " physical nodes)",
      table);
  std::printf(
      "expected: balance (peak/mean -> 1, receivers up) improves with "
      "vnodes while memory and per-op cost grow — the paper picks 100\n");
  return 0;
}
