// Ablation (Sec IV-B's design discussion): data movement caused by one
// node failure under the four placement strategies the paper weighs —
// static modulo (original HVAC), multiple hash functions, range
// partitioning (with and without rebalancing), and the hash ring.
//
// The argument this quantifies: static modulo relocates nearly all data;
// range partitioning relocates extra data when it rebalances; multi-hash
// and the ring move only the lost share, but multi-hash probe chains grow
// with repeated failures while the ring stays O(log V*N) per lookup.
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "ring/movement_analysis.hpp"
#include "ring/multi_hash.hpp"
#include "ring/range_partition.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  using namespace ftc::ring;
  const Config args = bench::parse_args(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 256));
  const auto vnodes = static_cast<std::uint32_t>(args.get_int("vnodes", 100));
  const auto keys_n = static_cast<std::size_t>(args.get_int("keys", 100000));

  const auto keys = make_key_population(keys_n);
  const NodeId victim = nodes / 3;

  struct Entry {
    std::string name;
    std::unique_ptr<PlacementStrategy> strategy;
  };
  std::vector<Entry> entries;
  entries.push_back({"static_modulo (orig HVAC)",
                     make_strategy(StrategyKind::kStaticModulo, nodes, 0)});
  entries.push_back({"multi_hash",
                     make_strategy(StrategyKind::kMultiHash, nodes, 0)});
  entries.push_back(
      {"range_partition (rebalance)",
       std::make_unique<RangePartitionPlacement>(
           nodes, hash::Algorithm::kMurmur3_64, true)});
  entries.push_back(
      {"range_partition (lazy)",
       std::make_unique<RangePartitionPlacement>(
           nodes, hash::Algorithm::kMurmur3_64, false)});
  entries.push_back({"hash_ring (FT-Cache)",
                     make_strategy(StrategyKind::kHashRing, nodes, vnodes)});

  TextTable table({"Strategy", "Moved %", "Lost (unavoidable) %",
                   "Gratuitous %", "Receiver nodes"});
  for (const auto& entry : entries) {
    const auto report = analyze_removal(*entry.strategy, keys, {victim});
    table.add_row(
        {entry.name, format_double(100.0 * report.moved_fraction(), 2),
         format_double(100.0 * report.lost_keys / report.total_keys, 2),
         format_double(100.0 * report.gratuitous_fraction(), 2),
         std::to_string(report.receiver_node_count())});
  }
  bench::print_table("Ablation: data movement on single-node failure (" +
                         std::to_string(nodes) + " nodes, " +
                         std::to_string(keys_n) + " keys)",
                     table);

  // Cumulative movement across five sequential failures: the churn the
  // strategies accumulate as a job keeps losing nodes (Fig 5b's setting).
  TextTable cumulative({"Strategy", "Moved % after 1", "after 2", "after 3",
                        "after 4", "after 5 failures"});
  for (const auto& entry : entries) {
    const auto mutated = entry.strategy->clone();
    std::vector<NodeId> assignment = assign_all(*mutated, keys);
    const std::vector<NodeId> original = assignment;
    std::vector<std::string> cells = {entry.name};
    std::size_t cumulative_moves = 0;
    for (std::uint32_t f = 0; f < 5; ++f) {
      mutated->remove_node(victim + f);
      const std::vector<NodeId> next = assign_all(*mutated, keys);
      for (std::size_t k = 0; k < keys.size(); ++k) {
        if (next[k] != assignment[k]) ++cumulative_moves;
      }
      assignment = next;
      cells.push_back(format_double(
          100.0 * static_cast<double>(cumulative_moves) /
              static_cast<double>(keys.size()),
          2));
    }
    cumulative.add_row(std::move(cells));
  }
  bench::print_table(
      "Ablation: cumulative data movement across 5 sequential failures",
      cumulative);

  // Multi-hash probe-chain growth under repeated failures — the
  // scalability concern the paper raises against it.
  MultiHashPlacement multi(nodes, hash::Algorithm::kMurmur3_64);
  TextTable probes({"Failures so far", "Mean probes per lookup",
                    "Max probes per lookup"});
  std::uint32_t killed = 0;
  for (std::uint32_t round = 0; round < 5; ++round) {
    for (std::uint32_t i = 0; i < nodes / 8 && killed + 1 < nodes; ++i) {
      multi.remove_node(killed++);
    }
    double total_probes = 0;
    std::uint32_t max_probes = 0;
    for (std::size_t k = 0; k < 2000; ++k) {
      (void)multi.owner(keys[k]);
      total_probes += multi.last_probe_count();
      max_probes = std::max(max_probes, multi.last_probe_count());
    }
    probes.add_row({std::to_string(killed),
                    format_double(total_probes / 2000.0, 2),
                    std::to_string(max_probes)});
  }
  bench::print_table(
      "Ablation: multi-hash probe-chain growth with repeated failures",
      probes);

  std::printf(
      "expected: static modulo moves ~%.0f%% of all keys; ring/multi-hash "
      "move only ~%.1f%% (the lost share); rebalancing range partitioning "
      "sits in between; multi-hash probe cost grows with failures\n",
      100.0 * (1.0 - 1.0 / (nodes - 1)), 100.0 / nodes);
  return 0;
}
