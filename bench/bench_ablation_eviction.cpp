// Ablation (extension): eviction policy under cache pressure.  The paper
// assumes the dataset fits in node-local NVMe; when a node's share exceeds
// its capacity, every epoch churns the cache and the victim-selection
// policy determines how much PFS traffic remains.  Epoch-style sequential
// sweeps are LRU's worst case, so this also documents why HVAC-style
// workloads are insensitive to recency (the paper can ignore eviction).
#include <cstdio>
#include <unordered_map>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "storage/cache_store.hpp"
#include "store/eviction.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  const Config args = bench::parse_args(argc, argv);
  const auto files = static_cast<std::uint32_t>(args.get_int("files", 4096));
  const auto epochs = static_cast<std::uint32_t>(args.get_int("epochs", 5));
  const std::uint64_t file_bytes = 1024;

  TextTable table({"Capacity/dataset", "Policy", "Hit rate %", "Evictions",
                   "PFS fetches"});
  for (const double ratio : {1.25, 0.9, 0.5, 0.25}) {
    for (const auto policy :
         {storage::EvictionPolicy::kLru, storage::EvictionPolicy::kFifo,
          storage::EvictionPolicy::kClock}) {
      storage::CacheStore cache(
          static_cast<std::uint64_t>(ratio * files) * file_bytes, policy);
      Rng rng(42);
      std::uint64_t pfs_fetches = 0;
      std::vector<std::uint32_t> order(files);
      for (std::uint32_t i = 0; i < files; ++i) order[i] = i;
      for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
        rng.shuffle(order);  // per-epoch reshuffle, as in DL training
        for (const std::uint32_t f : order) {
          const std::string key = "/f" + std::to_string(f);
          if (!cache.get(key).is_ok()) {
            ++pfs_fetches;  // miss -> PFS fetch + recache
            (void)cache.put(key, std::string(file_bytes, 'x'), file_bytes);
          }
        }
      }
      table.add_row({format_double(ratio, 2),
                     storage::eviction_policy_name(policy),
                     format_double(100.0 * cache.hit_rate(), 2),
                     std::to_string(cache.eviction_count()),
                     std::to_string(pfs_fetches)});
    }
    // The tiered store's pluggable policies (src/store) on the same
    // workload: a byte-budget cache simulated directly on the policy.
    for (const auto kind :
         {store::PolicyKind::kS3Fifo, store::PolicyKind::kGdsf}) {
      const std::uint64_t capacity =
          static_cast<std::uint64_t>(ratio * files) * file_bytes;
      auto policy = store::make_eviction_policy(kind);
      std::unordered_map<std::string, std::uint64_t> resident;
      std::uint64_t resident_bytes = 0;
      std::uint64_t hits = 0, lookups = 0, evictions = 0, pfs_fetches = 0;
      Rng rng(42);
      std::vector<std::uint32_t> order(files);
      for (std::uint32_t i = 0; i < files; ++i) order[i] = i;
      for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
        rng.shuffle(order);
        for (const std::uint32_t f : order) {
          const std::string key = "/f" + std::to_string(f);
          ++lookups;
          if (resident.count(key) != 0) {
            ++hits;
            policy->on_hit(key);
            continue;
          }
          ++pfs_fetches;
          while (resident_bytes + file_bytes > capacity) {
            const auto victim = policy->pop_victim();
            if (!victim) break;
            const auto it = resident.find(*victim);
            if (it == resident.end()) continue;
            resident_bytes -= it->second;
            resident.erase(it);
            ++evictions;
          }
          if (resident_bytes + file_bytes <= capacity) {
            policy->on_insert(key, file_bytes);
            resident.emplace(key, file_bytes);
            resident_bytes += file_bytes;
          }
        }
      }
      table.add_row({format_double(ratio, 2),
                     store::policy_kind_name(kind),
                     format_double(100.0 * static_cast<double>(hits) /
                                       static_cast<double>(lookups),
                                   2),
                     std::to_string(evictions),
                     std::to_string(pfs_fetches)});
    }
  }
  bench::print_table(
      "Ablation: eviction policy under cache pressure (" +
          std::to_string(files) + " files, " + std::to_string(epochs) +
          " shuffled epochs)",
      table);
  std::printf(
      "expected: above 1.0 capacity everything fits (hit rate -> (E-1)/E); "
      "under pressure all policies degrade toward the capacity ratio — "
      "shuffled full-dataset sweeps give recency little to exploit.  "
      "s3fifo/gdsf are the tiered store's policies on the same workload; "
      "their scan-phase advantage shows in bench_pressure, where sweeps "
      "are sequential rather than reshuffled\n");
  return 0;
}
