// bench_membership.cpp - SWIM membership vs client-local detection after a
// node kill: convergence time and duplicated failure-discovery work.
//
// The seed detects failures purely client-locally: every one of the N
// clients must burn TIMEOUT_LIMIT timed-out requests against the dead node
// before its private ring excludes it, so the cluster as a whole pays
// O(N * TIMEOUT_LIMIT) wasted RPCs and converges only when the SLOWEST
// client has finished rediscovering what the first one already knew.  The
// membership service detects once (SWIM probes on their own cadence),
// gossips the confirmation, and fast-forwards stale clients via the
// kStaleView delta — one detection serves everyone.
//
// Both phases run the same workload: 8 co-located clients reading a warm
// dataset with think-time pacing; one node is crash-stopped through the
// fault injector.  Measured per phase:
//
//   convergence_ms       kill -> every surviving client excludes the victim
//                        (baseline: detector probation on all clients;
//                        membership: all agents agree on serving set, epoch
//                        and ring fingerprint);
//   duplicate_recaches   data-plane requests that still landed on the dead
//                        node after the kill — each one is a client
//                        re-discovering an already-discoverable failure and
//                        re-triggering the recache path for keys the cluster
//                        has already moved (enqueue-side transport count, so
//                        discarded requests are included; SWIM protocol
//                        traffic is excluded and reported separately as
//                        protocol_requests — probes aimed at the victim are
//                        the detection mechanism, not duplicated work);
//   recache_pfs_fetches  PFS reads performed by surviving servers to adopt
//                        the victim's keys (expected_recaches = keys the
//                        victim owned; anything above it is duplicated PFS
//                        work).
//
// Writes BENCH_membership.json (override with out=...).  Exit 0 only if
// membership converges within `period_bound` probe periods AND beats the
// baseline strictly on both convergence time and duplicate count.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/failure_injector.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ftc::NodeId;
using ftc::cluster::Cluster;
using ftc::cluster::ClusterConfig;
using ftc::cluster::FtMode;
using ftc::cluster::GrayFailureInjector;
using ftc::cluster::NodeHealth;

struct BenchArgs {
  std::uint32_t nodes = 8;
  std::uint32_t files = 64;
  std::uint32_t file_kb = 64;
  std::uint32_t think_ms = 5;
  std::uint32_t probe_period_ms = 10;
  // Probe periods membership may take from kill to full convergence.
  double period_bound = 40.0;
  std::uint32_t timeout_s = 10;
  std::string out = "BENCH_membership.json";
};

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr,
                   "usage: %s [nodes=N] [files=N] [file_kb=N] [think_ms=N] "
                   "[probe_period_ms=N] [period_bound=N] [timeout_s=N] "
                   "[out=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    const auto numeric = [&key, &value]() -> std::uint32_t {
      try {
        std::size_t used = 0;
        const unsigned long parsed = std::stoul(value, &used);
        if (used == value.size()) return static_cast<std::uint32_t>(parsed);
      } catch (const std::exception&) {
      }
      std::fprintf(stderr, "%s wants a number, got '%s'\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    };
    if (key == "nodes") args.nodes = numeric();
    else if (key == "files") args.files = numeric();
    else if (key == "file_kb") args.file_kb = numeric();
    else if (key == "think_ms") args.think_ms = numeric();
    else if (key == "probe_period_ms") args.probe_period_ms = numeric();
    else if (key == "period_bound") args.period_bound = numeric();
    else if (key == "timeout_s") args.timeout_s = numeric();
    else if (key == "out") args.out = value;
    else {
      std::fprintf(stderr, "unknown key: %s\n", key.c_str());
      std::exit(2);
    }
  }
  return args;
}

ClusterConfig make_config(const BenchArgs& args, bool membership) {
  ClusterConfig config;
  config.node_count = args.nodes;
  config.client.mode = FtMode::kHashRingRecache;
  // The data-path deadline is what each baseline client burns per
  // rediscovery; membership probes run on their own (shorter) timeouts.
  config.client.rpc_timeout = std::chrono::milliseconds(80);
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.server.async_data_mover = false;
  config.server.cache_capacity_bytes = 1ULL << 32;
  if (membership) {
    config.membership.enabled = true;
    config.membership.background = true;
    config.membership.probe_period =
        std::chrono::milliseconds(args.probe_period_ms);
    config.membership.probe_timeout = std::chrono::milliseconds(25);
    config.membership.indirect_timeout = std::chrono::milliseconds(60);
    config.membership.suspicion_periods = 3;
    config.membership.seed = 17;
  }
  return config;
}

struct PhaseResult {
  std::string name;
  bool converged = false;
  double convergence_ms = 0.0;
  double probe_periods = 0.0;
  std::uint64_t duplicate_recaches = 0;  ///< dead-node data requests, kill+
  std::uint64_t protocol_requests = 0;   ///< dead-node SWIM requests, kill+
  std::uint64_t recache_pfs_fetches = 0;
  std::uint64_t expected_recaches = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_failed = 0;
};

bool baseline_converged(Cluster& cluster, NodeId victim) {
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (n == victim) continue;
    if (cluster.client(n).node_health(victim) != NodeHealth::kProbation) {
      return false;
    }
  }
  return true;
}

bool membership_converged(Cluster& cluster, NodeId victim) {
  bool first = true;
  std::uint64_t epoch = 0;
  std::uint64_t fingerprint = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (n == victim) continue;
    auto& agent = cluster.membership(n);
    if (agent.is_serving(victim)) return false;
    if (first) {
      epoch = agent.epoch();
      fingerprint = agent.ring_fingerprint();
      first = false;
      continue;
    }
    if (agent.epoch() != epoch) return false;
    if (agent.ring_fingerprint() != fingerprint) return false;
  }
  return true;
}

/// Kill `victim`, drive paced reads from every surviving client until the
/// cluster has converged on the failure, then one more full pass to expose
/// any post-convergence leakage toward the dead node.
PhaseResult run_phase(const BenchArgs& args, bool membership) {
  PhaseResult result;
  result.name = membership ? "membership" : "client_local";

  Cluster cluster(make_config(args, membership));
  const auto paths =
      cluster.stage_dataset(args.files, args.file_kb * 1024);
  cluster.warm_caches(paths);

  const NodeId victim = args.nodes - 1;
  for (const auto& path : paths) {
    if (cluster.client(0).current_owner(path) == victim) {
      ++result.expected_recaches;
    }
  }

  std::uint64_t pfs_before = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    pfs_before += cluster.server(n).stats_snapshot().pfs_fetches;
  }

  GrayFailureInjector injector(cluster.transport(), /*seed=*/3);
  cluster.transport().drain_async();
  const auto victim_rx_at_kill = cluster.transport().stats(victim);
  injector.kill(victim);
  const auto t0 = Clock::now();

  const auto deadline = t0 + std::chrono::seconds(args.timeout_s);
  const std::chrono::milliseconds think(args.think_ms);
  std::size_t cursor = 0;
  while (Clock::now() < deadline) {
    // One paced read per surviving client per iteration, striding the
    // dataset so victim-owned paths come up at the natural 1/N rate.
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      if (n == victim) continue;
      const auto& path = paths[(cursor + n) % paths.size()];
      if (cluster.client(n).read_file(path).is_ok()) {
        ++result.reads_ok;
      } else {
        ++result.reads_failed;
      }
    }
    ++cursor;
    const bool done = membership ? membership_converged(cluster, victim)
                                 : baseline_converged(cluster, victim);
    if (done) {
      result.converged = true;
      result.convergence_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      break;
    }
    std::this_thread::sleep_for(think);
  }
  result.probe_periods =
      result.convergence_ms / static_cast<double>(args.probe_period_ms);

  // Post-convergence pass: a converged cluster must route nothing more at
  // the dead node (counted at enqueue, so discarded requests show too).
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (n == victim) continue;
    for (const auto& path : paths) {
      if (cluster.client(n).read_file(path).is_ok()) {
        ++result.reads_ok;
      } else {
        ++result.reads_failed;
      }
    }
  }
  cluster.transport().drain_async();

  const auto victim_rx = cluster.transport().stats(victim);
  result.duplicate_recaches =
      victim_rx.received_data - victim_rx_at_kill.received_data;
  result.protocol_requests =
      (victim_rx.received - victim_rx.received_data) -
      (victim_rx_at_kill.received - victim_rx_at_kill.received_data);
  std::uint64_t pfs_after = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    pfs_after += cluster.server(n).stats_snapshot().pfs_fetches;
  }
  result.recache_pfs_fetches = pfs_after - pfs_before;
  return result;
}

const char* json_bool(bool b) { return b ? "true" : "false"; }

void emit_json(const BenchArgs& args, const PhaseResult& baseline,
               const PhaseResult& membership, bool periods_ok,
               bool convergence_ok, bool duplicates_ok) {
  std::ofstream out(args.out);
  out << "{\n  \"bench\": \"bench_membership\",\n";
  out << "  \"config\": {\"nodes\": " << args.nodes
      << ", \"files\": " << args.files << ", \"file_kb\": " << args.file_kb
      << ", \"think_ms\": " << args.think_ms
      << ", \"probe_period_ms\": " << args.probe_period_ms
      << ", \"period_bound\": " << args.period_bound << "},\n";
  out << "  \"phases\": {\n";
  const PhaseResult* phases[] = {&baseline, &membership};
  for (std::size_t i = 0; i < 2; ++i) {
    const PhaseResult& p = *phases[i];
    char line[384];
    std::snprintf(
        line, sizeof(line),
        "    \"%s\": {\"converged\": %s, \"convergence_ms\": %.1f, "
        "\"probe_periods\": %.1f, \"duplicate_recaches\": %llu, "
        "\"protocol_requests\": %llu, "
        "\"recache_pfs_fetches\": %llu, \"expected_recaches\": %llu, "
        "\"reads_ok\": %llu, \"reads_failed\": %llu}%s\n",
        p.name.c_str(), json_bool(p.converged), p.convergence_ms,
        p.probe_periods,
        static_cast<unsigned long long>(p.duplicate_recaches),
        static_cast<unsigned long long>(p.protocol_requests),
        static_cast<unsigned long long>(p.recache_pfs_fetches),
        static_cast<unsigned long long>(p.expected_recaches),
        static_cast<unsigned long long>(p.reads_ok),
        static_cast<unsigned long long>(p.reads_failed),
        i + 1 < 2 ? "," : "");
    out << line;
  }
  out << "  },\n";
  char summary[256];
  std::snprintf(summary, sizeof(summary),
                "  \"membership_within_period_bound\": %s,\n"
                "  \"convergence_below_baseline\": %s,\n"
                "  \"duplicates_below_baseline\": %s\n}\n",
                json_bool(periods_ok), json_bool(convergence_ok),
                json_bool(duplicates_ok));
  out << summary;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", args.out.c_str());
    std::exit(1);
  }
}

void print_phase(const PhaseResult& p) {
  std::printf("%-13s converged=%s  t=%7.1f ms (%5.1f periods)  "
              "dead-node data reqs=%4llu (+%llu swim)  pfs recaches=%llu/%llu"
              "  reads %llu ok %llu failed\n",
              p.name.c_str(), p.converged ? "yes" : "NO", p.convergence_ms,
              p.probe_periods,
              static_cast<unsigned long long>(p.duplicate_recaches),
              static_cast<unsigned long long>(p.protocol_requests),
              static_cast<unsigned long long>(p.recache_pfs_fetches),
              static_cast<unsigned long long>(p.expected_recaches),
              static_cast<unsigned long long>(p.reads_ok),
              static_cast<unsigned long long>(p.reads_failed));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);

  const PhaseResult baseline = run_phase(args, /*membership=*/false);
  const PhaseResult membership = run_phase(args, /*membership=*/true);

  const bool periods_ok = membership.converged &&
                          membership.probe_periods <= args.period_bound;
  const bool convergence_ok =
      membership.converged && baseline.converged &&
      membership.convergence_ms < baseline.convergence_ms;
  const bool duplicates_ok =
      membership.duplicate_recaches < baseline.duplicate_recaches;

  print_phase(baseline);
  print_phase(membership);
  std::printf("membership within %.0f probe periods: %s\n", args.period_bound,
              periods_ok ? "yes" : "NO");
  std::printf("convergence strictly below baseline: %s\n",
              convergence_ok ? "yes" : "NO");
  std::printf("duplicate recaches strictly below baseline: %s\n",
              duplicates_ok ? "yes" : "NO");
  emit_json(args, baseline, membership, periods_ok, convergence_ok,
            duplicates_ok);
  std::printf("wrote %s\n", args.out.c_str());
  return periods_ok && convergence_ok && duplicates_ok ? 0 : 1;
}
