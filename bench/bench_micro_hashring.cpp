// Google-benchmark microbenchmarks for the core data structures: ring
// lookups/updates vs the baseline placements, and the raw hash functions.
// These quantify the per-request costs behind Fig 5(a)'s FT overhead and
// the vnode trade-off in Sec V-B2.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "hash/fnv.hpp"
#include "hash/murmur3.hpp"
#include "hash/xxhash64.hpp"
#include "ring/consistent_hash_ring.hpp"
#include "ring/flat_hash_ring.hpp"
#include "ring/movement_analysis.hpp"
#include "ring/placement.hpp"

namespace {

using namespace ftc;

const std::vector<std::string>& bench_keys() {
  static const auto keys = ring::make_key_population(4096);
  return keys;
}

void BM_RingLookup(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto vnodes = static_cast<std::uint32_t>(state.range(1));
  ring::RingConfig config;
  config.vnodes_per_node = vnodes;
  const ring::ConsistentHashRing ring(nodes, config);
  const auto& keys = bench_keys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.owner(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingLookup)
    ->Args({64, 100})
    ->Args({1024, 100})
    ->Args({1024, 1000});

void BM_RingLookupPrehashed(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  ring::RingConfig config;
  config.vnodes_per_node = 100;
  const ring::ConsistentHashRing ring(nodes, config);
  std::uint64_t h = 0x1234;
  for (auto _ : state) {
    h = hash::fmix64(h);
    benchmark::DoNotOptimize(ring.owner_of_hash(h));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingLookupPrehashed)->Arg(64)->Arg(1024);

// Sorted-vector ring vs the paper's std::map ring: same asymptotics, very
// different constants (contiguous binary search vs pointer chasing).
void BM_FlatRingLookupPrehashed(benchmark::State& state) {
  ring::RingConfig config;
  config.vnodes_per_node = 100;
  const ring::FlatHashRing ring(
      static_cast<std::uint32_t>(state.range(0)), config);
  std::uint64_t h = 0x1234;
  for (auto _ : state) {
    h = hash::fmix64(h);
    benchmark::DoNotOptimize(ring.owner_of_hash(h));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatRingLookupPrehashed)->Arg(64)->Arg(1024);

void BM_FlatRingRebuild(benchmark::State& state) {
  ring::RingConfig config;
  config.vnodes_per_node = 100;
  const ring::FlatHashRing ring(
      static_cast<std::uint32_t>(state.range(0)), config);
  std::uint32_t victim = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto clone = ring.clone();
    state.ResumeTiming();
    // Full O(V*N) rebuild — the price of the read-optimized layout.
    clone->remove_node(victim++ % static_cast<std::uint32_t>(state.range(0)));
  }
}
BENCHMARK(BM_FlatRingRebuild)->Arg(64)->Arg(1024);

void BM_ModuloLookup(benchmark::State& state) {
  const auto strategy = ring::make_strategy(
      ring::StrategyKind::kStaticModulo,
      static_cast<std::uint32_t>(state.range(0)), 0);
  const auto& keys = bench_keys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->owner(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModuloLookup)->Arg(64)->Arg(1024);

// Bounded-load lookup vs the plain lookup it wraps.  The overloaded
// predicate rejects ~1/5 of nodes so the walk actually spills sometimes;
// the budget claim (checked by the manual comparison in main) is that the
// bounded variant stays within 2x the plain prehashed lookup.
void BM_RingLookupBounded(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  ring::RingConfig config;
  config.vnodes_per_node = 100;
  const ring::ConsistentHashRing ring(nodes, config);
  const auto excluded = [](ring::NodeId) { return false; };
  const auto overloaded = [](ring::NodeId n) { return n % 5 == 0; };
  std::uint64_t h = 0x1234;
  for (auto _ : state) {
    h = hash::fmix64(h);
    benchmark::DoNotOptimize(
        ring.owner_of_hash_bounded(h, 3, excluded, overloaded));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingLookupBounded)->Arg(64)->Arg(1024);

void BM_RingNodeRemoval(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto vnodes = static_cast<std::uint32_t>(state.range(1));
  ring::RingConfig config;
  config.vnodes_per_node = vnodes;
  const ring::ConsistentHashRing ring(nodes, config);
  std::uint32_t victim = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto clone = ring.clone();
    state.ResumeTiming();
    clone->remove_node(victim++ % nodes);
  }
}
BENCHMARK(BM_RingNodeRemoval)->Args({1024, 100})->Args({1024, 1000});

void BM_RingConstruction(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto vnodes = static_cast<std::uint32_t>(state.range(1));
  ring::RingConfig config;
  config.vnodes_per_node = vnodes;
  for (auto _ : state) {
    ring::ConsistentHashRing ring(nodes, config);
    benchmark::DoNotOptimize(ring.position_count());
  }
}
BENCHMARK(BM_RingConstruction)->Args({64, 100})->Args({1024, 100});

void BM_HashFnv(benchmark::State& state) {
  const auto& keys = bench_keys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::fnv1a64(keys[i++ & 4095]));
  }
}
BENCHMARK(BM_HashFnv);

void BM_HashMurmur3(benchmark::State& state) {
  const auto& keys = bench_keys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::murmur3_64(keys[i++ & 4095]));
  }
}
BENCHMARK(BM_HashMurmur3);

void BM_HashXx(benchmark::State& state) {
  const auto& keys = bench_keys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::xxhash64(keys[i++ & 4095]));
  }
}
BENCHMARK(BM_HashXx);

/// Manual budget check: 200k prehashed lookups, plain vs bounded (same
/// ring, same hash stream), best of 3 rounds each.  The bounded walk may
/// inspect a few extra ring positions and calls two predicates, but it
/// shares the one binary search — so it must stay within 2x.  Exits
/// non-zero on regression; wired into scripts/ci.sh.
int bounded_lookup_budget_check() {
  ring::RingConfig config;
  config.vnodes_per_node = 100;
  const ring::ConsistentHashRing ring(1024, config);
  const auto excluded = [](ring::NodeId) { return false; };
  const auto overloaded = [](ring::NodeId n) { return n % 5 == 0; };
  constexpr int kLookups = 200000;
  constexpr int kRounds = 3;

  const auto best_of = [&](auto&& body) {
    double best = 1e18;
    for (int round = 0; round < kRounds; ++round) {
      std::uint64_t h = 0x1234;
      std::uint64_t sink = 0;
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kLookups; ++i) {
        h = hash::fmix64(h);
        sink ^= body(h);
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      benchmark::DoNotOptimize(sink);
      best = std::min(best, seconds);
    }
    return best;
  };

  const double plain = best_of(
      [&](std::uint64_t h) { return ring.owner_of_hash(h); });
  const double bounded = best_of([&](std::uint64_t h) {
    return ring.owner_of_hash_bounded(h, 3, excluded, overloaded).chosen;
  });
  const double ratio = plain > 0.0 ? bounded / plain : 0.0;
  std::printf(
      "bounded-load budget: plain %.1f ns/lookup, bounded %.1f ns/lookup "
      "-> %.2fx (budget 2.00x, %s)\n",
      plain / kLookups * 1e9, bounded / kLookups * 1e9, ratio,
      ratio <= 2.0 ? "ok" : "EXCEEDED");
  return ratio <= 2.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return bounded_lookup_budget_check();
}
