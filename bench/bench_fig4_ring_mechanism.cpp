// Reproduces Figure 4: the hash-ring reassignment walk-through.  Shows the
// before/after owner of a set of files when a node fails, and verifies the
// two properties the figure illustrates: (i) only the failed node's files
// move, (ii) they move to the clockwise successor.
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "ring/consistent_hash_ring.hpp"
#include "ring/movement_analysis.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  const Config args = bench::parse_args(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 4));
  const auto vnodes = static_cast<std::uint32_t>(args.get_int("vnodes", 3));
  const auto victim =
      static_cast<ring::NodeId>(args.get_int("victim", 1));

  ring::RingConfig ring_config;
  ring_config.vnodes_per_node = vnodes;
  ring::ConsistentHashRing ring(nodes, ring_config);

  // The figure's alphabet of files.
  std::vector<std::string> files;
  for (char c = 'A'; c <= 'H'; ++c) {
    files.push_back(std::string("file_") + c);
  }

  TextTable table({"File", "Ring position (frac)", "Owner before",
                   "Owner after node " + std::to_string(victim) + " fails",
                   "Moved"});
  std::vector<ring::NodeId> before;
  before.reserve(files.size());
  for (const auto& file : files) before.push_back(ring.owner(file));

  auto after_ring = ring.clone();
  after_ring->remove_node(victim);

  constexpr double kCircle = 18446744073709551616.0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto after = after_ring->owner(files[i]);
    table.add_row(
        {files[i],
         format_double(
             static_cast<double>(ring.key_position(files[i])) / kCircle, 6),
         "Node " + std::to_string(before[i]),
         "Node " + std::to_string(after),
         before[i] != after ? "yes" : "no"});
  }
  bench::print_table("Figure 4: ring reassignment after a node failure",
                     table);

  // Property check over a large population.
  const auto keys = ring::make_key_population(20000);
  const auto report = ring::analyze_removal(ring, keys, {victim});
  std::printf(
      "population check over %zu files: moved %zu (%.2f%%), of which "
      "gratuitous %zu (must be 0 — consistent hashing moves only the lost "
      "data); receiver nodes: %zu\n",
      report.total_keys, report.moved_keys, 100.0 * report.moved_fraction(),
      report.gratuitous_moves, report.receiver_node_count());
  return report.gratuitous_moves == 0 ? 0 : 1;
}
