// Reproduces Figure 2: distribution of failure types by (a) node count and
// (b) elapsed time.  Paper's qualitative features: Node Fail share rises
// with node count — 46.04% in the 7,750-9,300 bucket, 78.60% together with
// Timeout — while elapsed time barely changes the type mix.
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "trace/failure_analyzer.hpp"
#include "trace/log_generator.hpp"

namespace {

void print_share_table(const std::string& title,
                       const std::vector<ftc::trace::TypeShareRow>& rows,
                       const char* bucket_name) {
  ftc::TextTable table({bucket_name, "Failures", "JOB_FAIL %", "TIMEOUT %",
                        "NODE_FAIL %", "NF+TO %"});
  for (const auto& row : rows) {
    table.add_row(
        {ftc::format_double(row.bucket_low, 0) + "-" +
             ftc::format_double(row.bucket_high, 0),
         std::to_string(row.failures),
         ftc::format_double(100.0 * row.job_fail_share, 2),
         ftc::format_double(100.0 * row.timeout_share, 2),
         ftc::format_double(100.0 * row.node_fail_share, 2),
         ftc::format_double(
             100.0 * (row.node_fail_share + row.timeout_share), 2)});
  }
  ftc::bench::print_table(title, table);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftc;
  const Config args = bench::parse_args(argc, argv);

  trace::LogGeneratorParams params;
  params.total_jobs = static_cast<std::uint32_t>(
      args.get_int("jobs", params.total_jobs));
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20240101));

  const trace::FailureAnalyzer analyzer(trace::generate_log(params));

  const auto by_nodes = analyzer.by_node_count(
      trace::default_node_count_edges());
  print_share_table("Figure 2(a): failure types by node count", by_nodes,
                    "Nodes");
  if (!by_nodes.empty()) {
    const auto& top = by_nodes.back();
    std::printf(
        "top bucket (7750+): NODE_FAIL %s%% (paper: 46.04%%), "
        "NODE_FAIL+TIMEOUT %s%% (paper: 78.60%%)\n",
        format_double(100.0 * top.node_fail_share, 2).c_str(),
        format_double(100.0 * (top.node_fail_share + top.timeout_share), 2)
            .c_str());
  }

  print_share_table(
      "Figure 2(b): failure types by elapsed time (minutes)",
      analyzer.by_elapsed(trace::default_elapsed_edges()), "Elapsed");
  std::printf(
      "paper: elapsed-time buckets show no strong trend in type mix\n");
  return 0;
}
