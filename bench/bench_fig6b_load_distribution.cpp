// Reproduces Figure 6(b): effect of the virtual-node count on post-failure
// load redistribution — 1024 physical nodes, one random failure, 500
// trials per configuration (the paper's own simulation experiment).
//
// Paper's shape: receiver nodes grow from ~3 (10 vnodes) toward ~300
// (1000 vnodes) with diminishing returns past ~500 and a plateau around
// ~350; files-per-receiver falls correspondingly; its stddev shrinks
// (better balance), while receiver-count stddev grows.
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "ring/load_distribution.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  const Config args = bench::parse_args(argc, argv);

  ring::LoadDistributionParams base;
  base.physical_nodes = static_cast<std::uint32_t>(
      args.get_int("nodes", 1024));
  base.file_count = static_cast<std::uint64_t>(
      args.get_int("files", 524288));
  base.trials = static_cast<std::uint32_t>(args.get_int("trials", 500));
  base.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  std::vector<std::uint32_t> vnode_counts;
  for (std::int64_t v :
       args.get_int_list("vnodes", {10, 50, 100, 200, 500, 1000})) {
    if (v > 0) vnode_counts.push_back(static_cast<std::uint32_t>(v));
  }

  TextTable table({"Vnodes/node", "Receiver nodes (mean)", "+- sd",
                   "Files/receiver (mean)", "+- sd", "Lost files (mean)",
                   "Jain fairness", "Max on one receiver", "p99 on receiver"});
  const auto sweep = ring::run_load_distribution_sweep(base, vnode_counts);
  for (const auto& result : sweep) {
    table.add_row(
        {std::to_string(result.params.vnodes_per_node),
         format_double(result.receiver_nodes.mean(), 1),
         format_double(result.receiver_nodes.stddev(), 1),
         format_double(result.files_per_receiver.mean(), 1),
         format_double(result.files_per_receiver.stddev(), 1),
         format_double(result.lost_files.mean(), 1),
         format_double(result.receiver_fairness.mean(), 3),
         format_double(result.max_files_one_receiver.mean(), 1),
         format_double(result.p99_files_one_receiver.mean(), 1)});
  }
  bench::print_table(
      "Figure 6(b): load redistribution vs virtual-node count (" +
          std::to_string(base.physical_nodes) + " nodes, " +
          std::to_string(base.trials) + " trials)",
      table);

  std::printf(
      "paper reference: ~3 receivers at 10 vnodes -> ~300 at 1000; "
      "diminishing returns past 500 (plateau ~350); files/receiver falls "
      "and its spread tightens; the paper's production pick is 100\n");

  // Extension: whole-population peak/mean on the post-failure ring, plain
  // clockwise assignment vs bounded-load spill (CH-BL) at factor c.  The
  // full-arc walk is ~physical_nodes x the per-trial cost of the failure
  // study above, so it runs fewer trials.
  const double c = args.get_double("c", 1.25);
  if (c > 1.0) {
    ring::LoadDistributionParams bounded = base;
    bounded.bounded_load_c = c;
    bounded.bounded_load_max_spill = static_cast<std::uint32_t>(
        args.get_int("max_spill", bounded.bounded_load_max_spill));
    bounded.trials = static_cast<std::uint32_t>(
        args.get_int("bounded_trials", std::max(1, int(base.trials) / 25)));
    TextTable blb({"Vnodes/node", "Peak/mean plain", "+- sd",
                   "Peak/mean CH-BL", "+- sd", "Spilled fraction"});
    for (const auto& result :
         ring::run_load_distribution_sweep(bounded, vnode_counts)) {
      blb.add_row({std::to_string(result.params.vnodes_per_node),
                   format_double(result.peak_to_mean_plain.mean(), 3),
                   format_double(result.peak_to_mean_plain.stddev(), 3),
                   format_double(result.peak_to_mean_bounded.mean(), 3),
                   format_double(result.peak_to_mean_bounded.stddev(), 3),
                   format_double(result.bounded_spill_fraction.mean(), 4)});
    }
    bench::print_table(
        "Extension: post-failure peak/mean, plain vs bounded-load (c=" +
            format_double(c, 2) + ", " + std::to_string(bounded.trials) +
            " trials)",
        blb);
    std::printf(
        "expected: CH-BL caps the peak near c while moving only a few "
        "percent of keys; plain clockwise assignment's peak grows with "
        "hash-arc variance (worst at low vnode counts)\n");
  }
  return 0;
}
