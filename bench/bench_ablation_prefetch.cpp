// Ablation (extension): pipelined prefetching.  The epoch permutation is
// a pure function of (seed, epoch), so each node can fetch step k+1's
// files during step k's compute — the "clairvoyant" opportunity the paper
// cites as related work [1,10].  Measures how much of the cache-read and
// recovery I/O hides under compute, with and without failures.
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  using cluster::FtMode;
  const Config args = bench::parse_args(argc, argv);
  const auto scales = bench::scales_from(args);

  TextTable table({"Nodes", "No prefetch (min)", "Prefetch (min)",
                   "Speedup %", "No prefetch +fail", "Prefetch +fail",
                   "Speedup % (fail)"});
  for (const std::uint32_t nodes : scales) {
    double minutes[2][2];  // [prefetch][failure]
    for (int pf = 0; pf < 2; ++pf) {
      for (int fail = 0; fail < 2; ++fail) {
        auto config = bench::paper_config(nodes, FtMode::kHashRingRecache);
        bench::apply_overrides(config, args);
        config.prefetch.enabled = (pf == 1);
        if (fail == 1) {
          cluster::PlannedFailure failure;
          failure.victim = nodes / 2;
          failure.epoch = 2;
          failure.epoch_fraction = 0.2;
          config.failures = {failure};
        }
        const auto result = destim::run_experiment(config);
        minutes[pf][fail] = result.completed ? result.total_minutes() : -1;
      }
    }
    table.add_row(
        {std::to_string(nodes), format_double(minutes[0][0], 3),
         format_double(minutes[1][0], 3),
         format_double(100.0 * (minutes[0][0] - minutes[1][0]) /
                           minutes[0][0], 1),
         format_double(minutes[0][1], 3), format_double(minutes[1][1], 3),
         format_double(100.0 * (minutes[0][1] - minutes[1][1]) /
                           minutes[0][1], 1)});
    std::fprintf(stderr, "[prefetch] scale %u done\n", nodes);
  }
  bench::print_table(
      "Ablation: pipelined prefetch on the FT w/ NVMe system "
      "(DES substrate)", table);
  std::printf(
      "expected: prefetch hides cached-epoch reads under compute; the gain "
      "persists under failures (recache fetches also overlap)\n");
  std::printf(
      "substrate: discrete-event timing model only — the threaded "
      "epoch-ahead planner and kPeerGet pulls are measured by "
      "bench_fig5_end_to_end prefetch_only=1\n");
  return 0;
}
