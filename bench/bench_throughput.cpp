// bench_throughput.cpp - Multi-client saturation benchmark for the served
// data path.
//
// Unlike the figure benches (which reproduce paper plots on the DES
// substrate), this one hammers the *threaded* cluster — real HvacServer,
// real transport, real payload bytes — and reports what the data path
// costs: ops/s, p50/p99 latency, and bytes of payload memcpy per read.
// Three phases:
//
//   hit_heavy     every read is a node-local cache hit (the paper's
//                 steady-state: after recaching, reads never leave NVMe);
//   miss_heavy    every read misses and is fetched from the PFS then
//                 recached by the async data mover (epoch-1 / post-failure
//                 recache traffic);
//   mixed_failure reads over a warm set while a node is crash-stopped
//                 mid-phase (timeout detection + ring recache in-band).
//
// Writes machine-readable BENCH_throughput.json (override with out=...).
// If BENCH_throughput.baseline.json exists in the working directory its
// contents are embedded as the "baseline" section so before/after numbers
// live in one artifact.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ftc::cluster::Cluster;
using ftc::cluster::ClusterConfig;
using ftc::cluster::NodeId;

struct PhaseResult {
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t failures = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double bytes_copied_per_read = 0.0;
  double mb_per_sec = 0.0;

  [[nodiscard]] double ops_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
  }
};

struct BenchArgs {
  std::uint32_t nodes = 4;
  std::uint32_t files = 48;
  std::uint32_t file_kb = 1024;
  std::uint32_t hit_passes = 6;
  std::uint32_t miss_files = 64;
  std::uint32_t mixed_passes = 4;
  /// 1: run the observability-overhead check instead of the three phases —
  /// hit-heavy ops/s with obs fully off vs recorders attached but no read
  /// sampled (tracing=1, sample_every=0; the always-armed production
  /// posture).  Exits non-zero if the attached run is more than
  /// obs_tolerance_pct slower or if the exporter output is malformed.
  std::uint32_t obs_check = 0;
  std::uint32_t obs_reps = 3;  ///< best-of-N ops/s per mode (noise control)
  /// The structural claim is <1% (the untraced path adds one branch per
  /// read); the CI gate is looser to absorb shared-box scheduler noise.
  std::uint32_t obs_tolerance_pct = 5;
  std::string out = "BENCH_throughput.json";
};

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr,
                   "usage: %s [nodes=N] [files=N] [file_kb=N] [hit_passes=N] "
                   "[miss_files=N] [mixed_passes=N] [obs_check=0|1] "
                   "[obs_reps=N] [obs_tolerance_pct=N] [out=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    const auto numeric = [&key, &value]() -> std::uint32_t {
      try {
        std::size_t used = 0;
        const unsigned long parsed = std::stoul(value, &used);
        if (used == value.size()) {
          return static_cast<std::uint32_t>(parsed);
        }
      } catch (const std::exception&) {
      }
      std::fprintf(stderr, "%s wants a number, got '%s'\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    };
    if (key == "nodes") args.nodes = numeric();
    else if (key == "files") args.files = numeric();
    else if (key == "file_kb") args.file_kb = numeric();
    else if (key == "hit_passes") args.hit_passes = numeric();
    else if (key == "miss_files") args.miss_files = numeric();
    else if (key == "mixed_passes") args.mixed_passes = numeric();
    else if (key == "obs_check") args.obs_check = numeric();
    else if (key == "obs_reps") args.obs_reps = numeric();
    else if (key == "obs_tolerance_pct") args.obs_tolerance_pct = numeric();
    else if (key == "out") args.out = value;
    else {
      std::fprintf(stderr, "unknown key: %s\n", key.c_str());
      std::exit(2);
    }
  }
  return args;
}

/// Payload-copy telemetry. The servers count every byte of payload they
/// memcpy on the serve path; the delta across a phase divided by the op
/// count is the headline bytes-copied-per-read metric.
std::uint64_t total_payload_bytes_copied(Cluster& cluster) {
  std::uint64_t total = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    total += cluster.server(n).stats_snapshot().payload_bytes_copied;
  }
  return total;
}

/// Runs `per_thread(thread_index, latencies_us)` on one thread per node and
/// times the whole fan-out.
template <typename Fn>
PhaseResult run_phase(const std::string& name, Cluster& cluster,
                      std::uint64_t expected_payload_bytes, Fn per_thread) {
  PhaseResult result;
  result.name = name;
  const std::uint32_t threads = cluster.node_count();
  std::vector<std::vector<double>> latencies(threads);
  std::vector<std::uint64_t> failures(threads, 0);
  const std::uint64_t copied_before = total_payload_bytes_copied(cluster);

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([t, &latencies, &failures, &per_thread] {
      per_thread(t, latencies[t], failures[t]);
    });
  }
  for (auto& w : workers) w.join();
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> merged;
  for (auto& l : latencies) {
    merged.insert(merged.end(), l.begin(), l.end());
  }
  for (std::uint64_t f : failures) result.failures += f;
  result.ops = merged.size();
  std::sort(merged.begin(), merged.end());
  auto pct = [&merged](double p) {
    if (merged.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(merged.size() - 1));
    return merged[rank];
  };
  result.p50_us = pct(50.0);
  result.p99_us = pct(99.0);
  const std::uint64_t copied = total_payload_bytes_copied(cluster) -
                               copied_before;
  result.bytes_copied_per_read =
      result.ops > 0 ? static_cast<double>(copied) /
                           static_cast<double>(result.ops)
                     : 0.0;
  result.mb_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(result.ops) *
                static_cast<double>(expected_payload_bytes) /
                (1024.0 * 1024.0) / result.seconds
          : 0.0;
  return result;
}

std::string json_escape_free(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

void emit_json(const BenchArgs& args, const std::vector<PhaseResult>& phases,
               const std::string& path) {
  // Inline the recorded pre-change baseline when present so the artifact
  // carries before/after in one file.
  std::string baseline = "null";
  {
    std::ifstream in("BENCH_throughput.baseline.json");
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      if (!ss.str().empty()) baseline = ss.str();
      while (!baseline.empty() &&
             (baseline.back() == '\n' || baseline.back() == ' ')) {
        baseline.pop_back();
      }
    }
  }
  std::ofstream out(path);
  out << "{\n  \"bench\": \"bench_throughput\",\n";
  out << "  \"config\": {\"nodes\": " << args.nodes
      << ", \"files\": " << args.files << ", \"file_kb\": " << args.file_kb
      << ", \"hit_passes\": " << args.hit_passes
      << ", \"miss_files\": " << args.miss_files
      << ", \"mixed_passes\": " << args.mixed_passes << "},\n";
  out << "  \"baseline\": " << baseline << ",\n";
  out << "  \"current\": {\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    out << "    \"" << p.name << "\": {"
        << "\"ops\": " << p.ops << ", \"failures\": " << p.failures
        << ", \"seconds\": " << p.seconds
        << ", \"ops_per_sec\": " << json_escape_free(p.ops_per_sec())
        << ", \"p50_us\": " << json_escape_free(p.p50_us)
        << ", \"p99_us\": " << json_escape_free(p.p99_us)
        << ", \"bytes_copied_per_read\": "
        << json_escape_free(p.bytes_copied_per_read)
        << ", \"served_mb_per_sec\": " << json_escape_free(p.mb_per_sec)
        << "}" << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", path.c_str());
    std::exit(1);
  }
}

/// The shared cluster shape of both the saturation phases and the
/// observability-overhead check.
ClusterConfig base_config(const BenchArgs& args) {
  ClusterConfig config;
  config.node_count = args.nodes;
  config.client.mode = ftc::cluster::FtMode::kHashRingRecache;
  config.client.rpc_timeout = std::chrono::milliseconds(2000);
  config.client.timeout_limit = 2;
  // Saturation measurement: checksum verification is covered by the
  // integrity tests; here it would only add a CRC pass per client read.
  config.client.verify_checksums = false;
  config.server.async_data_mover = true;
  config.server.cache_capacity_bytes = 1ULL << 32;
  return config;
}

/// obs_check mode: is the untraced hot path really free?  Runs the
/// hit-heavy loop on two identical clusters — obs off vs recorders
/// attached with sample_every=0 (armed, nothing sampled) — and compares
/// best-of-N ops/s.  Also asserts the armed cluster recorded zero read
/// spans and that its exporters emit the expected series.
int run_obs_check(const BenchArgs& args) {
  const std::uint32_t file_bytes = args.file_kb * 1024;

  std::string export_json;
  bool export_ok = false;
  bool no_spans = false;
  const auto best_hit_ops = [&](bool attached) -> double {
    ClusterConfig config = base_config(args);
    if (attached) {
      config.obs.tracing = true;
      config.obs.sample_every = 0;
    }
    Cluster cluster(config);
    const auto paths = cluster.stage_dataset(args.files, file_bytes);
    cluster.warm_caches(paths);
    double best = 0.0;
    const std::uint32_t reps = args.obs_reps > 0 ? args.obs_reps : 1;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      std::vector<std::thread> workers;
      workers.reserve(args.nodes);
      const auto start = Clock::now();
      for (std::uint32_t t = 0; t < args.nodes; ++t) {
        workers.emplace_back([t, &cluster, &paths, passes = args.hit_passes] {
          auto& client = cluster.client(t);
          for (std::uint32_t pass = 0; pass < passes; ++pass) {
            for (const auto& path : paths) (void)client.read_file(path);
          }
        });
      }
      for (auto& w : workers) w.join();
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      const double ops = static_cast<double>(args.nodes) * args.hit_passes *
                         static_cast<double>(paths.size());
      if (seconds > 0.0) best = std::max(best, ops / seconds);
    }
    if (attached) {
      no_spans = cluster.dump_traces().empty();
      export_json = cluster.metrics_registry().export_json();
      const std::string prom =
          cluster.metrics_registry().export_prometheus_text();
      export_ok = prom.find("# TYPE ftc_client_reads_total counter") !=
                      std::string::npos &&
                  prom.find("ftc_server_cache_hits_total") !=
                      std::string::npos &&
                  !export_json.empty();
    }
    return best;
  };

  const double off_ops = best_hit_ops(/*attached=*/false);
  const double attached_ops = best_hit_ops(/*attached=*/true);
  const double overhead_pct =
      attached_ops > 0.0 ? (off_ops / attached_ops - 1.0) * 100.0 : 100.0;
  const bool within =
      overhead_pct <= static_cast<double>(args.obs_tolerance_pct);

  std::printf(
      "obs_check: hit-heavy %.0f ops/s (obs off) vs %.0f ops/s (attached, "
      "unsampled) -> overhead %.2f%% (tolerance %u%%, %s)\n",
      off_ops, attached_ops, overhead_pct, args.obs_tolerance_pct,
      within ? "ok" : "EXCEEDED");
  std::printf("obs_check: armed-but-unsampled recorded %s; exporter %s\n",
              no_spans ? "zero spans (ok)" : "SPANS (should be none)",
              export_ok ? "ok" : "MISSING SERIES");

  const std::string out_path = args.out != "BENCH_throughput.json"
                                   ? args.out
                                   : std::string("BENCH_throughput_obscheck.json");
  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"bench_throughput_obs_check\",\n";
  out << "  \"config\": {\"nodes\": " << args.nodes
      << ", \"files\": " << args.files << ", \"file_kb\": " << args.file_kb
      << ", \"hit_passes\": " << args.hit_passes
      << ", \"obs_reps\": " << args.obs_reps
      << ", \"obs_tolerance_pct\": " << args.obs_tolerance_pct << "},\n";
  out << "  \"off_ops_per_sec\": " << json_escape_free(off_ops) << ",\n";
  out << "  \"attached_ops_per_sec\": " << json_escape_free(attached_ops)
      << ",\n";
  char pct[64];
  std::snprintf(pct, sizeof(pct), "%.2f", overhead_pct);
  out << "  \"overhead_pct\": " << pct << ",\n";
  out << "  \"within_tolerance\": " << (within ? "true" : "false") << ",\n";
  out << "  \"armed_recorded_no_spans\": " << (no_spans ? "true" : "false")
      << ",\n";
  out << "  \"prometheus_export_ok\": " << (export_ok ? "true" : "false")
      << ",\n";
  // Embedding the exporter's raw JSON means any consumer that parses this
  // artifact has transitively validated the exporter's syntax.
  out << "  \"export_sample\": " << export_json << "\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return (within && no_spans && export_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  if (args.obs_check != 0) return run_obs_check(args);

  Cluster cluster(base_config(args));

  const std::uint32_t file_bytes = args.file_kb * 1024;
  const auto warm_paths = cluster.stage_dataset(args.files, file_bytes);
  cluster.warm_caches(warm_paths);

  std::vector<PhaseResult> phases;

  // --- hit_heavy: every read is a warm cache hit ---
  phases.push_back(run_phase(
      "hit_heavy", cluster, file_bytes,
      [&](std::uint32_t t, std::vector<double>& lat, std::uint64_t& fail) {
        auto& client = cluster.client(t);
        for (std::uint32_t pass = 0; pass < args.hit_passes; ++pass) {
          for (const auto& path : warm_paths) {
            const auto op_start = Clock::now();
            auto r = client.read_file(path);
            if (r.is_ok()) {
              lat.push_back(std::chrono::duration<double, std::micro>(
                                Clock::now() - op_start)
                                .count());
            } else {
              ++fail;
            }
          }
        }
      }));

  // --- miss_heavy: every read is a first touch (PFS fetch + recache) ---
  {
    const std::string prefix = "/lustre/orion/missset";
    cluster.pfs().populate_synthetic(prefix, args.miss_files * args.nodes,
                                     file_bytes);
    phases.push_back(run_phase(
        "miss_heavy", cluster, file_bytes,
        [&](std::uint32_t t, std::vector<double>& lat, std::uint64_t& fail) {
          auto& client = cluster.client(t);
          char name[64];
          for (std::uint32_t i = 0; i < args.miss_files; ++i) {
            const std::uint32_t index = t * args.miss_files + i;
            std::snprintf(name, sizeof(name), "/file_%07u.tfrecord", index);
            const auto op_start = Clock::now();
            auto r = client.read_file(prefix + name);
            if (r.is_ok()) {
              lat.push_back(std::chrono::duration<double, std::micro>(
                                Clock::now() - op_start)
                                .count());
            } else {
              ++fail;
            }
          }
        }));
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      cluster.server(n).flush_data_mover();
    }
  }

  // --- mixed_failure: warm reads while a node dies mid-phase ---
  {
    std::atomic<bool> killed{false};
    std::atomic<std::uint32_t> done_threads{0};
    phases.push_back(run_phase(
        "mixed_failure", cluster, file_bytes,
        [&](std::uint32_t t, std::vector<double>& lat, std::uint64_t& fail) {
          auto& client = cluster.client(t);
          for (std::uint32_t pass = 0; pass < args.mixed_passes; ++pass) {
            // Half-way through the first pass of thread 0, crash-stop the
            // last node: readers detect it by timeout and recache onto the
            // survivors in-band.
            for (std::size_t i = 0; i < warm_paths.size(); ++i) {
              if (t == 0 && pass == 0 && i == warm_paths.size() / 2 &&
                  !killed.exchange(true)) {
                cluster.fail_node(args.nodes - 1);
              }
              const auto op_start = Clock::now();
              auto r = client.read_file(warm_paths[i]);
              if (r.is_ok()) {
                lat.push_back(std::chrono::duration<double, std::micro>(
                                  Clock::now() - op_start)
                                  .count());
              } else {
                ++fail;
              }
            }
          }
          done_threads.fetch_add(1);
        }));
  }

  std::printf("%-14s %10s %9s %10s %10s %12s %10s\n", "phase", "ops",
              "fails", "ops/s", "p50_us", "p99_us", "copy_B/rd");
  for (const PhaseResult& p : phases) {
    std::printf("%-14s %10llu %9llu %10.0f %10.1f %12.1f %10.0f\n",
                p.name.c_str(),
                static_cast<unsigned long long>(p.ops),
                static_cast<unsigned long long>(p.failures), p.ops_per_sec(),
                p.p50_us, p.p99_us, p.bytes_copied_per_read);
  }
  emit_json(args, phases, args.out);
  std::printf("wrote %s\n", args.out.c_str());
  return 0;
}
