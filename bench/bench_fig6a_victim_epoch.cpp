// Reproduces Figure 6(a): duration of the "victim" epoch (the epoch during
// which a failure happens) for no-failure vs FT w/ PFS vs FT w/ NVMe,
// from 64 to 1024 nodes.
//
// Paper's shape: PFS redirection inflates the victim epoch most at small
// scale; NVMe recaching stays close to the no-failure epoch and converges
// toward it as node count grows.
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"

namespace {

// Duration of epoch `epoch` in minutes, or -1 when missing.
double epoch_minutes(const ftc::destim::ExperimentResult& result,
                     std::uint32_t epoch) {
  for (const auto& record : result.epochs) {
    if (record.epoch == epoch) {
      return ftc::simtime::to_minutes(record.duration);
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftc;
  using cluster::FtMode;
  const Config args = bench::parse_args(argc, argv);
  const auto scales = bench::scales_from(args);
  const std::uint32_t victim_epoch = static_cast<std::uint32_t>(
      args.get_int("victim_epoch", 2));
  const double fraction = args.get_double("fraction", 0.4);

  TextTable table({"Nodes", "No-failure epoch (min)",
                   "FT w/ PFS victim epoch (min)",
                   "FT w/ NVMe victim epoch (min)", "PFS/no-fail x",
                   "NVMe/no-fail x"});

  for (const std::uint32_t nodes : scales) {
    auto base_config = bench::paper_config(nodes, FtMode::kHashRingRecache);
    bench::apply_overrides(base_config, args);
    const auto baseline = destim::run_experiment(base_config);
    const double base_epoch = epoch_minutes(baseline, victim_epoch);

    cluster::PlannedFailure failure;
    failure.victim = nodes / 2;
    failure.epoch = victim_epoch;
    failure.epoch_fraction = fraction;

    auto pfs_config = bench::paper_config(nodes, FtMode::kPfsRedirect);
    bench::apply_overrides(pfs_config, args);
    pfs_config.failures = {failure};
    const auto pfs_run = destim::run_experiment(pfs_config);
    const double pfs_epoch = epoch_minutes(pfs_run, victim_epoch);

    auto nvme_config = bench::paper_config(nodes, FtMode::kHashRingRecache);
    bench::apply_overrides(nvme_config, args);
    nvme_config.failures = {failure};
    const auto nvme_run = destim::run_experiment(nvme_config);
    const double nvme_epoch = epoch_minutes(nvme_run, victim_epoch);

    table.add_row({std::to_string(nodes), format_double(base_epoch, 3),
                   format_double(pfs_epoch, 3), format_double(nvme_epoch, 3),
                   format_double(pfs_epoch / base_epoch, 2),
                   format_double(nvme_epoch / base_epoch, 2)});
    std::fprintf(stderr, "[fig6a] scale %u done\n", nodes);
  }

  bench::print_table(
      "Figure 6(a): victim-epoch duration (failure at epoch " +
          std::to_string(victim_epoch) + ", fraction " +
          format_double(fraction, 2) + ")",
      table);
  std::printf(
      "paper reference: PFS redirection worst at 64-128 nodes; NVMe "
      "recaching approaches the no-failure epoch as nodes increase\n");
  return 0;
}
