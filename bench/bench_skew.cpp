// bench_skew.cpp - Zipf-skewed read benchmark for the skew-tolerant
// placement stack (bounded-load ring lookup + hot-file replica fanout).
//
// The figure benches measure what a *failure* does to placement; this one
// measures what a *workload* does.  N closed-loop clients hammer the
// threaded cluster with Zipf(alpha)-distributed reads over a scrambled id
// space while every server endpoint serves serially with a fixed service
// time — so the hottest node's queue is the bottleneck, exactly the regime
// bounded-load spill and hot-file fanout exist for.  Each alpha runs
// twice on identical clusters:
//
//   single_owner    every knob off — the seed's one-owner-per-key routing;
//   skew_tolerant   server load hints + bounded-load lookup + hot-file
//                   replica fanout with power-of-two-choices reads.
//
// Reported per run: goodput (successful reads/s), per-node served-request
// share (peak, mean, peak/mean), and the client-side skew counters.  With
// check_bound=1 the binary exits non-zero if, at alpha=1.1, the
// skew-tolerant run's peak node received more than bound_slack x c x the
// mean per-node request count — the CI smoke gate.  require_goodput=1
// additionally gates on the alpha=1.1 goodput ratio.
//
// Writes machine-readable BENCH_skew.json (override with out=...); embeds
// BENCH_skew.baseline.json as the "baseline" section when present.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ftc::cluster::Cluster;
using ftc::cluster::ClusterConfig;
using ftc::cluster::NodeId;

struct BenchArgs {
  std::uint32_t nodes = 8;
  std::uint32_t files = 4;
  std::uint32_t file_kb = 64;
  /// Closed-loop client threads per node.  The first per node drives the
  /// cluster's co-located client; extras get standalone HvacClients on
  /// the same transport (each single-threaded, as the client requires).
  /// More threads deepen the hot node's queue, which is the effect under
  /// test — one closed-loop source per node barely queues.
  std::uint32_t threads_per_node = 2;
  /// Measured reads per client thread.
  std::uint32_t reads = 400;
  /// Unmeasured priming reads per client: builds heat, triggers
  /// promotion, and lets the kPut fanout land before the clock starts.
  std::uint32_t prime = 200;
  /// Serial per-request service time at every endpoint (the queueing
  /// substrate that turns skew into a measurable bottleneck).
  std::uint32_t service_ms = 5;
  std::uint32_t fanout = 4;
  double c = 1.25;
  /// Promote/demote heat thresholds for the skew-tolerant runs (lower
  /// than the production defaults so priming passes promote quickly).
  double promote = 32.0;
  double demote = 8.0;
  std::vector<double> alphas = {0.0, 0.8, 1.1, 1.4};
  /// 1: exit non-zero when the alpha=1.1 skew-tolerant peak share
  /// exceeds bound_slack x c x mean (the CI smoke gate).
  std::uint32_t check_bound = 0;
  double bound_slack = 1.10;
  /// 1: additionally exit non-zero when the alpha=1.1 goodput ratio
  /// (skew_tolerant / single_owner) is below goodput_factor.
  std::uint32_t require_goodput = 0;
  double goodput_factor = 2.5;
  std::uint64_t seed = 42;
  std::string out = "BENCH_skew.json";
};

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr,
                   "usage: %s [nodes=N] [files=N] [file_kb=N] "
                   "[threads_per_node=N] [reads=N] "
                   "[prime=N] [service_ms=N] [fanout=N] [c=F] [promote=F] "
                   "[demote=F] [alphas=A,B,...] [check_bound=0|1] "
                   "[bound_slack=F] [require_goodput=0|1] "
                   "[goodput_factor=F] [seed=N] [out=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    const auto numeric = [&key, &value]() -> std::uint32_t {
      try {
        std::size_t used = 0;
        const unsigned long parsed = std::stoul(value, &used);
        if (used == value.size()) return static_cast<std::uint32_t>(parsed);
      } catch (const std::exception&) {
      }
      std::fprintf(stderr, "%s wants a number, got '%s'\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    };
    const auto fractional = [&key, &value]() -> double {
      try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used == value.size()) return parsed;
      } catch (const std::exception&) {
      }
      std::fprintf(stderr, "%s wants a number, got '%s'\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    };
    if (key == "nodes") args.nodes = numeric();
    else if (key == "files") args.files = numeric();
    else if (key == "file_kb") args.file_kb = numeric();
    else if (key == "threads_per_node") args.threads_per_node = numeric();
    else if (key == "reads") args.reads = numeric();
    else if (key == "prime") args.prime = numeric();
    else if (key == "service_ms") args.service_ms = numeric();
    else if (key == "fanout") args.fanout = numeric();
    else if (key == "c") args.c = fractional();
    else if (key == "promote") args.promote = fractional();
    else if (key == "demote") args.demote = fractional();
    else if (key == "check_bound") args.check_bound = numeric();
    else if (key == "bound_slack") args.bound_slack = fractional();
    else if (key == "require_goodput") args.require_goodput = numeric();
    else if (key == "goodput_factor") args.goodput_factor = fractional();
    else if (key == "seed") args.seed = numeric();
    else if (key == "out") args.out = value;
    else if (key == "alphas") {
      args.alphas.clear();
      std::stringstream ss(value);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) args.alphas.push_back(std::stod(item));
      }
      if (args.alphas.empty()) {
        std::fprintf(stderr, "alphas wants a comma list, got '%s'\n",
                     value.c_str());
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown key: %s\n", key.c_str());
      std::exit(2);
    }
  }
  return args;
}

struct RunResult {
  double goodput = 0.0;  ///< successful reads / s over the measured window
  std::uint64_t ops = 0;
  std::uint64_t failures = 0;
  double seconds = 0.0;
  double peak_share = 0.0;  ///< hottest node's fraction of served requests
  double peak_to_mean = 0.0;
  std::uint64_t spilled_reads = 0;
  std::uint64_t load_spread_reads = 0;
  std::uint64_t hot_promotions = 0;
  std::uint64_t load_hints = 0;
};

/// One cluster, one alpha, one routing mode, measured end to end.
RunResult run_one(const BenchArgs& args, double alpha, bool skew_tolerant) {
  ClusterConfig config;
  config.node_count = args.nodes;
  config.client.mode = ftc::cluster::FtMode::kHashRingRecache;
  config.client.rpc_timeout = std::chrono::milliseconds(5000);
  config.client.timeout_limit = 2;
  config.client.verify_checksums = false;
  config.server.async_data_mover = true;
  config.server.cache_capacity_bytes = 1ULL << 32;
  config.server.endpoint_workers = 1;  // serial service: queueing is real
  if (skew_tolerant) {
    config.server.report_load = true;
    config.client.bounded_load = true;
    config.client.bounded_load_c = args.c;
    config.client.hot_fanout = true;
    config.client.hot_replica_fanout = args.fanout;
    config.client.hot_promote_threshold = args.promote;
    config.client.hot_demote_threshold = args.demote;
  }
  Cluster cluster(config);

  const auto paths = cluster.stage_dataset(args.files, args.file_kb * 1024);
  cluster.warm_caches(paths);
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    cluster.transport().set_extra_latency(
        n, std::chrono::milliseconds(args.service_ms));
  }

  // One closed-loop source per thread.  The first per node is the
  // cluster's co-located client; extras are standalone clients on the
  // same transport and ring (each driven by exactly one thread — the
  // client's threading contract).
  const std::uint32_t threads =
      args.nodes * std::max<std::uint32_t>(1, args.threads_per_node);
  std::vector<NodeId> servers(args.nodes);
  for (NodeId n = 0; n < args.nodes; ++n) servers[n] = n;
  std::vector<std::unique_ptr<ftc::cluster::HvacClient>> extra_clients;
  std::vector<ftc::cluster::HvacClient*> sources;
  sources.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    if (t < args.nodes) {
      sources.push_back(&cluster.client(t));
    } else {
      extra_clients.push_back(std::make_unique<ftc::cluster::HvacClient>(
          t % args.nodes, cluster.transport(), cluster.pfs(), servers,
          config.client));
      sources.push_back(extra_clients.back().get());
    }
  }

  const auto drive = [&](std::uint32_t t, std::uint64_t stream,
                         std::uint32_t count, std::uint64_t& ok,
                         std::uint64_t& fail) {
    ftc::bench::ScrambledZipfGenerator gen(
        paths.size(), alpha, args.seed,
        /*stream=*/stream * threads + t + 1);
    auto& client = *sources[t];
    for (std::uint32_t i = 0; i < count; ++i) {
      if (client.read_file(paths[gen.next()]).is_ok()) ++ok;
      else ++fail;
    }
  };

  const auto fan_out = [&](std::uint64_t stream, std::uint32_t count,
                           std::uint64_t& ok, std::uint64_t& fail,
                           double& seconds) {
    std::vector<std::uint64_t> oks(threads, 0);
    std::vector<std::uint64_t> fails(threads, 0);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const auto start = Clock::now();
    for (std::uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] { drive(t, stream, count, oks[t], fails[t]); });
    }
    for (auto& w : workers) w.join();
    seconds = std::chrono::duration<double>(Clock::now() - start).count();
    for (std::uint32_t t = 0; t < threads; ++t) {
      ok += oks[t];
      fail += fails[t];
    }
  };

  // Priming: builds per-client heat, promotes, pushes fanout replicas.
  if (args.prime > 0) {
    std::uint64_t ok = 0, fail = 0;
    double seconds = 0.0;
    fan_out(/*stream=*/1, args.prime, ok, fail, seconds);
  }

  std::vector<std::uint64_t> served_before(args.nodes, 0);
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    served_before[n] = cluster.transport().stats(n).received_data;
  }

  RunResult result;
  std::uint64_t ok = 0;
  fan_out(/*stream=*/2, args.reads, ok, result.failures, result.seconds);
  result.ops = ok;
  result.goodput =
      result.seconds > 0.0 ? static_cast<double>(ok) / result.seconds : 0.0;

  std::uint64_t total = 0, peak = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    const std::uint64_t served =
        cluster.transport().stats(n).received_data - served_before[n];
    total += served;
    peak = std::max(peak, served);
  }
  if (total > 0) {
    result.peak_share =
        static_cast<double>(peak) / static_cast<double>(total);
    result.peak_to_mean = result.peak_share * args.nodes;
  }
  for (ftc::cluster::HvacClient* client : sources) {
    const auto s = client->stats_snapshot();
    result.spilled_reads += s.spilled_reads;
    result.load_spread_reads += s.load_spread_reads;
    result.hot_promotions += s.hot_promotions;
    result.load_hints += s.load_hints_observed;
  }
  return result;
}

std::string fmt(double v, int digits = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

void emit_run(std::ofstream& out, const char* name, const RunResult& r,
              bool trailing_comma) {
  out << "      \"" << name << "\": {"
      << "\"goodput_ops_per_sec\": " << fmt(r.goodput, 1)
      << ", \"ops\": " << r.ops << ", \"failures\": " << r.failures
      << ", \"seconds\": " << fmt(r.seconds)
      << ", \"peak_share\": " << fmt(r.peak_share, 4)
      << ", \"peak_to_mean\": " << fmt(r.peak_to_mean, 3)
      << ", \"spilled_reads\": " << r.spilled_reads
      << ", \"load_spread_reads\": " << r.load_spread_reads
      << ", \"hot_promotions\": " << r.hot_promotions
      << ", \"load_hints\": " << r.load_hints << "}"
      << (trailing_comma ? "," : "") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);

  struct Row {
    double alpha;
    RunResult base;
    RunResult skew;
  };
  std::vector<Row> rows;
  rows.reserve(args.alphas.size());

  std::printf("%-7s %14s %14s %8s %11s %11s %8s %8s\n", "alpha",
              "base ops/s", "skew ops/s", "ratio", "base pk/mn",
              "skew pk/mn", "spilled", "spread");
  for (const double alpha : args.alphas) {
    Row row;
    row.alpha = alpha;
    row.base = run_one(args, alpha, /*skew_tolerant=*/false);
    row.skew = run_one(args, alpha, /*skew_tolerant=*/true);
    const double ratio =
        row.base.goodput > 0.0 ? row.skew.goodput / row.base.goodput : 0.0;
    std::printf("%-7.2f %14.0f %14.0f %8.2f %11.2f %11.2f %8llu %8llu\n",
                alpha, row.base.goodput, row.skew.goodput, ratio,
                row.base.peak_to_mean, row.skew.peak_to_mean,
                static_cast<unsigned long long>(row.skew.spilled_reads),
                static_cast<unsigned long long>(row.skew.load_spread_reads));
    rows.push_back(row);
  }

  // Inline the recorded pre-change baseline when present.
  std::string baseline = "null";
  {
    std::ifstream in("BENCH_skew.baseline.json");
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      if (!ss.str().empty()) baseline = ss.str();
      while (!baseline.empty() &&
             (baseline.back() == '\n' || baseline.back() == ' ')) {
        baseline.pop_back();
      }
    }
  }
  std::ofstream out(args.out);
  out << "{\n  \"bench\": \"bench_skew\",\n";
  out << "  \"config\": {\"nodes\": " << args.nodes
      << ", \"files\": " << args.files << ", \"file_kb\": " << args.file_kb
      << ", \"threads_per_node\": " << args.threads_per_node
      << ", \"reads\": " << args.reads << ", \"prime\": " << args.prime
      << ", \"service_ms\": " << args.service_ms
      << ", \"fanout\": " << args.fanout << ", \"c\": " << fmt(args.c, 2)
      << ", \"promote\": " << fmt(args.promote, 1)
      << ", \"demote\": " << fmt(args.demote, 1) << ", \"seed\": " << args.seed
      << "},\n";
  out << "  \"baseline\": " << baseline << ",\n";
  out << "  \"current\": {\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const double ratio =
        row.base.goodput > 0.0 ? row.skew.goodput / row.base.goodput : 0.0;
    out << "    \"alpha_" << fmt(row.alpha, 2) << "\": {\n";
    emit_run(out, "single_owner", row.base, /*trailing_comma=*/true);
    emit_run(out, "skew_tolerant", row.skew, /*trailing_comma=*/true);
    out << "      \"goodput_ratio\": " << fmt(ratio, 2) << "\n    }"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", args.out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.out.c_str());

  // CI gates, evaluated at the canonical skew point alpha=1.1.
  int rc = 0;
  for (const Row& row : rows) {
    if (row.alpha < 1.05 || row.alpha > 1.15) continue;
    if (args.check_bound != 0) {
      // Mean per-node share is 1/nodes by construction; the gate is the
      // bounded-load contract: peak <= slack x c x mean.
      const double bound = args.bound_slack * args.c / args.nodes;
      if (row.skew.peak_share > bound) {
        std::fprintf(stderr,
                     "FAIL: alpha=%.2f skew-tolerant peak share %.4f exceeds "
                     "%.2f x c/N = %.4f\n",
                     row.alpha, row.skew.peak_share, args.bound_slack, bound);
        rc = 1;
      } else {
        std::printf("bound ok: alpha=%.2f peak share %.4f <= %.4f\n",
                    row.alpha, row.skew.peak_share, bound);
      }
    }
    if (args.require_goodput != 0) {
      const double ratio =
          row.base.goodput > 0.0 ? row.skew.goodput / row.base.goodput : 0.0;
      if (ratio < args.goodput_factor) {
        std::fprintf(stderr,
                     "FAIL: alpha=%.2f goodput ratio %.2f below required "
                     "%.2f\n",
                     row.alpha, ratio, args.goodput_factor);
        rc = 1;
      } else {
        std::printf("goodput ok: alpha=%.2f ratio %.2f >= %.2f\n", row.alpha,
                    ratio, args.goodput_factor);
      }
    }
  }
  return rc;
}
