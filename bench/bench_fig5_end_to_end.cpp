// Reproduces Figure 5: end-to-end training time of NoFT / FT w/ PFS /
// FT w/ NVMe, (a) without failures and (b) with five random single-node
// failures injected after the first epoch, across 64-1024 nodes.
//
// Paper's shape targets:
//   (a) all systems speed up with node count; NoFT is slightly fastest
//       (no FT bookkeeping overhead);
//   (b) NoFT dies (dashed line = its no-failure time); FT w/ NVMe beats
//       FT w/ PFS — by 14.8% at 64 nodes and 24.9% at 1024 in the paper —
//       and both overheads grow with scale (fixed elastic-restart cost
//       looms larger as epochs shrink).
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  using cluster::FtMode;
  const Config args = bench::parse_args(argc, argv);
  const auto scales = bench::scales_from(args);
  const auto failure_count = static_cast<std::uint32_t>(
      args.get_int("failures", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("fail_seed", 42));
  // The paper repeats each experiment three times.
  const auto trials = static_cast<std::uint32_t>(args.get_int("trials", 3));

  struct Row {
    std::uint32_t nodes;
    double no_fail[3];     // mean minutes per mode
    double no_fail_sd[3];
    double with_fail[3];   // mean minutes (NoFT: <0 = DNF)
    double with_fail_sd[3];
  };
  std::vector<Row> rows;

  const FtMode kModes[3] = {FtMode::kNone, FtMode::kPfsRedirect,
                            FtMode::kHashRingRecache};

  for (const std::uint32_t nodes : scales) {
    Row row{};
    row.nodes = nodes;
    for (int m = 0; m < 3; ++m) {
      auto config = bench::paper_config(nodes, kModes[m]);
      bench::apply_overrides(config, args);
      const auto clean = destim::run_experiment_trials(config, trials);
      row.no_fail[m] =
          clean.completed > 0 ? clean.total_minutes.mean() : -1.0;
      row.no_fail_sd[m] = clean.total_minutes.stddev();

      auto failure_config = config;
      cluster::FailurePlanParams plan;
      plan.node_count = nodes;
      plan.failure_count = failure_count;
      plan.first_eligible_epoch = 1;
      plan.total_epochs = config.epochs;
      plan.seed = seed;
      failure_config.failures = cluster::plan_failures(plan);
      // The paper's drains land shortly after epoch boundaries (cache
      // fully populated, little compute in flight); compress the in-epoch
      // position accordingly.  fail_fraction_scale=1 restores uniform.
      const double fraction_scale =
          args.get_double("fail_fraction_scale", 0.3);
      for (auto& failure : failure_config.failures) {
        failure.epoch_fraction *= fraction_scale;
      }
      const auto faulty =
          destim::run_experiment_trials(failure_config, trials);
      row.with_fail[m] =
          faulty.completed > 0 ? faulty.total_minutes.mean() : -1.0;
      row.with_fail_sd[m] = faulty.total_minutes.stddev();
      const auto& failed_run = faulty.results.front();
      if (args.get_bool("verbose", false) && failed_run.completed) {
        for (const auto& epoch : failed_run.epochs) {
          std::fprintf(stderr,
                       "[fig5] n=%u mode=%d epoch=%u dur=%.2fs attempts=%u "
                       "pfs=%llu remote_hit=%llu miss=%llu timeouts=%llu\n",
                       nodes, m, epoch.epoch,
                       simtime::to_seconds(epoch.duration), epoch.attempts,
                       static_cast<unsigned long long>(epoch.pfs_reads),
                       static_cast<unsigned long long>(epoch.remote_hits),
                       static_cast<unsigned long long>(epoch.remote_misses),
                       static_cast<unsigned long long>(epoch.timeouts));
        }
      }
    }
    rows.push_back(row);
    std::fprintf(stderr, "[fig5] scale %u done\n", nodes);
  }

  TextTable table_a({"Nodes", "NoFT (min)", "FT w/ PFS (min)",
                     "FT w/ NVMe (min)", "+- sd", "FT overhead vs NoFT %"});
  for (const auto& row : rows) {
    const double overhead =
        row.no_fail[0] > 0
            ? 100.0 * (row.no_fail[2] - row.no_fail[0]) / row.no_fail[0]
            : 0.0;
    table_a.add_row({std::to_string(row.nodes),
                     format_double(row.no_fail[0], 2),
                     format_double(row.no_fail[1], 2),
                     format_double(row.no_fail[2], 2),
                     format_double(row.no_fail_sd[2], 3),
                     format_double(overhead, 2)});
  }
  bench::print_table(
      "Figure 5(a): end-to-end training time, no failures (simulated min)",
      table_a);

  TextTable table_b({"Nodes", "NoFT", "FT w/ PFS (min)", "FT w/ NVMe (min)",
                     "+- sd", "PFS +% vs no-fail", "NVMe +% vs no-fail",
                     "NVMe vs PFS gain %"});
  for (const auto& row : rows) {
    const double pfs_overhead =
        100.0 * (row.with_fail[1] - row.no_fail[1]) / row.no_fail[1];
    const double nvme_overhead =
        100.0 * (row.with_fail[2] - row.no_fail[2]) / row.no_fail[2];
    const double gain =
        100.0 * (row.with_fail[1] - row.with_fail[2]) / row.with_fail[1];
    table_b.add_row({std::to_string(row.nodes),
                     row.with_fail[0] < 0 ? "DNF (job aborted)"
                                          : format_double(row.with_fail[0], 2),
                     format_double(row.with_fail[1], 2),
                     format_double(row.with_fail[2], 2),
                     format_double(row.with_fail_sd[2], 3),
                     format_double(pfs_overhead, 1),
                     format_double(nvme_overhead, 1),
                     format_double(gain, 1)});
  }
  bench::print_table(
      "Figure 5(b): end-to-end training time with " +
          std::to_string(failure_count) + " failures after epoch 1",
      table_b);

  std::printf(
      "paper reference (b): FT w/ PFS +32.2%% @64 -> +68.7%% @1024 vs "
      "no-failure; FT w/ NVMe +12.5%% -> +26.7%%; NVMe beats PFS by 14.8%% "
      "@64 and 24.9%% @1024; NoFT aborts on failure (dashed line)\n");
  return 0;
}
