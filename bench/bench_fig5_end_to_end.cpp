// Reproduces Figure 5: end-to-end training time of NoFT / FT w/ PFS /
// FT w/ NVMe, (a) without failures and (b) with five random single-node
// failures injected after the first epoch, across 64-1024 nodes.
//
// Paper's shape targets:
//   (a) all systems speed up with node count; NoFT is slightly fastest
//       (no FT bookkeeping overhead);
//   (b) NoFT dies (dashed line = its no-failure time); FT w/ NVMe beats
//       FT w/ PFS — by 14.8% at 64 nodes and 24.9% at 1024 in the paper —
//       and both overheads grow with scale (fixed elastic-restart cost
//       looms larger as epochs shrink).
//
// Threaded prefetch phase (extension; runs after the DES sweep, or alone
// with prefetch_only=1): measures epochs/hour on the REAL threaded
// cluster under injected per-endpoint network latency, cold vs
// epoch-ahead prefetched, healthy and with a mid-epoch kill.  The exit
// code enforces the acceptance gates (>= 1.2x epochs/hour, steady-state
// epoch PFS reads == 0 with prefetch on, kill recovery via kPeerGet +
// warm standbys with zero extra PFS reads) and the run is written to
// out= (default BENCH_prefetch.json) for the checked-in baseline.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "common/string_util.hpp"
#include "dl/threaded_trainer.hpp"

namespace {

struct PrefetchRun {
  std::string name;
  bool completed = false;
  std::uint32_t restarts = 0;
  std::uint64_t total_pfs_reads = 0;
  std::vector<std::uint64_t> pfs_per_epoch;
  std::vector<double> epoch_seconds;
  /// Steady state = epochs >= 1 (epoch 0 is the PFS warm-up everywhere).
  double epochs_per_hour = 0.0;
  std::uint64_t prefetch_pulls = 0;
  std::uint64_t prefetch_local_hits = 0;
  std::uint64_t p2p_rescues = 0;
  std::uint64_t peer_gets = 0;  ///< server-side kPeerGet requests served
  std::uint64_t integrity_failures = 0;
};

enum class Scenario { kCold, kPrefetch, kKill };

PrefetchRun run_prefetch_scenario(Scenario scenario, const ftc::Config& args) {
  using namespace ftc;
  const auto nodes = static_cast<std::uint32_t>(args.get_int("pf_nodes", 8));
  const auto files = static_cast<std::uint32_t>(args.get_int("pf_files", 256));
  const auto file_bytes =
      static_cast<std::uint32_t>(args.get_int("pf_file_kb", 64)) * 1024u;
  const auto lat_ms = args.get_int("pf_lat_ms", 1);
  const auto epochs = static_cast<std::uint32_t>(args.get_int("pf_epochs", 3));

  cluster::ClusterConfig config;
  config.node_count = nodes;
  config.client.mode = cluster::FtMode::kHashRingRecache;
  config.client.rpc_timeout =
      std::chrono::milliseconds(args.get_int("pf_rpc_timeout_ms", 25));
  // Multiple endpoint workers let concurrent prefetch pulls overlap their
  // injected latency — the whole point of the pipeline.
  config.server.endpoint_workers =
      static_cast<std::size_t>(args.get_int("pf_workers", 4));
  config.pfs_read_latency =
      std::chrono::microseconds(args.get_int("pf_pfs_us", 500));
  if (scenario != Scenario::kCold) {
    config.client.prefetch.enabled = true;
    config.client.prefetch.depth =
        static_cast<std::uint32_t>(args.get_int("pf_depth", 8));
  }
  if (scenario == Scenario::kKill) {
    config.client.prefetch.p2p = true;
    config.client.replication.factor = 2;
    config.client.replication.warm_standby = true;
  }
  cluster::Cluster cluster(config);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    cluster.transport().set_extra_latency(n, std::chrono::milliseconds(lat_ms));
  }
  const auto paths = cluster.stage_dataset(files, file_bytes);

  dl::ThreadedTrainingConfig train;
  train.epochs = epochs;
  train.prefetch = (scenario != Scenario::kCold);
  if (scenario == Scenario::kKill) {
    dl::ThreadedTrainingConfig::Injection kill;
    kill.epoch = 1;
    kill.after_files =
        static_cast<std::uint32_t>(args.get_int("pf_kill_after", files / 6));
    kill.victim = nodes - 1;
    train.injections = {kill};
  }
  const auto result =
      dl::run_threaded_training(cluster, paths, file_bytes, train);

  PrefetchRun run;
  run.name = scenario == Scenario::kCold        ? "cold"
             : scenario == Scenario::kPrefetch  ? "prefetched"
                                                : "prefetched+kill";
  run.completed = result.completed;
  run.restarts = result.restarts;
  run.total_pfs_reads = cluster.pfs().read_count();
  run.pfs_per_epoch = result.pfs_reads_per_epoch;
  run.epoch_seconds = result.epoch_seconds;
  run.integrity_failures = result.integrity_failures;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const auto client_stats = cluster.client(n).stats_snapshot();
    run.prefetch_pulls += client_stats.prefetch_pulls;
    run.prefetch_local_hits += client_stats.prefetch_local_hits;
    run.p2p_rescues += client_stats.p2p_rescues;
    run.peer_gets += cluster.server(n).stats_snapshot().peer_gets;
  }
  if (run.epoch_seconds.size() > 1) {
    double steady = 0.0;
    for (std::size_t e = 1; e < run.epoch_seconds.size(); ++e) {
      steady += run.epoch_seconds[e];
    }
    const double mean =
        steady / static_cast<double>(run.epoch_seconds.size() - 1);
    if (mean > 0.0) run.epochs_per_hour = 3600.0 / mean;
  }
  return run;
}

void emit_prefetch_json(const std::string& path,
                        const std::vector<PrefetchRun>& runs, bool pass) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[fig5] cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"fig5_prefetch\",\n  \"pass\": "
      << (pass ? "true" : "false") << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    out << "    {\"name\": \"" << run.name << "\", \"completed\": "
        << (run.completed ? "true" : "false")
        << ", \"restarts\": " << run.restarts
        << ", \"epochs_per_hour\": " << ftc::format_double(run.epochs_per_hour, 2)
        << ", \"total_pfs_reads\": " << run.total_pfs_reads
        << ", \"pfs_reads_per_epoch\": [";
    for (std::size_t e = 0; e < run.pfs_per_epoch.size(); ++e) {
      out << (e ? ", " : "") << run.pfs_per_epoch[e];
    }
    out << "], \"prefetch_pulls\": " << run.prefetch_pulls
        << ", \"staged_hits\": " << run.prefetch_local_hits
        << ", \"p2p_rescues\": " << run.p2p_rescues
        << ", \"server_peer_gets\": " << run.peer_gets
        << ", \"integrity_failures\": " << run.integrity_failures << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int run_prefetch_phase(const ftc::Config& args) {
  using namespace ftc;
  std::fprintf(stderr, "[fig5] threaded prefetch phase: cold...\n");
  const auto cold = run_prefetch_scenario(Scenario::kCold, args);
  std::fprintf(stderr, "[fig5] threaded prefetch phase: prefetched...\n");
  const auto warm = run_prefetch_scenario(Scenario::kPrefetch, args);
  std::fprintf(stderr, "[fig5] threaded prefetch phase: prefetched+kill...\n");
  const auto kill = run_prefetch_scenario(Scenario::kKill, args);
  const std::vector<PrefetchRun> runs = {cold, warm, kill};

  TextTable table({"Scenario", "Epochs/h (steady)", "PFS reads", "Pulls",
                   "Staged hits", "p2p rescues", "Peer gets", "Restarts"});
  for (const auto& run : runs) {
    table.add_row({run.name, format_double(run.epochs_per_hour, 1),
                   std::to_string(run.total_pfs_reads),
                   std::to_string(run.prefetch_pulls),
                   std::to_string(run.prefetch_local_hits),
                   std::to_string(run.p2p_rescues),
                   std::to_string(run.peer_gets),
                   std::to_string(run.restarts)});
  }
  bench::print_table(
      "Threaded epoch-ahead prefetch: epochs/hour at " +
          std::to_string(args.get_int("pf_nodes", 8)) +
          " nodes (injected " + std::to_string(args.get_int("pf_lat_ms", 1)) +
          "ms/endpoint latency)",
      table);

  int failures = 0;
  const auto gate = [&failures](bool ok, const std::string& what) {
    std::printf("gate: %-58s %s\n", what.c_str(), ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };
  const auto files =
      static_cast<std::uint64_t>(args.get_int("pf_files", 256));
  gate(cold.completed && warm.completed && kill.completed,
       "all three scenarios completed");
  gate(warm.epochs_per_hour >= 1.2 * cold.epochs_per_hour,
       "prefetched epochs/hour >= 1.2x cold");
  bool steady_zero = warm.pfs_per_epoch.size() >= 2;
  for (std::size_t e = 1; e < warm.pfs_per_epoch.size(); ++e) {
    steady_zero = steady_zero && warm.pfs_per_epoch[e] == 0;
  }
  gate(steady_zero, "prefetched steady-state epoch PFS reads == 0");
  gate(kill.restarts >= 1, "mid-epoch kill triggered an elastic restart");
  gate(kill.total_pfs_reads == files,
       "kill recovered with zero PFS reads beyond warm-up");
  gate(kill.peer_gets > 0, "kPeerGet exercised (prefetch pulls / p2p)");
  gate(cold.integrity_failures + warm.integrity_failures +
               kill.integrity_failures ==
           0,
       "zero integrity failures");

  emit_prefetch_json(args.get_string("out", "BENCH_prefetch.json"), runs,
                     failures == 0);
  std::printf(
      "expected: epoch-ahead kPeerGet pulls overlap the injected latency "
      "that cold demand reads pay serially; the kill epoch recovers from "
      "warm standbys over kPeerGet, never the PFS\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftc;
  using cluster::FtMode;
  const Config args = bench::parse_args(argc, argv);
  if (args.get_bool("prefetch_only", false)) {
    return run_prefetch_phase(args);
  }
  const auto scales = bench::scales_from(args);
  const auto failure_count = static_cast<std::uint32_t>(
      args.get_int("failures", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("fail_seed", 42));
  // The paper repeats each experiment three times.
  const auto trials = static_cast<std::uint32_t>(args.get_int("trials", 3));

  struct Row {
    std::uint32_t nodes;
    double no_fail[3];     // mean minutes per mode
    double no_fail_sd[3];
    double with_fail[3];   // mean minutes (NoFT: <0 = DNF)
    double with_fail_sd[3];
  };
  std::vector<Row> rows;

  const FtMode kModes[3] = {FtMode::kNone, FtMode::kPfsRedirect,
                            FtMode::kHashRingRecache};

  for (const std::uint32_t nodes : scales) {
    Row row{};
    row.nodes = nodes;
    for (int m = 0; m < 3; ++m) {
      auto config = bench::paper_config(nodes, kModes[m]);
      bench::apply_overrides(config, args);
      const auto clean = destim::run_experiment_trials(config, trials);
      row.no_fail[m] =
          clean.completed > 0 ? clean.total_minutes.mean() : -1.0;
      row.no_fail_sd[m] = clean.total_minutes.stddev();

      auto failure_config = config;
      cluster::FailurePlanParams plan;
      plan.node_count = nodes;
      plan.failure_count = failure_count;
      plan.first_eligible_epoch = 1;
      plan.total_epochs = config.epochs;
      plan.seed = seed;
      failure_config.failures = cluster::plan_failures(plan);
      // The paper's drains land shortly after epoch boundaries (cache
      // fully populated, little compute in flight); compress the in-epoch
      // position accordingly.  fail_fraction_scale=1 restores uniform.
      const double fraction_scale =
          args.get_double("fail_fraction_scale", 0.3);
      for (auto& failure : failure_config.failures) {
        failure.epoch_fraction *= fraction_scale;
      }
      const auto faulty =
          destim::run_experiment_trials(failure_config, trials);
      row.with_fail[m] =
          faulty.completed > 0 ? faulty.total_minutes.mean() : -1.0;
      row.with_fail_sd[m] = faulty.total_minutes.stddev();
      const auto& failed_run = faulty.results.front();
      if (args.get_bool("verbose", false) && failed_run.completed) {
        for (const auto& epoch : failed_run.epochs) {
          std::fprintf(stderr,
                       "[fig5] n=%u mode=%d epoch=%u dur=%.2fs attempts=%u "
                       "pfs=%llu remote_hit=%llu miss=%llu timeouts=%llu\n",
                       nodes, m, epoch.epoch,
                       simtime::to_seconds(epoch.duration), epoch.attempts,
                       static_cast<unsigned long long>(epoch.pfs_reads),
                       static_cast<unsigned long long>(epoch.remote_hits),
                       static_cast<unsigned long long>(epoch.remote_misses),
                       static_cast<unsigned long long>(epoch.timeouts));
        }
      }
    }
    rows.push_back(row);
    std::fprintf(stderr, "[fig5] scale %u done\n", nodes);
  }

  TextTable table_a({"Nodes", "NoFT (min)", "FT w/ PFS (min)",
                     "FT w/ NVMe (min)", "+- sd", "FT overhead vs NoFT %"});
  for (const auto& row : rows) {
    const double overhead =
        row.no_fail[0] > 0
            ? 100.0 * (row.no_fail[2] - row.no_fail[0]) / row.no_fail[0]
            : 0.0;
    table_a.add_row({std::to_string(row.nodes),
                     format_double(row.no_fail[0], 2),
                     format_double(row.no_fail[1], 2),
                     format_double(row.no_fail[2], 2),
                     format_double(row.no_fail_sd[2], 3),
                     format_double(overhead, 2)});
  }
  bench::print_table(
      "Figure 5(a): end-to-end training time, no failures (simulated min)",
      table_a);

  TextTable table_b({"Nodes", "NoFT", "FT w/ PFS (min)", "FT w/ NVMe (min)",
                     "+- sd", "PFS +% vs no-fail", "NVMe +% vs no-fail",
                     "NVMe vs PFS gain %"});
  for (const auto& row : rows) {
    const double pfs_overhead =
        100.0 * (row.with_fail[1] - row.no_fail[1]) / row.no_fail[1];
    const double nvme_overhead =
        100.0 * (row.with_fail[2] - row.no_fail[2]) / row.no_fail[2];
    const double gain =
        100.0 * (row.with_fail[1] - row.with_fail[2]) / row.with_fail[1];
    table_b.add_row({std::to_string(row.nodes),
                     row.with_fail[0] < 0 ? "DNF (job aborted)"
                                          : format_double(row.with_fail[0], 2),
                     format_double(row.with_fail[1], 2),
                     format_double(row.with_fail[2], 2),
                     format_double(row.with_fail_sd[2], 3),
                     format_double(pfs_overhead, 1),
                     format_double(nvme_overhead, 1),
                     format_double(gain, 1)});
  }
  bench::print_table(
      "Figure 5(b): end-to-end training time with " +
          std::to_string(failure_count) + " failures after epoch 1",
      table_b);

  std::printf(
      "paper reference (b): FT w/ PFS +32.2%% @64 -> +68.7%% @1024 vs "
      "no-failure; FT w/ NVMe +12.5%% -> +26.7%%; NVMe beats PFS by 14.8%% "
      "@64 and 24.9%% @1024; NoFT aborts on failure (dashed line)\n");
  return run_prefetch_phase(args);
}
