// Reproduces Table I: six-month job-failure breakdown on Frontier.
//
// The raw sacct logs are not public; a synthetic log calibrated to the
// published aggregates is generated and the paper's analysis (cancel
// filtering, type classification) runs over it.  Paper targets: 181,933
// jobs, 25.04% failed; failure mix 52.50% Job Fail / 44.92% Timeout /
// 2.58% Node Fail.
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "trace/failure_analyzer.hpp"
#include "trace/log_generator.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  const Config args = bench::parse_args(argc, argv);

  trace::LogGeneratorParams params;
  params.total_jobs = static_cast<std::uint32_t>(
      args.get_int("jobs", params.total_jobs));
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20240101));

  const auto log = trace::generate_log(params);
  const trace::FailureAnalyzer analyzer(log);
  const trace::Table1Summary summary = analyzer.table1();

  TextTable table({"Type", "Count", "Failure ratio", "Overall ratio"});
  auto pct = [](double x) { return format_double(100.0 * x, 2) + "%"; };
  table.add_row({"Total Jobs", std::to_string(summary.total_jobs), "N/A",
                 "100%"});
  table.add_row({"Total Failures", std::to_string(summary.total_failures),
                 "100%", pct(summary.failure_ratio())});
  table.add_row({"Node Fail", std::to_string(summary.node_fail),
                 pct(summary.share_of_failures(summary.node_fail)),
                 pct(static_cast<double>(summary.node_fail) /
                     summary.total_jobs)});
  table.add_row({"Timeout", std::to_string(summary.timeout),
                 pct(summary.share_of_failures(summary.timeout)),
                 pct(static_cast<double>(summary.timeout) /
                     summary.total_jobs)});
  table.add_row({"Job Fail", std::to_string(summary.job_fail),
                 pct(summary.share_of_failures(summary.job_fail)),
                 pct(static_cast<double>(summary.job_fail) /
                     summary.total_jobs)});
  bench::print_table(
      "Table I: job failures over six months (synthetic, calibrated)",
      table);

  std::printf(
      "paper reference: 181,933 jobs; failures 45,556 (25.04%%); "
      "Node Fail 2.58%% / Timeout 44.92%% / Job Fail 52.50%% of failures\n"
      "node-failure class (Node Fail + Timeout): %s%% of failures "
      "(paper: ~47.5%%)\n"
      "cancelled jobs excluded by the analyzer: %zu\n",
      format_double(100.0 * summary.node_failure_class_share(), 2).c_str(),
      analyzer.excluded_jobs());
  return 0;
}
