// bench_failstorm.cpp - Failover-storm hardening, on vs off.
//
// The metastable-failure scenario the overload-control layer exists for:
// N co-located clients stream warm reads, one node is crash-stopped
// mid-run, and every client redirects its keys to the same ring successor
// at once.  Unprotected, the successor absorbs duplicate first-touch PFS
// fetches per lost file (one per request, not per file), its unbounded
// queue grows, and retry/hedge amplification feeds the spiral.  The
// protected run turns on the whole PR: deadline propagation, retry
// budgets, class-aware admission control, and the PFS singleflight guard.
//
// Two identical clusters (same environment: multi-worker endpoints, PFS
// latency, eager hedging — the PR2 amplifier is ON in both) differ only
// in the protection knobs.  Measured per phase:
//   - duplicate PFS fetches per victim-owned file after the kill
//     (max/avg; singleflight's contract is max -> 1);
//   - p50/p99 of successful reads before the kill and in the storm
//     window [kill, kill+storm_ms];
//   - goodput (successful reads/s) and failures in the storm window;
//   - shed/expired/coalesced/budget-denial counters.
//
// A third phase (warm=1, the default) layers warm failover on the full
// protection stack: replication.warm_standby write-behind replicates
// every fill to the ring successor, so the storm's redirected reads hit
// standby NVMe instead of the PFS at all.  Its criteria: storm-window
// PFS reads per lost file <= 0.05 and storm p99 within 1.2x the SAME
// phase's healthy p99.
//
// Writes machine-readable BENCH_failstorm.json (override with out=...),
// including (with trace=1, the default) the flight-recorder-derived storm
// timeline — first suspicion, first ring update, first coalesced PFS
// fetch, p99 recovery — and a span-tree proof that one trace id links a
// client attempt through server admission to the PFS singleflight leader.
// Exit 0 iff protected max duplicates <= 1 AND (unless require_p99=0)
// the protected storm-window p99 beats the unprotected one AND (with
// trace=1) the span-tree proof was found in the protected phase AND
// (with warm=1) the warm criteria above hold.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/flight_recorder.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ftc::cluster::Cluster;
using ftc::cluster::ClusterConfig;
using ftc::cluster::FtMode;
using ftc::cluster::NodeId;
using ftc::obs::Record;
using ftc::obs::RecordKind;

struct BenchArgs {
  std::uint32_t nodes = 10;
  std::uint32_t files = 240;
  std::uint32_t file_kb = 64;
  std::uint32_t pfs_us = 12000;   ///< simulated PFS read latency
  std::uint32_t pfs_slots = 1;    ///< concurrent PFS reads at full speed
  // Long enough that the healthy p99 is a stable estimate (the warm
  // phase's 1.2x criterion compares against it) and that the warm phase's
  // first-placement pushes finish inside the healthy window.
  std::uint32_t pre_ms = 800;     ///< healthy run-up before the kill
  std::uint32_t storm_ms = 1500;  ///< measurement window after the kill
  std::uint32_t think_ms = 1;     ///< per-read think time (GPU step)
  std::uint32_t require_p99 = 1;  ///< 0: skip the p99 criterion (CI smoke)
  std::uint32_t trace = 1;        ///< 0: untraced legacy run
  std::uint32_t trace_capacity = 1u << 14;  ///< per-node recorder slots
  std::uint32_t warm = 1;  ///< 0: skip the warm-failover phase
  std::string out = "BENCH_failstorm.json";
};

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr,
                   "usage: %s [nodes=N] [files=N] [file_kb=N] [pfs_us=N] "
                   "[pfs_slots=N] [pre_ms=N] [storm_ms=N] [think_ms=N] [require_p99=0|1] "
                   "[trace=0|1] [trace_capacity=N] [warm=0|1] [out=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    const auto numeric = [&key, &value]() -> std::uint32_t {
      try {
        std::size_t used = 0;
        const unsigned long parsed = std::stoul(value, &used);
        if (used == value.size()) {
          return static_cast<std::uint32_t>(parsed);
        }
      } catch (const std::exception&) {
      }
      std::fprintf(stderr, "%s wants a number, got '%s'\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    };
    if (key == "nodes") args.nodes = numeric();
    else if (key == "files") args.files = numeric();
    else if (key == "file_kb") args.file_kb = numeric();
    else if (key == "pfs_us") args.pfs_us = numeric();
    else if (key == "pfs_slots") args.pfs_slots = numeric();
    else if (key == "pre_ms") args.pre_ms = numeric();
    else if (key == "storm_ms") args.storm_ms = numeric();
    else if (key == "think_ms") args.think_ms = numeric();
    else if (key == "require_p99") args.require_p99 = numeric();
    else if (key == "trace") args.trace = numeric();
    else if (key == "trace_capacity") args.trace_capacity = numeric();
    else if (key == "warm") args.warm = numeric();
    else if (key == "out") args.out = value;
    else {
      std::fprintf(stderr, "unknown key: %s\n", key.c_str());
      std::exit(2);
    }
  }
  return args;
}

ClusterConfig make_config(const BenchArgs& args, bool hardened, bool warm) {
  ClusterConfig config;
  config.node_count = args.nodes;
  config.pfs_read_latency = std::chrono::microseconds(args.pfs_us);
  // The job's PFS bandwidth share is finite: duplicate fetches do not run
  // for free in parallel, they queue and stretch — the physics that turns
  // redundant fetch work into tail latency.
  config.pfs_service_slots = args.pfs_slots;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = std::chrono::milliseconds(60);
  config.client.timeout_limit = 2;
  // The PR2 amplifier is deliberately ON in BOTH phases — hedged reads
  // are part of the environment that makes storms storm, not part of the
  // protection under test.  The floor sits just above one coalesced PFS
  // fetch: a dead-owner wait or an unprotected first-touch convoy at the
  // successor crosses it (and a hedge leg then seeds a DUPLICATE fetch on
  // the second successor — the amplification loop), while a read that
  // merely joins one in-flight fetch does not.
  config.client.hedge_reads = true;
  config.client.hedge_min_delay = std::chrono::milliseconds(45);
  config.server.cache_capacity_bytes = 1ULL << 32;
  // Concurrent requests at one endpoint actually contend in both phases;
  // a serial endpoint would hide the duplicate-fetch problem entirely.
  config.server.endpoint_workers = 2;
  if (hardened) {
    config.client.total_deadline = std::chrono::milliseconds(240);
    config.client.retry_budget_ratio = 0.1;
    config.client.retry_budget_cap = 8.0;
    config.client.busy_backoff_base = std::chrono::milliseconds(1);
    config.client.busy_backoff_cap = std::chrono::milliseconds(8);
    config.server.admission_control = true;
    config.server.admission_queue_limit = 12;
    config.server.pfs_singleflight = true;
    config.server.pfs_guard.max_concurrent_fetches = 6;
    config.server.pfs_guard.fetch_slot_wait = std::chrono::milliseconds(20);
    // The PFS itself is healthy in this scenario; the breaker is armed
    // but not expected to trip.
    config.server.pfs_guard.breaker_failure_threshold = 16;
    config.server.pfs_guard.breaker_cooldown = std::chrono::milliseconds(100);
  }
  if (warm) {
    // Warm failover on top of the full protection stack: every fill is
    // write-behind replicated to its ring successor, so the storm's
    // redirected reads land on standby NVMe instead of the PFS.
    config.client.replication.factor = 2;
    config.client.replication.warm_standby = true;
    // A roomier retry budget than the protected phase: the storm's hedge
    // legs must not drain the bucket and divert reads to the direct-PFS
    // fallback — that fallback is the very traffic the standbys remove.
    config.client.retry_budget_ratio = 0.25;
    config.client.retry_budget_cap = 16.0;
  }
  if (args.trace != 0) {
    // Trace every read: the storm window is short and the recorders are
    // per-node, so full sampling fits the ring without wraparound and the
    // timeline below never misses the first suspicion/coalesce.
    config.obs.tracing = true;
    config.obs.sample_every = 1;
    config.obs.recorder_capacity = args.trace_capacity;
  }
  return config;
}

struct ReadSample {
  double offset_ms = 0.0;  ///< since phase start
  double latency_us = 0.0;
  bool ok = false;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

struct PhaseResult {
  std::string name;
  std::uint64_t ops = 0;
  double pre_p50_us = 0.0;
  double pre_p99_us = 0.0;
  double storm_p50_us = 0.0;
  double storm_p99_us = 0.0;
  double storm_goodput_rps = 0.0;
  std::uint64_t storm_failures = 0;
  double dup_fetch_max = 0.0;
  double dup_fetch_avg = 0.0;
  std::uint64_t victim_files = 0;
  // Protection-layer counters (all ~0 in the unprotected phase).
  std::uint64_t requests_shed = 0;
  std::uint64_t expired_on_arrival = 0;
  std::uint64_t pfs_coalesced = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t retries_denied_by_budget = 0;
  std::uint64_t deadline_give_ups = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t pfs_reads_total = 0;
  /// PFS reads issued inside the storm window (total at end - at kill).
  std::uint64_t storm_pfs_reads = 0;
  // Warm-failover counters (all 0 with warm_standby off).
  std::uint64_t warm_pushes = 0;
  std::uint64_t warm_restores = 0;
  std::uint64_t warm_replicas_stored = 0;
  std::uint64_t stale_replica_puts = 0;
  bool warm_enabled = false;
  // Flight-recorder-derived storm timeline (trace=1 only; -1 = never
  // observed).  All offsets are ms after the kill.
  bool trace_enabled = false;
  std::uint64_t trace_records = 0;
  double first_suspicion_ms = -1.0;    ///< detector first flags the victim
  double first_ring_update_ms = -1.0;  ///< first placement change
  double first_coalesced_ms = -1.0;    ///< first joiner on an in-flight fetch
  double first_leader_ms = -1.0;       ///< first singleflight leader fetch
  double p99_recovery_ms = -1.0;       ///< first 100ms bin back under 3x pre-p99
  bool span_tree_ok = false;           ///< attempt->server->leader chain found
  std::uint64_t proof_trace_id = 0;
  bool export_has_core = false;   ///< client/server/transport/ring series
  bool export_has_guard = false;  ///< pfs-guard series (hardened phase)
};

/// First record of `kind` at or after the kill, as ms since the kill.
/// `records` is start-sorted (dump_traces contract).
double first_event_ms(const std::vector<Record>& records, RecordKind kind,
                      std::int64_t kill_ns) {
  for (const Record& r : records) {
    if (r.kind == kind && r.start_ns >= kill_ns) {
      return static_cast<double>(r.start_ns - kill_ns) / 1e6;
    }
  }
  return -1.0;
}

/// Offset (ms after the kill) of the first 100 ms storm bin whose p99 is
/// back under 3x the pre-kill p99 — the "recovered" marker of the storm
/// timeline.  Bins with fewer than 5 successful reads cannot call it.
double p99_recovery_after_kill_ms(
    const std::vector<std::vector<ReadSample>>& samples, double kill_offset_ms,
    double pre_p99_us, double end_offset_ms) {
  constexpr double kBinMs = 100.0;
  for (double bin = kill_offset_ms; bin < end_offset_ms; bin += kBinMs) {
    std::vector<double> lat;
    for (const auto& driver_samples : samples) {
      for (const ReadSample& s : driver_samples) {
        if (s.ok && s.offset_ms >= bin && s.offset_ms < bin + kBinMs) {
          lat.push_back(s.latency_us);
        }
      }
    }
    if (lat.size() < 5) continue;
    std::sort(lat.begin(), lat.end());
    if (percentile(lat, 99.0) <= 3.0 * pre_p99_us) {
      return bin - kill_offset_ms;
    }
  }
  return -1.0;
}

struct SpanTreeProof {
  bool ok = false;
  std::uint64_t trace_id = 0;
  std::vector<Record> spans;  ///< the proof trace's records, start-sorted
};

/// Finds one trace whose span tree links a client attempt through the
/// server execute phase to the PFS singleflight leader — the "one read
/// caused exactly this work" chain the tracing layer exists to show.
SpanTreeProof find_span_tree(const std::vector<Record>& records) {
  SpanTreeProof proof;
  std::unordered_map<std::uint64_t, std::vector<const Record*>> by_trace;
  for (const Record& r : records) {
    if (r.trace_id != 0) by_trace[r.trace_id].push_back(&r);
  }
  for (const auto& [trace_id, spans] : by_trace) {
    const Record* leader = nullptr;
    for (const Record* r : spans) {
      if (r->kind == RecordKind::kPfsFetchLeader) {
        leader = r;
        break;
      }
    }
    if (leader == nullptr) continue;
    const Record* attempt = nullptr;
    for (const Record* r : spans) {
      if (r->span_id == leader->parent_span_id &&
          (r->kind == RecordKind::kClientAttempt ||
           r->kind == RecordKind::kBusyRetry ||
           r->kind == RecordKind::kHedgeLeg)) {
        attempt = r;
        break;
      }
    }
    if (attempt == nullptr) continue;
    const Record* server_phase = nullptr;
    for (const Record* r : spans) {
      if (r->parent_span_id == attempt->span_id &&
          (r->kind == RecordKind::kServerQueue ||
           r->kind == RecordKind::kServerHandle)) {
        server_phase = r;
        break;
      }
    }
    const Record* root = nullptr;
    for (const Record* r : spans) {
      if (r->kind == RecordKind::kClientRead &&
          r->span_id == attempt->parent_span_id) {
        root = r;
        break;
      }
    }
    if (server_phase == nullptr || root == nullptr) continue;
    proof.ok = true;
    proof.trace_id = trace_id;
    for (const Record* r : spans) proof.spans.push_back(*r);
    std::sort(proof.spans.begin(), proof.spans.end(),
              [](const Record& a, const Record& b) {
                return a.start_ns < b.start_ns;
              });
    return proof;
  }
  return proof;
}

void print_span_tree(const SpanTreeProof& proof, std::int64_t origin_ns) {
  if (!proof.ok) return;
  std::printf(
      "span tree, trace %016llx (client attempt -> server admission -> "
      "PFS singleflight leader):\n",
      static_cast<unsigned long long>(proof.trace_id));
  std::unordered_map<std::uint64_t, int> depth;
  for (const Record& r : proof.spans) {
    int d = 0;
    const auto parent = depth.find(r.parent_span_id);
    if (parent != depth.end()) {
      d = parent->second + 1;
    } else if (r.parent_span_id != 0) {
      d = 1;  // parent span lives outside the ring (wrapped) — indent once
    }
    depth[r.span_id] = d;
    const std::string_view detail = r.detail_view();
    std::printf("  %*s%-18s node %-3u +%9.3f ms  %8.3f ms  %.*s\n", 2 * d, "",
                ftc::obs::record_kind_name(r.kind), r.node,
                static_cast<double>(r.start_ns - origin_ns) / 1e6,
                static_cast<double>(r.end_ns - r.start_ns) / 1e6,
                static_cast<int>(detail.size()), detail.data());
  }
}

PhaseResult run_phase(const std::string& name, const BenchArgs& args,
                      bool hardened, bool warm = false) {
  Cluster cluster(make_config(args, hardened, warm));
  const auto paths = cluster.stage_dataset(args.files, args.file_kb * 1024);
  cluster.warm_caches(paths);

  const NodeId victim = args.nodes - 1;
  // The files the kill will orphan, per the shared pre-kill ring view.
  std::vector<std::string> victim_paths;
  for (const auto& path : paths) {
    if (cluster.client(0).current_owner(path) == victim) {
      victim_paths.push_back(path);
    }
  }

  // One driver thread per surviving node's co-located client (the
  // victim's own client dies with it).  All drivers walk the dataset in
  // the SAME order, as samplers sharing a shuffled epoch do — which is
  // exactly what convoys first-touch misses onto the successor.
  std::vector<NodeId> drivers;
  for (NodeId n = 0; n < args.nodes; ++n) {
    if (n != victim) drivers.push_back(n);
  }
  const auto phase_start = Clock::now();
  const std::int64_t phase_start_ns = ftc::obs::now_ns();
  const auto kill_at = phase_start + std::chrono::milliseconds(args.pre_ms);
  const auto stop_at =
      kill_at + std::chrono::milliseconds(args.storm_ms);
  std::vector<std::vector<ReadSample>> samples(drivers.size());
  std::vector<std::thread> threads;
  threads.reserve(drivers.size());
  for (std::size_t d = 0; d < drivers.size(); ++d) {
    threads.emplace_back([d, &drivers, &cluster, &paths, &samples,
                          phase_start, stop_at, think = args.think_ms] {
      auto& client = cluster.client(drivers[d]);
      std::size_t i = 0;
      while (Clock::now() < stop_at) {
        const auto& path = paths[i % paths.size()];
        ++i;
        const auto start = Clock::now();
        const bool ok = client.read_file(path).is_ok();
        const auto end = Clock::now();
        samples[d].push_back(
            {std::chrono::duration<double, std::milli>(start - phase_start)
                 .count(),
             std::chrono::duration<double, std::micro>(end - start).count(),
             ok});
        if (think > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(think));
        }
      }
    });
  }

  // Main thread springs the fault at the appointed time.
  std::this_thread::sleep_until(kill_at);
  std::vector<std::uint64_t> counts_before;
  counts_before.reserve(victim_paths.size());
  for (const auto& path : victim_paths) {
    counts_before.push_back(cluster.pfs().read_count(path));
  }
  cluster.fail_node(victim);
  // Total PFS traffic from here on is the storm's bill: with warm
  // standbys every redirected read should land on the successor's NVMe,
  // so this delta is the headline "zero PFS fetches" number.
  const std::uint64_t pfs_reads_at_kill = cluster.pfs().read_count();
  const std::int64_t kill_ns = ftc::obs::now_ns();
  const double kill_offset_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - phase_start)
          .count();
  for (auto& thread : threads) thread.join();

  PhaseResult result;
  result.name = name;
  result.warm_enabled = warm;
  result.victim_files = victim_paths.size();
  std::uint64_t dup_total = 0;
  std::uint64_t dup_max = 0;
  for (std::size_t i = 0; i < victim_paths.size(); ++i) {
    const std::uint64_t dup =
        cluster.pfs().read_count(victim_paths[i]) - counts_before[i];
    dup_total += dup;
    dup_max = std::max(dup_max, dup);
  }
  result.dup_fetch_max = static_cast<double>(dup_max);
  result.dup_fetch_avg =
      victim_paths.empty()
          ? 0.0
          : static_cast<double>(dup_total) /
                static_cast<double>(victim_paths.size());

  std::vector<double> pre_lat;
  std::vector<double> storm_lat;
  for (const auto& driver_samples : samples) {
    result.ops += driver_samples.size();
    for (const ReadSample& s : driver_samples) {
      if (s.offset_ms < kill_offset_ms) {
        if (s.ok) pre_lat.push_back(s.latency_us);
      } else {
        if (s.ok) {
          storm_lat.push_back(s.latency_us);
        } else {
          ++result.storm_failures;
        }
      }
    }
  }
  std::sort(pre_lat.begin(), pre_lat.end());
  std::sort(storm_lat.begin(), storm_lat.end());
  result.pre_p50_us = percentile(pre_lat, 50.0);
  result.pre_p99_us = percentile(pre_lat, 99.0);
  result.storm_p50_us = percentile(storm_lat, 50.0);
  result.storm_p99_us = percentile(storm_lat, 99.0);
  result.storm_goodput_rps = static_cast<double>(storm_lat.size()) /
                             (static_cast<double>(args.storm_ms) / 1000.0);

  for (NodeId n = 0; n < args.nodes; ++n) {
    const auto client_stats = cluster.client(n).stats_snapshot();
    result.busy_rejections += client_stats.busy_rejections;
    result.retries_denied_by_budget += client_stats.retries_denied_by_budget;
    result.deadline_give_ups += client_stats.deadline_give_ups;
    result.hedges_launched += client_stats.hedges_launched;
    result.warm_pushes += client_stats.warm_pushes;
    result.warm_restores += client_stats.warm_restores;
    const auto server_stats = cluster.server(n).stats_snapshot();
    result.expired_on_arrival += server_stats.expired_on_arrival;
    result.pfs_coalesced += server_stats.pfs_coalesced;
    result.warm_replicas_stored += server_stats.warm_replicas_stored;
    result.stale_replica_puts += server_stats.stale_replica_puts;
    result.requests_shed += cluster.transport().stats(n).requests_shed;
  }
  result.pfs_reads_total = cluster.pfs().read_count();
  result.storm_pfs_reads = result.pfs_reads_total - pfs_reads_at_kill;

  // Storm timeline + span-tree proof, straight from the flight recorders.
  if (args.trace != 0) {
    result.trace_enabled = true;
    const std::vector<Record> records = cluster.dump_traces();
    result.trace_records = records.size();
    result.first_suspicion_ms =
        first_event_ms(records, RecordKind::kSuspicion, kill_ns);
    result.first_ring_update_ms =
        first_event_ms(records, RecordKind::kRingUpdate, kill_ns);
    result.first_coalesced_ms =
        first_event_ms(records, RecordKind::kPfsFetchJoiner, kill_ns);
    result.first_leader_ms =
        first_event_ms(records, RecordKind::kPfsFetchLeader, kill_ns);
    result.p99_recovery_ms = p99_recovery_after_kill_ms(
        samples, kill_offset_ms, result.pre_p99_us,
        kill_offset_ms + static_cast<double>(args.storm_ms));
    const SpanTreeProof proof = find_span_tree(records);
    result.span_tree_ok = proof.ok;
    result.proof_trace_id = proof.trace_id;
    if (hardened) print_span_tree(proof, phase_start_ns);
  }

  // The unified exporter must cover every layer the storm touches.
  const std::string prom = cluster.metrics_registry().export_prometheus_text();
  const auto has = [&prom](const char* needle) {
    return prom.find(needle) != std::string::npos;
  };
  result.export_has_core =
      has("ftc_client_reads_total") && has("ftc_server_reads_total") &&
      has("ftc_transport_received_total") && has("ftc_client_ring_updates_total");
  result.export_has_guard = has("ftc_pfs_guard_fetches_total");
  return result;
}

void print_phase(const PhaseResult& p) {
  std::printf(
      "%-12s %7llu ops  pre p99 %8.0f us | storm p50 %8.0f us p99 %8.0f us "
      "goodput %7.0f/s fail %llu | dup max %.0f avg %.2f (%llu files)\n",
      p.name.c_str(), static_cast<unsigned long long>(p.ops), p.pre_p99_us,
      p.storm_p50_us, p.storm_p99_us, p.storm_goodput_rps,
      static_cast<unsigned long long>(p.storm_failures), p.dup_fetch_max,
      p.dup_fetch_avg, static_cast<unsigned long long>(p.victim_files));
  std::printf(
      "             shed %llu expired %llu coalesced %llu busy %llu "
      "budget_denied %llu give_ups %llu hedges %llu pfs_reads %llu\n",
      static_cast<unsigned long long>(p.requests_shed),
      static_cast<unsigned long long>(p.expired_on_arrival),
      static_cast<unsigned long long>(p.pfs_coalesced),
      static_cast<unsigned long long>(p.busy_rejections),
      static_cast<unsigned long long>(p.retries_denied_by_budget),
      static_cast<unsigned long long>(p.deadline_give_ups),
      static_cast<unsigned long long>(p.hedges_launched),
      static_cast<unsigned long long>(p.pfs_reads_total));
  if (p.warm_enabled) {
    const double per_lost =
        p.victim_files == 0
            ? 0.0
            : static_cast<double>(p.storm_pfs_reads) /
                  static_cast<double>(p.victim_files);
    std::printf(
        "             warm pushes %llu restores %llu stored %llu stale %llu | "
        "storm pfs reads %llu (%.3f per lost file)\n",
        static_cast<unsigned long long>(p.warm_pushes),
        static_cast<unsigned long long>(p.warm_restores),
        static_cast<unsigned long long>(p.warm_replicas_stored),
        static_cast<unsigned long long>(p.stale_replica_puts),
        static_cast<unsigned long long>(p.storm_pfs_reads), per_lost);
  }
  if (p.trace_enabled) {
    std::printf(
        "             trace %llu records | after kill: suspicion %+.1f ms "
        "ring %+.1f ms coalesced %+.1f ms leader %+.1f ms p99_recovery "
        "%+.1f ms | span_tree %s export core=%s guard=%s\n",
        static_cast<unsigned long long>(p.trace_records), p.first_suspicion_ms,
        p.first_ring_update_ms, p.first_coalesced_ms, p.first_leader_ms,
        p.p99_recovery_ms, p.span_tree_ok ? "OK" : "absent",
        p.export_has_core ? "ok" : "MISSING",
        p.export_has_guard ? "ok" : "absent");
  }
}

void emit_phase_json(std::ofstream& out, const PhaseResult& p, bool last) {
  char line[768];
  std::snprintf(
      line, sizeof(line),
      "    \"%s\": {\"ops\": %llu, \"pre_p50_us\": %.1f, "
      "\"pre_p99_us\": %.1f, \"storm_p50_us\": %.1f, \"storm_p99_us\": %.1f, "
      "\"storm_goodput_rps\": %.1f, \"storm_failures\": %llu, "
      "\"dup_fetch_max\": %.0f, \"dup_fetch_avg\": %.2f, "
      "\"victim_files\": %llu, \"requests_shed\": %llu, "
      "\"expired_on_arrival\": %llu, \"pfs_coalesced\": %llu, "
      "\"busy_rejections\": %llu, \"retries_denied_by_budget\": %llu, "
      "\"deadline_give_ups\": %llu, \"hedges_launched\": %llu, "
      "\"pfs_reads_total\": %llu, \"storm_pfs_reads\": %llu",
      p.name.c_str(), static_cast<unsigned long long>(p.ops), p.pre_p50_us,
      p.pre_p99_us, p.storm_p50_us, p.storm_p99_us, p.storm_goodput_rps,
      static_cast<unsigned long long>(p.storm_failures), p.dup_fetch_max,
      p.dup_fetch_avg, static_cast<unsigned long long>(p.victim_files),
      static_cast<unsigned long long>(p.requests_shed),
      static_cast<unsigned long long>(p.expired_on_arrival),
      static_cast<unsigned long long>(p.pfs_coalesced),
      static_cast<unsigned long long>(p.busy_rejections),
      static_cast<unsigned long long>(p.retries_denied_by_budget),
      static_cast<unsigned long long>(p.deadline_give_ups),
      static_cast<unsigned long long>(p.hedges_launched),
      static_cast<unsigned long long>(p.pfs_reads_total),
      static_cast<unsigned long long>(p.storm_pfs_reads));
  out << line;
  if (p.warm_enabled) {
    const double per_lost =
        p.victim_files == 0
            ? 0.0
            : static_cast<double>(p.storm_pfs_reads) /
                  static_cast<double>(p.victim_files);
    char warm_json[256];
    std::snprintf(
        warm_json, sizeof(warm_json),
        ", \"warm\": {\"pushes\": %llu, \"restores\": %llu, "
        "\"replicas_stored\": %llu, \"stale_puts\": %llu, "
        "\"storm_pfs_per_lost_file\": %.3f}",
        static_cast<unsigned long long>(p.warm_pushes),
        static_cast<unsigned long long>(p.warm_restores),
        static_cast<unsigned long long>(p.warm_replicas_stored),
        static_cast<unsigned long long>(p.stale_replica_puts), per_lost);
    out << warm_json;
  }
  if (p.trace_enabled) {
    char trace_json[512];
    std::snprintf(
        trace_json, sizeof(trace_json),
        ", \"trace\": {\"records\": %llu, \"first_suspicion_ms\": %.1f, "
        "\"first_ring_update_ms\": %.1f, \"first_coalesced_ms\": %.1f, "
        "\"first_leader_ms\": %.1f, \"p99_recovery_ms\": %.1f, "
        "\"span_tree_ok\": %s, \"proof_trace_id\": \"%016llx\", "
        "\"export_has_core\": %s, \"export_has_guard\": %s}",
        static_cast<unsigned long long>(p.trace_records),
        p.first_suspicion_ms, p.first_ring_update_ms, p.first_coalesced_ms,
        p.first_leader_ms, p.p99_recovery_ms,
        p.span_tree_ok ? "true" : "false",
        static_cast<unsigned long long>(p.proof_trace_id),
        p.export_has_core ? "true" : "false",
        p.export_has_guard ? "true" : "false");
    out << trace_json;
  }
  out << "}" << (last ? "" : ",") << "\n";
}

const char* json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);

  const PhaseResult unprotected =
      run_phase("unprotected", args, /*hardened=*/false);
  const PhaseResult protected_run =
      run_phase("protected", args, /*hardened=*/true);
  PhaseResult warm_run;
  if (args.warm != 0) {
    warm_run = run_phase("warm", args, /*hardened=*/true, /*warm=*/true);
  }

  print_phase(unprotected);
  print_phase(protected_run);
  if (args.warm != 0) print_phase(warm_run);

  const bool dup_ok = protected_run.dup_fetch_max <= 1.0;
  const bool p99_ok =
      protected_run.storm_p99_us < unprotected.storm_p99_us;
  // With tracing on, the protected phase must yield the full causal chain
  // (client attempt -> server admission -> singleflight leader) plus the
  // cross-layer exporter series — the observability acceptance criteria.
  const bool trace_ok =
      args.trace == 0 ||
      (protected_run.span_tree_ok && protected_run.export_has_core &&
       protected_run.export_has_guard);
  // Warm-failover criteria: the standbys must make the storm essentially
  // PFS-free (<= 0.05 fetches per lost file) AND keep the storm p99
  // within 1.2x of the SAME phase's healthy p99 — a dead node should cost
  // one redirect, not a latency regime change.
  const double warm_pfs_per_lost =
      (args.warm == 0 || warm_run.victim_files == 0)
          ? 0.0
          : static_cast<double>(warm_run.storm_pfs_reads) /
                static_cast<double>(warm_run.victim_files);
  const bool warm_pfs_ok = args.warm == 0 || warm_pfs_per_lost <= 0.05;
  // The 1 ms absolute floor keeps the relative criterion meaningful when
  // both quantiles sit at millisecond scale: on a shared box the healthy
  // p99 estimate itself wobbles by ~0.5 ms run to run, while an actual
  // storm is a 10x regime change that clears any floor.
  const bool warm_p99_ok =
      args.warm == 0 ||
      warm_run.storm_p99_us <=
          std::max(1.2 * warm_run.pre_p99_us, warm_run.pre_p99_us + 1000.0);
  std::printf("protected dup max %.0f (%s); storm p99 %0.f vs %0.f us (%s)\n",
              protected_run.dup_fetch_max,
              dup_ok ? "<= 1, singleflight holds" : "EXCEEDS 1",
              protected_run.storm_p99_us, unprotected.storm_p99_us,
              p99_ok ? "improved" : "NOT improved");
  if (args.trace != 0) {
    std::printf("trace proof: span_tree %s, exporter series %s\n",
                protected_run.span_tree_ok ? "found" : "MISSING",
                protected_run.export_has_core && protected_run.export_has_guard
                    ? "complete"
                    : "INCOMPLETE");
  }
  if (args.warm != 0) {
    std::printf(
        "warm storm pfs %.3f per lost file (%s); storm p99 %.0f vs healthy "
        "%.0f us (%s 1.2x)\n",
        warm_pfs_per_lost, warm_pfs_ok ? "<= 0.05, standbys hold" : "EXCEEDS 0.05",
        warm_run.storm_p99_us, warm_run.pre_p99_us,
        warm_p99_ok ? "within" : "EXCEEDS");
  }

  std::ofstream out(args.out);
  out << "{\n  \"bench\": \"bench_failstorm\",\n";
  out << "  \"config\": {\"nodes\": " << args.nodes
      << ", \"files\": " << args.files << ", \"file_kb\": " << args.file_kb
      << ", \"pfs_us\": " << args.pfs_us
      << ", \"pfs_slots\": " << args.pfs_slots << ", \"pre_ms\": " << args.pre_ms
      << ", \"storm_ms\": " << args.storm_ms
      << ", \"think_ms\": " << args.think_ms
      << ", \"require_p99\": " << args.require_p99
      << ", \"trace\": " << args.trace
      << ", \"trace_capacity\": " << args.trace_capacity
      << ", \"warm\": " << args.warm << "},\n";
  out << "  \"phases\": {\n";
  emit_phase_json(out, unprotected, /*last=*/false);
  emit_phase_json(out, protected_run, /*last=*/args.warm == 0);
  if (args.warm != 0) emit_phase_json(out, warm_run, /*last=*/true);
  out << "  },\n";
  out << "  \"protected_dup_max_le_1\": " << json_bool(dup_ok) << ",\n";
  out << "  \"storm_p99_improved\": " << json_bool(p99_ok) << ",\n";
  out << "  \"p99_criterion_enforced\": " << json_bool(args.require_p99 != 0)
      << ",\n";
  out << "  \"trace_criterion_enforced\": " << json_bool(args.trace != 0)
      << ",\n";
  out << "  \"trace_span_tree_and_export_ok\": " << json_bool(trace_ok)
      << ",\n";
  out << "  \"warm_criterion_enforced\": " << json_bool(args.warm != 0)
      << ",\n";
  char warm_summary[160];
  std::snprintf(warm_summary, sizeof(warm_summary),
                "  \"warm_storm_pfs_per_lost_file\": %.3f,\n",
                warm_pfs_per_lost);
  out << warm_summary;
  out << "  \"warm_storm_pfs_ok\": " << json_bool(warm_pfs_ok) << ",\n";
  out << "  \"warm_storm_p99_within_1_2x_healthy\": " << json_bool(warm_p99_ok)
      << "\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", args.out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.out.c_str());

  return (dup_ok && trace_ok && warm_pfs_ok &&
          (args.require_p99 == 0 || (p99_ok && warm_p99_ok)))
             ? 0
             : 1;
}
