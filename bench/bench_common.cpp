#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "common/string_util.hpp"

namespace ftc::bench {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double alpha,
                             std::uint64_t seed)
    : alpha_(alpha < 0.0 ? 0.0 : alpha), rng_(seed) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha_);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::uint64_t ZipfGenerator::next() {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfGenerator::probability(std::uint64_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

ScrambledZipfGenerator::ScrambledZipfGenerator(std::uint64_t n, double alpha,
                                               std::uint64_t seed,
                                               std::uint64_t stream)
    : zipf_(n, alpha, seed ^ (stream * 0x9E3779B97F4A7C15ULL + stream)),
      perm_(zipf_.size()) {
  std::iota(perm_.begin(), perm_.end(), 0);
  // The permutation depends on the seed alone — never on the stream — so
  // every source agrees on which ids are hot.
  Rng perm_rng(seed ^ 0x5C7A3B1EDC0FFEE5ULL);
  perm_rng.shuffle(perm_);
}

Config parse_args(int argc, char** argv) {
  auto parsed = Config::from_args(argc - 1, argv + 1);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "usage: %s [key=value ...]\n  %s\n", argv[0],
                 parsed.status().to_string().c_str());
    std::exit(2);
  }
  return std::move(parsed).value();
}

destim::ExperimentConfig paper_config(std::uint32_t node_count,
                                      cluster::FtMode mode) {
  destim::ExperimentConfig config;
  config.node_count = node_count;
  config.mode = mode;

  // Dataset: cosmoUniverse scaled ~8x down (DESIGN.md substitution table):
  // 10,240 TFRecords x 16 MiB = 160 GiB.
  config.file_count = 10240;
  // cosmoUniverse's 8:1 train:validation split.
  config.validation_file_count = 1280;
  config.file_bytes = 16ULL << 20;
  // Sample-level shuffling: 4 samples/TFRecord, so each lost file is
  // touched by ~4 distinct clients per epoch (CosmoFlow packs 64; 4 keeps
  // the amplification while bounding simulated events).
  config.samples_per_file = 4;
  config.epochs = 5;
  config.files_per_step_per_node = 4;  // samples per node per step
  config.compute_time_per_step = 40 * simtime::kMillisecond;

  // Devices: Frontier Table II numbers.
  config.nvme.read_bytes_per_second = 8.0e9;
  config.nvme.write_bytes_per_second = 4.0e9;
  config.nic_bytes_per_second = 25.0e9;  // Slingshot 200 Gb/s

  // Orion: huge aggregate pool (a job rarely saturates it), but each
  // client stream is capped and every access pays a bursty contention
  // tail — the tail's per-step maximum is what amplifies stragglers as
  // concurrency grows (Sec V-B1).
  config.pfs.read_bytes_per_second = 200.0e9;
  config.pfs.background_load_fraction = 0.3;
  config.pfs.per_client_bytes_per_second = 400.0e6;
  config.pfs.access_latency = 20 * simtime::kMillisecond;
  config.pfs.access_latency_tail_mean = 30 * simtime::kMillisecond;

  // FT knobs (TIMEOUT_SECONDS / TIMEOUT_LIMIT): the paper sets the TTL
  // just above the longest healthy-path latency, so detection is cheap
  // relative to one PFS access.
  config.rpc_timeout = 5 * simtime::kMillisecond;
  config.timeout_limit = 2;
  config.vnodes_per_node = 100;
  config.elastic_restart_overhead = 300 * simtime::kMillisecond;
  return config;
}

void apply_overrides(destim::ExperimentConfig& config, const Config& args) {
  config.file_count = static_cast<std::uint32_t>(
      args.get_int("files", config.file_count));
  config.validation_file_count = static_cast<std::uint32_t>(
      args.get_int("val_files", config.validation_file_count));
  config.file_bytes = static_cast<std::uint64_t>(
      args.get_double("file_mb",
                      static_cast<double>(config.file_bytes) / (1 << 20)) *
      (1 << 20));
  config.epochs =
      static_cast<std::uint32_t>(args.get_int("epochs", config.epochs));
  config.samples_per_file = static_cast<std::uint32_t>(
      args.get_int("samples_per_file", config.samples_per_file));
  config.files_per_step_per_node = static_cast<std::uint32_t>(
      args.get_int("files_per_step", config.files_per_step_per_node));
  config.compute_time_per_step = simtime::from_ms(args.get_double(
      "compute_ms", simtime::to_ms(config.compute_time_per_step)));
  config.rpc_timeout = simtime::from_ms(
      args.get_double("timeout_ms", simtime::to_ms(config.rpc_timeout)));
  config.timeout_limit = static_cast<std::uint32_t>(
      args.get_int("limit", config.timeout_limit));
  config.vnodes_per_node = static_cast<std::uint32_t>(
      args.get_int("vnodes", config.vnodes_per_node));
  config.elastic_restart_overhead = simtime::from_ms(args.get_double(
      "restart_ms", simtime::to_ms(config.elastic_restart_overhead)));
  config.pfs.read_bytes_per_second =
      args.get_double("pfs_gbps",
                      config.pfs.read_bytes_per_second / 1e9) *
      1e9;
  config.pfs.per_client_bytes_per_second =
      args.get_double("pfs_client_mbps",
                      config.pfs.per_client_bytes_per_second / 1e6) *
      1e6;
  config.pfs.access_latency = simtime::from_ms(
      args.get_double("pfs_lat_ms", simtime::to_ms(config.pfs.access_latency)));
  config.pfs.access_latency_tail_mean = simtime::from_ms(args.get_double(
      "pfs_tail_ms", simtime::to_ms(config.pfs.access_latency_tail_mean)));
  config.shuffle_seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(config.shuffle_seed)));
}

std::vector<std::uint32_t> scales_from(const Config& args) {
  const auto values = args.get_int_list("scales", {64, 128, 256, 512, 1024});
  std::vector<std::uint32_t> scales;
  scales.reserve(values.size());
  for (std::int64_t v : values) {
    if (v > 0) scales.push_back(static_cast<std::uint32_t>(v));
  }
  return scales;
}

void print_table(const std::string& title, const TextTable& table) {
  std::printf("\n=== %s ===\n%s\n--- csv ---\n%s", title.c_str(),
              table.to_string().c_str(), table.to_csv().c_str());
}

std::string minutes_label(double simulated_minutes) {
  return format_double(simulated_minutes, 2);
}

}  // namespace ftc::bench
