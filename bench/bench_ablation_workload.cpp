// Ablation (extension): access-pattern sensitivity.  Vision-style training
// re-reads the full dataset every epoch — the worst case for PFS
// redirection, whose lost-file penalty recurs per epoch.  LLM-style
// partial epochs (subset fraction < 1) touch lost files less often, so
// the FT w/ NVMe advantage narrows.  Quantifies how much of the paper's
// win is workload-dependent.
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "bench_common.hpp"
#include "common/string_util.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  using cluster::FtMode;
  const Config args = bench::parse_args(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 128));

  cluster::FailurePlanParams plan;
  plan.node_count = nodes;
  plan.failure_count = static_cast<std::uint32_t>(
      args.get_int("failures", 3));
  plan.first_eligible_epoch = 1;
  plan.total_epochs = 5;
  plan.seed = 42;
  auto failures = cluster::plan_failures(plan);
  for (auto& failure : failures) failure.epoch_fraction *= 0.3;

  TextTable table({"Epoch fraction", "FT w/ PFS (min)", "FT w/ NVMe (min)",
                   "NVMe gain %", "PFS reads (PFS mode)",
                   "PFS reads (NVMe mode)"});
  for (const double fraction : {1.0, 0.5, 0.25, 0.125}) {
    double minutes[2];
    std::uint64_t pfs_reads[2];
    const FtMode modes[2] = {FtMode::kPfsRedirect,
                             FtMode::kHashRingRecache};
    for (int m = 0; m < 2; ++m) {
      auto config = bench::paper_config(nodes, modes[m]);
      bench::apply_overrides(config, args);
      config.epoch_subset_fraction = fraction;
      config.failures = failures;
      const auto result = destim::run_experiment(config);
      minutes[m] = result.completed ? result.total_minutes() : -1;
      pfs_reads[m] = result.total_pfs_reads;
    }
    table.add_row({format_double(fraction, 3), format_double(minutes[0], 3),
                   format_double(minutes[1], 3),
                   format_double(
                       100.0 * (minutes[0] - minutes[1]) / minutes[0], 1),
                   std::to_string(pfs_reads[0]),
                   std::to_string(pfs_reads[1])});
    std::fprintf(stderr, "[workload] fraction %.3f done\n", fraction);
  }
  bench::print_table(
      "Ablation: epoch subset fraction vs FT-mode advantage (" +
          std::to_string(nodes) + " nodes, " +
          std::to_string(plan.failure_count) + " failures)",
      table);
  std::printf(
      "expected: full-pass epochs maximize the recaching advantage; as the "
      "per-epoch subset shrinks, lost files are touched less often and the "
      "two FT designs converge\n");

  // Extension: the same experiment keyed by access *skew* instead of an
  // abstract fraction.  A Zipf(alpha) epoch of file_count draws touches
  // only part of the namespace; the unique-file coverage of a sampled
  // stream (shared ScrambledZipf generator, so bench_skew's alpha axis
  // means the same thing here) becomes the effective subset fraction.
  std::vector<double> alphas;
  {
    std::stringstream ss(args.get_string("alphas", "0.8,1.1,1.4"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) alphas.push_back(std::stod(item));
    }
  }
  TextTable zipf_table({"Zipf alpha", "Coverage", "FT w/ PFS (min)",
                        "FT w/ NVMe (min)", "NVMe gain %"});
  for (const double alpha : alphas) {
    // Measure coverage on a representative config (coverage depends only
    // on file_count and alpha, not on the FT mode).
    auto probe = bench::paper_config(nodes, FtMode::kPfsRedirect);
    bench::apply_overrides(probe, args);
    bench::ScrambledZipfGenerator gen(probe.file_count, alpha,
                                      probe.shuffle_seed ^ 0xA1FAULL);
    std::unordered_set<std::uint64_t> touched;
    for (std::uint64_t i = 0; i < probe.file_count; ++i) {
      touched.insert(gen.next());
    }
    const double coverage = static_cast<double>(touched.size()) /
                            static_cast<double>(probe.file_count);

    double minutes[2];
    const FtMode modes[2] = {FtMode::kPfsRedirect, FtMode::kHashRingRecache};
    for (int m = 0; m < 2; ++m) {
      auto config = bench::paper_config(nodes, modes[m]);
      bench::apply_overrides(config, args);
      config.epoch_subset_fraction = coverage;
      config.failures = failures;
      const auto result = destim::run_experiment(config);
      minutes[m] = result.completed ? result.total_minutes() : -1;
    }
    zipf_table.add_row(
        {format_double(alpha, 2), format_double(coverage, 3),
         format_double(minutes[0], 3), format_double(minutes[1], 3),
         format_double(100.0 * (minutes[0] - minutes[1]) / minutes[0], 1)});
    std::fprintf(stderr, "[workload] alpha %.2f done\n", alpha);
  }
  bench::print_table(
      "Ablation extension: Zipf skew -> epoch coverage -> FT-mode advantage",
      zipf_table);
  std::printf(
      "expected: higher alpha concentrates the epoch on fewer unique files "
      "(lower coverage), shrinking the recaching advantage the same way the "
      "explicit subset fractions above do\n");
  return 0;
}
