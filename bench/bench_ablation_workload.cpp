// Ablation (extension): access-pattern sensitivity.  Vision-style training
// re-reads the full dataset every epoch — the worst case for PFS
// redirection, whose lost-file penalty recurs per epoch.  LLM-style
// partial epochs (subset fraction < 1) touch lost files less often, so
// the FT w/ NVMe advantage narrows.  Quantifies how much of the paper's
// win is workload-dependent.
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  using cluster::FtMode;
  const Config args = bench::parse_args(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 128));

  cluster::FailurePlanParams plan;
  plan.node_count = nodes;
  plan.failure_count = static_cast<std::uint32_t>(
      args.get_int("failures", 3));
  plan.first_eligible_epoch = 1;
  plan.total_epochs = 5;
  plan.seed = 42;
  auto failures = cluster::plan_failures(plan);
  for (auto& failure : failures) failure.epoch_fraction *= 0.3;

  TextTable table({"Epoch fraction", "FT w/ PFS (min)", "FT w/ NVMe (min)",
                   "NVMe gain %", "PFS reads (PFS mode)",
                   "PFS reads (NVMe mode)"});
  for (const double fraction : {1.0, 0.5, 0.25, 0.125}) {
    double minutes[2];
    std::uint64_t pfs_reads[2];
    const FtMode modes[2] = {FtMode::kPfsRedirect,
                             FtMode::kHashRingRecache};
    for (int m = 0; m < 2; ++m) {
      auto config = bench::paper_config(nodes, modes[m]);
      bench::apply_overrides(config, args);
      config.epoch_subset_fraction = fraction;
      config.failures = failures;
      const auto result = destim::run_experiment(config);
      minutes[m] = result.completed ? result.total_minutes() : -1;
      pfs_reads[m] = result.total_pfs_reads;
    }
    table.add_row({format_double(fraction, 3), format_double(minutes[0], 3),
                   format_double(minutes[1], 3),
                   format_double(
                       100.0 * (minutes[0] - minutes[1]) / minutes[0], 1),
                   std::to_string(pfs_reads[0]),
                   std::to_string(pfs_reads[1])});
    std::fprintf(stderr, "[workload] fraction %.3f done\n", fraction);
  }
  bench::print_table(
      "Ablation: epoch subset fraction vs FT-mode advantage (" +
          std::to_string(nodes) + " nodes, " +
          std::to_string(plan.failure_count) + " failures)",
      table);
  std::printf(
      "expected: full-pass epochs maximize the recaching advantage; as the "
      "per-epoch subset shrinks, lost files are touched less often and the "
      "two FT designs converge\n");
  return 0;
}
