// bench_common.hpp - Shared plumbing for the experiment binaries.
//
// Every bench binary reproduces one paper table/figure.  This header
// provides the common pieces: CLI config parsing (key=value overrides over
// paper defaults), the calibrated paper-scale DES configuration, and
// uniform result printing (pretty table + CSV so EXPERIMENTS.md entries
// are copy-pasteable).
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "destim/experiment.hpp"

namespace ftc::bench {

/// Parses key=value args; prints usage and exits on malformed input.
Config parse_args(int argc, char** argv);

/// The scaled-down Frontier/CosmoFlow configuration (DESIGN.md Sec 2):
/// dataset shrunk ~8x, device/network rates from Table II, PFS job-share
/// and fixed overheads scaled to preserve the paper's cache-vs-PFS cost
/// ratios.  `node_count` and `mode` are the experiment axes.
destim::ExperimentConfig paper_config(std::uint32_t node_count,
                                      cluster::FtMode mode);

/// Applies the standard overrides (files=, file_mb=, epochs=, compute_ms=,
/// timeout_ms=, limit=, vnodes=, restart_ms=, pfs_gbps=, pfs_client_mbps=)
/// to a config.
void apply_overrides(destim::ExperimentConfig& config, const Config& args);

/// Node-count sweep for the scaling figures; override with scales=64,128.
std::vector<std::uint32_t> scales_from(const Config& args);

/// Prints a titled table followed by its CSV form.
void print_table(const std::string& title, const TextTable& table);

/// "64, 128, ..." label helper.
std::string minutes_label(double simulated_minutes);

}  // namespace ftc::bench
