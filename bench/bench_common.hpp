// bench_common.hpp - Shared plumbing for the experiment binaries.
//
// Every bench binary reproduces one paper table/figure.  This header
// provides the common pieces: CLI config parsing (key=value overrides over
// paper defaults), the calibrated paper-scale DES configuration, and
// uniform result printing (pretty table + CSV so EXPERIMENTS.md entries
// are copy-pasteable).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "destim/experiment.hpp"

namespace ftc::bench {

/// Seeded Zipf(alpha) sampler over ids [0, n): rank 0 is the hottest id,
/// alpha = 0 degenerates to uniform.  Inverse-CDF over a precomputed
/// prefix-sum table of 1/(i+1)^alpha, so draws are O(log n) and the same
/// seed always yields the same access stream — shared by bench_skew and
/// the workload ablation so their skew axes mean the same thing.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double alpha, std::uint64_t seed);

  /// Draws the next id; ids with lower rank are (exponentially) hotter.
  std::uint64_t next();

  /// Probability mass of rank `i` (diagnostics / expected-share math).
  [[nodiscard]] double probability(std::uint64_t rank) const;

  [[nodiscard]] std::uint64_t size() const { return cdf_.size(); }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<double> cdf_;  ///< normalized prefix sums of 1/(i+1)^alpha
  Rng rng_;
};

/// ZipfGenerator composed with a seeded random permutation of the id
/// space: popularity ranks are Zipf but which *id* is hot is scrambled,
/// so hot ids do not cluster at the low end of the namespace (hash-ring
/// placement then sees a realistic scattered hot set).
class ScrambledZipfGenerator {
 public:
  /// `seed` fixes the permutation (WHICH ids are hot); `stream`
  /// differentiates the draw sequence.  Concurrent sources sharing a
  /// dataset use one seed + distinct streams, so they agree on the hot
  /// set but do not draw in lockstep.
  ScrambledZipfGenerator(std::uint64_t n, double alpha, std::uint64_t seed,
                         std::uint64_t stream = 0);

  std::uint64_t next() { return perm_[zipf_.next()]; }

  /// The id holding popularity rank `rank` under the scramble.
  [[nodiscard]] std::uint64_t id_for_rank(std::uint64_t rank) const {
    return perm_[rank];
  }
  [[nodiscard]] double probability(std::uint64_t rank) const {
    return zipf_.probability(rank);
  }
  [[nodiscard]] std::uint64_t size() const { return zipf_.size(); }

 private:
  ZipfGenerator zipf_;
  std::vector<std::uint64_t> perm_;
};

/// Parses key=value args; prints usage and exits on malformed input.
Config parse_args(int argc, char** argv);

/// The scaled-down Frontier/CosmoFlow configuration (DESIGN.md Sec 2):
/// dataset shrunk ~8x, device/network rates from Table II, PFS job-share
/// and fixed overheads scaled to preserve the paper's cache-vs-PFS cost
/// ratios.  `node_count` and `mode` are the experiment axes.
destim::ExperimentConfig paper_config(std::uint32_t node_count,
                                      cluster::FtMode mode);

/// Applies the standard overrides (files=, file_mb=, epochs=, compute_ms=,
/// timeout_ms=, limit=, vnodes=, restart_ms=, pfs_gbps=, pfs_client_mbps=)
/// to a config.
void apply_overrides(destim::ExperimentConfig& config, const Config& args);

/// Node-count sweep for the scaling figures; override with scales=64,128.
std::vector<std::uint32_t> scales_from(const Config& args);

/// Prints a titled table followed by its CSV form.
void print_table(const std::string& title, const TextTable& table);

/// "64, 128, ..." label helper.
std::string minutes_label(double simulated_minutes);

}  // namespace ftc::bench
