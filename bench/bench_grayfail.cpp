// bench_grayfail.cpp - Tail latency under gray failures: hedged reads and
// probation/reinstatement.
//
// The paper's detector only handles crash-stop nodes; a node that is alive
// but *slow* (the canonical gray failure) never trips TIMEOUT_LIMIT and
// silently drags every read it owns to its added latency.  This bench
// quantifies that and the two defenses, on the real threaded cluster:
//
//   healthy        all nodes fast — the baseline read-latency profile;
//   slow_unhedged  one node +slow_ms of injected latency, hedging off:
//                  p99 collapses to the injected latency (the problem);
//   slow_hedged    same fault, hedged reads on: after the adaptive hedge
//                  delay the client races the ring successor and takes
//                  the first answer, so p99 stays near the healthy tail;
//   reinstatement  crash-stop a node, let probation remove it, revive it
//                  (NVMe wiped) and verify the backoff probe re-adds it
//                  via the elastic path with keys recached on first touch.
//
// Writes machine-readable BENCH_grayfail.json (override with out=...),
// including the headline bound: slow_hedged p99 < 3x healthy p99.  With
// trace=1 (the default) the reinstatement phase also reports the
// flight-recorder timeline: kill -> first suspicion -> probation ring
// update -> reinstatement ring update.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/failure_injector.hpp"
#include "membership/event.hpp"
#include "obs/flight_recorder.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ftc::cluster::Cluster;
using ftc::cluster::ClusterConfig;
using ftc::cluster::FtMode;
using ftc::cluster::GrayFailureInjector;
using ftc::cluster::NodeHealth;
using ftc::cluster::NodeId;
using ftc::membership::RingEventType;
using ftc::obs::Record;
using ftc::obs::RecordKind;

struct BenchArgs {
  std::uint32_t nodes = 4;
  std::uint32_t files = 48;
  std::uint32_t file_kb = 256;
  std::uint32_t passes = 6;
  std::uint32_t slow_ms = 10;
  // Per-read think time, modelling the compute step between batch loads.
  // Keeps the offered load on the slow node below its degraded service
  // rate: without pacing, hedged clients stop blocking on the slow node
  // and its queue grows without bound — an artifact of the closed-loop
  // harness, not of hedging (real ingest is throttled by the GPU).
  std::uint32_t think_ms = 15;
  std::uint32_t trace = 1;  ///< 0: untraced legacy run
  std::string out = "BENCH_grayfail.json";
};

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr,
                   "usage: %s [nodes=N] [files=N] [file_kb=N] [passes=N] "
                   "[slow_ms=N] [think_ms=N] [trace=0|1] [out=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    const auto numeric = [&key, &value]() -> std::uint32_t {
      try {
        std::size_t used = 0;
        const unsigned long parsed = std::stoul(value, &used);
        if (used == value.size()) {
          return static_cast<std::uint32_t>(parsed);
        }
      } catch (const std::exception&) {
      }
      std::fprintf(stderr, "%s wants a number, got '%s'\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    };
    if (key == "nodes") args.nodes = numeric();
    else if (key == "files") args.files = numeric();
    else if (key == "file_kb") args.file_kb = numeric();
    else if (key == "passes") args.passes = numeric();
    else if (key == "slow_ms") args.slow_ms = numeric();
    else if (key == "think_ms") args.think_ms = numeric();
    else if (key == "trace") args.trace = numeric();
    else if (key == "out") args.out = value;
    else {
      std::fprintf(stderr, "unknown key: %s\n", key.c_str());
      std::exit(2);
    }
  }
  return args;
}

ClusterConfig make_cluster_config(const BenchArgs& args, bool hedging) {
  ClusterConfig config;
  config.node_count = args.nodes;
  config.client.mode = FtMode::kHashRingRecache;
  // Gray-failure regime: the injected slowness must stay far below the
  // RPC deadline so the detector never fires and only hedging can help.
  config.client.rpc_timeout = std::chrono::milliseconds(200);
  config.client.timeout_limit = 2;
  config.client.probe_backoff = std::chrono::milliseconds(5);
  config.client.probe_backoff_cap = std::chrono::milliseconds(40);
  config.client.hedge_reads = hedging;
  // Eager hedging: on this single-socket harness an extra RPC is nearly
  // free next to a 10 ms gray stall, so hedge right at the healthy p75.
  config.client.hedge_quantile = 75.0;
  config.client.hedge_delay_multiplier = 1.0;
  config.client.hedge_min_delay = std::chrono::microseconds(100);
  config.client.hedge_min_samples = 16;
  config.server.async_data_mover = true;
  config.server.cache_capacity_bytes = 1ULL << 32;
  if (args.trace != 0) {
    config.obs.tracing = true;
    config.obs.sample_every = 1;
    config.obs.recorder_capacity = 1u << 14;
  }
  return config;
}

struct PhaseResult {
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t failures = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedge_wins = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

/// One pass-loop of warm reads per node (each client driven by its own
/// thread, as in a co-located training job).
PhaseResult run_read_phase(const std::string& name, Cluster& cluster,
                           const std::vector<std::string>& paths,
                           std::uint32_t passes,
                           std::chrono::milliseconds think) {
  std::uint64_t hedges_before = 0;
  std::uint64_t wins_before = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    const auto s = cluster.client(n).stats_snapshot();
    hedges_before += s.hedges_launched;
    wins_before += s.hedge_wins;
  }

  const std::uint32_t threads = cluster.node_count();
  std::vector<std::vector<double>> latencies(threads);
  std::vector<std::uint64_t> failures(threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([t, passes, think, &cluster, &paths, &latencies,
                          &failures] {
      auto& client = cluster.client(t);
      for (std::uint32_t pass = 0; pass < passes; ++pass) {
        for (const auto& path : paths) {
          const auto start = Clock::now();
          if (client.read_file(path).is_ok()) {
            latencies[t].push_back(std::chrono::duration<double, std::micro>(
                                       Clock::now() - start)
                                       .count());
          } else {
            ++failures[t];
          }
          if (think.count() > 0) std::this_thread::sleep_for(think);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  PhaseResult result;
  result.name = name;
  std::vector<double> merged;
  for (auto& l : latencies) merged.insert(merged.end(), l.begin(), l.end());
  for (std::uint64_t f : failures) result.failures += f;
  result.ops = merged.size();
  std::sort(merged.begin(), merged.end());
  result.p50_us = percentile(merged, 50.0);
  result.p99_us = percentile(merged, 99.0);
  result.max_us = merged.empty() ? 0.0 : merged.back();
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    const auto s = cluster.client(n).stats_snapshot();
    result.hedges_launched += s.hedges_launched;
    result.hedge_wins += s.hedge_wins;
  }
  result.hedges_launched -= hedges_before;
  result.hedge_wins -= wins_before;
  return result;
}

struct ReinstatementResult {
  bool flagged = false;
  bool reinstated = false;
  bool ownership_regained = false;
  bool recached_on_first_touch = false;
  std::uint64_t probes_sent = 0;
  double time_to_reinstate_ms = 0.0;
  // Flight-recorder timeline (trace=1 only; -1 = event never recorded).
  bool trace_enabled = false;
  std::uint64_t trace_records = 0;
  double suspicion_ms = -1.0;   ///< kill -> detector flags the victim
  double probation_ms = -1.0;   ///< kill -> probation ring update
  double reinstate_ms = -1.0;   ///< revive -> reinstatement ring update
};

/// Crash-stop a node, let the client put it in probation, revive it with
/// its cache wiped, and measure the probe-driven return to the ring.
ReinstatementResult run_reinstatement(Cluster& cluster,
                                      const std::vector<std::string>& paths) {
  ReinstatementResult result;
  const NodeId victim = 1;
  auto& client = cluster.client(0);

  // Reconstructs the detection/recovery timeline from the per-node flight
  // recorders; called before every return so partial runs still report
  // whatever markers were reached.
  const auto derive_timeline = [&cluster, victim](ReinstatementResult& r,
                                                  std::int64_t fail_ns,
                                                  std::int64_t revive_ns) {
    if (cluster.flight_recorder(0) == nullptr) return;
    r.trace_enabled = true;
    const std::vector<Record> records = cluster.dump_traces();
    r.trace_records = records.size();
    for (const Record& rec : records) {
      if (rec.node != victim) continue;
      if (r.suspicion_ms < 0 && rec.kind == RecordKind::kSuspicion &&
          rec.start_ns >= fail_ns) {
        r.suspicion_ms = static_cast<double>(rec.start_ns - fail_ns) / 1e6;
      }
      if (rec.kind != RecordKind::kRingUpdate) continue;
      if (r.probation_ms < 0 &&
          rec.code == static_cast<std::uint32_t>(RingEventType::kProbation) &&
          rec.start_ns >= fail_ns) {
        r.probation_ms = static_cast<double>(rec.start_ns - fail_ns) / 1e6;
      }
      if (r.reinstate_ms < 0 &&
          rec.code == static_cast<std::uint32_t>(RingEventType::kReinstate) &&
          rec.start_ns >= revive_ns) {
        r.reinstate_ms = static_cast<double>(rec.start_ns - revive_ns) / 1e6;
      }
    }
  };

  std::string victim_path;
  std::string driver_path;
  for (const auto& path : paths) {
    const NodeId owner = client.current_owner(path);
    if (owner == victim && victim_path.empty()) victim_path = path;
    if (owner != victim && driver_path.empty()) driver_path = path;
    if (!victim_path.empty() && !driver_path.empty()) break;
  }
  if (victim_path.empty() || driver_path.empty()) return result;

  const std::int64_t fail_ns = ftc::obs::now_ns();
  // Until the revive actually happens, no record can qualify as a
  // reinstatement marker.
  std::int64_t revive_ns = std::numeric_limits<std::int64_t>::max();
  cluster.fail_node(victim);
  // Detection: successive timeouts move the node suspect -> probation.
  // Bounded loop because async verdicts (probe/hedge legs) land through
  // the client mailbox on subsequent reads rather than inline.
  const auto flag_deadline = Clock::now() + std::chrono::seconds(5);
  while (client.node_health(victim) != NodeHealth::kProbation &&
         Clock::now() < flag_deadline) {
    (void)client.read_file(victim_path);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  result.flagged = client.node_health(victim) == NodeHealth::kProbation;
  if (!result.flagged) {
    derive_timeline(result, fail_ns, revive_ns);
    return result;
  }

  cluster.restore_node(victim, /*lose_cache=*/true);
  revive_ns = ftc::obs::now_ns();
  const auto revive_time = Clock::now();
  const auto deadline = revive_time + std::chrono::seconds(5);
  while (client.stats_snapshot().nodes_reinstated == 0 &&
         Clock::now() < deadline) {
    (void)client.read_file(driver_path);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto stats = client.stats_snapshot();
  result.reinstated = stats.nodes_reinstated > 0;
  result.probes_sent = stats.probes_sent;
  result.time_to_reinstate_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - revive_time)
          .count();
  if (!result.reinstated) {
    derive_timeline(result, fail_ns, revive_ns);
    return result;
  }

  result.ownership_regained = client.current_owner(victim_path) == victim;
  const auto misses_before =
      cluster.server(victim).stats_snapshot().cache_misses;
  (void)client.read_file(victim_path);
  result.recached_on_first_touch =
      cluster.server(victim).stats_snapshot().cache_misses > misses_before;
  derive_timeline(result, fail_ns, revive_ns);
  return result;
}

const char* json_bool(bool b) { return b ? "true" : "false"; }

void emit_json(const BenchArgs& args, const PhaseResult& healthy,
               const PhaseResult& slow_unhedged,
               const PhaseResult& slow_hedged,
               const ReinstatementResult& reinstatement, double ratio,
               bool bound_ok) {
  std::ofstream out(args.out);
  out << "{\n  \"bench\": \"bench_grayfail\",\n";
  out << "  \"config\": {\"nodes\": " << args.nodes
      << ", \"files\": " << args.files << ", \"file_kb\": " << args.file_kb
      << ", \"passes\": " << args.passes
      << ", \"slow_ms\": " << args.slow_ms
      << ", \"think_ms\": " << args.think_ms
      << ", \"trace\": " << args.trace << "},\n";
  out << "  \"phases\": {\n";
  const PhaseResult* phases[] = {&healthy, &slow_unhedged, &slow_hedged};
  for (std::size_t i = 0; i < 3; ++i) {
    const PhaseResult& p = *phases[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    \"%s\": {\"ops\": %llu, \"failures\": %llu, "
                  "\"p50_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f, "
                  "\"hedges_launched\": %llu, \"hedge_wins\": %llu}%s\n",
                  p.name.c_str(), static_cast<unsigned long long>(p.ops),
                  static_cast<unsigned long long>(p.failures), p.p50_us,
                  p.p99_us, p.max_us,
                  static_cast<unsigned long long>(p.hedges_launched),
                  static_cast<unsigned long long>(p.hedge_wins),
                  i + 1 < 3 ? "," : "");
    out << line;
  }
  out << "  },\n";
  char summary[256];
  std::snprintf(summary, sizeof(summary),
                "  \"hedged_p99_over_healthy_p99\": %.2f,\n"
                "  \"hedged_p99_within_3x_healthy\": %s,\n",
                ratio, json_bool(bound_ok));
  out << summary;
  out << "  \"reinstatement\": {"
      << "\"flagged\": " << json_bool(reinstatement.flagged)
      << ", \"reinstated\": " << json_bool(reinstatement.reinstated)
      << ", \"ownership_regained\": "
      << json_bool(reinstatement.ownership_regained)
      << ", \"recached_on_first_touch\": "
      << json_bool(reinstatement.recached_on_first_touch)
      << ", \"probes_sent\": " << reinstatement.probes_sent;
  char ms[256];
  std::snprintf(ms, sizeof(ms), ", \"time_to_reinstate_ms\": %.1f",
                reinstatement.time_to_reinstate_ms);
  out << ms;
  if (reinstatement.trace_enabled) {
    std::snprintf(ms, sizeof(ms),
                  ", \"trace\": {\"records\": %llu, \"suspicion_ms\": %.1f, "
                  "\"probation_ms\": %.1f, \"reinstate_ms\": %.1f}",
                  static_cast<unsigned long long>(reinstatement.trace_records),
                  reinstatement.suspicion_ms, reinstatement.probation_ms,
                  reinstatement.reinstate_ms);
    out << ms;
  }
  out << "}\n";
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", args.out.c_str());
    std::exit(1);
  }
}

void print_phase(const PhaseResult& p) {
  std::printf("%-14s %8llu ops %6llu fail  p50 %9.1f us  p99 %9.1f us  "
              "hedges %llu (wins %llu)\n",
              p.name.c_str(), static_cast<unsigned long long>(p.ops),
              static_cast<unsigned long long>(p.failures), p.p50_us,
              p.p99_us, static_cast<unsigned long long>(p.hedges_launched),
              static_cast<unsigned long long>(p.hedge_wins));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  const std::uint32_t file_bytes = args.file_kb * 1024;
  const NodeId slow_node = args.nodes - 1;

  const std::chrono::milliseconds think(args.think_ms);

  // --- healthy + slow_hedged share a hedging cluster --------------------
  Cluster hedged(make_cluster_config(args, /*hedging=*/true));
  const auto paths = hedged.stage_dataset(args.files, file_bytes);
  hedged.warm_caches(paths);
  const auto healthy =
      run_read_phase("healthy", hedged, paths, args.passes, think);

  GrayFailureInjector injector(hedged.transport(), /*seed=*/1);
  injector.make_slow(slow_node, std::chrono::milliseconds(args.slow_ms));
  const auto slow_hedged =
      run_read_phase("slow_hedged", hedged, paths, args.passes, think);
  injector.clear_slow(slow_node);

  // --- slow_unhedged: same fault, hedging off (fresh cluster) -----------
  Cluster unhedged(make_cluster_config(args, /*hedging=*/false));
  const auto unhedged_paths = unhedged.stage_dataset(args.files, file_bytes);
  unhedged.warm_caches(unhedged_paths);
  GrayFailureInjector unhedged_injector(unhedged.transport(), /*seed=*/1);
  unhedged_injector.make_slow(slow_node,
                              std::chrono::milliseconds(args.slow_ms));
  const auto slow_unhedged = run_read_phase(
      "slow_unhedged", unhedged, unhedged_paths, args.passes, think);
  unhedged_injector.clear_slow(slow_node);

  // --- reinstatement: crash-stop detection is synchronous on the
  // unhedged client, which keeps this phase deterministic -----------------
  const auto reinstatement = run_reinstatement(unhedged, unhedged_paths);

  const double ratio =
      healthy.p99_us > 0.0 ? slow_hedged.p99_us / healthy.p99_us : 0.0;
  const bool bound_ok = ratio > 0.0 && ratio < 3.0;

  print_phase(healthy);
  print_phase(slow_unhedged);
  print_phase(slow_hedged);
  std::printf("hedged p99 / healthy p99 = %.2f (%s)\n", ratio,
              bound_ok ? "within 3x bound" : "EXCEEDS 3x bound");
  std::printf("reinstatement: flagged=%s reinstated=%s ring=%s "
              "first_touch_recache=%s probes=%llu t=%.1f ms\n",
              json_bool(reinstatement.flagged),
              json_bool(reinstatement.reinstated),
              json_bool(reinstatement.ownership_regained),
              json_bool(reinstatement.recached_on_first_touch),
              static_cast<unsigned long long>(reinstatement.probes_sent),
              reinstatement.time_to_reinstate_ms);
  if (reinstatement.trace_enabled) {
    std::printf("reinstatement timeline (flight recorder, %llu records): "
                "suspicion %+.1f ms probation %+.1f ms after kill; "
                "reinstate %+.1f ms after revive\n",
                static_cast<unsigned long long>(reinstatement.trace_records),
                reinstatement.suspicion_ms, reinstatement.probation_ms,
                reinstatement.reinstate_ms);
  }
  emit_json(args, healthy, slow_unhedged, slow_hedged, reinstatement, ratio,
            bound_ok);
  std::printf("wrote %s\n", args.out.c_str());
  return bound_ok && reinstatement.reinstated ? 0 : 1;
}
