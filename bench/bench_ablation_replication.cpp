// Ablation (extension beyond the paper): replicated caching.  Storing
// every file on the first R ring owners removes even the "one PFS access
// per lost file" of elastic recaching — a failure is served entirely from
// the successor's NVMe — at R x the NVMe footprint and extra warm-up NIC
// traffic.  Compares FT w/ PFS, FT w/ NVMe (R=1, the paper's system) and
// R=2/3 under the Fig 5(b) failure schedule.
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  using cluster::FtMode;
  const Config args = bench::parse_args(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 256));
  const auto failure_count =
      static_cast<std::uint32_t>(args.get_int("failures", 5));

  cluster::FailurePlanParams plan;
  plan.node_count = nodes;
  plan.failure_count = failure_count;
  plan.first_eligible_epoch = 1;
  plan.total_epochs = 5;
  plan.seed = static_cast<std::uint64_t>(args.get_int("fail_seed", 42));
  auto failures = cluster::plan_failures(plan);
  for (auto& failure : failures) failure.epoch_fraction *= 0.3;

  struct Variant {
    const char* name;
    FtMode mode;
    std::uint32_t replication;
    bool checkpoint_restart;
  };
  const Variant variants[] = {
      {"Checkpoint restart (model-state FT only)", FtMode::kNone, 1, true},
      {"FT w/ PFS", FtMode::kPfsRedirect, 1, false},
      {"FT w/ NVMe (R=1, paper)", FtMode::kHashRingRecache, 1, false},
      {"FT w/ NVMe + replication R=2", FtMode::kHashRingRecache, 2, false},
      {"FT w/ NVMe + replication R=3", FtMode::kHashRingRecache, 3, false},
  };

  TextTable table({"System", "Total (min)", "Post-warmup PFS reads",
                   "Timeouts", "Peak NVMe/node"});
  for (const Variant& variant : variants) {
    auto config = bench::paper_config(nodes, variant.mode);
    bench::apply_overrides(config, args);
    config.replication_factor = variant.replication;
    config.checkpoint_restart = variant.checkpoint_restart;
    config.failures = failures;
    const auto result = destim::run_experiment(config);
    std::uint64_t post_warmup_pfs = 0;
    for (const auto& epoch : result.epochs) {
      if (epoch.epoch > 0) post_warmup_pfs += epoch.pfs_reads;
    }
    table.add_row({variant.name,
                   result.completed ? format_double(result.total_minutes(), 3)
                                    : "DNF",
                   std::to_string(post_warmup_pfs),
                   std::to_string(result.total_timeouts),
                   format_bytes(result.peak_node_cache_bytes)});
    std::fprintf(stderr, "[replication] %s done\n", variant.name);
  }
  bench::print_table(
      "Ablation: recovery strategies — checkpoint restart vs PFS "
      "redirection vs recaching vs replication (" +
          std::to_string(nodes) + " nodes, " +
          std::to_string(failure_count) + " failures)",
      table);
  std::printf(
      "expected: checkpoint restart (model-state FT without cache FT, the "
      "related-work approach) re-warms the ENTIRE dataset per crash; R=2 "
      "eliminates post-failure PFS reads entirely at 2x the NVMe "
      "footprint; R=1 is the paper's trade-off\n");
  return 0;
}
