// bench_pressure.cpp - Tiered-store behaviour under cache pressure.
//
// The figure benches measure placement; this one measures the store
// itself, in the regime the tiered design exists for: a dataset several
// times the RAM tier, epoch-style sequential scans (LRU's worst case),
// and a reclaim thread demoting under live writes.  Three phases:
//
//   scan       One store per eviction policy: a hot set is warmed with
//              Zipf(zipf_alpha) draws (repeat draws prove reuse), then
//              `epochs` sequential sweeps stream a dataset 4x RAM (and
//              larger than RAM+NVMe combined, so the cold tier churns
//              too), each miss recaching as a training job would.  The
//              measured quantity is the hot set's hit ratio on a revisit
//              AFTER the scans.  Under LRU the one-touch stream flushes
//              the hot set out of both tiers; S3-FIFO's probationary
//              queue absorbs it, so proven-reuse entries never leave the
//              main queue.  Gate: s3fifo >= hit_factor x lru.
//
//   writes     Put latency with the background reclaim thread churning
//              (RAM held above the high watermark) versus unpressured.
//              Writes must never block on reclaim.  Gate: pressured p99
//              <= max(p99_factor x base, base + p99_slack_us).
//
//   warm       A tiered cluster node is killed and warm-restarted from
//              its surviving NVMe manifest, with one entry deliberately
//              superseded cluster-side while the node was down.  Gates:
//              >= warm_fraction of the valid manifest re-serves with
//              ZERO new PFS reads, and the stale entry is rejected.
//
// Writes machine-readable BENCH_pressure.json (override with out=...).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "store/tiered_store.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ftc::store::PolicyKind;
using ftc::store::StoreConfig;
using ftc::store::TieredCacheStore;

struct BenchArgs {
  /// RAM-tier budget; the dataset is dataset_x times this, the NVMe tier
  /// nvme_x times (nvme_x < dataset_x keeps the cold tier churning).
  std::uint32_t ram_kb = 2048;
  std::uint32_t file_kb = 4;
  std::uint32_t dataset_x = 4;
  std::uint32_t nvme_x = 2;
  std::uint32_t epochs = 4;
  /// Hot set: `hot_files` ids warmed with `warm_draws_x` x hot_files
  /// Zipf(zipf_alpha) draws before the scans.
  std::uint32_t hot_files = 64;
  std::uint32_t warm_draws_x = 8;
  double zipf_alpha = 0.8;
  /// Timed puts per write-latency run.
  std::uint32_t writes = 4000;
  /// Warm-restart phase cluster shape.
  std::uint32_t nodes = 4;
  std::uint32_t wr_files = 64;
  std::uint32_t wr_file_kb = 16;
  std::uint32_t require_hit = 1;
  std::uint32_t require_p99 = 1;
  std::uint32_t require_warm = 1;
  double hit_factor = 1.3;
  double p99_factor = 1.2;
  double p99_slack_us = 200.0;
  double warm_fraction = 0.95;
  std::uint64_t seed = 42;
  std::string out = "BENCH_pressure.json";
};

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr,
                   "usage: %s [ram_kb=N] [file_kb=N] [dataset_x=N] [nvme_x=N] "
                   "[epochs=N] [hot_files=N] [warm_draws_x=N] [zipf_alpha=F] "
                   "[writes=N] [nodes=N] [wr_files=N] "
                   "[wr_file_kb=N] [require_hit=0|1] [require_p99=0|1] "
                   "[require_warm=0|1] [hit_factor=F] [p99_factor=F] "
                   "[p99_slack_us=F] [warm_fraction=F] [seed=N] [out=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    const auto numeric = [&key, &value]() -> std::uint32_t {
      try {
        std::size_t used = 0;
        const unsigned long parsed = std::stoul(value, &used);
        if (used == value.size()) return static_cast<std::uint32_t>(parsed);
      } catch (const std::exception&) {
      }
      std::fprintf(stderr, "%s wants a number, got '%s'\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    };
    const auto fractional = [&key, &value]() -> double {
      try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used == value.size()) return parsed;
      } catch (const std::exception&) {
      }
      std::fprintf(stderr, "%s wants a number, got '%s'\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    };
    if (key == "ram_kb") args.ram_kb = numeric();
    else if (key == "file_kb") args.file_kb = numeric();
    else if (key == "dataset_x") args.dataset_x = numeric();
    else if (key == "nvme_x") args.nvme_x = numeric();
    else if (key == "epochs") args.epochs = numeric();
    else if (key == "hot_files") args.hot_files = numeric();
    else if (key == "warm_draws_x") args.warm_draws_x = numeric();
    else if (key == "zipf_alpha") args.zipf_alpha = fractional();
    else if (key == "writes") args.writes = numeric();
    else if (key == "nodes") args.nodes = numeric();
    else if (key == "wr_files") args.wr_files = numeric();
    else if (key == "wr_file_kb") args.wr_file_kb = numeric();
    else if (key == "require_hit") args.require_hit = numeric();
    else if (key == "require_p99") args.require_p99 = numeric();
    else if (key == "require_warm") args.require_warm = numeric();
    else if (key == "hit_factor") args.hit_factor = fractional();
    else if (key == "p99_factor") args.p99_factor = fractional();
    else if (key == "p99_slack_us") args.p99_slack_us = fractional();
    else if (key == "warm_fraction") args.warm_fraction = fractional();
    else if (key == "seed") args.seed = numeric();
    else if (key == "out") args.out = value;
    else {
      std::fprintf(stderr, "unknown key: %s\n", key.c_str());
      std::exit(2);
    }
  }
  return args;
}

std::string fmt(double v, int digits = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

// --- scan phase --------------------------------------------------------

struct ScanResult {
  double hit_ratio = 0.0;   ///< hot-set hits on the post-scan revisit
  double ram_ratio = 0.0;   ///< survivors still in the RAM tier
  std::uint64_t warmed = 0; ///< distinct hot ids touched during warm-up
  std::uint64_t demotions = 0;
  std::uint64_t evictions = 0;
};

ScanResult run_scan(const BenchArgs& args, PolicyKind policy) {
  StoreConfig config;
  config.tiering = true;
  config.ram_bytes = std::uint64_t{args.ram_kb} << 10;
  config.nvme_bytes = config.ram_bytes * args.nvme_x;
  config.policy = policy;
  config.background_reclaim = false;  // deterministic hit counts
  // Tight watermarks: reclaim runs as a steady trickle that tracks the
  // insert rate instead of rare bulk drains, so victim selection reflects
  // the policy's ordering, not burst depth.
  config.low_watermark = 0.85;
  config.high_watermark = 0.95;
  TieredCacheStore store(config);

  const std::uint64_t file_bytes = std::uint64_t{args.file_kb} << 10;
  const auto files = static_cast<std::uint32_t>(
      config.ram_bytes * args.dataset_x / file_bytes);
  const std::string payload(file_bytes, 'p');

  const auto access = [&](std::uint32_t f) {
    const std::string path = "/d/" + std::to_string(f);
    if (store.get(path).is_ok()) return true;
    // Miss -> "PFS fetch" + recache, as the training job would.
    (void)store.put(path, ftc::common::Buffer(payload), file_bytes, 0);
    return false;
  };

  // Warm the hot set (the first hot_files dataset members) with Zipf
  // draws: every policy sees the identical stream, repeat draws are the
  // reuse signal S3-FIFO's admission control keys on.
  ftc::bench::ZipfGenerator hot(args.hot_files, args.zipf_alpha, args.seed);
  std::vector<bool> warmed(args.hot_files, false);
  for (std::uint32_t d = 0; d < args.warm_draws_x * args.hot_files; ++d) {
    const auto id = static_cast<std::uint32_t>(hot.next());
    (void)access(id);
    warmed[id] = true;
  }

  // The scan phase: epoch-style sequential sweeps of the full dataset.
  for (std::uint32_t epoch = 0; epoch < args.epochs; ++epoch) {
    for (std::uint32_t f = 0; f < files; ++f) (void)access(f);
  }

  // Revisit: what fraction of the warmed hot set still hits (either
  // tier)?  Pure gets — misses are NOT recached, so the measurement
  // does not disturb itself.
  ScanResult result;
  std::uint64_t hits = 0, ram = 0;
  for (std::uint32_t id = 0; id < args.hot_files; ++id) {
    if (!warmed[id]) continue;
    ++result.warmed;
    const std::string path = "/d/" + std::to_string(id);
    if (store.tier_of(path) == "ram") ++ram;
    if (store.contains(path)) ++hits;
  }
  if (result.warmed > 0) {
    result.hit_ratio =
        static_cast<double>(hits) / static_cast<double>(result.warmed);
    result.ram_ratio =
        static_cast<double>(ram) / static_cast<double>(result.warmed);
  }
  const auto stats = store.stats_snapshot();
  result.demotions = stats.demotions;
  result.evictions = stats.evictions;
  return result;
}

// --- write-latency phase -----------------------------------------------

struct WriteResult {
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t reclaim_runs = 0;
  std::uint64_t demotions = 0;
};

double percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[rank];
}

WriteResult run_writes(const BenchArgs& args, bool pressured) {
  const std::uint64_t file_bytes = std::uint64_t{args.file_kb} << 10;
  StoreConfig config;
  config.tiering = true;
  // Unpressured: RAM swallows every write without ever crossing the high
  // watermark.  Pressured: RAM holds ~64 files, so the reclaim thread
  // demotes continuously underneath the timed writes.
  config.ram_bytes = pressured ? file_bytes * 64
                               : file_bytes * (args.writes + 64);
  config.nvme_bytes = file_bytes * (args.writes + 64);
  config.policy = PolicyKind::kS3Fifo;
  config.background_reclaim = true;
  TieredCacheStore store(config);

  const std::string payload(file_bytes, 'w');
  std::vector<double> latencies_us;
  latencies_us.reserve(args.writes);
  for (std::uint32_t i = 0; i < args.writes; ++i) {
    const std::string path = "/w/" + std::to_string(i);
    const auto start = Clock::now();
    (void)store.put(path, ftc::common::Buffer(payload), file_bytes, 0);
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count());
  }
  store.wait_reclaimed();

  std::sort(latencies_us.begin(), latencies_us.end());
  WriteResult result;
  result.p50_us = percentile(latencies_us, 0.50);
  result.p99_us = percentile(latencies_us, 0.99);
  const auto stats = store.stats_snapshot();
  result.reclaim_runs = stats.reclaim_runs;
  result.demotions = stats.demotions;
  return result;
}

// --- warm-restart phase ------------------------------------------------

struct WarmResult {
  std::size_t held = 0;      ///< valid manifest entries before the kill
  std::size_t restored = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t pfs_reads_reserve = 0;  ///< PFS reads during the re-serve
  double restored_fraction = 0.0;
};

WarmResult run_warm_restart(const BenchArgs& args) {
  using ftc::cluster::Cluster;
  using ftc::cluster::ClusterConfig;
  using ftc::cluster::NodeId;

  ClusterConfig config;
  config.node_count = args.nodes;
  config.client.mode = ftc::cluster::FtMode::kHashRingRecache;
  config.client.rpc_timeout = std::chrono::milliseconds(5000);
  config.client.timeout_limit = 2;
  config.server.async_data_mover = false;
  config.server.store.tiering = true;
  config.server.store.ram_bytes = 64ULL << 20;
  config.server.store.nvme_bytes = 256ULL << 20;
  config.server.store.background_reclaim = false;
  Cluster cluster(config);

  const auto paths =
      cluster.stage_dataset(args.wr_files, args.wr_file_kb * 1024);
  cluster.warm_caches(paths);

  const NodeId victim = args.nodes / 2;
  // One deliberately superseded entry: the victim holds generation 5,
  // but while it is "down" an alive peer's ledger moves on to 7.
  ftc::rpc::RpcRequest put;
  put.op = ftc::rpc::Op::kPut;
  put.path = "/pressure/superseded";
  put.payload = ftc::common::Buffer(std::string(1024, 's'));
  put.replica_generation = 5;
  (void)cluster.server(victim).handle(put);
  cluster.server(victim).flush_cache_to_cold();

  put.replica_generation = 7;
  (void)cluster.server(victim == 0 ? 1 : 0).handle(put);

  WarmResult result;
  result.held = cluster.server(victim).cached_file_count() - 1;  // - stale
  result.restored = cluster.restart_node_warm(victim);
  const auto stats = cluster.server(victim).store_stats();
  result.rejected_stale = stats.manifest_rejected_stale;
  if (result.held > 0) {
    result.restored_fraction = static_cast<double>(result.restored) /
                               static_cast<double>(result.held);
  }

  const auto pfs_before = cluster.pfs().read_count();
  for (const auto& path : paths) {
    (void)cluster.client(0).read_file(path);
  }
  result.pfs_reads_reserve = cluster.pfs().read_count() - pfs_before;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);

  std::printf("%-8s %12s %12s %12s %12s\n", "policy", "hot-set hit",
              "still in RAM", "demotions", "evictions");
  const ScanResult lru = run_scan(args, PolicyKind::kLru);
  const ScanResult s3 = run_scan(args, PolicyKind::kS3Fifo);
  const ScanResult gdsf = run_scan(args, PolicyKind::kGdsf);
  for (const auto& [name, r] :
       {std::pair<const char*, const ScanResult&>{"lru", lru},
        {"s3fifo", s3},
        {"gdsf", gdsf}}) {
    std::printf("%-8s %12s %12s %12llu %12llu\n", name,
                fmt(r.hit_ratio, 4).c_str(), fmt(r.ram_ratio, 4).c_str(),
                static_cast<unsigned long long>(r.demotions),
                static_cast<unsigned long long>(r.evictions));
  }
  // LRU's loop pathology can drive its ratio to exactly 0; floor it so
  // the gate ratio stays finite.
  const double lru_floor = std::max(lru.hit_ratio, 0.02);
  const double scan_ratio = s3.hit_ratio / lru_floor;

  const WriteResult base = run_writes(args, /*pressured=*/false);
  const WriteResult pressured = run_writes(args, /*pressured=*/true);
  std::printf("writes: base p99 %sus, pressured p99 %sus (%llu reclaim "
              "runs, %llu demotions underneath)\n",
              fmt(base.p99_us, 1).c_str(), fmt(pressured.p99_us, 1).c_str(),
              static_cast<unsigned long long>(pressured.reclaim_runs),
              static_cast<unsigned long long>(pressured.demotions));
  const double p99_budget =
      std::max(args.p99_factor * base.p99_us, base.p99_us + args.p99_slack_us);

  const WarmResult warm = run_warm_restart(args);
  std::printf("warm restart: %zu/%zu restored (%s), %llu stale rejected, "
              "%llu PFS reads on re-serve\n",
              warm.restored, warm.held,
              fmt(warm.restored_fraction, 3).c_str(),
              static_cast<unsigned long long>(warm.rejected_stale),
              static_cast<unsigned long long>(warm.pfs_reads_reserve));

  std::ofstream out(args.out);
  out << "{\n  \"bench\": \"bench_pressure\",\n";
  out << "  \"config\": {\"ram_kb\": " << args.ram_kb
      << ", \"file_kb\": " << args.file_kb
      << ", \"dataset_x\": " << args.dataset_x
      << ", \"nvme_x\": " << args.nvme_x << ", \"epochs\": " << args.epochs
      << ", \"hot_files\": " << args.hot_files
      << ", \"warm_draws_x\": " << args.warm_draws_x
      << ", \"zipf_alpha\": " << fmt(args.zipf_alpha, 2)
      << ", \"writes\": " << args.writes << ", \"nodes\": " << args.nodes
      << ", \"wr_files\": " << args.wr_files << ", \"seed\": " << args.seed
      << "},\n";
  out << "  \"scan\": {\n";
  for (const auto& [name, r] :
       {std::pair<const char*, const ScanResult&>{"lru", lru},
        {"s3fifo", s3},
        {"gdsf", gdsf}}) {
    out << "    \"" << name
        << "\": {\"hot_set_hit_ratio\": " << fmt(r.hit_ratio, 4)
        << ", \"ram_ratio\": " << fmt(r.ram_ratio, 4)
        << ", \"warmed\": " << r.warmed
        << ", \"demotions\": " << r.demotions
        << ", \"evictions\": " << r.evictions << "},\n";
  }
  out << "    \"s3fifo_vs_lru\": " << fmt(scan_ratio, 2) << "\n  },\n";
  out << "  \"writes\": {\n"
      << "    \"base\": {\"p50_us\": " << fmt(base.p50_us, 1)
      << ", \"p99_us\": " << fmt(base.p99_us, 1)
      << ", \"reclaim_runs\": " << base.reclaim_runs << "},\n"
      << "    \"pressured\": {\"p50_us\": " << fmt(pressured.p50_us, 1)
      << ", \"p99_us\": " << fmt(pressured.p99_us, 1)
      << ", \"reclaim_runs\": " << pressured.reclaim_runs
      << ", \"demotions\": " << pressured.demotions << "},\n"
      << "    \"p99_budget_us\": " << fmt(p99_budget, 1) << "\n  },\n";
  out << "  \"warm\": {\"held\": " << warm.held
      << ", \"restored\": " << warm.restored
      << ", \"restored_fraction\": " << fmt(warm.restored_fraction, 3)
      << ", \"rejected_stale\": " << warm.rejected_stale
      << ", \"pfs_reads_on_reserve\": " << warm.pfs_reads_reserve << "}\n";
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", args.out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.out.c_str());

  int rc = 0;
  if (args.require_hit != 0) {
    if (scan_ratio < args.hit_factor) {
      std::fprintf(stderr,
                   "FAIL: s3fifo scan hit ratio %.4f < %.2f x lru (%.4f)\n",
                   s3.hit_ratio, args.hit_factor, lru_floor);
      rc = 1;
    } else {
      std::printf("scan ok: s3fifo %.4f >= %.2f x lru %.4f\n", s3.hit_ratio,
                  args.hit_factor, lru_floor);
    }
  }
  if (args.require_p99 != 0) {
    if (pressured.p99_us > p99_budget) {
      std::fprintf(stderr,
                   "FAIL: pressured write p99 %.1fus exceeds budget %.1fus "
                   "(base %.1fus)\n",
                   pressured.p99_us, p99_budget, base.p99_us);
      rc = 1;
    } else {
      std::printf("write p99 ok: %.1fus <= %.1fus budget\n", pressured.p99_us,
                  p99_budget);
    }
  }
  if (args.require_warm != 0) {
    if (warm.restored_fraction < args.warm_fraction ||
        warm.pfs_reads_reserve != 0 || warm.rejected_stale != 1) {
      std::fprintf(stderr,
                   "FAIL: warm restart restored %.3f (need >= %.2f), "
                   "%llu PFS reads (need 0), %llu stale rejected (need 1)\n",
                   warm.restored_fraction, args.warm_fraction,
                   static_cast<unsigned long long>(warm.pfs_reads_reserve),
                   static_cast<unsigned long long>(warm.rejected_stale));
      rc = 1;
    } else {
      std::printf("warm ok: %.3f restored, 0 PFS reads, stale rejected\n",
                  warm.restored_fraction);
    }
  }
  return rc;
}
