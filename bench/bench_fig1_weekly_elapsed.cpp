// Reproduces Figure 1: average elapsed minutes of failed jobs per week,
// per failure type, over 27 weeks, plus the overall mean (the red dashed
// line).  Paper's qualitative features: jobs run >1 hour before failing on
// average; Timeout/Node Fail spike to 2-3 hours in some weeks; failures
// occur every single week.
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "trace/failure_analyzer.hpp"
#include "trace/log_generator.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  const Config args = bench::parse_args(argc, argv);

  trace::LogGeneratorParams params;
  params.total_jobs = static_cast<std::uint32_t>(
      args.get_int("jobs", params.total_jobs));
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20240101));

  const trace::FailureAnalyzer analyzer(trace::generate_log(params));
  const auto rows = analyzer.weekly_elapsed(params.weeks);
  const double overall = analyzer.overall_failure_elapsed_mean();

  TextTable table({"Week", "JOB_FAIL (min)", "TIMEOUT (min)",
                   "NODE_FAIL (min)", "Overall (min)", "Failed jobs"});
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.week + 1),
                   format_double(row.job_fail_mean, 1),
                   format_double(row.timeout_mean, 1),
                   format_double(row.node_fail_mean, 1),
                   format_double(row.overall_mean, 1),
                   std::to_string(row.failed_jobs)});
  }
  bench::print_table(
      "Figure 1: avg elapsed time of failed jobs per week (27 weeks)",
      table);

  double spike_weeks = 0;
  for (const auto& row : rows) {
    if (row.timeout_mean > 120.0 || row.node_fail_mean > 120.0) {
      ++spike_weeks;
    }
  }
  std::printf(
      "overall mean elapsed before failure: %s min (paper: >60 min, ~75)\n"
      "weeks where TIMEOUT/NODE_FAIL means exceed 2 hours: %.0f "
      "(paper: several)\n",
      format_double(overall, 1).c_str(), spike_weeks);
  return 0;
}
