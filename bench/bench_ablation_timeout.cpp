// Ablation (Sec IV-A's TTL discussion): how TIMEOUT_SECONDS and
// TIMEOUT_LIMIT shape recovery cost for FT w/ NVMe.  A tight deadline
// detects failures quickly but a loose one "only needs to be greater than
// the longest observed latency"; a higher limit suppresses false positives
// at the cost of limit x timeout of detection delay per client.
#include <cstdio>

#include "bench_common.hpp"
#include "common/string_util.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  using cluster::FtMode;
  const Config args = bench::parse_args(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 128));

  std::vector<double> timeouts_ms;
  for (std::int64_t t : args.get_int_list("timeouts_ms", {25, 50, 100, 200, 400})) {
    timeouts_ms.push_back(static_cast<double>(t));
  }
  std::vector<std::uint32_t> limits;
  for (std::int64_t l : args.get_int_list("limits", {1, 2, 4})) {
    limits.push_back(static_cast<std::uint32_t>(l));
  }

  cluster::PlannedFailure failure;
  failure.victim = nodes / 2;
  failure.epoch = 1;
  failure.epoch_fraction = 0.3;

  // A second node suffers a transient slow period (alive, over-deadline
  // for tight TTLs): the false-positive hazard the threshold absorbs.
  destim::ExperimentConfig::TransientSlowdown blip;
  blip.node = nodes / 4;
  blip.start = simtime::from_seconds(args.get_double("blip_start_s", 2.0));
  blip.duration = simtime::from_ms(args.get_double("blip_ms", 400.0));
  blip.extra_latency =
      simtime::from_ms(args.get_double("blip_extra_ms", 60.0));

  // Baseline without failure for overhead normalization.
  auto base_config = bench::paper_config(nodes, FtMode::kHashRingRecache);
  bench::apply_overrides(base_config, args);
  const auto baseline = destim::run_experiment(base_config);

  TextTable table({"Timeout (ms)", "Limit", "Total (min)",
                   "Overhead vs no-fail %", "Timeouts", "False timeouts",
                   "Falsely flagged"});
  for (const double timeout_ms : timeouts_ms) {
    for (const std::uint32_t limit : limits) {
      auto config = bench::paper_config(nodes, FtMode::kHashRingRecache);
      bench::apply_overrides(config, args);
      config.rpc_timeout = simtime::from_ms(timeout_ms);
      config.timeout_limit = limit;
      config.failures = {failure};
      config.slowdowns = {blip};
      const auto result = destim::run_experiment(config);
      const double overhead =
          100.0 * (result.total_minutes() - baseline.total_minutes()) /
          baseline.total_minutes();
      table.add_row({format_double(timeout_ms, 0), std::to_string(limit),
                     format_double(result.total_minutes(), 3),
                     format_double(overhead, 2),
                     std::to_string(result.total_timeouts),
                     std::to_string(result.total_false_timeouts),
                     std::to_string(result.falsely_flagged_nodes)});
    }
    std::fprintf(stderr, "[timeout ablation] %.0f ms done\n", timeout_ms);
  }
  bench::print_table(
      "Ablation: detection deadline (TIMEOUT_SECONDS) x threshold "
      "(TIMEOUT_LIMIT), FT w/ NVMe, 1 real failure + 1 transient slow node, " +
          std::to_string(nodes) + " nodes",
      table);
  std::printf(
      "expected: overhead grows with timeout x limit (detection delay per "
      "client per dead node); deadlines below the slow node's latency plus "
      "low limits condemn a HEALTHY node (falsely flagged > 0), which the "
      "paper's counter threshold exists to prevent\n");
  return 0;
}
