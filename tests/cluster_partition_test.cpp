// Partition tolerance at cluster level: ring-epoch write fencing (on and
// off), the injector's manual and scheduled split-brain schedules, and the
// full drill — quorum-starved minority defers confirms, majority excludes
// it, and after the heal every view reconverges (the regression guard for
// the epoch-label collision: both sides can present the SAME epoch number
// for DIFFERENT rings, which only the ring-fingerprint check sees).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/failure_injector.hpp"
#include "membership/swim.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig partition_config(std::uint32_t nodes, bool fencing,
                               std::uint32_t quorum = 1) {
  ClusterConfig config;
  config.node_count = nodes;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 50ms;
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.server.async_data_mover = false;
  config.server.cache_capacity_bytes = 64 << 20;
  config.server.fencing.enabled = fencing;
  config.membership.enabled = true;
  config.membership.background = false;
  config.membership.probe_period = 10ms;
  config.membership.probe_timeout = 25ms;
  config.membership.indirect_timeout = 60ms;
  config.membership.suspicion_periods = 3;
  config.membership.suspicion_quorum = quorum;
  config.membership.seed = 5;
  return config;
}

std::optional<int> tick_until(Cluster& cluster,
                              const std::function<bool()>& done,
                              int max_rounds = 600) {
  for (int round = 0; round < max_rounds; ++round) {
    if (done()) return round;
    cluster.tick_membership();
    std::this_thread::sleep_for(2ms);
  }
  return done() ? std::optional<int>(max_rounds) : std::nullopt;
}

rpc::RpcRequest make_put(const std::string& path, NodeId sender,
                         std::uint64_t ring_epoch) {
  rpc::RpcRequest put;
  put.op = rpc::Op::kPut;
  put.path = path;
  put.payload = "partition-test-bytes";
  put.client_node = sender;
  put.ring_epoch = ring_epoch;
  return put;
}

/// Kills `victim` and ticks until the survivors exclude it — the cheapest
/// way to advance every survivor's ring epoch past the stamp a stale
/// writer would carry.
void advance_epochs(Cluster& cluster, GrayFailureInjector& injector,
                    NodeId victim) {
  injector.kill(victim);
  const auto excluded = [&] {
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      if (n == victim) continue;
      if (cluster.membership(n).is_serving(victim)) return false;
    }
    return true;
  };
  ASSERT_TRUE(tick_until(cluster, excluded).has_value());
}

TEST(ClusterPartition, FencingRejectsStaleWriteWithFastForward) {
  Cluster cluster(partition_config(3, /*fencing=*/true));
  GrayFailureInjector injector(cluster.transport(), /*seed=*/1);
  advance_epochs(cluster, injector, 2);
  ASSERT_GT(cluster.membership(1).epoch(), 0u);

  // A mutating RPC stamped with the pre-kill epoch is refused...
  auto result = cluster.transport().call(
      1, make_put("/stale/write", /*sender=*/0, /*ring_epoch=*/0), 1000ms);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().code, StatusCode::kFencedEpoch);
  // ...and the refusal carries the fast-forward, so one round trip both
  // fences the write and repairs the writer's view.
  EXPECT_EQ(result.value().view_hint, rpc::ViewHint::kStaleView);
  EXPECT_EQ(cluster.server(1).stats_snapshot().fenced_writes, 1u);
  EXPECT_EQ(cluster.server(1).stats_snapshot().stale_epoch_puts_accepted, 0u);

  // A current-epoch write is accepted.
  auto fresh = cluster.transport().call(
      1, make_put("/fresh/write", 0, cluster.membership(1).epoch()), 1000ms);
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(fresh.value().code, StatusCode::kOk);

  // An epoch-unaware (legacy) write is never fenced: fencing only judges
  // senders that claim a view.
  auto legacy = cluster.transport().call(
      1, make_put("/legacy/write", 0, rpc::kEpochUnaware), 1000ms);
  ASSERT_TRUE(legacy.is_ok());
  EXPECT_EQ(legacy.value().code, StatusCode::kOk);

  // Stale READS are not fenced — a stale reader risks a miss, not damage.
  rpc::RpcRequest get;
  get.op = rpc::Op::kReadFile;
  get.path = "/fresh/write";
  get.client_node = 0;
  get.ring_epoch = 0;
  auto read = cluster.transport().call(1, get, 1000ms);
  ASSERT_TRUE(read.is_ok());
  EXPECT_NE(read.value().code, StatusCode::kFencedEpoch);
  EXPECT_EQ(cluster.server(1).stats_snapshot().fenced_writes, 1u);
}

TEST(ClusterPartition, FencingOffAcceptsStaleWriteAndCountsExposure) {
  Cluster cluster(partition_config(3, /*fencing=*/false));
  GrayFailureInjector injector(cluster.transport(), /*seed=*/1);
  advance_epochs(cluster, injector, 2);

  // Legacy open door: the stale write lands (bit-for-bit seed behaviour),
  // but the exposure is counted so operators can see what the knob would
  // have prevented.
  auto result = cluster.transport().call(
      1, make_put("/stale/write", 0, /*ring_epoch=*/0), 1000ms);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().code, StatusCode::kOk);
  EXPECT_EQ(cluster.server(1).stats_snapshot().fenced_writes, 0u);
  EXPECT_EQ(cluster.server(1).stats_snapshot().stale_epoch_puts_accepted, 1u);
}

TEST(ClusterPartition, InjectorPartitionCutsLinksAndHeals) {
  ClusterConfig config;
  config.node_count = 3;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 50ms;
  config.server.async_data_mover = false;
  Cluster cluster(config);
  GrayFailureInjector injector(cluster.transport(), /*seed=*/1);

  rpc::RpcRequest request;
  request.op = rpc::Op::kReadFile;
  request.path = "/missing";

  injector.partition({0}, {1, 2});
  EXPECT_TRUE(injector.partition_active());
  // Across the cut: timeout, both directions (symmetric split).
  request.client_node = 0;
  EXPECT_EQ(cluster.transport().call(1, request, 50ms).status().code(),
            StatusCode::kTimeout);
  request.client_node = 1;
  EXPECT_EQ(cluster.transport().call(0, request, 50ms).status().code(),
            StatusCode::kTimeout);
  // Within a side: alive (kNotFound is a served answer, not a cut link).
  request.client_node = 1;
  auto same_side = cluster.transport().call(2, request, 1000ms);
  ASSERT_TRUE(same_side.is_ok());
  EXPECT_EQ(same_side.value().code, StatusCode::kNotFound);
  EXPECT_GT(cluster.transport().stats(1).partition_dropped, 0u);

  injector.heal_partition();
  EXPECT_FALSE(injector.partition_active());
  request.client_node = 0;
  EXPECT_TRUE(cluster.transport().call(1, request, 1000ms).is_ok());
}

TEST(ClusterPartition, ScheduledPartitionActivatesAndExpires) {
  ClusterConfig config;
  config.node_count = 2;
  config.server.async_data_mover = false;
  Cluster cluster(config);
  GrayFailureInjector injector(cluster.transport(), /*seed=*/9);

  injector.schedule_partition({0}, {1}, /*start_tick=*/2,
                              /*duration_ticks=*/3);
  EXPECT_FALSE(injector.partition_active());
  injector.tick();  // tick 1
  EXPECT_FALSE(injector.partition_active());
  injector.tick();  // tick 2: split starts
  EXPECT_TRUE(injector.partition_active());
  EXPECT_TRUE(cluster.transport().is_sender_blocked(1, 0));
  injector.tick();  // 3
  injector.tick();  // 4
  EXPECT_TRUE(injector.partition_active());
  injector.tick();  // tick 5: split over
  EXPECT_FALSE(injector.partition_active());
  EXPECT_FALSE(cluster.transport().is_sender_blocked(1, 0));
}

TEST(ClusterPartition, QuorumMinorityDefersThenClusterReconverges) {
  // 5 nodes, quorum 3: the {3,4} minority can muster at most 2 accusers,
  // so it must hold every confirmation; the {0,1,2} majority legitimately
  // confirms the minority out.  After the heal the minority refutes and
  // the WHOLE cluster must reconverge — this is the regression test for
  // the healed-partition liveness holes (epoch-label collision hidden
  // from the numeric stale-view check, and a refutation whose retransmit
  // budget died inside the partition).
  Cluster cluster(partition_config(5, /*fencing=*/true, /*quorum=*/3));
  GrayFailureInjector injector(cluster.transport(), /*seed=*/4);
  const std::vector<NodeId> majority = {0, 1, 2};
  const std::vector<NodeId> minority = {3, 4};

  injector.partition(majority, minority);
  const auto majority_excluded = [&] {
    for (const NodeId n : majority) {
      for (const NodeId m : minority) {
        if (cluster.membership(n).is_serving(m)) return false;
      }
    }
    return true;
  };
  ASSERT_TRUE(tick_until(cluster, majority_excluded).has_value());

  // Split-brain audit: the minority never confirmed a majority node —
  // quorum held its (abundant) local suspicion evidence at bay.
  std::uint64_t deferred = 0;
  for (const NodeId m : minority) {
    for (const NodeId n : majority) {
      EXPECT_NE(cluster.membership(m).member_state(n),
                membership::MemberState::kFailed)
          << "minority agent " << m << " confirmed healthy node " << n;
    }
    deferred += cluster.membership(m).stats_snapshot().confirms_deferred;
  }
  EXPECT_GT(deferred, 0u);

  injector.heal_partition();
  const auto all_rejoined = [&] {
    std::optional<std::uint64_t> epoch;
    std::optional<std::uint64_t> fingerprint;
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      auto& agent = cluster.membership(n);
      for (NodeId m = 0; m < cluster.node_count(); ++m) {
        if (!agent.is_serving(m)) return false;
      }
      if (epoch && *epoch != agent.epoch()) return false;
      if (fingerprint && *fingerprint != agent.ring_fingerprint()) {
        return false;
      }
      epoch = agent.epoch();
      fingerprint = agent.ring_fingerprint();
    }
    return true;
  };
  ASSERT_TRUE(tick_until(cluster, all_rejoined).has_value())
      << "cluster never reconverged after the heal";
}

}  // namespace
}  // namespace ftc::cluster
