#include "ring/consistent_hash_ring.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ftc::ring {
namespace {

TEST(ConsistentHashRing, EmptyRingHasNoOwner) {
  ConsistentHashRing ring;
  EXPECT_EQ(ring.owner("anything"), kInvalidNode);
  EXPECT_EQ(ring.node_count(), 0u);
  EXPECT_EQ(ring.position_count(), 0u);
}

TEST(ConsistentHashRing, SingleNodeOwnsEverything) {
  ConsistentHashRing ring(1, RingConfig{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.owner("key" + std::to_string(i)), 0u);
  }
}

TEST(ConsistentHashRing, PositionCountIsVnodesTimesNodes) {
  RingConfig config;
  config.vnodes_per_node = 100;
  ConsistentHashRing ring(16, config);
  EXPECT_EQ(ring.node_count(), 16u);
  EXPECT_EQ(ring.position_count(), 1600u);
}

TEST(ConsistentHashRing, ZeroVnodesClampedToOne) {
  RingConfig config;
  config.vnodes_per_node = 0;
  ConsistentHashRing ring(4, config);
  EXPECT_EQ(ring.position_count(), 4u);
}

TEST(ConsistentHashRing, AddNodeIdempotent) {
  ConsistentHashRing ring(4, RingConfig{});
  const auto positions = ring.position_count();
  ring.add_node(2);
  EXPECT_EQ(ring.position_count(), positions);
}

TEST(ConsistentHashRing, RemoveUnknownNodeIsNoop) {
  ConsistentHashRing ring(4, RingConfig{});
  const auto positions = ring.position_count();
  ring.remove_node(99);
  EXPECT_EQ(ring.position_count(), positions);
  EXPECT_EQ(ring.node_count(), 4u);
}

TEST(ConsistentHashRing, RemoveNodeDropsItsPositions) {
  RingConfig config;
  config.vnodes_per_node = 50;
  ConsistentHashRing ring(8, config);
  ring.remove_node(3);
  EXPECT_EQ(ring.node_count(), 7u);
  EXPECT_EQ(ring.position_count(), 350u);
  EXPECT_FALSE(ring.contains(3));
  // No key may map to the removed node any more.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(ring.owner("file" + std::to_string(i)), 3u);
  }
}

TEST(ConsistentHashRing, LookupDeterministic) {
  ConsistentHashRing a(32, RingConfig{});
  ConsistentHashRing b(32, RingConfig{});
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(a.owner(key), b.owner(key));
  }
}

TEST(ConsistentHashRing, SeedChangesPlacement) {
  RingConfig c1;
  c1.seed = 1;
  RingConfig c2;
  c2.seed = 2;
  ConsistentHashRing a(32, c1);
  ConsistentHashRing b(32, c2);
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (a.owner(key) != b.owner(key)) ++differing;
  }
  EXPECT_GT(differing, 300);  // placements should be essentially independent
}

TEST(ConsistentHashRing, OwnerMatchesOwnerOfHash) {
  ConsistentHashRing ring(16, RingConfig{});
  for (int i = 0; i < 200; ++i) {
    const std::string key = "path/" + std::to_string(i);
    EXPECT_EQ(ring.owner(key), ring.owner_of_hash(ring.key_position(key)));
  }
}

TEST(ConsistentHashRing, NodesSortedAscending) {
  ConsistentHashRing ring;
  ring.add_node(5);
  ring.add_node(1);
  ring.add_node(9);
  const auto nodes = ring.nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], 1u);
  EXPECT_EQ(nodes[1], 5u);
  EXPECT_EQ(nodes[2], 9u);
}

TEST(ConsistentHashRing, CloneIsIndependent) {
  ConsistentHashRing ring(8, RingConfig{});
  auto clone = ring.clone();
  clone->remove_node(0);
  EXPECT_TRUE(ring.contains(0));
  EXPECT_FALSE(clone->contains(0));
  EXPECT_EQ(ring.node_count(), 8u);
  EXPECT_EQ(clone->node_count(), 7u);
}

TEST(ConsistentHashRing, OwnerChainDistinctNodes) {
  ConsistentHashRing ring(8, RingConfig{});
  const auto chain = ring.owner_chain("some/file", 3);
  ASSERT_EQ(chain.size(), 3u);
  const std::set<NodeId> unique(chain.begin(), chain.end());
  EXPECT_EQ(unique.size(), 3u);
  // First element of the chain is the primary owner.
  EXPECT_EQ(chain[0], ring.owner("some/file"));
}

TEST(ConsistentHashRing, OwnerChainCappedByMembership) {
  ConsistentHashRing ring(2, RingConfig{});
  const auto chain = ring.owner_chain("f", 5);
  EXPECT_EQ(chain.size(), 2u);
}

TEST(ConsistentHashRing, OwnerChainEmptyCases) {
  ConsistentHashRing empty;
  EXPECT_TRUE(empty.owner_chain("f", 3).empty());
  ConsistentHashRing ring(4, RingConfig{});
  EXPECT_TRUE(ring.owner_chain("f", 0).empty());
}

TEST(ConsistentHashRing, ArcShareSumsToOne) {
  RingConfig config;
  config.vnodes_per_node = 100;
  ConsistentHashRing ring(16, config);
  const auto share = ring.arc_share();
  ASSERT_EQ(share.size(), 16u);
  double total = 0.0;
  for (const auto& [node, s] : share) {
    EXPECT_GT(s, 0.0);
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ConsistentHashRing, ArcShareSingleVnodeSingleNode) {
  RingConfig config;
  config.vnodes_per_node = 1;
  ConsistentHashRing ring(1, config);
  const auto share = ring.arc_share();
  ASSERT_EQ(share.size(), 1u);
  EXPECT_DOUBLE_EQ(share.begin()->second, 1.0);
}

TEST(ConsistentHashRing, MoreVnodesImproveArcBalance) {
  auto spread = [](std::uint32_t vnodes) {
    RingConfig config;
    config.vnodes_per_node = vnodes;
    ConsistentHashRing ring(64, config);
    const auto share = ring.arc_share();
    double max_share = 0.0;
    for (const auto& [node, s] : share) max_share = std::max(max_share, s);
    return max_share * 64.0;  // peak-to-mean
  };
  // With 1 vnode per node the peak arc is typically several times the mean;
  // 200 vnodes must be dramatically tighter.
  EXPECT_LT(spread(200), spread(1));
  EXPECT_LT(spread(200), 1.5);
}

}  // namespace
}  // namespace ftc::ring
