// Prefetch-pipeline extension: deterministic shuffling lets each node
// fetch step k+1's files during step k's compute.
#include <gtest/gtest.h>

#include "destim/experiment.hpp"

namespace ftc::destim {
namespace {

using cluster::FtMode;

ExperimentConfig pf_config(bool prefetch) {
  ExperimentConfig config;
  config.node_count = 8;
  config.mode = FtMode::kHashRingRecache;
  config.file_count = 512;
  config.file_bytes = 8ULL << 20;
  config.samples_per_file = 2;
  config.epochs = 3;
  config.files_per_step_per_node = 4;
  config.compute_time_per_step = 20 * simtime::kMillisecond;
  config.pfs.access_latency = 5 * simtime::kMillisecond;
  config.pfs.access_latency_tail_mean = 0;
  config.rpc_timeout = 10 * simtime::kMillisecond;
  config.elastic_restart_overhead = 50 * simtime::kMillisecond;
  config.prefetch.enabled = prefetch;
  return config;
}

TEST(Prefetch, HidesIoUnderCompute) {
  const auto off = run_experiment(pf_config(false));
  const auto on = run_experiment(pf_config(true));
  ASSERT_TRUE(off.completed);
  ASSERT_TRUE(on.completed);
  EXPECT_LT(on.total_time, off.total_time);
  // Cached epochs approach the pure-compute floor: steps * compute.
  const auto& last = on.epochs.back();
  const SimTime compute_floor =
      static_cast<SimTime>(512 * 2 / (8 * 4)) *  // steps in epoch
      (20 * simtime::kMillisecond);
  EXPECT_LT(last.duration, compute_floor + compute_floor / 2);
}

TEST(Prefetch, SameIoTotalsAsBaseline) {
  const auto off = run_experiment(pf_config(false));
  const auto on = run_experiment(pf_config(true));
  // Prefetching changes WHEN reads happen, not HOW MANY.
  EXPECT_EQ(on.total_pfs_reads, off.total_pfs_reads);
  std::uint64_t reads_off = 0;
  std::uint64_t reads_on = 0;
  for (const auto& epoch : off.epochs) {
    reads_off += epoch.remote_hits + epoch.remote_misses + epoch.local_reads;
  }
  for (const auto& epoch : on.epochs) {
    reads_on += epoch.remote_hits + epoch.remote_misses + epoch.local_reads;
  }
  EXPECT_EQ(reads_on, reads_off);
}

TEST(Prefetch, SurvivesFailureWithRestart) {
  auto config = pf_config(true);
  cluster::PlannedFailure failure;
  failure.victim = 3;
  failure.epoch = 1;
  failure.epoch_fraction = 0.5;
  config.failures = {failure};
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);
  // Post-failure recaching still single-access-per-lost-file.
  EXPECT_EQ(result.epochs.back().pfs_reads, 0u);
}

TEST(Prefetch, DeterministicRuns) {
  const auto a = run_experiment(pf_config(true));
  const auto b = run_experiment(pf_config(true));
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

TEST(Prefetch, MultipleFailures) {
  auto config = pf_config(true);
  config.epochs = 4;
  cluster::FailurePlanParams plan;
  plan.node_count = 8;
  plan.failure_count = 2;
  plan.first_eligible_epoch = 1;
  plan.total_epochs = 4;
  config.failures = cluster::plan_failures(plan);
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 2u);
}

}  // namespace
}  // namespace ftc::destim
