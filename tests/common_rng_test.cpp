#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace ftc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(4242);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(11);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(5, 4), 5);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng rng(8);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(21);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(33);
  constexpr int kN = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleDeterministic) {
  std::vector<int> a(50);
  std::iota(a.begin(), a.end(), 0);
  auto b = a;
  Rng r1(9);
  Rng r2(9);
  r1.shuffle(a);
  r2.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(55);
  Rng childA = parent.fork(1);
  Rng childB = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (childA() == childB()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(55);
  Rng p2(55);
  Rng c1 = p1.fork(7);
  Rng c2 = p2.fork(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1(), c2());
}

TEST(SplitMix64, KnownSequenceAdvances) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace ftc
