// Checkpoint-restart baseline: model-state FT without cache FT.  The
// paper's Sec I argument quantified — checkpointing saves the job but the
// cold cache re-warms from the PFS after every crash.
#include <gtest/gtest.h>

#include "destim/experiment.hpp"

namespace ftc::destim {
namespace {

using cluster::FtMode;

ExperimentConfig ckpt_config() {
  ExperimentConfig config;
  config.node_count = 8;
  config.mode = FtMode::kNone;
  config.checkpoint_restart = true;
  config.checkpoint_restart_overhead = 200 * simtime::kMillisecond;
  config.file_count = 256;
  config.file_bytes = 2ULL << 20;
  config.samples_per_file = 2;
  config.epochs = 4;
  config.files_per_step_per_node = 4;
  config.compute_time_per_step = 10 * simtime::kMillisecond;
  config.pfs.access_latency = 5 * simtime::kMillisecond;
  config.pfs.access_latency_tail_mean = 0;
  config.rpc_timeout = 10 * simtime::kMillisecond;
  config.elastic_restart_overhead = 50 * simtime::kMillisecond;
  return config;
}

cluster::PlannedFailure failure_at(std::uint32_t victim, std::uint32_t epoch,
                                   double fraction) {
  cluster::PlannedFailure failure;
  failure.victim = victim;
  failure.epoch = epoch;
  failure.epoch_fraction = fraction;
  return failure;
}

TEST(CheckpointRestart, SurvivesWhereNoFtAborts) {
  auto config = ckpt_config();
  config.failures.push_back(failure_at(3, 1, 0.5));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_TRUE(result.epochs[1].failure_during);

  auto plain = ckpt_config();
  plain.checkpoint_restart = false;
  plain.failures.push_back(failure_at(3, 1, 0.5));
  EXPECT_FALSE(run_experiment(plain).completed);
}

TEST(CheckpointRestart, ColdCacheRewarmsFromPfs) {
  auto config = ckpt_config();
  config.failures.push_back(failure_at(3, 1, 0.5));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed);
  // The crash wiped every cache: the victim epoch re-fetches (almost) the
  // whole dataset again, not just the failed node's share.
  EXPECT_GT(result.epochs[1].pfs_reads, 256u / 2);
  // Later epochs are warm again.
  EXPECT_EQ(result.epochs.back().pfs_reads, 0u);
  // Total PFS traffic ~ two full warm-ups.
  EXPECT_GT(result.total_pfs_reads, 256u + 256u / 2);
}

TEST(CheckpointRestart, FarCostlierThanElasticRecaching) {
  auto ckpt = ckpt_config();
  ckpt.failures.push_back(failure_at(3, 1, 0.5));
  auto ring = ckpt_config();
  ring.mode = FtMode::kHashRingRecache;
  ring.checkpoint_restart = false;
  ring.failures.push_back(failure_at(3, 1, 0.5));
  const auto ckpt_result = run_experiment(ckpt);
  const auto ring_result = run_experiment(ring);
  ASSERT_TRUE(ckpt_result.completed);
  ASSERT_TRUE(ring_result.completed);
  // The whole point of cache FT: the ring refetches only ~1/8 of files
  // (one warm-up + the lost share) while checkpoint restart re-warms the
  // whole dataset (two warm-ups).
  EXPECT_LT(ring_result.total_pfs_reads, 256u + 256u / 4);
  EXPECT_GE(ckpt_result.total_pfs_reads, 2 * 256u - 256u / 4);
  EXPECT_LT(ring_result.total_time, ckpt_result.total_time);
}

TEST(CheckpointRestart, NoFailureNoDifference) {
  auto with_flag = ckpt_config();
  auto without = ckpt_config();
  without.checkpoint_restart = false;
  const auto a = run_experiment(with_flag);
  const auto b = run_experiment(without);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.restarts, 0u);
}

TEST(CheckpointRestart, TwoCrashes) {
  auto config = ckpt_config();
  config.failures.push_back(failure_at(3, 1, 0.4));
  config.failures.push_back(failure_at(5, 2, 0.4));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 2u);
  // Three full dataset warm-ups' worth of PFS traffic (initial + 2 crash
  // re-warms), minus partial-epoch effects.
  EXPECT_GT(result.total_pfs_reads, 2 * 256u);
}

TEST(CheckpointRestart, Deterministic) {
  auto config = ckpt_config();
  config.failures.push_back(failure_at(3, 1, 0.5));
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

}  // namespace
}  // namespace ftc::destim
