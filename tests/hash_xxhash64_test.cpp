#include "hash/xxhash64.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ftc::hash {
namespace {

// Reference vectors from the canonical xxHash implementation.
TEST(XxHash64, KnownVectors) {
  EXPECT_EQ(xxhash64("", 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(xxhash64("a", 0), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(xxhash64("abc", 0), 0x44BC2CF5AD770999ULL);
  EXPECT_EQ(xxhash64("xxhash", 0), 0x32DD38952C4BC720ULL);
  EXPECT_EQ(xxhash64("xxhash", 20141025), 0xB559B98D844E0635ULL);
}

TEST(XxHash64, LongInputCrossesBlockBoundary) {
  // > 32 bytes exercises the 4-lane main loop.
  const std::string long_key(100, 'z');
  const auto h1 = xxhash64(long_key);
  const auto h2 = xxhash64(long_key);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, xxhash64(std::string(101, 'z')));
}

TEST(XxHash64, EveryLengthMod32Differs) {
  std::string data(70, 'q');
  std::uint64_t prev = 1;
  for (std::size_t len = 0; len <= data.size(); ++len) {
    const auto h = xxhash64(std::string_view(data).substr(0, len));
    EXPECT_NE(h, prev) << "length " << len;
    prev = h;
  }
}

TEST(XxHash64, SeedSensitivity) {
  EXPECT_NE(xxhash64("key", 0), xxhash64("key", 1));
}

}  // namespace
}  // namespace ftc::hash
