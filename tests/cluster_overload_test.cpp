// Failover-storm hardening tests: deadline propagation, admission/busy
// handling, retry budgets, and the PFS singleflight + breaker.  The
// regression contract tested throughout: kBusy is liveness evidence,
// never a fault signal, and with every knob off behaviour is legacy.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/hvac_client.hpp"
#include "cluster/hvac_server.hpp"
#include "cluster/pfs_guard.hpp"
#include "cluster/pfs_store.hpp"
#include "rpc/transport.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

rpc::RpcRequest read_request(const std::string& path) {
  rpc::RpcRequest request;
  request.op = rpc::Op::kReadFile;
  request.path = path;
  return request;
}

TEST(PfsSingleflight, ConcurrentMissesCoalesceToOnePfsRead) {
  // The storm shape: one lost file, M first-touch misses at the new owner
  // at once.  With the guard on, the PFS must see exactly ONE read; every
  // other request shares the leader's fetch (or, arriving after the
  // flight closed, hits the cache the leader populated synchronously).
  PfsStore pfs(/*read_latency=*/20000us);
  pfs.put("/lost", "payload-of-the-lost-file");
  HvacServerConfig config;
  config.async_data_mover = false;
  config.pfs_singleflight = true;
  HvacServer server(0, pfs, config);

  constexpr int kThreads = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &ok] {
      const auto response = server.handle(read_request("/lost"));
      if (response.code == StatusCode::kOk &&
          response.payload == "payload-of-the-lost-file") {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(pfs.read_count("/lost"), 1u);  // the whole point
  const auto stats = server.stats_snapshot();
  EXPECT_EQ(stats.pfs_fetches, 1u);
  EXPECT_EQ(stats.recache_completed, 1u);
  EXPECT_TRUE(server.has_cached("/lost"));
  // Everyone who arrived mid-flight is accounted as coalesced.
  ASSERT_NE(server.pfs_guard(), nullptr);
  EXPECT_EQ(stats.pfs_coalesced, server.pfs_guard()->stats_snapshot().coalesced);
}

TEST(PfsSingleflight, SerialRepeatMissesStillSinglePfsRead) {
  // Leader recaches synchronously before the flight closes, so even a
  // request arriving just after coalescing ended hits NVMe, not the PFS.
  PfsStore pfs;
  pfs.put("/f", "x");
  HvacServerConfig config;
  config.async_data_mover = false;
  config.pfs_singleflight = true;
  HvacServer server(0, pfs, config);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(server.handle(read_request("/f")).code, StatusCode::kOk);
  }
  EXPECT_EQ(pfs.read_count("/f"), 1u);
  EXPECT_EQ(server.stats_snapshot().cache_hits, 4u);
}

TEST(PfsContention, BoundedServiceSlotsStretchConcurrentReads) {
  // With one service slot, K concurrent latency-modelled reads serialize:
  // total wall time ~= K service times, and the slowest single read waited
  // through the whole queue.  This is the physics that makes duplicate
  // failover-storm fetches expensive (and what bench_failstorm leans on).
  constexpr int kReaders = 4;
  const auto kLatency = std::chrono::milliseconds(20);
  PfsStore pfs(kLatency);
  pfs.set_service_concurrency(1);
  pfs.put("/data", "payload");
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&pfs] {
      EXPECT_TRUE(pfs.read("/data").is_ok());
    });
  }
  for (auto& reader : readers) reader.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Serialized: >= K * latency (minus scheduling slack), where the
  // unlimited default would finish in ~1 latency.
  EXPECT_GE(elapsed, kReaders * kLatency - std::chrono::milliseconds(5));
  EXPECT_EQ(pfs.read_count("/data"), static_cast<std::uint64_t>(kReaders));
  EXPECT_EQ(pfs.service_concurrency(), 1u);
}

TEST(PfsContention, UnlimitedByDefaultRunsConcurrently) {
  constexpr int kReaders = 4;
  const auto kLatency = std::chrono::milliseconds(20);
  PfsStore pfs(kLatency);  // service_concurrency defaults to 0 = unlimited
  pfs.put("/data", "payload");
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&pfs] {
      EXPECT_TRUE(pfs.read("/data").is_ok());
    });
  }
  for (auto& reader : readers) reader.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // All sleeps overlap; far below the serialized K * latency.
  EXPECT_LT(elapsed, 3 * kLatency);
}

TEST(PfsFetchGuard, BreakerTripsFastRejectsThenRecovers) {
  PfsGuardOptions options;
  options.breaker_failure_threshold = 3;
  options.breaker_cooldown = 50ms;
  PfsFetchGuard guard(options);

  const auto failing = []() -> StatusOr<common::Buffer> {
    return Status::internal("pfs io error");
  };
  for (int i = 0; i < 3; ++i) {
    const auto outcome = guard.fetch("/k" + std::to_string(i), failing);
    EXPECT_FALSE(outcome.result.is_ok());
    EXPECT_FALSE(outcome.rejected_busy);
  }
  EXPECT_TRUE(guard.breaker_open());

  // Open: fast kBusy with a retry-after hint, fn never runs.
  bool ran = false;
  const auto rejected = guard.fetch("/k", [&ran]() -> StatusOr<common::Buffer> {
    ran = true;
    return common::Buffer("unreachable");
  });
  EXPECT_TRUE(rejected.rejected_busy);
  EXPECT_FALSE(ran);
  EXPECT_EQ(rejected.result.status().code(), StatusCode::kBusy);
  EXPECT_GE(rejected.retry_after_ms, 1u);

  // After the cooldown the half-open trial runs; success closes it.
  std::this_thread::sleep_for(60ms);
  const auto trial = guard.fetch("/k", []() -> StatusOr<common::Buffer> {
    return common::Buffer("recovered");
  });
  ASSERT_TRUE(trial.result.is_ok());
  EXPECT_FALSE(guard.breaker_open());

  const auto stats = guard.stats_snapshot();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breaker_rejections, 1u);
}

TEST(PfsFetchGuard, NotFoundNeverTripsBreaker) {
  PfsGuardOptions options;
  options.breaker_failure_threshold = 2;
  PfsFetchGuard guard(options);
  for (int i = 0; i < 6; ++i) {
    const auto outcome =
        guard.fetch("/missing", []() -> StatusOr<common::Buffer> {
          return Status::not_found("no such file");
        });
    EXPECT_EQ(outcome.result.status().code(), StatusCode::kNotFound);
    EXPECT_FALSE(outcome.rejected_busy);
  }
  EXPECT_FALSE(guard.breaker_open());
}

TEST(DeadlineShedding, ServerNeverExecutesExpiredWork) {
  PfsStore pfs;
  pfs.put("/f", "x");
  HvacServerConfig config;
  config.async_data_mover = false;
  HvacServer server(0, pfs, config);

  auto expired = read_request("/f");
  expired.deadline_ns = rpc::deadline_clock_ns() - 1;  // passed in queue
  const auto response = server.handle(expired);
  EXPECT_EQ(response.code, StatusCode::kCancelled);
  const auto stats = server.stats_snapshot();
  EXPECT_EQ(stats.expired_on_arrival, 1u);
  EXPECT_EQ(stats.reads, 0u);  // shed BEFORE dispatch, never executed
  EXPECT_EQ(pfs.read_count(), 0u);

  // A live deadline is honored normally.
  auto alive = read_request("/f");
  alive.deadline_ns = rpc::deadline_in(5s);
  EXPECT_EQ(server.handle(alive).code, StatusCode::kOk);
}

TEST(DeadlinePropagation, TotalDeadlineCapsRetriesAndReadDuration) {
  ClusterConfig config;
  // Enough nodes that the attempt bound (node_count + 1) cannot end the
  // read first — the deadline must be what stops it.
  config.node_count = 4;
  config.client.rpc_timeout = 20ms;
  config.client.total_deadline = 50ms;
  config.client.timeout_limit = 10;  // never flag: isolate the deadline
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(4, 64);
  cluster.warm_caches(paths);

  const NodeId owner = cluster.client(0).current_owner(paths[0]);
  cluster.transport().set_extra_latency(owner, 100ms);  // every attempt stalls

  const auto start = std::chrono::steady_clock::now();
  auto result = cluster.client(0).read_file(paths[0]);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(cluster.client(0).stats_snapshot().deadline_give_ups, 1u);
  // Legacy would burn attempts x rpc_timeout; the budget ends the read
  // near total_deadline (generous slack for slow CI).
  EXPECT_LT(elapsed, 500ms);
  cluster.transport().set_extra_latency(owner, 0ms);
}

TEST(RetryBudget, HedgingSelfDisablesWhenDrainedAndRecovers) {
  ClusterConfig config;
  config.node_count = 2;
  config.client.rpc_timeout = 100ms;
  config.client.timeout_limit = 10;
  config.client.hedge_reads = true;
  // Floor the hedge delay so fast reads never hedge; only the 40ms
  // injected stall does.
  config.client.hedge_min_delay = 5ms;
  config.client.retry_budget_ratio = 0.1;
  config.client.retry_budget_cap = 2.0;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(8, 64);
  cluster.warm_caches(paths);

  const NodeId owner = cluster.client(0).current_owner(paths[0]);
  const NodeId reader = owner == 0 ? 1 : 0;
  HvacClient& client = cluster.client(reader);

  // Slow owner: every read of paths[0] wants to hedge.  The cap funds
  // exactly 2 hedge legs; after that the bucket is dry and reads succeed
  // on the (slow) primary alone instead of doubling the load.
  cluster.transport().set_extra_latency(owner, 40ms);
  for (int i = 0; i < 4; ++i) {
    auto result = client.read_file(paths[0]);
    ASSERT_TRUE(result.is_ok()) << i;
  }
  auto stats = client.stats_snapshot();
  EXPECT_EQ(stats.hedges_launched, 2u);  // cap of 2, then denied
  EXPECT_GE(stats.retries_denied_by_budget, 2u);
  EXPECT_EQ(stats.timeouts, 0u);

  // Recovery: successes refill the bucket (0.1 per read) with no
  // operator action, and hedging re-enables by itself.
  cluster.transport().set_extra_latency(owner, 0ms);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.read_file(paths[0]).is_ok());
  }
  cluster.transport().set_extra_latency(owner, 40ms);
  ASSERT_TRUE(client.read_file(paths[0]).is_ok());
  stats = client.stats_snapshot();
  EXPECT_EQ(stats.hedges_launched, 3u);  // refilled bucket funded one more
  cluster.transport().set_extra_latency(owner, 0ms);
}

TEST(BusyHandling, BusyIsLivenessNeverSuspicionOrLatency) {
  // Regression contract for the whole PR: a node answering kBusy is
  // ALIVE.  It must never accrue timeout counts, never get flagged, and
  // never pollute the latency window the hedge/TTL policies feed on.
  rpc::Transport transport;
  PfsStore pfs;
  pfs.put("/f", "authoritative");
  ASSERT_TRUE(transport
                  .register_endpoint(0,
                                     [](const rpc::RpcRequest&) {
                                       rpc::RpcResponse response;
                                       response.code = StatusCode::kBusy;
                                       response.retry_after_ms = 1;
                                       return response;
                                     })
                  .is_ok());
  HvacClientConfig config;
  config.mode = FtMode::kHashRingRecache;
  config.busy_backoff_base = 1ms;
  config.busy_backoff_cap = 2ms;
  HvacClient client(0, transport, pfs, {0}, config);

  auto result = client.read_file("/f");
  ASSERT_TRUE(result.is_ok());  // terminal PFS fallback still serves
  EXPECT_EQ(result.value(), "authoritative");

  const auto stats = client.stats_snapshot();
  EXPECT_GE(stats.busy_rejections, 2u);  // every attempt bounced
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.nodes_flagged, 0u);
  EXPECT_EQ(stats.served_pfs_direct, 1u);
  EXPECT_EQ(client.node_health(0), NodeHealth::kHealthy);
  EXPECT_EQ(client.latency().count(), 0u);  // no latency sample from kBusy
}

TEST(ServerStats, SnapshotAndStatsOpCarryStormCounters) {
  PfsStore pfs;
  pfs.put("/f", "x");
  HvacServerConfig config;
  config.async_data_mover = false;
  config.pfs_singleflight = true;
  HvacServer server(0, pfs, config);

  auto expired = read_request("/f");
  expired.deadline_ns = rpc::deadline_clock_ns() - 1;
  (void)server.handle(expired);
  (void)server.handle(read_request("/f"));

  rpc::RpcRequest stats_op;
  stats_op.op = rpc::Op::kStats;
  const auto response = server.handle(stats_op);
  ASSERT_EQ(response.code, StatusCode::kOk);
  std::map<std::string, std::uint64_t> kv;
  {
    std::istringstream in(response.payload.to_string());
    std::string pair;
    while (in >> pair) {
      const auto eq = pair.find('=');
      ASSERT_NE(eq, std::string::npos) << pair;
      kv[pair.substr(0, eq)] = std::stoull(pair.substr(eq + 1));
    }
  }
  EXPECT_EQ(kv.at("expired_on_arrival"), 1u);
  EXPECT_EQ(kv.at("pfs_coalesced"), 0u);
  EXPECT_EQ(kv.at("pfs_breaker_open"), 0u);
  EXPECT_EQ(kv.at("pfs_fetches"), 1u);

  const auto snapshot = server.stats_snapshot();
  EXPECT_EQ(snapshot.expired_on_arrival, 1u);
  EXPECT_EQ(snapshot.pfs_coalesced, 0u);
  EXPECT_EQ(snapshot.pfs_breaker_open, 0u);
}

TEST(ConfigValidation, ClientStormKnobs) {
  PfsStore pfs;
  rpc::Transport transport;
  const std::vector<NodeId> servers{0};

  HvacClientConfig bad_deadline;
  bad_deadline.rpc_timeout = 100ms;
  bad_deadline.total_deadline = 100ms;  // must EXCEED rpc_timeout
  EXPECT_FALSE(bad_deadline.validate().is_ok());
  EXPECT_THROW(HvacClient(0, transport, pfs, servers, bad_deadline),
               std::invalid_argument);

  HvacClientConfig bad_ratio;
  bad_ratio.retry_budget_ratio = 1.5;  // valid range is 0 or (0, 1]
  EXPECT_FALSE(bad_ratio.validate().is_ok());
  EXPECT_THROW(HvacClient(0, transport, pfs, servers, bad_ratio),
               std::invalid_argument);

  HvacClientConfig bad_cap;
  bad_cap.retry_budget_ratio = 0.1;
  bad_cap.retry_budget_cap = 0.5;  // < 1 token can never fund a retry
  EXPECT_FALSE(bad_cap.validate().is_ok());

  HvacClientConfig bad_backoff;
  bad_backoff.busy_backoff_base = 8ms;
  bad_backoff.busy_backoff_cap = 4ms;  // cap below base
  EXPECT_FALSE(bad_backoff.validate().is_ok());

  HvacClientConfig good;
  good.rpc_timeout = 50ms;
  good.total_deadline = 200ms;
  good.retry_budget_ratio = 0.1;
  good.retry_budget_cap = 10.0;
  EXPECT_TRUE(good.validate().is_ok());
}

TEST(ConfigValidation, ServerStormKnobs) {
  PfsStore pfs;

  HvacServerConfig bad_workers;
  bad_workers.endpoint_workers = 0;
  EXPECT_FALSE(bad_workers.validate().is_ok());
  EXPECT_THROW(HvacServer(0, pfs, bad_workers), std::invalid_argument);

  HvacServerConfig bad_queue;
  bad_queue.admission_control = true;
  bad_queue.admission_queue_limit = 0;
  EXPECT_FALSE(bad_queue.validate().is_ok());
  EXPECT_THROW(HvacServer(0, pfs, bad_queue), std::invalid_argument);

  HvacServerConfig bad_guard;
  bad_guard.pfs_singleflight = true;
  bad_guard.pfs_guard.max_concurrent_fetches = 0;
  EXPECT_FALSE(bad_guard.validate().is_ok());

  HvacServerConfig good;
  good.endpoint_workers = 4;
  good.admission_control = true;
  good.admission_queue_limit = 8;
  good.pfs_singleflight = true;
  EXPECT_TRUE(good.validate().is_ok());
}

}  // namespace
}  // namespace ftc::cluster
