#include "rpc/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace ftc::rpc {
namespace {

using namespace std::chrono_literals;

RpcResponse echo_handler(const RpcRequest& request) {
  RpcResponse response;
  response.code = StatusCode::kOk;
  response.payload = "echo:" + request.path;
  return response;
}

TEST(Transport, CallRoundTrip) {
  Transport transport;
  ASSERT_TRUE(transport.register_endpoint(0, echo_handler).is_ok());
  RpcRequest request;
  request.path = "/file";
  auto result = transport.call(0, request, 1000ms);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().payload, "echo:/file");
  const auto stats = transport.stats(0);
  EXPECT_EQ(stats.received, 1u);
  EXPECT_EQ(stats.handled, 1u);
}

TEST(Transport, UnknownEndpointUnavailable) {
  Transport transport;
  auto result = transport.call(42, RpcRequest{}, 100ms);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(Transport, DoubleRegisterRejected) {
  Transport transport;
  ASSERT_TRUE(transport.register_endpoint(1, echo_handler).is_ok());
  EXPECT_EQ(transport.register_endpoint(1, echo_handler).code(),
            StatusCode::kInvalidArgument);
}

TEST(Transport, UnregisterThenCallUnavailable) {
  Transport transport;
  transport.register_endpoint(2, echo_handler);
  ASSERT_TRUE(transport.unregister_endpoint(2).is_ok());
  auto result = transport.call(2, RpcRequest{}, 100ms);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(transport.unregister_endpoint(2).code(), StatusCode::kNotFound);
}

TEST(Transport, KilledEndpointTimesOut) {
  Transport transport;
  transport.register_endpoint(3, echo_handler);
  transport.kill(3);
  EXPECT_TRUE(transport.is_killed(3));
  const auto start = Clock::now();
  auto result = transport.call(3, RpcRequest{}, 50ms);
  const auto elapsed = Clock::now() - start;
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_GE(elapsed, 45ms);
  EXPECT_EQ(transport.stats(3).dropped, 1u);
}

TEST(Transport, ExtraLatencyBeyondDeadlineTimesOut) {
  Transport transport;
  transport.register_endpoint(4, echo_handler);
  transport.set_extra_latency(4, 100ms);
  auto slow = transport.call(4, RpcRequest{}, 20ms);
  EXPECT_EQ(slow.status().code(), StatusCode::kTimeout);
  // Restore normal service: next call succeeds.
  transport.set_extra_latency(4, 0ms);
  // Give the slow in-flight handler time to drain.
  auto ok = transport.call(4, RpcRequest{}, 2000ms);
  EXPECT_TRUE(ok.is_ok());
}

TEST(Transport, DropNextCausesExactlyNTimeouts) {
  Transport transport;
  transport.register_endpoint(5, echo_handler);
  transport.drop_next(5, 2);
  EXPECT_EQ(transport.call(5, RpcRequest{}, 30ms).status().code(),
            StatusCode::kTimeout);
  EXPECT_EQ(transport.call(5, RpcRequest{}, 30ms).status().code(),
            StatusCode::kTimeout);
  EXPECT_TRUE(transport.call(5, RpcRequest{}, 1000ms).is_ok());
  EXPECT_EQ(transport.stats(5).dropped, 2u);
}

TEST(Transport, ConcurrentCallersFifoService) {
  Transport transport;
  std::atomic<int> served{0};
  transport.register_endpoint(6, [&served](const RpcRequest& request) {
    served.fetch_add(1);
    return echo_handler(request);
  });
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  threads.reserve(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&transport, &ok, i] {
      RpcRequest request;
      request.path = std::to_string(i);
      if (transport.call(6, request, 2000ms).is_ok()) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 8);
  EXPECT_EQ(served.load(), 8);
}

TEST(Transport, EndpointCount) {
  Transport transport;
  EXPECT_EQ(transport.endpoint_count(), 0u);
  transport.register_endpoint(0, echo_handler);
  transport.register_endpoint(1, echo_handler);
  EXPECT_EQ(transport.endpoint_count(), 2u);
  transport.unregister_endpoint(0);
  EXPECT_EQ(transport.endpoint_count(), 1u);
}

TEST(Transport, StatsForUnknownEndpointAreZero) {
  Transport transport;
  const auto stats = transport.stats(99);
  EXPECT_EQ(stats.received, 0u);
  EXPECT_EQ(stats.handled, 0u);
}

TEST(Transport, KillUnknownIsNoop) {
  Transport transport;
  transport.kill(7);  // must not crash
  EXPECT_FALSE(transport.is_killed(7));
}

TEST(Transport, DestructorDrainsCleanly) {
  // Enqueue work then destroy immediately; no hang, no crash.
  auto transport = std::make_unique<Transport>();
  transport->register_endpoint(0, [](const RpcRequest& request) {
    std::this_thread::sleep_for(5ms);
    return echo_handler(request);
  });
  std::thread caller([&transport] {
    (void)transport->call(0, RpcRequest{}, 500ms);
  });
  caller.join();
  transport.reset();
  SUCCEED();
}

}  // namespace
}  // namespace ftc::rpc
