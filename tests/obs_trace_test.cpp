// End-to-end tracing tests: trace propagation from a client read through
// hedge legs, busy retries and server phases; PFS singleflight
// leader/joiner attribution; and the migrated-counter contract (the
// metrics export and the legacy stats_snapshot() views read the same
// counters, and tracing-off behaviour is bit-for-bit legacy).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/hvac_client.hpp"
#include "cluster/hvac_server.hpp"
#include "cluster/pfs_store.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_context.hpp"
#include "rpc/transport.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig traced_config(std::uint32_t nodes = 4) {
  ClusterConfig config;
  config.node_count = nodes;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 100ms;
  config.client.vnodes_per_node = 50;
  config.server.async_data_mover = false;
  config.obs.tracing = true;
  config.obs.sample_every = 1;
  return config;
}

std::vector<obs::Record> of_kind(const std::vector<obs::Record>& records,
                                 obs::RecordKind kind) {
  std::vector<obs::Record> out;
  for (const obs::Record& r : records) {
    if (r.kind == kind) out.push_back(r);
  }
  return out;
}

TEST(TracePropagation, ReadProducesLinkedSpanTree) {
  Cluster cluster(traced_config());
  const auto paths = cluster.stage_dataset(8, 64);
  cluster.warm_caches(paths);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }

  const std::vector<obs::Record> records = cluster.dump_traces();
  const auto roots = of_kind(records, obs::RecordKind::kClientRead);
  // warm_caches reads each path once, then we read each once more; every
  // read is sampled at sample_every=1.
  EXPECT_EQ(roots.size(), paths.size() * 2);

  // Every root is a well-formed span: nonzero ids, no parent, end>=start.
  for (const obs::Record& root : roots) {
    EXPECT_NE(root.trace_id, 0u);
    EXPECT_NE(root.span_id, 0u);
    EXPECT_EQ(root.parent_span_id, 0u);
    EXPECT_GE(root.end_ns, root.start_ns);
    EXPECT_EQ(root.code, static_cast<std::uint32_t>(StatusCode::kOk));
  }

  // Pick one root and verify the full client -> server chain under its
  // trace id: attempt (child of root), server queue + handle (children of
  // the attempt, recorded on the owner's recorder).
  const obs::Record& root = roots.back();
  const auto attempts = of_kind(records, obs::RecordKind::kClientAttempt);
  const auto attempt_it =
      std::find_if(attempts.begin(), attempts.end(),
                   [&root](const obs::Record& a) {
                     return a.trace_id == root.trace_id &&
                            a.parent_span_id == root.span_id;
                   });
  ASSERT_NE(attempt_it, attempts.end());
  EXPECT_EQ(attempt_it->detail_view(), "primary");

  const auto handles = of_kind(records, obs::RecordKind::kServerHandle);
  const auto handle_it =
      std::find_if(handles.begin(), handles.end(),
                   [&](const obs::Record& h) {
                     return h.trace_id == root.trace_id &&
                            h.parent_span_id == attempt_it->span_id;
                   });
  ASSERT_NE(handle_it, handles.end());
  EXPECT_EQ(handle_it->node, attempt_it->node);  // ran on the owner

  const auto queues = of_kind(records, obs::RecordKind::kServerQueue);
  EXPECT_TRUE(std::any_of(queues.begin(), queues.end(),
                          [&](const obs::Record& q) {
                            return q.trace_id == root.trace_id &&
                                   q.parent_span_id == attempt_it->span_id;
                          }));
}

TEST(TracePropagation, SampleEveryZeroAttachesButRecordsNoReads) {
  auto config = traced_config();
  config.obs.sample_every = 0;  // recorders wired, nothing sampled
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(6, 64);
  cluster.warm_caches(paths);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(1).read_file(path).is_ok());
  }
  ASSERT_NE(cluster.flight_recorder(0), nullptr);
  const std::vector<obs::Record> records = cluster.dump_traces();
  EXPECT_TRUE(of_kind(records, obs::RecordKind::kClientRead).empty());
  EXPECT_TRUE(of_kind(records, obs::RecordKind::kClientAttempt).empty());
  EXPECT_TRUE(of_kind(records, obs::RecordKind::kServerHandle).empty());
}

TEST(TracePropagation, TracingOffByDefault) {
  auto config = traced_config();
  config.obs = obs::ObsConfig{};  // knobs unset = legacy
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(4, 64);
  cluster.warm_caches(paths);
  EXPECT_EQ(cluster.flight_recorder(0), nullptr);
  EXPECT_TRUE(cluster.dump_traces().empty());
}

TEST(TracePropagation, HedgeLegsShareTheRootsTrace) {
  // The mailbox race: hedge legs resolve on the transport's async pool,
  // possibly after read_file returned.  Their spans must still land in
  // the right trace (ids captured by value into the completion).
  auto config = traced_config();
  config.client.hedge_reads = true;
  config.client.hedge_min_samples = 8;
  config.client.hedge_min_delay = 200us;
  config.client.probe_backoff = 5ms;
  config.client.probe_backoff_cap = 40ms;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(40, 64);
  cluster.warm_caches(paths);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }
  cluster.transport().set_extra_latency(2, 30ms);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }
  ASSERT_GT(cluster.client(0).stats_snapshot().hedge_wins, 0u);

  const std::vector<obs::Record> records = cluster.dump_traces();
  std::unordered_set<std::uint64_t> root_traces;
  std::unordered_set<std::uint64_t> root_spans;
  for (const obs::Record& r : of_kind(records, obs::RecordKind::kClientRead)) {
    root_traces.insert(r.trace_id);
    root_spans.insert(r.span_id);
  }
  const auto legs = of_kind(records, obs::RecordKind::kHedgeLeg);
  ASSERT_FALSE(legs.empty());
  for (const obs::Record& leg : legs) {
    EXPECT_TRUE(root_traces.count(leg.trace_id) == 1)
        << "hedge leg outside any read's trace";
    EXPECT_TRUE(root_spans.count(leg.parent_span_id) == 1)
        << "hedge leg not parented to its read's root span";
  }
  // The primary leg of a hedged read is recorded too.
  EXPECT_FALSE(of_kind(records, obs::RecordKind::kClientAttempt).empty());
}

TEST(TracePropagation, BusyRetriesStayInTrace) {
  // An always-busy server: attempt 0 bounces, the server-directed retry
  // bounces again, then the terminal PFS fallback serves.  All three
  // phases must be children of one root.
  rpc::Transport transport;
  PfsStore pfs;
  pfs.put("/f", "authoritative");
  ASSERT_TRUE(transport
                  .register_endpoint(0,
                                     [](const rpc::RpcRequest&) {
                                       rpc::RpcResponse response;
                                       response.code = StatusCode::kBusy;
                                       response.retry_after_ms = 1;
                                       return response;
                                     })
                  .is_ok());
  HvacClientConfig config;
  config.mode = FtMode::kHashRingRecache;
  config.busy_backoff_base = 1ms;
  config.busy_backoff_cap = 2ms;
  HvacClient client(0, transport, pfs, {0}, config);
  obs::FlightRecorder recorder(256);
  client.attach_observability(&recorder, /*sample_every=*/1);

  auto result = client.read_file("/f");
  ASSERT_TRUE(result.is_ok());

  const std::vector<obs::Record> records = recorder.dump();
  const auto roots = of_kind(records, obs::RecordKind::kClientRead);
  ASSERT_EQ(roots.size(), 1u);
  const obs::Record& root = roots[0];

  const auto primaries = of_kind(records, obs::RecordKind::kClientAttempt);
  ASSERT_EQ(primaries.size(), 1u);
  EXPECT_EQ(primaries[0].trace_id, root.trace_id);
  EXPECT_EQ(primaries[0].parent_span_id, root.span_id);
  EXPECT_EQ(primaries[0].code, static_cast<std::uint32_t>(StatusCode::kBusy));
  EXPECT_EQ(primaries[0].detail_view(), "primary");

  const auto retries = of_kind(records, obs::RecordKind::kBusyRetry);
  ASSERT_EQ(retries.size(), 1u);
  EXPECT_EQ(retries[0].trace_id, root.trace_id);
  EXPECT_EQ(retries[0].parent_span_id, root.span_id);
  EXPECT_EQ(retries[0].detail_view(), "busy_retry");

  const auto pfs_spans = of_kind(records, obs::RecordKind::kPfsDirect);
  ASSERT_EQ(pfs_spans.size(), 1u);
  EXPECT_EQ(pfs_spans[0].trace_id, root.trace_id);

  transport.unregister_endpoint(0);
}

TEST(PfsSingleflightTrace, LeaderAndJoinersAttributed) {
  // The storm shape with tracing: 8 sampled requests for one lost file
  // coalesce; exactly one kPfsFetchLeader span appears, every other
  // caller gets a kPfsFetchJoiner span in its own trace.
  PfsStore pfs(/*read_latency=*/20000us);
  pfs.put("/lost", "payload");
  HvacServerConfig config;
  config.async_data_mover = false;
  config.pfs_singleflight = true;
  HvacServer server(0, pfs, config);
  obs::FlightRecorder recorder(1024);
  server.attach_observability(&recorder);

  constexpr int kThreads = 8;
  std::vector<std::uint64_t> trace_ids(kThreads);
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &ok, &trace_ids, t] {
      rpc::RpcRequest request;
      request.op = rpc::Op::kReadFile;
      request.path = "/lost";
      request.trace = obs::TraceContext::root();
      trace_ids[static_cast<std::size_t>(t)] = request.trace.trace_id;
      const auto response = server.handle(request);
      if (response.code == StatusCode::kOk) ok.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(ok.load(), kThreads);

  const std::vector<obs::Record> records = recorder.dump();
  const auto leaders = of_kind(records, obs::RecordKind::kPfsFetchLeader);
  ASSERT_EQ(leaders.size(), 1u);
  const std::unordered_set<std::uint64_t> requests(trace_ids.begin(),
                                                   trace_ids.end());
  EXPECT_TRUE(requests.count(leaders[0].trace_id) == 1);
  EXPECT_EQ(leaders[0].detail_view(), "/lost");

  const auto joiners = of_kind(records, obs::RecordKind::kPfsFetchJoiner);
  EXPECT_EQ(joiners.size(),
            server.pfs_guard()->stats_snapshot().coalesced);
  std::unordered_set<std::uint64_t> joiner_traces;
  for (const obs::Record& j : joiners) {
    EXPECT_TRUE(requests.count(j.trace_id) == 1);
    EXPECT_NE(j.trace_id, leaders[0].trace_id);
    joiner_traces.insert(j.trace_id);
  }
  EXPECT_EQ(joiner_traces.size(), joiners.size());  // one per caller

  // Every request got its server-side execute span.
  EXPECT_EQ(of_kind(records, obs::RecordKind::kServerHandle).size(),
            static_cast<std::size_t>(kThreads));
}

TEST(MetricsMigration, ExportMatchesLegacySnapshots) {
  Cluster cluster(traced_config());
  const auto paths = cluster.stage_dataset(12, 64);
  cluster.warm_caches(paths);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }

  const HvacClient::Stats c = cluster.client(0).stats_snapshot();
  const HvacServer::Stats s = cluster.server(1).stats_snapshot();
  const rpc::Transport::EndpointStats t = cluster.transport().stats(2);
  const std::string text = cluster.metrics_registry().export_prometheus_text();

  const auto expect_line = [&text](const std::string& line) {
    EXPECT_NE(text.find(line), std::string::npos) << "missing: " << line;
  };
  expect_line("ftc_client_reads_total{node=\"0\"} " + std::to_string(c.reads));
  expect_line("ftc_client_served_total{node=\"0\",outcome=\"remote_cache\"} " +
              std::to_string(c.served_remote_cache));
  expect_line("ftc_server_reads_total{node=\"1\"} " + std::to_string(s.reads));
  expect_line("ftc_server_cache_hits_total{node=\"1\"} " +
              std::to_string(s.cache_hits));
  expect_line("ftc_transport_received_total{node=\"2\"} " +
              std::to_string(t.received));
  expect_line("ftc_client_read_latency_us_count{node=\"0\"} " +
              std::to_string(cluster.client(0).latency().count()));
  // JSON export parses the same series (spot check + well-formedness).
  const std::string json = cluster.metrics_registry().export_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"ftc_client_reads_total\""),
            std::string::npos);
}

TEST(MetricsMigration, TracingKnobsDoNotChangeLegacyStats) {
  // Same deterministic workload with tracing off and fully on: the legacy
  // stats_snapshot() views must be byte-identical (observability must
  // observe, never perturb).
  const auto run = [](bool tracing) {
    auto config = traced_config();
    config.obs.tracing = tracing;
    Cluster cluster(config);
    const auto paths = cluster.stage_dataset(10, 64);
    cluster.warm_caches(paths);
    for (const auto& path : paths) {
      EXPECT_TRUE(cluster.client(0).read_file(path).is_ok());
    }
    return cluster.client(0).stats_snapshot();
  };
  const HvacClient::Stats off = run(false);
  const HvacClient::Stats on = run(true);
  EXPECT_EQ(std::memcmp(&off, &on, sizeof(HvacClient::Stats)), 0);
}

}  // namespace
}  // namespace ftc::cluster
