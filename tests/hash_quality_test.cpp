#include "hash/hash.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ftc::hash {
namespace {

TEST(HashKey, AlgorithmsDisagree) {
  const std::string key = "/lustre/orion/cosmoUniverse/file_0000001.tfrecord";
  const auto fnv = hash_key(Algorithm::kFnv1a64, key);
  const auto murmur = hash_key(Algorithm::kMurmur3_64, key);
  const auto xx = hash_key(Algorithm::kXxHash64, key);
  EXPECT_NE(fnv, murmur);
  EXPECT_NE(murmur, xx);
  EXPECT_NE(fnv, xx);
}

TEST(HashKey, SeedVariesAllAlgorithms) {
  for (const auto algorithm :
       {Algorithm::kFnv1a64, Algorithm::kMurmur3_64, Algorithm::kXxHash64}) {
    EXPECT_NE(hash_key(algorithm, "k", 0), hash_key(algorithm, "k", 1))
        << algorithm_name(algorithm);
  }
}

TEST(AlgorithmName, Names) {
  EXPECT_STREQ(algorithm_name(Algorithm::kFnv1a64), "fnv1a64");
  EXPECT_STREQ(algorithm_name(Algorithm::kMurmur3_64), "murmur3_64");
  EXPECT_STREQ(algorithm_name(Algorithm::kXxHash64), "xxhash64");
}

// Property sweep: all three hashes must distribute sequential file names
// uniformly over bucket counts typical of HVAC deployments.  The chi-squared
// statistic over B buckets has expectation B-1 and stddev ~sqrt(2B); we
// accept anything below mean + 5 sigma.
class HashUniformity
    : public ::testing::TestWithParam<std::tuple<Algorithm, std::uint64_t>> {};

TEST_P(HashUniformity, ChiSquaredWithinBounds) {
  const auto [algorithm, buckets] = GetParam();
  constexpr std::uint64_t kKeys = 20000;
  const double chi2 = chi_squared_uniformity(algorithm, kKeys, buckets);
  const double dof = static_cast<double>(buckets - 1);
  const double limit = dof + 5.0 * std::sqrt(2.0 * dof);
  EXPECT_LT(chi2, limit) << algorithm_name(algorithm) << " over " << buckets
                         << " buckets";
  EXPECT_GT(chi2, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndScales, HashUniformity,
    ::testing::Combine(::testing::Values(Algorithm::kFnv1a64,
                                         Algorithm::kMurmur3_64,
                                         Algorithm::kXxHash64),
                       ::testing::Values<std::uint64_t>(64, 128, 1024)),
    [](const ::testing::TestParamInfo<HashUniformity::ParamType>& info) {
      return std::string(algorithm_name(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ftc::hash
