#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "rpc/transport.hpp"

namespace ftc::rpc {
namespace {

using namespace std::chrono_literals;

RpcResponse echo_handler(const RpcRequest& request) {
  RpcResponse response;
  response.code = StatusCode::kOk;
  response.payload = "echo:" + request.path;
  return response;
}

TEST(TransportAsync, CompletionDelivered) {
  Transport transport;
  transport.register_endpoint(0, echo_handler);
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::string payload;
  RpcRequest request;
  request.path = "/x";
  transport.call_async(0, std::move(request), 1000ms,
                       [&](StatusOr<RpcResponse> result) {
                         std::lock_guard lock(mutex);
                         ASSERT_TRUE(result.is_ok());
                         payload = result.value().payload.to_string();
                         done = true;
                         cv.notify_one();
                       });
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, 2s, [&] { return done; }));
  EXPECT_EQ(payload, "echo:/x");
}

TEST(TransportAsync, TimeoutDelivered) {
  Transport transport;
  transport.register_endpoint(0, echo_handler);
  transport.kill(0);
  std::atomic<int> code{-1};
  transport.call_async(0, RpcRequest{}, 30ms,
                       [&](StatusOr<RpcResponse> result) {
                         code = static_cast<int>(result.status().code());
                       });
  transport.drain_async();
  EXPECT_EQ(code.load(), static_cast<int>(StatusCode::kTimeout));
}

TEST(TransportAsync, ManyConcurrentCompletions) {
  Transport transport;
  transport.register_endpoint(0, echo_handler);
  transport.register_endpoint(1, echo_handler);
  std::atomic<int> completions{0};
  for (int i = 0; i < 32; ++i) {
    RpcRequest request;
    request.path = std::to_string(i);
    transport.call_async(i % 2, std::move(request), 2000ms,
                         [&](StatusOr<RpcResponse> result) {
                           if (result.is_ok()) completions.fetch_add(1);
                         });
  }
  transport.drain_async();
  EXPECT_EQ(completions.load(), 32);
}

TEST(TransportAsync, DrainIsReusable) {
  Transport transport;
  transport.register_endpoint(0, echo_handler);
  std::atomic<int> completions{0};
  auto fire = [&] {
    transport.call_async(0, RpcRequest{}, 1000ms,
                         [&](StatusOr<RpcResponse>) {
                           completions.fetch_add(1);
                         });
  };
  fire();
  transport.drain_async();
  EXPECT_EQ(completions.load(), 1);
  fire();
  transport.drain_async();
  EXPECT_EQ(completions.load(), 2);
}

TEST(TransportAsync, UnknownEndpointImmediateError) {
  Transport transport;
  std::atomic<int> code{-1};
  transport.call_async(9, RpcRequest{}, 100ms,
                       [&](StatusOr<RpcResponse> result) {
                         code = static_cast<int>(result.status().code());
                       });
  transport.drain_async();
  EXPECT_EQ(code.load(), static_cast<int>(StatusCode::kUnavailable));
}

TEST(TransportAsync, DestructorDrainsInFlightCalls) {
  std::atomic<int> completions{0};
  {
    Transport transport;
    transport.register_endpoint(0, [](const RpcRequest& request) {
      std::this_thread::sleep_for(10ms);
      return echo_handler(request);
    });
    for (int i = 0; i < 4; ++i) {
      transport.call_async(0, RpcRequest{}, 2000ms,
                           [&](StatusOr<RpcResponse>) {
                             completions.fetch_add(1);
                           });
    }
    // Destructor must wait for all four completions.
  }
  EXPECT_EQ(completions.load(), 4);
}

}  // namespace
}  // namespace ftc::rpc
