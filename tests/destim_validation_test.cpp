// Validation-phase behaviour in the DES epoch structure.
#include <gtest/gtest.h>

#include "destim/experiment.hpp"

namespace ftc::destim {
namespace {

using cluster::FtMode;

ExperimentConfig val_config() {
  ExperimentConfig config;
  config.node_count = 8;
  config.mode = FtMode::kHashRingRecache;
  config.file_count = 256;
  config.validation_file_count = 64;
  config.file_bytes = 2ULL << 20;
  config.samples_per_file = 2;
  config.epochs = 3;
  config.files_per_step_per_node = 4;
  config.compute_time_per_step = 10 * simtime::kMillisecond;
  config.pfs.access_latency = 5 * simtime::kMillisecond;
  config.pfs.access_latency_tail_mean = 0;
  config.rpc_timeout = 10 * simtime::kMillisecond;
  config.elastic_restart_overhead = 50 * simtime::kMillisecond;
  return config;
}

TEST(Validation, WarmupCoversTrainAndValidation) {
  const auto result = run_experiment(val_config());
  ASSERT_TRUE(result.completed) << result.abort_reason;
  // Epoch 0 fetches both the 256 training and 64 validation files once.
  EXPECT_EQ(result.epochs[0].pfs_reads, 256u + 64u);
  EXPECT_EQ(result.epochs[1].pfs_reads, 0u);
  EXPECT_EQ(result.epochs[2].pfs_reads, 0u);
}

TEST(Validation, AddsTimePerEpoch) {
  auto without = val_config();
  without.validation_file_count = 0;
  const auto with_val = run_experiment(val_config());
  const auto no_val = run_experiment(without);
  ASSERT_TRUE(with_val.completed);
  ASSERT_TRUE(no_val.completed);
  EXPECT_GT(with_val.total_time, no_val.total_time);
  EXPECT_GT(with_val.epochs[1].duration, no_val.epochs[1].duration);
}

TEST(Validation, FailureDuringEpochStillRecovers) {
  auto config = val_config();
  cluster::PlannedFailure failure;
  failure.victim = 3;
  failure.epoch = 1;
  failure.epoch_fraction = 0.9;  // near the training/validation boundary
  config.failures = {failure};
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);
  // Lost validation files are recached like training files: the final
  // epoch is PFS-silent.
  EXPECT_EQ(result.epochs.back().pfs_reads, 0u);
}

TEST(Validation, DeterministicWithValidation) {
  const auto a = run_experiment(val_config());
  const auto b = run_experiment(val_config());
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

TEST(Validation, WorksWithPrefetchAndReplication) {
  auto config = val_config();
  config.prefetch.enabled = true;
  config.replication_factor = 2;
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.epochs[0].pfs_reads, 256u + 64u);
  EXPECT_EQ(result.epochs.back().pfs_reads, 0u);
}

TEST(Validation, ValidationOnlyDegenerateCase) {
  auto config = val_config();
  config.validation_file_count = 16;
  config.node_count = 32;  // more nodes than some ranks' val shards
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.epochs[0].pfs_reads, 256u + 16u);
}

}  // namespace
}  // namespace ftc::destim
