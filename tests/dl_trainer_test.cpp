// End-to-end integration: simulated CosmoFlow-like training over the
// threaded cluster with failures — the semantic counterpart of the paper's
// Frontier runs.
#include "dl/threaded_trainer.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "dl/cosmoflow.hpp"

namespace ftc::dl {
namespace {

using namespace std::chrono_literals;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FtMode;

ClusterConfig make_config(FtMode mode) {
  ClusterConfig config;
  config.node_count = 4;
  config.client.mode = mode;
  config.client.rpc_timeout = 50ms;
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.server.async_data_mover = false;
  config.server.cache_capacity_bytes = 64 << 20;
  return config;
}

constexpr std::uint32_t kFiles = 32;
constexpr std::uint32_t kBytes = 64;

TEST(ThreadedTraining, NoFailureAllModesComplete) {
  for (const FtMode mode :
       {FtMode::kNone, FtMode::kPfsRedirect, FtMode::kHashRingRecache}) {
    Cluster cluster(make_config(mode));
    const auto paths = cluster.stage_dataset(kFiles, kBytes);
    ThreadedTrainingConfig config;
    config.epochs = 3;
    const auto result =
        run_threaded_training(cluster, paths, kBytes, config);
    EXPECT_TRUE(result.completed) << result.abort_reason;
    EXPECT_EQ(result.epochs_finished, 3u);
    EXPECT_EQ(result.files_read, 3u * kFiles);
    EXPECT_EQ(result.integrity_failures, 0u);
    EXPECT_EQ(result.restarts, 0u);
  }
}

TEST(ThreadedTraining, CachingEliminatesPfsAfterEpoch0) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(kFiles, kBytes);
  ThreadedTrainingConfig config;
  config.epochs = 3;
  const auto result = run_threaded_training(cluster, paths, kBytes, config);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.pfs_reads_per_epoch.size(), 3u);
  EXPECT_EQ(result.pfs_reads_per_epoch[0], kFiles);  // warm-up epoch
  EXPECT_EQ(result.pfs_reads_per_epoch[1], 0u);
  EXPECT_EQ(result.pfs_reads_per_epoch[2], 0u);
}

TEST(ThreadedTraining, NoFtAbortsOnFailure) {
  Cluster cluster(make_config(FtMode::kNone));
  const auto paths = cluster.stage_dataset(kFiles, kBytes);
  ThreadedTrainingConfig config;
  config.epochs = 3;
  config.injections.push_back({1, 4, 2});
  const auto result = run_threaded_training(cluster, paths, kBytes, config);
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.abort_reason.empty());
}

TEST(ThreadedTraining, PfsRedirectSurvivesFailure) {
  Cluster cluster(make_config(FtMode::kPfsRedirect));
  const auto paths = cluster.stage_dataset(kFiles, kBytes);
  ThreadedTrainingConfig config;
  config.epochs = 4;
  config.injections.push_back({1, 4, 2});
  const auto result = run_threaded_training(cluster, paths, kBytes, config);
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_EQ(result.integrity_failures, 0u);
  ASSERT_EQ(result.pfs_reads_per_epoch.size(), 4u);
  // Post-failure epochs keep paying PFS reads for the lost files.
  EXPECT_GT(result.pfs_reads_per_epoch[2], 0u);
  EXPECT_GT(result.pfs_reads_per_epoch[3], 0u);
}

TEST(ThreadedTraining, HashRingRecachesOnceThenNvmeOnly) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(kFiles, kBytes);
  ThreadedTrainingConfig config;
  config.epochs = 4;
  config.injections.push_back({1, 4, 2});
  const auto result = run_threaded_training(cluster, paths, kBytes, config);
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);
  ASSERT_EQ(result.pfs_reads_per_epoch.size(), 4u);
  // The epoch after the failure refetches the lost files once...
  const std::uint64_t recache_epoch = result.pfs_reads_per_epoch[1] +
                                      result.pfs_reads_per_epoch[2];
  EXPECT_GT(recache_epoch, 0u);
  EXPECT_LT(recache_epoch, kFiles);  // only the lost share, not everything
  // ...and the final epoch is PFS-silent again (the recaching paid off).
  EXPECT_EQ(result.pfs_reads_per_epoch[3], 0u);
}

TEST(ThreadedTraining, HashRingBeatsPfsOnPfsTraffic) {
  auto run_mode = [&](FtMode mode) {
    Cluster cluster(make_config(mode));
    const auto paths = cluster.stage_dataset(kFiles, kBytes);
    ThreadedTrainingConfig config;
    config.epochs = 5;
    config.injections.push_back({1, 4, 2});
    const auto result =
        run_threaded_training(cluster, paths, kBytes, config);
    EXPECT_TRUE(result.completed) << result.abort_reason;
    std::uint64_t total = 0;
    for (std::uint64_t reads : result.pfs_reads_per_epoch) total += reads;
    return total;
  };
  const auto pfs_mode_traffic = run_mode(FtMode::kPfsRedirect);
  const auto ring_mode_traffic = run_mode(FtMode::kHashRingRecache);
  // The headline mechanism: recaching strictly reduces PFS traffic.
  EXPECT_LT(ring_mode_traffic, pfs_mode_traffic);
}

TEST(ThreadedTraining, TwoSequentialFailures) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(kFiles, kBytes);
  ThreadedTrainingConfig config;
  config.epochs = 5;
  config.injections.push_back({1, 4, 2});
  config.injections.push_back({3, 2, 0});
  const auto result = run_threaded_training(cluster, paths, kBytes, config);
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 2u);
  EXPECT_EQ(result.integrity_failures, 0u);
}

TEST(ThreadedTraining, PrefetchEpochsMatchLegacySemantics) {
  // The epoch-ahead pipeline must not change WHAT is read, only how it
  // travels: same files-read/PFS profile as the legacy demand loop, zero
  // integrity failures, and the staged serves actually happen.
  auto cluster_config = make_config(FtMode::kHashRingRecache);
  cluster_config.client.prefetch.enabled = true;
  cluster_config.client.prefetch.depth = 4;
  Cluster cluster(cluster_config);
  const auto paths = cluster.stage_dataset(kFiles, kBytes);
  ThreadedTrainingConfig config;
  config.epochs = 3;
  config.prefetch = true;
  const auto result = run_threaded_training(cluster, paths, kBytes, config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.files_read, 3u * kFiles);
  EXPECT_EQ(result.integrity_failures, 0u);
  ASSERT_EQ(result.pfs_reads_per_epoch.size(), 3u);
  EXPECT_EQ(result.pfs_reads_per_epoch[0], kFiles);  // warm-up epoch
  EXPECT_EQ(result.pfs_reads_per_epoch[1], 0u);
  EXPECT_EQ(result.pfs_reads_per_epoch[2], 0u);
  EXPECT_EQ(result.epoch_seconds.size(), 3u);
  std::uint64_t staged_serves = 0;
  for (cluster::NodeId n = 0; n < cluster.node_count(); ++n) {
    staged_serves += cluster.client(n).stats_snapshot().prefetch_local_hits;
  }
  EXPECT_GT(staged_serves, 0u);
}

TEST(CosmoflowWorkload, PresetMath) {
  CosmoflowWorkload workload;
  EXPECT_EQ(workload.train_file_count(), 524288u / 64u);
  EXPECT_GT(workload.mean_file_bytes(), 100000u);
  const auto scaled = workload.scaled_down(8);
  EXPECT_EQ(scaled.train_samples, workload.train_samples / 8);
  EXPECT_EQ(scaled.dataset_bytes, workload.dataset_bytes / 8);
  EXPECT_EQ(workload.scaled_down(0).train_samples, workload.train_samples);
}

}  // namespace
}  // namespace ftc::dl
