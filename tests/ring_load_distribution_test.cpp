#include "ring/load_distribution.hpp"

#include <gtest/gtest.h>

namespace ftc::ring {
namespace {

LoadDistributionParams small_params() {
  LoadDistributionParams p;
  p.physical_nodes = 64;
  p.vnodes_per_node = 50;
  p.file_count = 8192;
  p.trials = 30;
  p.seed = 7;
  return p;
}

TEST(LoadDistribution, TrialCountsRecorded) {
  const auto result = run_load_distribution(small_params());
  EXPECT_EQ(result.receiver_nodes.count(), 30u);
  EXPECT_EQ(result.lost_files.count(), 30u);
}

TEST(LoadDistribution, LostFilesNearExpectedShare) {
  const auto params = small_params();
  const auto result = run_load_distribution(params);
  const double expected = static_cast<double>(params.file_count) /
                          static_cast<double>(params.physical_nodes);
  EXPECT_NEAR(result.lost_files.mean(), expected, expected * 0.35);
}

TEST(LoadDistribution, ReceiversBoundedBySurvivors) {
  const auto result = run_load_distribution(small_params());
  EXPECT_GE(result.receiver_nodes.min(), 1.0);
  EXPECT_LE(result.receiver_nodes.max(), 63.0);
}

TEST(LoadDistribution, FilesPerReceiverConsistentWithTotals) {
  const auto result = run_load_distribution(small_params());
  // mean(files_per_receiver) ~= mean(lost)/mean(receivers) within slack.
  const double implied =
      result.lost_files.mean() / result.receiver_nodes.mean();
  EXPECT_NEAR(result.files_per_receiver.mean(), implied,
              result.files_per_receiver.mean() * 0.5);
}

TEST(LoadDistribution, MoreVnodesMoreReceivers) {
  LoadDistributionParams base = small_params();
  const auto sweep = run_load_distribution_sweep(base, {2, 10, 100});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_LT(sweep[0].receiver_nodes.mean(), sweep[1].receiver_nodes.mean());
  EXPECT_LT(sweep[1].receiver_nodes.mean(), sweep[2].receiver_nodes.mean());
}

TEST(LoadDistribution, MoreVnodesFewerFilesPerReceiver) {
  LoadDistributionParams base = small_params();
  const auto sweep = run_load_distribution_sweep(base, {2, 100});
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_GT(sweep[0].files_per_receiver.mean(),
            sweep[1].files_per_receiver.mean());
}

TEST(LoadDistribution, HotSpotShrinksWithVnodes) {
  LoadDistributionParams base = small_params();
  const auto sweep = run_load_distribution_sweep(base, {1, 100});
  EXPECT_GT(sweep[0].max_files_one_receiver.mean(),
            sweep[1].max_files_one_receiver.mean());
}

TEST(LoadDistribution, DeterministicForSeed) {
  const auto a = run_load_distribution(small_params());
  const auto b = run_load_distribution(small_params());
  EXPECT_DOUBLE_EQ(a.receiver_nodes.mean(), b.receiver_nodes.mean());
  EXPECT_DOUBLE_EQ(a.files_per_receiver.mean(), b.files_per_receiver.mean());
}

TEST(LoadDistribution, SeedVariesOutcome) {
  auto p1 = small_params();
  auto p2 = small_params();
  p2.seed = 99;
  const auto a = run_load_distribution(p1);
  const auto b = run_load_distribution(p2);
  EXPECT_NE(a.receiver_nodes.mean(), b.receiver_nodes.mean());
}

TEST(LoadDistribution, DegenerateInputs) {
  LoadDistributionParams p;
  p.physical_nodes = 1;  // cannot lose a node and still have receivers
  p.trials = 5;
  const auto r1 = run_load_distribution(p);
  EXPECT_EQ(r1.receiver_nodes.count(), 0u);

  LoadDistributionParams p2 = small_params();
  p2.file_count = 0;
  const auto r2 = run_load_distribution(p2);
  EXPECT_EQ(r2.receiver_nodes.count(), 0u);
}

TEST(LoadDistribution, AllLostFilesAreReceived) {
  // Conservation: every lost file is counted at exactly one receiver, so
  // lost == receivers * files_per_receiver for each trial; verify via the
  // aggregate identity sum(lost) == sum over trials of received totals.
  const auto params = small_params();
  const auto result = run_load_distribution(params);
  EXPECT_GT(result.lost_files.sum(), 0.0);
  EXPECT_EQ(result.files_per_receiver.count(), result.receiver_nodes.count());
}

}  // namespace
}  // namespace ftc::ring
