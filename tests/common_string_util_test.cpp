#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace ftc {
namespace {

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("hash_ring", "hash"));
  EXPECT_FALSE(starts_with("hash", "hash_ring"));
  EXPECT_TRUE(ends_with("file.tfrecord", ".tfrecord"));
  EXPECT_FALSE(ends_with("file.txt", ".tfrecord"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(FormatDouble, Decimals) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1024), "1.00 KiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(1ULL << 20), "1.00 MiB");
  EXPECT_EQ(format_bytes(3ULL << 30), "3.00 GiB");
}

TEST(ParseBytes, Units) {
  EXPECT_EQ(parse_bytes("512"), 512u);
  EXPECT_EQ(parse_bytes("1KiB"), 1024u);
  EXPECT_EQ(parse_bytes("128 KiB"), 128u * 1024u);
  EXPECT_EQ(parse_bytes("4GiB"), 4ULL << 30);
  EXPECT_EQ(parse_bytes("2T"), 2ULL << 40);
  EXPECT_EQ(parse_bytes("1.5M"), static_cast<std::uint64_t>(1.5 * (1 << 20)));
}

TEST(ParseBytes, Invalid) {
  EXPECT_EQ(parse_bytes(""), 0u);
  EXPECT_EQ(parse_bytes("abc"), 0u);
  EXPECT_EQ(parse_bytes("12 parsecs"), 0u);
  EXPECT_EQ(parse_bytes("-5"), 0u);
}

TEST(ZeroPad, Widths) {
  EXPECT_EQ(zero_pad(42, 7), "0000042");
  EXPECT_EQ(zero_pad(0, 3), "000");
  EXPECT_EQ(zero_pad(12345, 3), "12345");  // wider than field: no truncation
}

}  // namespace
}  // namespace ftc
