// Replication extension: backup copies on the ring successor make failure
// recovery PFS-free at the cost of extra NVMe footprint.
#include <gtest/gtest.h>

#include <chrono>

#include "cluster/cluster.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig replicated_config(std::uint32_t factor) {
  ClusterConfig config;
  config.node_count = 4;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 50ms;
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.client.replication.factor = factor;
  config.server.async_data_mover = false;
  config.server.cache_capacity_bytes = 64 << 20;
  return config;
}

TEST(Replication, BackupsStoredOnFirstFetch) {
  Cluster cluster(replicated_config(2));
  const auto paths = cluster.stage_dataset(24, 64);
  cluster.warm_caches(paths);
  // Every file lives on 2 nodes: total cached = 2x dataset.
  EXPECT_EQ(cluster.total_cached_files(), 2 * paths.size());
  std::uint64_t replicas = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    replicas += cluster.server(n).stats_snapshot().replicas_stored;
  }
  EXPECT_EQ(replicas, paths.size());
}

TEST(Replication, FactorOneMatchesBaseline) {
  Cluster cluster(replicated_config(1));
  const auto paths = cluster.stage_dataset(24, 64);
  cluster.warm_caches(paths);
  EXPECT_EQ(cluster.total_cached_files(), paths.size());
}

TEST(Replication, FailureRecoveryNeedsNoPfs) {
  Cluster cluster(replicated_config(2));
  const auto paths = cluster.stage_dataset(24, 64);
  cluster.warm_caches(paths);
  const auto pfs_after_warmup = cluster.pfs().read_count();

  cluster.fail_node(1);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
  // The headline property: the successor already held every lost file, so
  // recovery generated ZERO PFS traffic (vs "one access per lost file" for
  // plain recaching).
  EXPECT_EQ(cluster.pfs().read_count(), pfs_after_warmup);
}

TEST(Replication, SurvivesTwoFailuresWithFactorThree) {
  Cluster cluster(replicated_config(3));
  const auto paths = cluster.stage_dataset(24, 64);
  cluster.warm_caches(paths);
  const auto pfs_after_warmup = cluster.pfs().read_count();
  cluster.fail_node(1);
  cluster.fail_node(3);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
  EXPECT_EQ(cluster.pfs().read_count(), pfs_after_warmup);
}

TEST(Replication, FactorTwoSingleBackupMayNeedPfsAfterDoubleFailure) {
  // With R=2, losing both the primary and its backup forces PFS traffic —
  // replication degrades gracefully to recaching, never to data loss.
  Cluster cluster(replicated_config(2));
  const auto paths = cluster.stage_dataset(24, 64);
  cluster.warm_caches(paths);
  cluster.fail_node(0);
  cluster.fail_node(1);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(2).read_file(path).is_ok()) << path;
  }
}

TEST(Replication, ReplicasPushedStatTracked) {
  Cluster cluster(replicated_config(2));
  const auto paths = cluster.stage_dataset(12, 64);
  std::uint64_t pushed = 0;
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }
  pushed = cluster.client(0).stats_snapshot().replicas_pushed;
  EXPECT_EQ(pushed, paths.size());
}

TEST(Replication, IgnoredOutsideRingMode) {
  ClusterConfig config = replicated_config(2);
  config.client.mode = FtMode::kPfsRedirect;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(12, 64);
  cluster.warm_caches(paths);
  // Static-modulo placement has no owner chain; no replicas are pushed.
  EXPECT_EQ(cluster.total_cached_files(), paths.size());
}

}  // namespace
}  // namespace ftc::cluster
