#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftc::sim {
namespace {

TEST(Resource, ServesWithinCapacityImmediately) {
  Simulator sim;
  Resource resource(sim, 2);
  std::vector<SimTime> done;
  resource.acquire(10, [&] { done.push_back(sim.now()); });
  resource.acquire(10, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 10);
  EXPECT_EQ(done[1], 10);
  EXPECT_EQ(resource.completed(), 2u);
  EXPECT_EQ(resource.total_wait_time(), 0);
}

TEST(Resource, QueuesBeyondCapacity) {
  Simulator sim;
  Resource resource(sim, 1);
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    resource.acquire(10, [&] { done.push_back(sim.now()); });
  }
  EXPECT_EQ(resource.queue_length(), 2u);
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], 10);
  EXPECT_EQ(done[1], 20);
  EXPECT_EQ(done[2], 30);
  // Second waited 10, third waited 20.
  EXPECT_EQ(resource.total_wait_time(), 30);
}

TEST(Resource, FifoOrderPreserved) {
  Simulator sim;
  Resource resource(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    resource.acquire(1, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(Resource, CapacityZeroClampedToOne) {
  Simulator sim;
  Resource resource(sim, 0);
  EXPECT_EQ(resource.capacity(), 1u);
}

TEST(Resource, MeanWaitSeconds) {
  Simulator sim;
  Resource resource(sim, 1);
  for (int i = 0; i < 2; ++i) {
    resource.acquire(simtime::kSecond, [] {});
  }
  sim.run();
  // First waits 0s, second waits 1s -> mean 0.5s.
  EXPECT_DOUBLE_EQ(resource.mean_wait_seconds(), 0.5);
}

TEST(Resource, InterleavedArrivals) {
  Simulator sim;
  Resource resource(sim, 1);
  std::vector<SimTime> done;
  sim.schedule(0, [&] {
    resource.acquire(10, [&] { done.push_back(sim.now()); });
  });
  sim.schedule(5, [&] {
    resource.acquire(10, [&] { done.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 10);
  EXPECT_EQ(done[1], 20);  // waited 5, then served 10
}

TEST(Resource, HighConcurrencyConservation) {
  Simulator sim;
  Resource resource(sim, 8);
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    resource.acquire(7, [&] { ++completed; });
  }
  sim.run();
  EXPECT_EQ(completed, 100);
  EXPECT_EQ(resource.completed(), 100u);
  EXPECT_EQ(resource.in_service(), 0u);
  EXPECT_EQ(resource.queue_length(), 0u);
  // 100 jobs at capacity 8, service 7 -> makespan = ceil(100/8)*7 = 91.
  EXPECT_EQ(sim.now(), 91);
}

}  // namespace
}  // namespace ftc::sim
