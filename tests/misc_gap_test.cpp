// Coverage for corners not exercised elsewhere.
#include <gtest/gtest.h>

#include <chrono>

#include "cluster/cluster.hpp"
#include "common/config.hpp"
#include "destim/experiment.hpp"
#include "sim/simulator.hpp"
#include "trace/failure_analyzer.hpp"

namespace ftc {
namespace {

using namespace std::chrono_literals;

TEST(SimulatorGaps, CancelFromWithinEvent) {
  sim::Simulator sim;
  bool second_ran = false;
  sim::EventId second = sim::kInvalidEvent;
  second = sim.schedule(20, [&] { second_ran = true; });
  sim.schedule(10, [&] { EXPECT_TRUE(sim.cancel(second)); });
  sim.run();
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(SimulatorGaps, ScheduleFromWithinRunUntil) {
  sim::Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] {
    ++fired;
    sim.schedule(5, [&] { ++fired; });   // lands at 15, inside window
    sim.schedule(100, [&] { ++fired; }); // outside window
  });
  sim.run_until(50);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 50);
}

TEST(DesGaps, FtOverheadMakesNoFtFastest) {
  destim::ExperimentConfig config;
  config.node_count = 8;
  config.file_count = 256;
  config.file_bytes = 1ULL << 20;
  config.epochs = 2;
  config.ft_overhead_per_read = 500 * simtime::kMicrosecond;  // exaggerated
  config.pfs.access_latency_tail_mean = 0;

  config.mode = cluster::FtMode::kNone;
  const auto noft = destim::run_experiment(config);
  config.mode = cluster::FtMode::kHashRingRecache;
  const auto ft = destim::run_experiment(config);
  ASSERT_TRUE(noft.completed);
  ASSERT_TRUE(ft.completed);
  EXPECT_LT(noft.total_time, ft.total_time);
}

TEST(DesGaps, ZeroFtOverheadClosesGap) {
  destim::ExperimentConfig config;
  config.node_count = 8;
  config.file_count = 128;
  config.file_bytes = 1ULL << 20;
  config.epochs = 2;
  config.ft_overhead_per_read = 0;
  config.pfs.access_latency_tail_mean = 0;
  config.mode = cluster::FtMode::kNone;
  const auto noft = destim::run_experiment(config);
  config.mode = cluster::FtMode::kPfsRedirect;
  const auto ft = destim::run_experiment(config);
  // Same static placement, no failures, no FT cost: identical runs.
  EXPECT_EQ(noft.total_time, ft.total_time);
}

TEST(ClusterGaps, NodeJoinUnderStaticPlacementStillServes) {
  cluster::ClusterConfig config;
  config.node_count = 3;
  config.client.mode = cluster::FtMode::kPfsRedirect;
  config.client.rpc_timeout = 100ms;
  config.server.async_data_mover = false;
  cluster::Cluster cluster(config);
  const auto paths = cluster.stage_dataset(30, 64);
  cluster.warm_caches(paths);
  cluster.add_node();
  // Static modulo re-indexes nearly everything (the churn Sec IV-B
  // criticizes), but every file must remain readable.
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
}

TEST(TraceGaps, AnalyzerHandlesShortWindows) {
  std::vector<trace::SlurmJobRecord> log;
  trace::SlurmJobRecord job;
  job.week = 10;  // beyond the requested window
  job.state = trace::JobState::kJobFail;
  job.elapsed_minutes = 30;
  log.push_back(job);
  const trace::FailureAnalyzer analyzer(log);
  const auto rows = analyzer.weekly_elapsed(3);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) EXPECT_EQ(row.failed_jobs, 0u);
}

TEST(TraceGaps, BucketizeWithDegenerateEdges) {
  const trace::FailureAnalyzer analyzer({});
  EXPECT_TRUE(analyzer.by_node_count({}).empty());
  EXPECT_TRUE(analyzer.by_node_count({1.0}).empty());
}

TEST(ConfigGaps, EntriesAccessor) {
  Config cfg;
  cfg.set("a", "1");
  cfg.set("b", "2");
  EXPECT_EQ(cfg.entries().size(), 2u);
  EXPECT_EQ(cfg.entries().at("a"), "1");
}

}  // namespace
}  // namespace ftc
