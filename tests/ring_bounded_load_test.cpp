// Bounded-load lookup (owner_of_hash_bounded) and the NodeLoadEstimator
// behind its overload predicate.  The contract under test: the bounded
// walk visits the same distinct-node order as owner_chain, never changes
// the answer when nothing is overloaded, falls back to the primary when
// everything is, and resolves identically on any two rings that share a
// seed and membership (the paper's clients build rings independently — a
// spill decision must not depend on which client makes it).
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <vector>

#include "hash/murmur3.hpp"
#include "ring/bounded_load.hpp"
#include "ring/consistent_hash_ring.hpp"

namespace ftc::ring {
namespace {

const std::function<bool(NodeId)> kNoneExcluded = [](NodeId) {
  return false;
};
const std::function<bool(NodeId)> kNoneOverloaded = [](NodeId) {
  return false;
};

ConsistentHashRing make_ring(std::uint32_t nodes, std::uint64_t seed = 7) {
  RingConfig config;
  config.vnodes_per_node = 50;
  config.seed = seed;
  return ConsistentHashRing(nodes, config);
}

TEST(BoundedLookupTest, NoOverloadMatchesPlainLookup) {
  const auto ring = make_ring(8);
  std::uint64_t h = 0xABCD;
  for (int i = 0; i < 200; ++i) {
    h = hash::fmix64(h);
    const auto result =
        ring.owner_of_hash_bounded(h, 3, kNoneExcluded, kNoneOverloaded);
    EXPECT_EQ(result.chosen, ring.owner_of_hash(h));
    EXPECT_EQ(result.primary, ring.owner_of_hash(h));
    EXPECT_FALSE(result.spilled());
    EXPECT_EQ(result.inspected, 1u);
  }
}

TEST(BoundedLookupTest, SpillsToNextDistinctOwner) {
  const auto ring = make_ring(8);
  std::uint64_t h = 0xBEEF;
  for (int i = 0; i < 200; ++i) {
    h = hash::fmix64(h);
    const NodeId primary = ring.owner_of_hash(h);
    const auto overloaded = [primary](NodeId n) { return n == primary; };
    const auto result =
        ring.owner_of_hash_bounded(h, 3, kNoneExcluded, overloaded);
    EXPECT_EQ(result.primary, primary);
    EXPECT_TRUE(result.spilled());
    // The spill target is exactly the second entry of the replica chain.
    const auto chain = ring.owner_chain_of_hash(h, 2);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(result.chosen, chain[1]);
    EXPECT_EQ(result.inspected, 2u);
  }
}

TEST(BoundedLookupTest, AllCandidatesOverloadedFallsBackToPrimary) {
  const auto ring = make_ring(8);
  const auto overloaded = [](NodeId) { return true; };
  std::uint64_t h = 0xF00D;
  for (int i = 0; i < 100; ++i) {
    h = hash::fmix64(h);
    const auto result =
        ring.owner_of_hash_bounded(h, 3, kNoneExcluded, overloaded);
    EXPECT_EQ(result.chosen, result.primary);
    EXPECT_EQ(result.primary, ring.owner_of_hash(h));
    EXPECT_FALSE(result.spilled());
    EXPECT_EQ(result.inspected, 3u);
  }
}

TEST(BoundedLookupTest, ExcludedPrimaryShiftsTheWholeWalk) {
  const auto ring = make_ring(8);
  std::uint64_t h = 0xCAFE;
  for (int i = 0; i < 100; ++i) {
    h = hash::fmix64(h);
    const NodeId plain = ring.owner_of_hash(h);
    const auto excluded = [plain](NodeId n) { return n == plain; };
    const auto result =
        ring.owner_of_hash_bounded(h, 3, excluded, kNoneOverloaded);
    // With the plain owner excluded, the primary is the next distinct
    // node — the same answer owner_of_hash_excluding gives.
    EXPECT_EQ(result.primary, ring.owner_of_hash_excluding(h, excluded));
    EXPECT_EQ(result.chosen, result.primary);
    EXPECT_NE(result.chosen, plain);
  }
}

TEST(BoundedLookupTest, EverythingExcludedReturnsInvalid) {
  const auto ring = make_ring(4);
  const auto excluded = [](NodeId) { return true; };
  const auto result =
      ring.owner_of_hash_bounded(0x1234, 3, excluded, kNoneOverloaded);
  EXPECT_EQ(result.chosen, kInvalidNode);
  EXPECT_EQ(result.primary, kInvalidNode);
}

TEST(BoundedLookupTest, RespectsMaxCandidates) {
  const auto ring = make_ring(8);
  std::uint64_t h = 0xD00Du;
  for (int i = 0; i < 100; ++i) {
    h = hash::fmix64(h);
    const auto chain = ring.owner_chain_of_hash(h, 2);
    ASSERT_EQ(chain.size(), 2u);
    // Both candidates overloaded, third would be fine — but the walk is
    // capped at 2, so the key stays with the primary.
    const auto overloaded = [&chain](NodeId n) {
      return n == chain[0] || n == chain[1];
    };
    const auto result =
        ring.owner_of_hash_bounded(h, 2, kNoneExcluded, overloaded);
    EXPECT_EQ(result.chosen, result.primary);
    EXPECT_LE(result.inspected, 2u);
  }
}

// Two clients that share a seed, membership, and load view must resolve
// every key identically — spill decisions are deterministic, not a
// per-client coin flip.
TEST(BoundedLookupTest, DeterministicAcrossClientsSharingEpoch) {
  const auto ring_a = make_ring(16, /*seed=*/99);
  const auto ring_b = make_ring(16, /*seed=*/99);
  ASSERT_EQ(ring_a.fingerprint(), ring_b.fingerprint());

  // Identical estimator feeds on both sides (hints arrive in the same
  // order because both clients see the same response stream).
  NodeLoadEstimator est_a(0.3);
  NodeLoadEstimator est_b(0.3);
  for (NodeId n = 0; n < 16; ++n) {
    const double load = (n % 5 == 0) ? 12.0 : 1.0;
    est_a.observe(n, load);
    est_b.observe(n, load);
  }
  const auto overloaded_a = [&est_a](NodeId n) {
    return est_a.overloaded(n, 1.25);
  };
  const auto overloaded_b = [&est_b](NodeId n) {
    return est_b.overloaded(n, 1.25);
  };

  std::uint64_t h = 0x5EED;
  int spills = 0;
  for (int i = 0; i < 500; ++i) {
    h = hash::fmix64(h);
    const auto a =
        ring_a.owner_of_hash_bounded(h, 3, kNoneExcluded, overloaded_a);
    const auto b =
        ring_b.owner_of_hash_bounded(h, 3, kNoneExcluded, overloaded_b);
    EXPECT_EQ(a.chosen, b.chosen);
    EXPECT_EQ(a.primary, b.primary);
    EXPECT_EQ(a.inspected, b.inspected);
    if (a.spilled()) ++spills;
  }
  // The loaded nodes own ~3/16 of the keyspace, so some keys must spill.
  EXPECT_GT(spills, 0);
}

TEST(NodeLoadEstimatorTest, FirstObservationSeedsDirectly) {
  NodeLoadEstimator est(0.5);
  est.observe(1, 10.0);
  EXPECT_DOUBLE_EQ(est.load(1), 10.0);
  // Second sample is EWMA-folded: 10 + 0.5 * (4 - 10) = 7.
  est.observe(1, 4.0);
  EXPECT_DOUBLE_EQ(est.load(1), 7.0);
  EXPECT_EQ(est.observed_nodes(), 1u);
}

TEST(NodeLoadEstimatorTest, MeanTracksRunningSum) {
  NodeLoadEstimator est(1.0);
  est.observe(0, 2.0);
  est.observe(1, 4.0);
  est.observe(2, 6.0);
  EXPECT_DOUBLE_EQ(est.mean_load(), 4.0);
  est.forget(2);
  EXPECT_DOUBLE_EQ(est.mean_load(), 3.0);
  EXPECT_EQ(est.observed_nodes(), 2u);
  est.clear();
  EXPECT_DOUBLE_EQ(est.mean_load(), 0.0);
  EXPECT_DOUBLE_EQ(est.load(0), 0.0);
}

TEST(NodeLoadEstimatorTest, OverloadedNeedsTwoNodesAndExceedsCTimesMean) {
  NodeLoadEstimator est(1.0);
  // One observed node: a single sample says nothing about imbalance.
  est.observe(0, 100.0);
  EXPECT_FALSE(est.overloaded(0, 1.25));
  est.observe(1, 1.0);
  // mean = 50.5; node 0 at 100 > 1.25 x 50.5, node 1 is not.
  EXPECT_TRUE(est.overloaded(0, 1.25));
  EXPECT_FALSE(est.overloaded(1, 1.25));
  // Never-observed nodes read as load 0 — not overloaded.
  EXPECT_FALSE(est.overloaded(7, 1.25));
}

TEST(NodeLoadEstimatorTest, AlphaClampedIntoValidRange) {
  NodeLoadEstimator est(-3.0);  // clamped to a sane default
  est.observe(0, 10.0);
  est.observe(0, 0.0);
  // Whatever the clamp chose, the estimate must move and stay in [0, 10].
  EXPECT_LT(est.load(0), 10.0);
  EXPECT_GE(est.load(0), 0.0);
}

}  // namespace
}  // namespace ftc::ring
