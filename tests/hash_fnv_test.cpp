#include "hash/fnv.hpp"

#include <gtest/gtest.h>

namespace ftc::hash {
namespace {

// Reference vectors from the FNV specification (draft-eastlake-fnv).
TEST(Fnv1a64, KnownVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a32, KnownVectors) {
  EXPECT_EQ(fnv1a32(""), 0x811c9dc5U);
  EXPECT_EQ(fnv1a32("a"), 0xe40c292cU);
  EXPECT_EQ(fnv1a32("foobar"), 0xbf9cf968U);
}

TEST(Fnv1a64, IsConstexpr) {
  constexpr std::uint64_t h = fnv1a64("compile-time");
  static_assert(h != 0, "fnv1a64 must be usable at compile time");
  EXPECT_EQ(h, fnv1a64("compile-time"));
}

TEST(Fnv1a64, SeedChangesResult) {
  EXPECT_NE(fnv1a64("key", 1), fnv1a64("key", 2));
}

TEST(Fnv1a64, SensitiveToEveryByte) {
  EXPECT_NE(fnv1a64("/data/file_0000001.tfrecord"),
            fnv1a64("/data/file_0000002.tfrecord"));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

}  // namespace
}  // namespace ftc::hash
