#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace ftc {
namespace {

TEST(Histogram, BucketAssignment) {
  Histogram h({0.0, 10.0, 20.0, 30.0});
  h.add(0.0);    // bucket 0 (inclusive lower edge)
  h.add(9.99);   // bucket 0
  h.add(10.0);   // bucket 1
  h.add(25.0);   // bucket 2
  EXPECT_DOUBLE_EQ(h.bucket_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(2), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, UnderOverflow) {
  Histogram h({0.0, 1.0});
  h.add(-5.0);
  h.add(1.0);  // == top edge -> overflow
  h.add(2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(0), 0.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h({0.0, 10.0});
  h.add(5.0, 2.5);
  h.add(5.0, 0.5);
  EXPECT_DOUBLE_EQ(h.bucket_weight(0), 3.0);
}

TEST(Histogram, FractionsSumToOne) {
  Histogram h({0.0, 1.0, 2.0, 3.0});
  for (double x : {0.5, 1.5, 1.6, 2.9}) h.add(x);
  double total = 0.0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    total += h.bucket_fraction(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, BucketLabel) {
  Histogram h({0.0, 10.0, 20.0});
  EXPECT_EQ(h.bucket_label(0), "[0, 10)");
  EXPECT_EQ(h.bucket_label(1), "[10, 20)");
}

TEST(CategoricalHistogram, CountsAndOrder) {
  CategoricalHistogram h;
  h.add("JOB_FAIL");
  h.add("TIMEOUT");
  h.add("JOB_FAIL");
  h.add("NODE_FAIL", 3.0);
  EXPECT_DOUBLE_EQ(h.count("JOB_FAIL"), 2.0);
  EXPECT_DOUBLE_EQ(h.count("TIMEOUT"), 1.0);
  EXPECT_DOUBLE_EQ(h.count("NODE_FAIL"), 3.0);
  EXPECT_DOUBLE_EQ(h.count("unknown"), 0.0);
  EXPECT_DOUBLE_EQ(h.total(), 6.0);
  ASSERT_EQ(h.categories().size(), 3u);
  EXPECT_EQ(h.categories()[0], "JOB_FAIL");
  EXPECT_EQ(h.categories()[1], "TIMEOUT");
  EXPECT_EQ(h.categories()[2], "NODE_FAIL");
}

TEST(CategoricalHistogram, Fractions) {
  CategoricalHistogram h;
  h.add("a", 1.0);
  h.add("b", 3.0);
  EXPECT_DOUBLE_EQ(h.fraction("a"), 0.25);
  EXPECT_DOUBLE_EQ(h.fraction("b"), 0.75);
}

TEST(CategoricalHistogram, EmptyFractionIsZero) {
  CategoricalHistogram h;
  EXPECT_DOUBLE_EQ(h.fraction("x"), 0.0);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
}

}  // namespace
}  // namespace ftc
