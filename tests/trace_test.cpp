#include <gtest/gtest.h>

#include "trace/failure_analyzer.hpp"
#include "trace/log_generator.hpp"

namespace ftc::trace {
namespace {

LogGeneratorParams test_params() {
  LogGeneratorParams params;
  params.total_jobs = 40000;  // large enough for tight ratios, fast to run
  return params;
}

TEST(LogGenerator, JobCountAndCancelledOnTop) {
  const auto params = test_params();
  const auto log = generate_log(params);
  const auto expected_cancels = static_cast<std::size_t>(
      params.cancelled_fraction * params.total_jobs);
  EXPECT_EQ(log.size(), params.total_jobs + expected_cancels);
  std::size_t cancels = 0;
  for (const auto& job : log) {
    if (job.state == JobState::kCancelled) ++cancels;
  }
  EXPECT_EQ(cancels, expected_cancels);
}

TEST(LogGenerator, UniqueJobIds) {
  const auto log = generate_log(test_params());
  std::vector<std::uint64_t> ids;
  ids.reserve(log.size());
  for (const auto& job : log) ids.push_back(job.job_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

TEST(LogGenerator, FieldsWithinRanges) {
  const auto params = test_params();
  for (const auto& job : generate_log(params)) {
    EXPECT_LT(job.week, params.weeks);
    EXPECT_GE(job.node_count, 1u);
    EXPECT_LE(job.node_count, params.max_nodes);
    EXPECT_GE(job.elapsed_minutes, 1.0);
  }
}

TEST(LogGenerator, Deterministic) {
  const auto a = generate_log(test_params());
  const auto b = generate_log(test_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 997) {
    EXPECT_EQ(a[i].state, b[i].state);
    EXPECT_EQ(a[i].node_count, b[i].node_count);
  }
}

TEST(Analyzer, ExcludesCancelledJobs) {
  const auto params = test_params();
  const auto log = generate_log(params);
  const FailureAnalyzer analyzer(log);
  EXPECT_EQ(analyzer.analyzed_jobs(), params.total_jobs);
  EXPECT_GT(analyzer.excluded_jobs(), 0u);
}

TEST(Analyzer, Table1MatchesCalibrationTargets) {
  const auto params = test_params();
  const FailureAnalyzer analyzer(generate_log(params));
  const Table1Summary summary = analyzer.table1();
  EXPECT_EQ(summary.total_jobs, params.total_jobs);
  // Aggregates within sampling noise of the published Table I numbers.
  EXPECT_NEAR(summary.failure_ratio(), 0.2504, 0.01);
  EXPECT_NEAR(summary.share_of_failures(summary.job_fail), 0.5250, 0.02);
  EXPECT_NEAR(summary.share_of_failures(summary.timeout), 0.4492, 0.02);
  EXPECT_NEAR(summary.share_of_failures(summary.node_fail), 0.0258, 0.01);
  // The paper's headline: Timeout + Node Fail ~ half of all failures.
  EXPECT_NEAR(summary.node_failure_class_share(), 0.475, 0.03);
}

TEST(Analyzer, OverallElapsedMeanNear75Minutes) {
  const FailureAnalyzer analyzer(generate_log(test_params()));
  EXPECT_NEAR(analyzer.overall_failure_elapsed_mean(), 75.0, 12.0);
}

TEST(Analyzer, WeeklySeriesCoverAllWeeks) {
  const auto params = test_params();
  const FailureAnalyzer analyzer(generate_log(params));
  const auto rows = analyzer.weekly_elapsed(params.weeks);
  ASSERT_EQ(rows.size(), params.weeks);
  for (const auto& row : rows) {
    EXPECT_GT(row.failed_jobs, 0u);  // every week sees failures (Fig 1)
    EXPECT_GT(row.overall_mean, 0.0);
  }
}

TEST(Analyzer, NodeFailShareGrowsWithNodeCount) {
  const FailureAnalyzer analyzer(generate_log(test_params()));
  const auto rows = analyzer.by_node_count(default_node_count_edges());
  ASSERT_GE(rows.size(), 2u);
  const auto& smallest = rows.front();
  const auto& largest = rows.back();
  // Fig 2(a): hardware failures dominate at the largest allocations.
  EXPECT_GT(largest.node_fail_share, smallest.node_fail_share * 3);
  // Node Fail + Timeout share in the top bucket is large (paper: 78.6%).
  EXPECT_GT(largest.node_fail_share + largest.timeout_share, 0.5);
}

TEST(Analyzer, ElapsedBucketsShowFlatTypeMix) {
  const FailureAnalyzer analyzer(generate_log(test_params()));
  const auto rows = analyzer.by_elapsed(default_elapsed_edges());
  // Fig 2(b): run time does not strongly change the failure-type ratio.
  double min_share = 1.0;
  double max_share = 0.0;
  for (const auto& row : rows) {
    if (row.failures < 100) continue;  // skip noisy buckets
    min_share = std::min(min_share, row.job_fail_share);
    max_share = std::max(max_share, row.job_fail_share);
  }
  EXPECT_LT(max_share - min_share, 0.25);
}

TEST(Analyzer, SharesSumToOnePerBucket) {
  const FailureAnalyzer analyzer(generate_log(test_params()));
  for (const auto& row : analyzer.by_node_count(default_node_count_edges())) {
    if (row.failures == 0) continue;
    EXPECT_NEAR(
        row.job_fail_share + row.timeout_share + row.node_fail_share, 1.0,
        1e-9);
  }
}

TEST(Analyzer, EmptyLog) {
  const FailureAnalyzer analyzer({});
  const auto summary = analyzer.table1();
  EXPECT_EQ(summary.total_jobs, 0u);
  EXPECT_DOUBLE_EQ(summary.failure_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(analyzer.overall_failure_elapsed_mean(), 0.0);
}

TEST(JobStateName, Names) {
  EXPECT_STREQ(job_state_name(JobState::kNodeFail), "NODE_FAIL");
  EXPECT_STREQ(job_state_name(JobState::kCancelled), "CANCELLED");
}

TEST(SlurmRecord, ClassHelpers) {
  SlurmJobRecord job;
  job.state = JobState::kTimeout;
  EXPECT_TRUE(job.is_failure());
  EXPECT_TRUE(job.is_node_failure_class());
  job.state = JobState::kJobFail;
  EXPECT_TRUE(job.is_failure());
  EXPECT_FALSE(job.is_node_failure_class());
  job.state = JobState::kCompleted;
  EXPECT_FALSE(job.is_failure());
}

}  // namespace
}  // namespace ftc::trace
