// DES end-to-end experiment invariants at small scale (fast); the bench
// harness runs the paper-scale configurations.
#include "destim/experiment.hpp"

#include <gtest/gtest.h>

namespace ftc::destim {
namespace {

using cluster::FtMode;

ExperimentConfig small_config(FtMode mode) {
  ExperimentConfig config;
  config.node_count = 8;
  config.mode = mode;
  config.file_count = 256;
  config.file_bytes = 4ULL << 20;
  config.epochs = 3;
  config.files_per_step_per_node = 4;
  config.compute_time_per_step = 10 * simtime::kMillisecond;
  // Paper regime: the PFS is much slower per file than the cache path and
  // the RPC deadline is tuned just above normal service latency.
  config.pfs.read_bytes_per_second = 10.0e9;
  config.pfs.per_client_bytes_per_second = 300.0e6;
  config.rpc_timeout = 20 * simtime::kMillisecond;
  config.timeout_limit = 2;
  config.elastic_restart_overhead = 100 * simtime::kMillisecond;
  return config;
}

cluster::PlannedFailure failure_at(std::uint32_t victim, std::uint32_t epoch,
                                   double fraction) {
  cluster::PlannedFailure failure;
  failure.victim = victim;
  failure.epoch = epoch;
  failure.epoch_fraction = fraction;
  return failure;
}

TEST(DesExperiment, NoFailureCompletesAllModes) {
  for (const FtMode mode :
       {FtMode::kNone, FtMode::kPfsRedirect, FtMode::kHashRingRecache}) {
    const auto result = run_experiment(small_config(mode));
    EXPECT_TRUE(result.completed) << result.abort_reason;
    EXPECT_EQ(result.epochs.size(), 3u);
    EXPECT_EQ(result.restarts, 0u);
    EXPECT_GT(result.total_time, 0);
  }
}

TEST(DesExperiment, WarmupEpochPaysPfsOnce) {
  const auto result = run_experiment(small_config(FtMode::kHashRingRecache));
  ASSERT_TRUE(result.completed);
  // Epoch 0 fetches the whole dataset from the PFS, later epochs none.
  EXPECT_EQ(result.epochs[0].pfs_reads, 256u);
  EXPECT_EQ(result.epochs[1].pfs_reads, 0u);
  EXPECT_EQ(result.epochs[2].pfs_reads, 0u);
  EXPECT_EQ(result.total_pfs_reads, 256u);
}

TEST(DesExperiment, WarmupEpochIsSlowest) {
  const auto result = run_experiment(small_config(FtMode::kHashRingRecache));
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.epochs[0].duration, result.epochs[1].duration);
  EXPECT_GT(result.epochs[0].duration, result.epochs[2].duration);
}

TEST(DesExperiment, Deterministic) {
  const auto a = run_experiment(small_config(FtMode::kHashRingRecache));
  const auto b = run_experiment(small_config(FtMode::kHashRingRecache));
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.total_pfs_reads, b.total_pfs_reads);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

TEST(DesExperiment, NoFtAbortsOnFailure) {
  auto config = small_config(FtMode::kNone);
  config.failures.push_back(failure_at(3, 1, 0.5));
  const auto result = run_experiment(config);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("NoFT"), std::string::npos);
}

TEST(DesExperiment, PfsRedirectSurvivesWithRestart) {
  auto config = small_config(FtMode::kPfsRedirect);
  config.failures.push_back(failure_at(3, 1, 0.5));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_TRUE(result.epochs[1].failure_during);
  EXPECT_EQ(result.epochs[1].attempts, 2u);
  // Lost files hit the PFS in the victim epoch AND the final epoch.
  EXPECT_GT(result.epochs[1].pfs_reads, 0u);
  EXPECT_GT(result.epochs[2].pfs_reads, 0u);
  EXPECT_GT(result.total_timeouts, 0u);
}

TEST(DesExperiment, HashRingRecachesOnce) {
  auto config = small_config(FtMode::kHashRingRecache);
  config.failures.push_back(failure_at(3, 1, 0.5));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);
  // Victim epoch refetches the lost share; the last epoch is PFS-silent.
  EXPECT_GT(result.epochs[1].pfs_reads, 0u);
  EXPECT_LT(result.epochs[1].pfs_reads, 256u / 2);
  EXPECT_EQ(result.epochs[2].pfs_reads, 0u);
}

TEST(DesExperiment, HashRingBeatsPfsRedirect) {
  auto ring_config = small_config(FtMode::kHashRingRecache);
  auto pfs_config = small_config(FtMode::kPfsRedirect);
  // 5 epochs amplify the per-epoch PFS penalty.
  ring_config.epochs = 5;
  pfs_config.epochs = 5;
  ring_config.failures.push_back(failure_at(3, 1, 0.3));
  pfs_config.failures.push_back(failure_at(3, 1, 0.3));
  const auto ring_result = run_experiment(ring_config);
  const auto pfs_result = run_experiment(pfs_config);
  ASSERT_TRUE(ring_result.completed);
  ASSERT_TRUE(pfs_result.completed);
  EXPECT_LT(ring_result.total_time, pfs_result.total_time);
  EXPECT_LT(ring_result.total_pfs_reads, pfs_result.total_pfs_reads);
}

TEST(DesExperiment, FailureCostsTime) {
  auto baseline = small_config(FtMode::kHashRingRecache);
  auto with_failure = baseline;
  with_failure.failures.push_back(failure_at(2, 1, 0.5));
  const auto base_result = run_experiment(baseline);
  const auto fail_result = run_experiment(with_failure);
  ASSERT_TRUE(base_result.completed);
  ASSERT_TRUE(fail_result.completed);
  EXPECT_GT(fail_result.total_time, base_result.total_time);
}

TEST(DesExperiment, MultipleFailures) {
  auto config = small_config(FtMode::kHashRingRecache);
  config.epochs = 4;
  config.failures.push_back(failure_at(1, 1, 0.2));
  config.failures.push_back(failure_at(5, 2, 0.6));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 2u);
}

TEST(DesExperiment, FailureBeforeTrainingEpochZeroHandled) {
  auto config = small_config(FtMode::kHashRingRecache);
  config.failures.push_back(failure_at(0, 0, 0.0));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_TRUE(result.epochs[0].failure_during);
}

TEST(DesExperiment, ScalingReducesTotalTime) {
  auto small = small_config(FtMode::kHashRingRecache);
  auto large = small;
  large.node_count = 32;
  const auto small_result = run_experiment(small);
  const auto large_result = run_experiment(large);
  ASSERT_TRUE(small_result.completed);
  ASSERT_TRUE(large_result.completed);
  EXPECT_LT(large_result.total_time, small_result.total_time);
}

TEST(DesExperiment, TrialsAggregateCompletedRuns) {
  auto config = small_config(FtMode::kHashRingRecache);
  const auto summary = run_experiment_trials(config, 3);
  EXPECT_EQ(summary.trials, 3u);
  EXPECT_EQ(summary.completed, 3u);
  EXPECT_EQ(summary.results.size(), 3u);
  EXPECT_EQ(summary.total_minutes.count(), 3u);
  EXPECT_GT(summary.total_minutes.mean(), 0.0);
  // Different seeds per trial: runs genuinely differ.
  EXPECT_NE(summary.results[0].total_time, summary.results[1].total_time);
  // PFS reads identical across trials (warm-up is seed-independent).
  EXPECT_DOUBLE_EQ(summary.total_pfs_reads.stddev(), 0.0);
}

TEST(DesExperiment, TrialsCountAborts) {
  auto config = small_config(FtMode::kNone);
  config.failures.push_back(failure_at(3, 1, 0.5));
  const auto summary = run_experiment_trials(config, 2);
  EXPECT_EQ(summary.trials, 2u);
  EXPECT_EQ(summary.completed, 0u);
  EXPECT_EQ(summary.total_minutes.count(), 0u);
}

TEST(DesExperiment, EventCapAborts) {
  auto config = small_config(FtMode::kHashRingRecache);
  config.max_events = 10;  // absurdly small
  const auto result = run_experiment(config);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("event cap"), std::string::npos);
}

}  // namespace
}  // namespace ftc::destim
