// Skew-tolerant placement: knob validation, the hot-file promoter's
// hysteresis, replica fanout end to end, epoch-bump invalidation, and
// bounded-load spill under real concurrency.  The standing invariant in
// all of it: every knob defaults off and the off-state is bit-for-bit
// the seed's behaviour — checked here via the stats surface.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/popularity.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig skew_config(std::uint32_t nodes) {
  ClusterConfig config;
  config.node_count = nodes;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 2000ms;
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.server.async_data_mover = false;
  config.server.cache_capacity_bytes = 64 << 20;
  return config;
}

// --- validate() rejections -------------------------------------------------

TEST(SkewValidation, BoundedLoadRequiresRingMode) {
  HvacClientConfig config;
  config.mode = FtMode::kPfsRedirect;
  config.bounded_load = true;
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(SkewValidation, RejectsCAtOrBelowOne) {
  HvacClientConfig config;
  config.mode = FtMode::kHashRingRecache;
  config.bounded_load = true;
  config.bounded_load_c = 1.0;
  EXPECT_FALSE(config.validate().is_ok());
  config.bounded_load_c = 0.5;
  EXPECT_FALSE(config.validate().is_ok());
  config.bounded_load_c = 1.25;
  EXPECT_TRUE(config.validate().is_ok());
}

TEST(SkewValidation, RejectsBadSpillBudget) {
  HvacClientConfig config;
  config.mode = FtMode::kHashRingRecache;
  config.bounded_load = true;
  config.bounded_load_max_spill = 0;
  EXPECT_FALSE(config.validate().is_ok());
  config.bounded_load_max_spill = 8;  // the walk caps at 8 distinct nodes
  EXPECT_FALSE(config.validate().is_ok());
  config.bounded_load_max_spill = 7;
  EXPECT_TRUE(config.validate().is_ok());
}

TEST(SkewValidation, RejectsBadEwmaAlpha) {
  HvacClientConfig config;
  config.mode = FtMode::kHashRingRecache;
  config.bounded_load = true;
  config.load_ewma_alpha = 0.0;
  EXPECT_FALSE(config.validate().is_ok());
  config.load_ewma_alpha = 1.5;
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(SkewValidation, HotFanoutKnobBounds) {
  HvacClientConfig config;
  config.mode = FtMode::kHashRingRecache;
  config.hot_fanout = true;

  config.hot_top_k = 0;
  EXPECT_FALSE(config.validate().is_ok());
  config.hot_top_k = 64;

  config.hot_replica_fanout = 1;  // 1 is just the plain single owner
  EXPECT_FALSE(config.validate().is_ok());
  config.hot_replica_fanout = 5;
  EXPECT_FALSE(config.validate(/*cluster_size=*/4).is_ok());
  config.hot_replica_fanout = 2;

  config.hot_demote_threshold = config.hot_promote_threshold;  // no band
  EXPECT_FALSE(config.validate().is_ok());
  config.hot_demote_threshold = config.hot_promote_threshold / 4;

  config.hot_decay_interval = 0;
  EXPECT_FALSE(config.validate().is_ok());
  config.hot_decay_interval = 1024;

  EXPECT_TRUE(config.validate(/*cluster_size=*/4).is_ok());
}

TEST(SkewValidation, ServerLoadReportAlphaBounds) {
  HvacServerConfig config;
  config.report_load = true;
  config.load_report_alpha = 0.0;
  EXPECT_FALSE(config.validate().is_ok());
  config.load_report_alpha = 2.0;
  EXPECT_FALSE(config.validate().is_ok());
  config.load_report_alpha = 0.2;
  EXPECT_TRUE(config.validate().is_ok());
}

// --- promoter hysteresis ---------------------------------------------------

TEST(HotFilePromoterTest, PromotesOnceAtThreshold) {
  HotFilePromoter promoter({.top_k = 8,
                            .promote_threshold = 8.0,
                            .demote_threshold = 3.0,
                            .decay_interval = 1 << 20});
  int promotions = 0;
  for (int i = 0; i < 20; ++i) {
    if (promoter.record("A") == HotFilePromoter::Transition::kPromoted) {
      ++promotions;
    }
  }
  EXPECT_EQ(promotions, 1);
  EXPECT_TRUE(promoter.is_promoted("A"));
  EXPECT_EQ(promoter.promoted_count(), 1u);
}

TEST(HotFilePromoterTest, DeadBandAbsorbsDecayWithoutFlapping) {
  // Heat halves every 16 accesses.  A is pumped to ~8 then left to cool:
  // the first halving lands it mid-band (promoted must persist — that IS
  // the hysteresis), a later one crosses demote_threshold and retires it
  // exactly once.
  HotFilePromoter promoter({.top_k = 64,
                            .promote_threshold = 8.0,
                            .demote_threshold = 3.0,
                            .decay_interval = 16});
  for (int i = 0; i < 8; ++i) promoter.record("A");
  ASSERT_TRUE(promoter.is_promoted("A"));

  bool seen_mid_band = false;
  std::vector<std::string> demoted;
  for (int filler = 0; filler < 64 && demoted.empty(); ++filler) {
    promoter.record("cold_" + std::to_string(filler));
    const double heat = promoter.heat("A");
    if (heat > 3.0 && heat < 8.0) {
      seen_mid_band = true;
      EXPECT_TRUE(promoter.is_promoted("A"))
          << "demoted inside the dead band at heat " << heat;
    }
    demoted = promoter.take_demotions();
  }
  ASSERT_EQ(demoted.size(), 1u);
  EXPECT_EQ(demoted[0], "A");
  EXPECT_TRUE(seen_mid_band);
  EXPECT_FALSE(promoter.is_promoted("A"));
  // Idempotent: the demotion was consumed.
  EXPECT_TRUE(promoter.take_demotions().empty());

  // A still-hot access pattern re-promotes — the cycle is promote /
  // cool / demote / re-promote, never flapping inside the band.
  int repromotions = 0;
  for (int i = 0; i < 12; ++i) {
    if (promoter.record("A") == HotFilePromoter::Transition::kPromoted) {
      ++repromotions;
    }
  }
  EXPECT_EQ(repromotions, 1);
}

TEST(HotFilePromoterTest, InvalidateAllKeepsHeat) {
  HotFilePromoter promoter({.top_k = 8,
                            .promote_threshold = 4.0,
                            .demote_threshold = 1.0,
                            .decay_interval = 1 << 20});
  for (int i = 0; i < 4; ++i) promoter.record("A");
  ASSERT_TRUE(promoter.is_promoted("A"));
  const auto dropped = promoter.invalidate_all();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], "A");
  EXPECT_FALSE(promoter.is_promoted("A"));
  // Heat survived the invalidation, so one more access re-promotes.
  EXPECT_EQ(promoter.record("A"), HotFilePromoter::Transition::kPromoted);
}

// --- end-to-end fanout -----------------------------------------------------

TEST(HotFanout, PromotionReplicatesToRingSuccessors) {
  ClusterConfig config = skew_config(4);
  config.server.report_load = true;
  config.client.hot_fanout = true;
  config.client.hot_replica_fanout = 2;
  config.client.hot_promote_threshold = 8.0;
  config.client.hot_demote_threshold = 2.0;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(8, 64);
  cluster.warm_caches(paths);

  auto& client = cluster.client(0);
  const std::string& hot = paths[0];
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(client.read_file(hot).is_ok());
  }
  EXPECT_TRUE(client.file_is_hot(hot));
  const auto stats = client.stats_snapshot();
  EXPECT_EQ(stats.hot_promotions, 1u);

  // The async kPut fanout lands shortly after the promotion-triggering
  // read; once it does, two distinct servers hold the file.
  int holders = 0;
  for (int attempt = 0; attempt < 200 && holders < 2; ++attempt) {
    holders = 0;
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      if (cluster.server(n).has_cached(hot)) ++holders;
    }
    if (holders < 2) std::this_thread::sleep_for(5ms);
  }
  EXPECT_GE(holders, 2);
}

TEST(HotFanout, RingChangeInvalidatesPromotions) {
  ClusterConfig config = skew_config(4);
  config.server.report_load = true;
  config.client.hot_fanout = true;
  config.client.hot_replica_fanout = 2;
  config.client.hot_promote_threshold = 8.0;
  config.client.hot_demote_threshold = 2.0;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(8, 64);
  cluster.warm_caches(paths);

  auto& client = cluster.client(0);
  const std::string& hot = paths[0];
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(client.read_file(hot).is_ok());
  }
  ASSERT_TRUE(client.file_is_hot(hot));

  // Elastic scale-up bumps the client's placement generation; the next
  // access notices and retires every promotion wholesale.
  cluster.add_node();
  ASSERT_TRUE(client.read_file(paths[1]).is_ok());
  const auto stats = client.stats_snapshot();
  EXPECT_GE(stats.hot_invalidations, 1u);
  // The file may legitimately re-promote afterwards (heat is kept), but
  // the stale replica set was torn down at the bump.
}

TEST(HotFanout, LegacyConfigStatsStayZeroAgainstReportingServers) {
  // Servers piggyback load hints, but a client with every skew knob off
  // must not even count them — its stats surface is the seed's.
  ClusterConfig config = skew_config(4);
  config.server.report_load = true;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(8, 64);
  cluster.warm_caches(paths);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }
  const auto stats = cluster.client(0).stats_snapshot();
  EXPECT_EQ(stats.load_hints_observed, 0u);
  EXPECT_EQ(stats.spilled_reads, 0u);
  EXPECT_EQ(stats.load_spread_reads, 0u);
  EXPECT_EQ(stats.hot_promotions, 0u);
  EXPECT_EQ(stats.hot_demotions, 0u);
  EXPECT_EQ(stats.hot_invalidations, 0u);
}

// --- bounded-load spill under concurrency ----------------------------------

TEST(BoundedLoadSpill, ConcurrentHotspotSpillsAndAllReadsSucceed) {
  ClusterConfig config = skew_config(4);
  config.server.report_load = true;
  config.client.bounded_load = true;
  config.client.bounded_load_c = 1.25;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(8, 64);
  cluster.warm_caches(paths);
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    cluster.transport().set_extra_latency(n, 3ms);
  }

  // All four clients hammer one file (its owner's queue grows, and the
  // hints report it) with occasional other reads so each estimator
  // observes at least two nodes.
  const std::string& hot = paths[0];
  std::vector<std::uint64_t> failures(cluster.node_count(), 0);
  std::vector<std::thread> workers;
  for (NodeId t = 0; t < cluster.node_count(); ++t) {
    workers.emplace_back([&, t] {
      auto& client = cluster.client(t);
      for (int i = 0; i < 120; ++i) {
        const std::string& path =
            (i % 4 == 3) ? paths[1 + (i % (paths.size() - 1))] : hot;
        if (!client.read_file(path).is_ok()) ++failures[t];
      }
    });
  }
  for (auto& w : workers) w.join();

  std::uint64_t failed = 0, spilled = 0, hints = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    failed += failures[n];
    const auto stats = cluster.client(n).stats_snapshot();
    spilled += stats.spilled_reads;
    hints += stats.load_hints_observed;
  }
  // Spill is an optimization, never a correctness dependency: every read
  // must succeed whether or not it spilled.
  EXPECT_EQ(failed, 0u);
  EXPECT_GT(hints, 0u);
  // Under a sustained hotspot with queue-depth hints flowing, at least
  // some reads must route past the saturated primary.
  EXPECT_GT(spilled, 0u);
}

}  // namespace
}  // namespace ftc::cluster
