// Shuffle-aware epoch-ahead prefetch on the threaded cluster: the client
// diffs its upcoming sample set against ring placement (prefetch_epoch),
// pulls remote-owned files node-to-node over kPeerGet with bounded depth,
// and serves them from the staged map without touching the network again.
// kPeerGet is cache-only by contract — a miss is kNotFound, never a PFS
// fetch — so prefetch can never amplify PFS load, and with p2p + warm
// standbys a mid-epoch kill recovers with zero PFS reads beyond warm-up.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "dl/threaded_trainer.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig prefetch_config(std::uint32_t nodes = 4) {
  ClusterConfig config;
  config.node_count = nodes;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 50ms;
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.client.prefetch.enabled = true;
  config.client.prefetch.depth = 4;
  return config;
}

std::uint64_t total_peer_gets(Cluster& cluster) {
  std::uint64_t total = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    total += cluster.server(n).stats_snapshot().peer_gets;
  }
  return total;
}

TEST(EpochPrefetch, StagesRemoteOwnedFilesAndServesThemLocally) {
  Cluster cluster(prefetch_config());
  const auto paths = cluster.stage_dataset(32, 64);
  cluster.warm_caches(paths);
  const auto pfs_before = cluster.pfs().read_count();

  auto& client = cluster.client(1);
  client.prefetch_epoch(paths);
  client.drain_prefetch();

  const auto staged = client.stats_snapshot();
  EXPECT_GT(staged.prefetch_planned, 0u);
  EXPECT_EQ(staged.prefetch_pulls, staged.prefetch_planned);
  EXPECT_EQ(staged.prefetch_hits, staged.prefetch_pulls);  // warm peers
  EXPECT_EQ(staged.prefetch_misses, 0u);
  EXPECT_EQ(total_peer_gets(cluster), staged.prefetch_pulls);

  std::size_t staged_count = 0;
  for (const auto& path : paths) {
    if (client.has_prefetched(path)) ++staged_count;
  }
  EXPECT_EQ(staged_count, staged.prefetch_pulls);

  for (const auto& path : paths) {
    const auto result = client.read_file(path);
    ASSERT_TRUE(result.is_ok()) << path;
    EXPECT_EQ(result.value().size(), 64u) << path;
  }
  const auto served = client.stats_snapshot();
  EXPECT_EQ(served.prefetch_local_hits, staged.prefetch_pulls);
  // A staged serve is consumed exactly once.
  for (const auto& path : paths) EXPECT_FALSE(client.has_prefetched(path));
  // Prefetch + the epoch's reads added zero PFS traffic.
  EXPECT_EQ(cluster.pfs().read_count(), pfs_before);
}

TEST(EpochPrefetch, PullMissesAreCacheOnlyNeverPfs) {
  // Cold peers: every pull misses.  kPeerGet must answer kNotFound from
  // the cache alone — the PFS stays untouched (the demand path owns the
  // authoritative fill later).
  Cluster cluster(prefetch_config());
  const auto paths = cluster.stage_dataset(16, 64);

  auto& client = cluster.client(0);
  client.prefetch_epoch(paths);
  client.drain_prefetch();

  const auto stats = client.stats_snapshot();
  EXPECT_GT(stats.prefetch_pulls, 0u);
  EXPECT_EQ(stats.prefetch_misses, stats.prefetch_pulls);  // p2p off
  EXPECT_EQ(stats.prefetch_hits, 0u);
  EXPECT_EQ(cluster.pfs().read_count(), 0u);
  EXPECT_GT(total_peer_gets(cluster), 0u);
}

TEST(EpochPrefetch, OffByDefaultIsTheLegacyClient) {
  auto config = prefetch_config();
  config.client.prefetch = {};  // default-off block
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(16, 64);
  cluster.warm_caches(paths);

  auto& client = cluster.client(0);
  client.prefetch_epoch(paths);  // must be a no-op
  client.drain_prefetch();
  for (const auto& path : paths) {
    ASSERT_TRUE(client.read_file(path).is_ok());
    EXPECT_FALSE(client.has_prefetched(path));
  }

  const auto stats = client.stats_snapshot();
  EXPECT_EQ(stats.prefetch_planned, 0u);
  EXPECT_EQ(stats.prefetch_pulls, 0u);
  EXPECT_EQ(stats.prefetch_local_hits, 0u);
  EXPECT_EQ(stats.p2p_rescues, 0u);
  EXPECT_EQ(total_peer_gets(cluster), 0u);
}

TEST(EpochPrefetch, PrefetchValidationRequiresRingMode) {
  auto config = prefetch_config();
  config.client.mode = FtMode::kPfsRedirect;
  EXPECT_THROW(Cluster cluster(config), std::invalid_argument);
}

TEST(EpochPrefetch, TrainerKillRecoversOverPeerGetWithZeroExtraPfs) {
  // The bench's kill scenario in miniature: epoch-ahead prefetch + p2p +
  // warm standbys, one mid-epoch kill.  Training completes on the
  // survivors and the PFS is read exactly once per file (the epoch-0
  // warm-up) — recovery is node-to-node.
  auto config = prefetch_config(6);
  config.client.rpc_timeout = 25ms;
  config.client.prefetch.p2p = true;
  config.client.replication.factor = 2;
  config.client.replication.warm_standby = true;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(48, 256);

  dl::ThreadedTrainingConfig train;
  train.epochs = 3;
  train.prefetch = true;
  dl::ThreadedTrainingConfig::Injection kill;
  kill.epoch = 1;
  kill.after_files = 8;
  kill.victim = 5;
  train.injections = {kill};

  const auto result = dl::run_threaded_training(cluster, paths, 256, train);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_EQ(result.integrity_failures, 0u);
  ASSERT_EQ(result.pfs_reads_per_epoch.size(), 3u);
  EXPECT_EQ(result.pfs_reads_per_epoch[1], 0u);
  EXPECT_EQ(result.pfs_reads_per_epoch[2], 0u);
  // Warm-up fetched each file once; the kill added nothing.
  EXPECT_EQ(cluster.pfs().read_count(), paths.size());
  EXPECT_GT(total_peer_gets(cluster), 0u);
}

}  // namespace
}  // namespace ftc::cluster
