#include "hash/crc32.hpp"

#include <gtest/gtest.h>

namespace ftc::hash {
namespace {

// Standard CRC-32 (zlib) test vectors.
TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(""), 0x00000000U);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43U);
  EXPECT_EQ(crc32("abc"), 0x352441C2U);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926U);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339U);
}

TEST(Crc32, Deterministic) {
  EXPECT_EQ(crc32("payload"), crc32("payload"));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data = "cached file contents";
  const auto original = crc32(data);
  data[5] ^= 0x01;
  EXPECT_NE(crc32(data), original);
}

TEST(Crc32, IncrementalMatchesWhole) {
  // crc32(a+b) == crc32(b, initial=crc32(a)) with our initial-chaining API.
  const std::string a = "first half / ";
  const std::string b = "second half";
  const auto whole = crc32(a + b);
  const auto chained = crc32(b, crc32(a));
  EXPECT_EQ(chained, whole);
}

}  // namespace
}  // namespace ftc::hash
