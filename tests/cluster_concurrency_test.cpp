// Server-side concurrency stress: many threads issue mixed operations
// (kReadFile / kPut / kEvict) against ONE server while its async data
// mover runs and capacity pressure forces evictions.  The old server
// serialized everything behind a single mutex, which hid accounting races
// by construction; the lock-striped store must keep the books exact
// without that crutch.  Run under TSan (scripts/sanitize.sh) for full
// value; the invariants below hold regardless.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hvac_server.hpp"
#include "cluster/pfs_store.hpp"
#include "common/string_util.hpp"
#include "rpc/transport.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

TEST(Concurrency, MixedOpsUnderCapacityPressureKeepBooksExact) {
  constexpr std::uint32_t kUniverse = 48;
  constexpr std::uint32_t kFileBytes = 64;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 300;

  PfsStore pfs;
  pfs.populate_synthetic("/data", kUniverse, kFileBytes);
  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < kUniverse; ++i) {
    paths.push_back("/data/file_" + zero_pad(i, 7) + ".tfrecord");
  }

  HvacServerConfig config;
  config.async_data_mover = true;  // mover thread races the RPC threads
  // Fits ~1/3 of the dataset: every pass over the universe evicts.
  config.cache_capacity_bytes = (kUniverse / 3) * kFileBytes;
  HvacServer server(0, pfs, config);

  rpc::Transport transport;
  transport.register_endpoint(0, [&server](const rpc::RpcRequest& request) {
    return server.handle(request);
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&transport, &paths, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto& path =
            paths[static_cast<std::size_t>(t * 131 + i * 7) % paths.size()];
        rpc::RpcRequest request;
        request.path = path;
        request.client_node = 0;
        switch (i % 5) {
          case 0:
          case 1:
          case 2:
            request.op = rpc::Op::kReadFile;
            break;
          case 3:
            request.op = rpc::Op::kPut;
            request.payload = std::string(kFileBytes, 'p');
            break;
          case 4:
            request.op = rpc::Op::kEvict;
            break;
        }
        auto result = transport.call(0, std::move(request), 2000ms);
        ASSERT_TRUE(result.is_ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  server.flush_data_mover();  // quiescence: mover queue drained

  // Invariant 1: the global byte counter equals the bytes actually held.
  // Every entry in this test is kFileBytes, so counting cached paths over
  // the universe gives the exact expected sum.
  std::size_t present = 0;
  for (const auto& path : paths) {
    if (server.has_cached(path)) ++present;
  }
  EXPECT_EQ(server.cached_file_count(), present);
  EXPECT_EQ(server.cached_bytes(),
            static_cast<std::uint64_t>(present) * kFileBytes);

  const auto stats = server.stats_snapshot();
  // Invariant 2: the budget held (capacity pressure really happened —
  // evictions must be nonzero for this test to mean anything).
  EXPECT_LE(stats.used_bytes, config.cache_capacity_bytes);
  EXPECT_GT(stats.evictions, 0u);

  // Invariant 3: no read was double-counted or dropped.
  EXPECT_EQ(stats.reads, stats.cache_hits + stats.cache_misses);
  EXPECT_EQ(stats.reads,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread * 3 / 5);

  // Zero-copy acceptance: the serve path never memcpy'd a payload.
  EXPECT_EQ(stats.payload_bytes_copied, 0u);
}

TEST(Concurrency, AsyncTransportThreadsStayBounded) {
  rpc::Transport transport;
  transport.register_endpoint(0, [](const rpc::RpcRequest& request) {
    rpc::RpcResponse response;
    response.code = StatusCode::kOk;
    response.payload = "echo:" + request.path;
    return response;
  });

  // Far more in-flight async calls than pool workers: the old
  // thread-per-call design would spawn 256 threads here.
  constexpr int kCalls = 256;
  std::atomic<int> completions{0};
  for (int i = 0; i < kCalls; ++i) {
    rpc::RpcRequest request;
    request.path = std::to_string(i);
    transport.call_async(0, std::move(request), 2000ms,
                         [&completions](StatusOr<rpc::RpcResponse> result) {
                           if (result.is_ok()) completions.fetch_add(1);
                         });
    EXPECT_LE(transport.async_pool_thread_count(),
              rpc::Transport::kAsyncPoolThreads);
  }
  transport.drain_async();
  EXPECT_EQ(completions.load(), kCalls);
  EXPECT_EQ(transport.async_pool_thread_count(),
            rpc::Transport::kAsyncPoolThreads);
}

}  // namespace
}  // namespace ftc::cluster
