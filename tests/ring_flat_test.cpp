// FlatHashRing must agree with the std::map ring on every lookup (same
// position derivation), while implementing the same PlacementStrategy
// contract.
#include "ring/flat_hash_ring.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ring/movement_analysis.hpp"

namespace ftc::ring {
namespace {

RingConfig config_with(std::uint32_t vnodes, std::uint64_t seed = 17) {
  RingConfig config;
  config.vnodes_per_node = vnodes;
  config.seed = seed;
  return config;
}

TEST(FlatHashRing, AgreesWithMapRingOnLookups) {
  for (const std::uint32_t vnodes : {1u, 10u, 100u}) {
    const ConsistentHashRing map_ring(32, config_with(vnodes));
    const FlatHashRing flat_ring(32, config_with(vnodes));
    ASSERT_EQ(flat_ring.position_count(), map_ring.position_count());
    Rng rng(5);
    for (int q = 0; q < 5000; ++q) {
      const std::uint64_t h = rng();
      ASSERT_EQ(flat_ring.owner_of_hash(h), map_ring.owner_of_hash(h))
          << "vnodes " << vnodes << " hash " << h;
    }
  }
}

TEST(FlatHashRing, AgreesAfterMembershipChanges) {
  ConsistentHashRing map_ring(16, config_with(50));
  FlatHashRing flat_ring(16, config_with(50));
  map_ring.remove_node(3);
  flat_ring.remove_node(3);
  map_ring.add_node(99);
  flat_ring.add_node(99);
  const auto keys = make_key_population(2000);
  for (const auto& key : keys) {
    ASSERT_EQ(flat_ring.owner(key), map_ring.owner(key)) << key;
  }
}

TEST(FlatHashRing, StringLookupsAgree) {
  const ConsistentHashRing map_ring(8, config_with(100));
  const FlatHashRing flat_ring(8, config_with(100));
  const auto keys = make_key_population(1000);
  for (const auto& key : keys) {
    ASSERT_EQ(flat_ring.owner(key), map_ring.owner(key));
  }
}

TEST(FlatHashRing, EmptyAndBasics) {
  FlatHashRing ring;
  EXPECT_EQ(ring.owner("x"), kInvalidNode);
  EXPECT_EQ(ring.node_count(), 0u);
  ring.add_node(5);
  ring.add_node(5);  // idempotent
  EXPECT_EQ(ring.node_count(), 1u);
  EXPECT_EQ(ring.owner("x"), 5u);
  ring.remove_node(99);  // unknown: no-op
  ring.remove_node(5);
  EXPECT_EQ(ring.owner("x"), kInvalidNode);
}

TEST(FlatHashRing, MinimalMovementProperty) {
  const FlatHashRing ring(16, config_with(100));
  const auto keys = make_key_population(5000);
  const auto report = analyze_removal(ring, keys, {7});
  EXPECT_EQ(report.gratuitous_moves, 0u);
  EXPECT_NEAR(report.moved_fraction(), 1.0 / 16.0, 0.03);
}

TEST(FlatHashRing, CloneIndependence) {
  const FlatHashRing ring(8, config_with(50));
  auto clone = ring.clone();
  clone->remove_node(0);
  EXPECT_TRUE(ring.contains(0));
  EXPECT_FALSE(clone->contains(0));
}

TEST(FlatHashRing, ZeroVnodesClamped) {
  const FlatHashRing ring(4, config_with(0));
  EXPECT_EQ(ring.position_count(), 4u);
}

}  // namespace
}  // namespace ftc::ring
