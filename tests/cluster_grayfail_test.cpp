// Gray-failure tolerance: the health state machine (suspect -> probation
// -> reinstated / failed), hedged reads under a slow node, the
// programmable GrayFailureInjector, and config validation.  Cluster-level
// tests drive the real threaded transport; detector tests inject time
// explicitly so no sleeps are needed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/failure_injector.hpp"
#include "cluster/fault_detector.hpp"
#include "cluster/hvac_client.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig make_config(std::uint32_t nodes = 4) {
  ClusterConfig config;
  config.node_count = nodes;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 100ms;
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.client.probe_backoff = 5ms;
  config.client.probe_backoff_cap = 40ms;
  config.server.async_data_mover = false;
  config.server.cache_capacity_bytes = 64 << 20;
  return config;
}

/// First staged path owned by `node` from `client`'s viewpoint.
std::string path_owned_by(Cluster& cluster, NodeId client, NodeId node,
                          const std::vector<std::string>& paths) {
  for (const auto& path : paths) {
    if (cluster.client(client).current_owner(path) == node) return path;
  }
  return {};
}

// ---------------------------------------------------------------------------
// FaultDetector state machine (injected time; no sleeps).
// ---------------------------------------------------------------------------

FaultDetector::Options probation_options() {
  FaultDetector::Options options;
  options.timeout_limit = 2;
  options.allow_reinstatement = true;
  options.probe_backoff = 10ms;
  options.probe_backoff_cap = 80ms;
  options.max_flaps = 2;
  return options;
}

TEST(GrayFaultDetector, SuspectThenProbationThenReinstated) {
  FaultDetector detector(probation_options());
  const auto t0 = FaultDetector::Clock::now();

  EXPECT_FALSE(detector.record_timeout(7, t0));
  EXPECT_EQ(detector.health(7), NodeHealth::kSuspect);
  EXPECT_FALSE(detector.is_out_of_service(7));

  EXPECT_TRUE(detector.record_timeout(7, t0));  // limit tripped
  EXPECT_EQ(detector.health(7), NodeHealth::kProbation);
  EXPECT_TRUE(detector.is_out_of_service(7));
  EXPECT_FALSE(detector.is_failed(7));  // probation is not terminal
  EXPECT_EQ(detector.probation_nodes(), std::vector<NodeId>{7});

  // Probe not due before the backoff elapses.
  EXPECT_TRUE(detector.probe_candidates(t0).empty());
  const auto due = t0 + 10ms;
  ASSERT_EQ(detector.probe_candidates(due).size(), 1u);
  detector.record_probe_launch(7, due);
  // Launch pushes the deadline out: no duplicate probe while in flight.
  EXPECT_TRUE(detector.probe_candidates(due).empty());

  EXPECT_TRUE(detector.record_probe_success(7));
  EXPECT_EQ(detector.health(7), NodeHealth::kHealthy);
  EXPECT_FALSE(detector.is_out_of_service(7));
  EXPECT_EQ(detector.reinstatements(), 1u);
  EXPECT_EQ(detector.flap_count(7), 1u);
}

TEST(GrayFaultDetector, ProbeBackoffDoublesToCap) {
  FaultDetector detector(probation_options());
  const auto t0 = FaultDetector::Clock::now();
  detector.record_timeout(3, t0);
  detector.record_timeout(3, t0);
  ASSERT_EQ(detector.health(3), NodeHealth::kProbation);

  // Failed probes escalate the deadline: 10, 20, 40, then capped at 80ms.
  auto now = t0;
  const std::chrono::milliseconds expected[] = {10ms, 20ms, 40ms, 80ms,
                                                80ms};
  for (const auto backoff : expected) {
    EXPECT_TRUE(detector.probe_candidates(now + backoff - 1ms).empty());
    ASSERT_EQ(detector.probe_candidates(now + backoff).size(), 1u);
    now += backoff;
    detector.record_probe_failure(3, now);
  }
  EXPECT_EQ(detector.health(3), NodeHealth::kProbation);  // never gives up
}

TEST(GrayFaultDetector, FlappingNodeEscalatesToTerminalFailure) {
  auto options = probation_options();
  options.max_flaps = 1;  // one reinstatement cycle allowed
  FaultDetector detector(options);
  const auto t0 = FaultDetector::Clock::now();

  detector.record_timeout(5, t0);
  detector.record_timeout(5, t0);
  ASSERT_EQ(detector.health(5), NodeHealth::kProbation);
  ASSERT_TRUE(detector.record_probe_success(5));
  ASSERT_EQ(detector.health(5), NodeHealth::kHealthy);

  // The node flaps: trips the limit again.  flaps >= max_flaps, so the
  // second probation request becomes a terminal failure.
  detector.record_timeout(5, t0);
  EXPECT_TRUE(detector.record_timeout(5, t0));
  EXPECT_EQ(detector.health(5), NodeHealth::kFailed);
  EXPECT_TRUE(detector.is_failed(5));
  // Terminal: no probes, no resurrection.
  EXPECT_TRUE(detector.probe_candidates(t0 + 1h).empty());
  EXPECT_FALSE(detector.record_probe_success(5));
  EXPECT_EQ(detector.health(5), NodeHealth::kFailed);
}

TEST(GrayFaultDetector, CrashStopConstructorDisablesReinstatement) {
  FaultDetector detector(1);  // legacy ctor = the paper's model
  EXPECT_TRUE(detector.record_timeout(2));
  EXPECT_EQ(detector.health(2), NodeHealth::kFailed);
  EXPECT_TRUE(detector.probe_candidates().empty());
}

TEST(GrayFaultDetector, HealthNames) {
  EXPECT_STREQ(node_health_name(NodeHealth::kHealthy), "healthy");
  EXPECT_STREQ(node_health_name(NodeHealth::kSuspect), "suspect");
  EXPECT_STREQ(node_health_name(NodeHealth::kProbation), "probation");
  EXPECT_STREQ(node_health_name(NodeHealth::kFailed), "failed");
}

// ---------------------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------------------

TEST(HvacClientConfigValidate, AcceptsDefaults) {
  HvacClientConfig config;
  EXPECT_TRUE(config.validate().is_ok());
  EXPECT_TRUE(config.validate(4).is_ok());
}

TEST(HvacClientConfigValidate, RejectsOutOfRangeFields) {
  HvacClientConfig config;
  config.rpc_timeout = 0ms;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);

  config = {};
  config.timeout_limit = 0;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);

  config = {};
  config.vnodes_per_node = 0;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);
  // Static placement does not use vnodes; zero is fine there.
  config.mode = FtMode::kPfsRedirect;
  EXPECT_TRUE(config.validate().is_ok());

  config = {};
  config.replication.factor = 0;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);
  config.replication.factor = 5;
  EXPECT_TRUE(config.validate().is_ok());  // cluster size unknown
  EXPECT_EQ(config.validate(4).code(), StatusCode::kInvalidArgument);

  // Warm standby needs a real factor, sane depths, and the ring mode.
  config = {};
  config.replication.warm_standby = true;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);
  config.replication.factor = 2;
  EXPECT_TRUE(config.validate().is_ok());
  config.replication.write_behind_depth = 0;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);
  config.replication.write_behind_depth = 64;
  config.replication.restore_concurrency = 0;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);
  config.replication.restore_concurrency = 4;
  config.mode = FtMode::kPfsRedirect;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);

  config = {};
  config.probe_backoff = 0ms;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);
  config = {};
  config.probe_backoff_cap = 1ms;  // below the 50ms default base
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);

  config = {};
  config.hedge_reads = true;
  config.hedge_quantile = 0.0;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);
  config.hedge_quantile = 101.0;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);
  config.hedge_quantile = 95.0;
  config.hedge_delay_multiplier = 0.5;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);
  config.hedge_delay_multiplier = 2.0;
  config.hedge_min_samples = 0;
  EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);
  // Hedge knobs are ignored (not validated) when hedging is off.
  config.hedge_reads = false;
  EXPECT_TRUE(config.validate().is_ok());
}

TEST(HvacClientConfigValidate, ConstructorThrowsOnInvalidConfig) {
  rpc::Transport transport;
  PfsStore pfs;
  HvacClientConfig config;
  config.vnodes_per_node = 0;
  EXPECT_THROW(HvacClient(0, transport, pfs, {0, 1}, config),
               std::invalid_argument);
  config = {};
  config.replication.factor = 3;
  EXPECT_THROW(HvacClient(0, transport, pfs, {0, 1}, config),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GrayFailureInjector.
// ---------------------------------------------------------------------------

TEST(GrayFailureInjector, FlapScheduleIsDeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    rpc::Transport transport;
    transport.register_endpoint(
        0, [](const rpc::RpcRequest&) { return rpc::RpcResponse{}; });
    GrayFailureInjector injector(transport, seed);
    injector.add_flap(0, /*down_ticks=*/2, /*up_ticks=*/3);
    std::vector<bool> down;
    for (int i = 0; i < 24; ++i) {
      injector.tick();
      down.push_back(injector.is_down(0));
    }
    transport.unregister_endpoint(0);
    return down;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_EQ(run(7), run(7));
}

TEST(GrayFailureInjector, FlapAlternatesDownAndUp) {
  rpc::Transport transport;
  transport.register_endpoint(
      0, [](const rpc::RpcRequest&) { return rpc::RpcResponse{}; });
  GrayFailureInjector injector(transport, 1);
  injector.add_flap(0, 1, 1);
  bool saw_down = false;
  bool saw_up = false;
  for (int i = 0; i < 8; ++i) {
    injector.tick();
    (injector.is_down(0) ? saw_down : saw_up) = true;
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_up);
  EXPECT_GE(injector.flap_transitions(), 4u);
  // remove_flap while down must leave the node alive.
  injector.remove_flap(0);
  EXPECT_FALSE(injector.is_down(0));
  transport.unregister_endpoint(0);
}

TEST(GrayFailureInjector, SlowAndLossyComposeWithKill) {
  rpc::Transport transport;
  std::atomic<int> handled{0};
  transport.register_endpoint(0, [&](const rpc::RpcRequest&) {
    ++handled;
    return rpc::RpcResponse{};
  });
  GrayFailureInjector injector(transport, 9);

  injector.make_slow(0, 20ms);
  rpc::RpcRequest request;
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(transport.call(0, request, 200ms).is_ok());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 20ms);
  injector.clear_slow(0);

  injector.make_lossy(0, 1.0);  // drop everything
  EXPECT_FALSE(transport.call(0, request, 20ms).is_ok());
  injector.clear_lossy(0);
  EXPECT_TRUE(transport.call(0, request, 200ms).is_ok());

  injector.kill(0);
  EXPECT_TRUE(injector.is_down(0));
  EXPECT_FALSE(transport.call(0, request, 20ms).is_ok());
  injector.revive(0);
  EXPECT_TRUE(transport.call(0, request, 200ms).is_ok());
  transport.unregister_endpoint(0);
}

// ---------------------------------------------------------------------------
// Hedged reads.
// ---------------------------------------------------------------------------

TEST(HedgedReads, SlowNodeIsMaskedAndAccountedOnce) {
  auto config = make_config();
  config.client.hedge_reads = true;
  config.client.hedge_min_samples = 8;
  config.client.hedge_min_delay = 200us;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(40, 64);
  cluster.warm_caches(paths);

  // Train the latency window on healthy reads first.
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }
  // (Scheduling jitter may trigger the odd spurious hedge even while
  // healthy; only the delta under the slow node is asserted below.)
  const auto baseline = cluster.client(0).stats_snapshot();

  // A gray failure: node 2 is alive but 30ms late — far beyond the hedge
  // delay, far below the 100ms rpc timeout, so it never trips detection.
  cluster.transport().set_extra_latency(2, 30ms);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }
  const auto stats = cluster.client(0).stats_snapshot();
  EXPECT_GT(stats.hedges_launched, baseline.hedges_launched);
  EXPECT_GT(stats.hedge_wins, 0u);  // the successor answered first
  EXPECT_FALSE(cluster.client(0).node_failed(2));  // still in the ring

  // Winner accounting: every hedged read resolved exactly one way, and
  // every read was served exactly once (no double count).
  EXPECT_EQ(stats.hedge_wins + stats.primary_wins_after_hedge +
                stats.hedges_to_pfs,
            stats.hedges_launched);
  EXPECT_EQ(stats.served_remote_cache + stats.served_remote_fetch +
                stats.served_pfs_direct,
            stats.reads);
}

TEST(HedgedReads, AdaptiveDelayTracksLatencyQuantile) {
  auto config = make_config();
  config.client.hedge_reads = true;
  config.client.hedge_min_samples = 8;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(20, 64);

  // Before enough samples: conservative fallback, a quarter of the
  // timeout.
  EXPECT_EQ(cluster.client(0).current_hedge_delay(),
            std::chrono::microseconds(config.client.rpc_timeout) / 4);

  cluster.warm_caches(paths);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }
  // With in-process sub-millisecond reads the adaptive delay must now be
  // far below the fallback, and never above the rpc timeout.
  const auto delay = cluster.client(0).current_hedge_delay();
  EXPECT_LT(delay, std::chrono::microseconds(config.client.rpc_timeout) / 4);
  EXPECT_GE(delay, 1us);
}

// ---------------------------------------------------------------------------
// Client-level probation and reinstatement.
// ---------------------------------------------------------------------------

TEST(Reinstatement, RecoveredNodeRejoinsRingAndRecachesOnFirstTouch) {
  auto config = make_config();
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(40, 64);
  cluster.warm_caches(paths);

  const NodeId victim = 1;
  const auto victim_path = path_owned_by(cluster, 0, victim, paths);
  ASSERT_FALSE(victim_path.empty());
  // Owned by node 0 with the full ring: stays with node 0 whether or not
  // the victim is a member (surviving assignments are undisturbed).
  const auto driver_path = path_owned_by(cluster, 0, 0, paths);
  ASSERT_FALSE(driver_path.empty());

  cluster.fail_node(victim);
  ASSERT_TRUE(cluster.client(0).read_file(victim_path).is_ok());
  ASSERT_TRUE(cluster.client(0).node_failed(victim));
  EXPECT_EQ(cluster.client(0).node_health(victim), NodeHealth::kProbation);
  // Probation removed the node's vnodes: its keys moved to successors.
  EXPECT_NE(cluster.client(0).current_owner(victim_path), victim);

  // The node comes back with its NVMe state wiped (drain + reboot).
  cluster.restore_node(victim, /*lose_cache=*/true);
  ASSERT_EQ(cluster.server(victim).cached_file_count(), 0u);

  // Keep reading a file the victim does NOT own (so its cache stays
  // empty until the first-touch assertion below): maybe_probe launches
  // backoff probes, the mailbox folds the success in, and the node
  // returns via the elastic add path.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (cluster.client(0).stats_snapshot().nodes_reinstated == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    (void)cluster.client(0).read_file(driver_path);
    std::this_thread::sleep_for(2ms);
  }
  const auto stats = cluster.client(0).stats_snapshot();
  ASSERT_GE(stats.nodes_reinstated, 1u);
  EXPECT_GE(stats.probes_sent, 1u);
  EXPECT_FALSE(cluster.client(0).node_failed(victim));
  EXPECT_EQ(cluster.client(0).node_health(victim), NodeHealth::kHealthy);

  // Ring ownership regained: the victim's old arc maps back to it.
  EXPECT_EQ(cluster.client(0).current_owner(victim_path), victim);

  // First touch after reinstatement recaches from the PFS.
  const auto misses_before =
      cluster.server(victim).stats_snapshot().cache_misses;
  ASSERT_TRUE(cluster.client(0).read_file(victim_path).is_ok());
  EXPECT_GT(cluster.server(victim).stats_snapshot().cache_misses,
            misses_before);
  cluster.server(victim).flush_data_mover();
  EXPECT_TRUE(cluster.server(victim).has_cached(victim_path));
}

TEST(Reinstatement, DisabledKeepsCrashStopSemantics) {
  auto config = make_config();
  config.client.reinstatement = false;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(30, 64);
  cluster.warm_caches(paths);

  const auto victim_path = path_owned_by(cluster, 0, 2, paths);
  ASSERT_FALSE(victim_path.empty());
  cluster.fail_node(2);
  ASSERT_TRUE(cluster.client(0).read_file(victim_path).is_ok());
  EXPECT_EQ(cluster.client(0).node_health(2), NodeHealth::kFailed);

  // Even after the node recovers, crash-stop never takes it back.
  cluster.restore_node(2);
  for (int i = 0; i < 20; ++i) {
    (void)cluster.client(0).read_file(paths[i % paths.size()]);
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(cluster.client(0).node_health(2), NodeHealth::kFailed);
  EXPECT_EQ(cluster.client(0).stats_snapshot().probes_sent, 0u);
}

TEST(Reinstatement, FlappingNodeIsRefusedAfterMaxFlaps) {
  auto config = make_config();
  config.client.max_flaps = 1;  // one comeback allowed
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(40, 64);
  cluster.warm_caches(paths);

  const NodeId victim = 1;
  const auto victim_path = path_owned_by(cluster, 0, victim, paths);
  ASSERT_FALSE(victim_path.empty());

  // Cycle 1: down -> probation -> reinstated.
  cluster.fail_node(victim);
  ASSERT_TRUE(cluster.client(0).read_file(victim_path).is_ok());
  ASSERT_EQ(cluster.client(0).node_health(victim), NodeHealth::kProbation);
  cluster.restore_node(victim);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (cluster.client(0).stats_snapshot().nodes_reinstated == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    (void)cluster.client(0).read_file(paths[0]);
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(cluster.client(0).node_health(victim), NodeHealth::kHealthy);

  // Cycle 2: the node flaps again — now it is failed for good.
  cluster.fail_node(victim);
  ASSERT_TRUE(cluster.client(0).read_file(victim_path).is_ok());
  EXPECT_EQ(cluster.client(0).node_health(victim), NodeHealth::kFailed);
  EXPECT_TRUE(cluster.client(0).detector().is_failed(victim));
}

// ---------------------------------------------------------------------------
// Concurrency stress (TSan target): hedges, probes, and flaps at once.
// ---------------------------------------------------------------------------

TEST(GrayFailStress, ConcurrentClientsUnderFlappingAndSlowNodes) {
  auto config = make_config(4);
  config.client.hedge_reads = true;
  config.client.hedge_min_samples = 8;
  config.client.rpc_timeout = 50ms;
  config.client.probe_backoff = 2ms;
  config.client.probe_backoff_cap = 10ms;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(32, 128);
  cluster.warm_caches(paths);

  GrayFailureInjector injector(cluster.transport(), 1234);
  injector.make_slow(2, 5ms);

  // One thread per client (each HvacClient is single-threaded by
  // contract); the main thread plays adversary with a flap schedule.
  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> failures{0};
  readers.reserve(cluster.node_count());
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    readers.emplace_back([&, n] {
      for (int round = 0; round < 4; ++round) {
        for (const auto& path : paths) {
          if (!cluster.client(n).read_file(path).is_ok()) ++failures;
        }
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    if (i == 2) injector.add_flap(3, 1, 2);
    injector.tick();
    std::this_thread::sleep_for(3ms);
  }
  injector.remove_flap(3);
  for (auto& reader : readers) reader.join();

  // Every read must have been masked (ring mode always has the PFS as a
  // terminal fallback).
  EXPECT_EQ(failures.load(), 0u);
  std::uint64_t total_reads = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    const auto stats = cluster.client(n).stats_snapshot();
    total_reads += stats.reads;
    EXPECT_EQ(stats.served_remote_cache + stats.served_remote_fetch +
                  stats.served_pfs_direct,
              stats.reads);
  }
  // 4 clients x 4 rounds, plus one warm-up read per path.
  EXPECT_EQ(total_reads, (4u * 4u + 1u) * paths.size());
}

}  // namespace
}  // namespace ftc::cluster
