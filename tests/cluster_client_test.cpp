// HvacClient behaviour under the three FT modes, against a real threaded
// cluster with injected crash-stop failures.
#include <gtest/gtest.h>

#include <chrono>

#include "cluster/cluster.hpp"
#include "cluster/failure_injector.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig make_config(FtMode mode, std::uint32_t nodes = 4) {
  ClusterConfig config;
  config.node_count = nodes;
  config.client.mode = mode;
  config.client.rpc_timeout = 50ms;
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.server.async_data_mover = false;
  config.server.cache_capacity_bytes = 64 << 20;
  return config;
}

TEST(HvacClientBasics, ReadsThroughCacheLayer) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(20, 128);
  auto result = cluster.client(0).read_file(paths[0]);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().size(), 128u);
  const auto& stats = cluster.client(0).stats_snapshot();
  EXPECT_EQ(stats.reads, 1u);
  // First touch is a server-side fetch (remote or local miss -> PFS once).
  EXPECT_EQ(cluster.pfs().read_count(), 1u);
}

TEST(HvacClientBasics, SecondEpochServedFromCache) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(20, 128);
  cluster.warm_caches(paths);
  const auto pfs_after_warmup = cluster.pfs().read_count();
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(1).read_file(path).is_ok());
  }
  // Zero additional PFS traffic: everything came from NVMe caches.
  EXPECT_EQ(cluster.pfs().read_count(), pfs_after_warmup);
}

TEST(HvacClientBasics, ClientsAgreeOnOwners) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(30, 64);
  for (const auto& path : paths) {
    const auto owner = cluster.client(0).current_owner(path);
    for (NodeId c = 1; c < cluster.node_count(); ++c) {
      EXPECT_EQ(cluster.client(c).current_owner(path), owner);
    }
  }
}

TEST(HvacClientBasics, ChecksumVerified) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(5, 256);
  auto result = cluster.client(0).read_file(paths[2]);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(cluster.client(0).stats_snapshot().checksum_failures, 0u);
}

TEST(HvacClientNoFt, FailureIsFatal) {
  Cluster cluster(make_config(FtMode::kNone));
  const auto paths = cluster.stage_dataset(40, 64);
  cluster.warm_caches(paths);
  cluster.fail_node(2);
  // Find a path owned by node 2 and watch the read die.
  bool saw_fatal = false;
  for (const auto& path : paths) {
    if (cluster.client(0).current_owner(path) == 2u) {
      auto result = cluster.client(0).read_file(path);
      ASSERT_FALSE(result.is_ok());
      EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
      saw_fatal = true;
      break;
    }
  }
  EXPECT_TRUE(saw_fatal);
}

TEST(HvacClientPfsRedirect, FailureMaskedViaPfs) {
  Cluster cluster(make_config(FtMode::kPfsRedirect));
  const auto paths = cluster.stage_dataset(40, 64);
  cluster.warm_caches(paths);
  const auto pfs_before = cluster.pfs().read_count();
  cluster.fail_node(1);
  // Every file must stay readable; lost files via PFS.
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
  EXPECT_GT(cluster.pfs().read_count(), pfs_before);
  EXPECT_TRUE(cluster.client(0).node_failed(1));
  EXPECT_GT(cluster.client(0).stats_snapshot().served_pfs_direct, 0u);
}

TEST(HvacClientPfsRedirect, RepeatedEpochsKeepHittingPfs) {
  Cluster cluster(make_config(FtMode::kPfsRedirect));
  const auto paths = cluster.stage_dataset(40, 64);
  cluster.warm_caches(paths);
  cluster.fail_node(1);
  for (const auto& path : paths) (void)cluster.client(0).read_file(path);
  const auto pfs_epoch2 = cluster.pfs().read_count();
  for (const auto& path : paths) (void)cluster.client(0).read_file(path);
  const auto pfs_epoch3 = cluster.pfs().read_count();
  // The defining weakness (Sec IV-A): the lost files hit the PFS again in
  // EVERY later epoch.
  EXPECT_GT(pfs_epoch3, pfs_epoch2);
}

TEST(HvacClientHashRing, FailureMaskedViaRecaching) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(40, 64);
  cluster.warm_caches(paths);
  cluster.fail_node(1);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
  EXPECT_TRUE(cluster.client(0).node_failed(1));
  EXPECT_GE(cluster.client(0).stats_snapshot().ring_updates, 1u);
  // No path may still resolve to the dead node.
  for (const auto& path : paths) {
    EXPECT_NE(cluster.client(0).current_owner(path), 1u);
  }
}

TEST(HvacClientHashRing, SinglePfsAccessPerLostFile) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(40, 64);
  cluster.warm_caches(paths);
  cluster.fail_node(1);
  // Epoch 2: lost files are re-fetched from the PFS once and recached.
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (n != 1) cluster.server(n).flush_data_mover();
  }
  const auto pfs_epoch2 = cluster.pfs().read_count();
  // Epoch 3: everything is cached again; zero PFS traffic.
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }
  EXPECT_EQ(cluster.pfs().read_count(), pfs_epoch2);
}

TEST(HvacClientHashRing, SurvivingAssignmentsUndisturbed) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(60, 64);
  std::vector<NodeId> before;
  before.reserve(paths.size());
  for (const auto& path : paths) {
    before.push_back(cluster.client(0).current_owner(path));
  }
  cluster.fail_node(3);
  // Force detection via a read of a node-3 file.
  for (const auto& path : paths) (void)cluster.client(0).read_file(path);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (before[i] != 3u) {
      EXPECT_EQ(cluster.client(0).current_owner(paths[i]), before[i]);
    }
  }
}

TEST(HvacClientHashRing, TransientDelayDoesNotFlagNode) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(20, 64);
  cluster.warm_caches(paths);
  // One slow response (beyond deadline) then recovery: the counter resets
  // on the next success, so the node must NOT be flagged.
  std::string victim_path;
  for (const auto& path : paths) {
    if (cluster.client(0).current_owner(path) == 2u) {
      victim_path = path;
      break;
    }
  }
  ASSERT_FALSE(victim_path.empty());
  cluster.transport().drop_next(2, 1);
  auto result = cluster.client(0).read_file(victim_path);
  ASSERT_TRUE(result.is_ok());  // retry after the dropped request succeeds
  EXPECT_FALSE(cluster.client(0).node_failed(2));
  EXPECT_GE(cluster.client(0).stats_snapshot().timeouts, 1u);
}

TEST(HvacClientHashRing, CascadingFailuresAllButOne) {
  Cluster cluster(make_config(FtMode::kHashRingRecache));
  const auto paths = cluster.stage_dataset(20, 64);
  cluster.warm_caches(paths);
  cluster.fail_node(0);
  cluster.fail_node(1);
  cluster.fail_node(2);
  // Node 3's client must still read everything (PFS backs the survivors).
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(3).read_file(path).is_ok()) << path;
  }
}

TEST(FtModeName, Names) {
  EXPECT_STREQ(ft_mode_name(FtMode::kNone), "NoFT");
  EXPECT_STREQ(ft_mode_name(FtMode::kPfsRedirect), "FT w/ PFS");
  EXPECT_STREQ(ft_mode_name(FtMode::kHashRingRecache), "FT w/ NVMe");
}

}  // namespace
}  // namespace ftc::cluster
