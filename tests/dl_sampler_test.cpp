#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "dl/dataset.hpp"
#include "dl/elastic_coordinator.hpp"
#include "dl/epoch_sampler.hpp"

namespace ftc::dl {
namespace {

TEST(EpochSampler, PermutationIsComplete) {
  EpochSampler sampler(100, 7);
  auto order = sampler.epoch_permutation(0);
  ASSERT_EQ(order.size(), 100u);
  std::sort(order.begin(), order.end());
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(EpochSampler, EpochsDiffer) {
  EpochSampler sampler(200, 7);
  EXPECT_NE(sampler.epoch_permutation(0), sampler.epoch_permutation(1));
}

TEST(EpochSampler, DeterministicAcrossInstances) {
  EpochSampler a(64, 42);
  EpochSampler b(64, 42);
  EXPECT_EQ(a.epoch_permutation(3), b.epoch_permutation(3));
}

TEST(EpochSampler, ShardsPartitionTheEpoch) {
  EpochSampler sampler(103, 5);  // non-divisible on purpose
  const std::uint32_t total = 8;
  std::set<std::uint32_t> seen;
  std::uint32_t count = 0;
  for (std::uint32_t rank = 0; rank < total; ++rank) {
    for (std::uint32_t f : sampler.shard(2, rank, total)) {
      EXPECT_TRUE(seen.insert(f).second) << "file " << f << " duplicated";
      ++count;
    }
  }
  EXPECT_EQ(count, 103u);
}

TEST(EpochSampler, ShardSizesBalanced) {
  EpochSampler sampler(103, 5);
  std::uint32_t total_size = 0;
  for (std::uint32_t rank = 0; rank < 8; ++rank) {
    const auto size = sampler.shard_size(rank, 8);
    EXPECT_GE(size, 103u / 8);
    EXPECT_LE(size, 103u / 8 + 1);
    total_size += size;
  }
  EXPECT_EQ(total_size, 103u);
}

TEST(EpochSampler, ShardBoundsMatchShard) {
  EpochSampler sampler(50, 9);
  const auto order = sampler.epoch_permutation(1);
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    const auto [begin, size] = sampler.shard_bounds(rank, 4);
    const auto shard = sampler.shard(1, rank, 4);
    ASSERT_EQ(shard.size(), size);
    for (std::uint32_t i = 0; i < size; ++i) {
      EXPECT_EQ(shard[i], order[begin + i]);
    }
  }
}

TEST(EpochSampler, DegenerateRanks) {
  EpochSampler sampler(10, 1);
  EXPECT_TRUE(sampler.shard(0, 5, 4).empty());  // rank >= total
  EXPECT_TRUE(sampler.shard(0, 0, 0).empty());  // zero participants
  EXPECT_EQ(sampler.shard_size(2, 0), 0u);
}

TEST(EpochSampler, GoldenPermutation) {
  // Hardcoded expected output for a fixed (seed, epoch): the permutation
  // must be identical on every process, platform, and build — the
  // epoch-ahead prefetch planner assumes each node can independently
  // recompute every peer's upcoming sample set from (seed, epoch) alone.
  EpochSampler sampler(16, 2024);
  EXPECT_EQ(sampler.epoch_permutation(0),
            (std::vector<std::uint32_t>{3, 10, 0, 9, 7, 14, 1, 4, 15, 2, 6,
                                        5, 11, 12, 8, 13}));
  EXPECT_EQ(sampler.epoch_permutation(1),
            (std::vector<std::uint32_t>{3, 0, 14, 1, 13, 10, 9, 15, 6, 4, 2,
                                        12, 7, 11, 5, 8}));
}

TEST(EpochSampler, ShardsBulkMatchesPerRankShard) {
  // shards() (one permutation, all slices) must agree with the per-rank
  // shard() the trainer historically used, at every node count.
  EpochSampler sampler(103, 5);
  for (std::uint32_t total : {1u, 4u, 8u}) {
    const auto all = sampler.shards(2, total);
    ASSERT_EQ(all.size(), total);
    for (std::uint32_t rank = 0; rank < total; ++rank) {
      EXPECT_EQ(all[rank], sampler.shard(2, rank, total))
          << "rank " << rank << "/" << total;
    }
  }
}

TEST(EpochSampler, PerNodeSetsDeterministicAcrossInstancesAndNodeCounts) {
  // Two independent sampler instances (stand-ins for two processes) must
  // derive identical per-node sets for the same (seed, epoch), and the
  // underlying epoch order must not depend on the node count — resharding
  // from 8 to 7 ranks slices the SAME permutation, so a planner on any
  // node predicts exactly what each survivor will read.
  EpochSampler a(64, 42);
  EpochSampler b(64, 42);
  for (std::uint32_t total : {7u, 8u}) {
    for (std::uint32_t rank = 0; rank < total; ++rank) {
      EXPECT_EQ(a.shard(5, rank, total), b.shard(5, rank, total));
    }
  }
  std::vector<std::uint32_t> concat7;
  for (std::uint32_t rank = 0; rank < 7; ++rank) {
    const auto shard = a.shard(5, rank, 7);
    concat7.insert(concat7.end(), shard.begin(), shard.end());
  }
  std::vector<std::uint32_t> concat8;
  for (std::uint32_t rank = 0; rank < 8; ++rank) {
    const auto shard = a.shard(5, rank, 8);
    concat8.insert(concat8.end(), shard.begin(), shard.end());
  }
  EXPECT_EQ(concat7, concat8);
  EXPECT_EQ(concat7, a.epoch_permutation(5));
}

TEST(EpochSampler, ReshardingAfterNodeLoss) {
  // After an elastic restart the shards over N-1 ranks must still
  // partition the full dataset.
  EpochSampler sampler(64, 3);
  std::set<std::uint32_t> seen;
  for (std::uint32_t rank = 0; rank < 7; ++rank) {
    for (std::uint32_t f : sampler.shard(1, rank, 7)) seen.insert(f);
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Dataset, SampleMath) {
  storage::FileCatalog catalog;
  for (int i = 0; i < 16; ++i) {
    catalog.add_file("/f" + std::to_string(i), 1000);
  }
  Dataset dataset(catalog, 64);
  EXPECT_EQ(dataset.file_count(), 16u);
  EXPECT_EQ(dataset.sample_count(), 1024u);
  EXPECT_EQ(dataset.bytes_of(3), 1000u);
  EXPECT_EQ(dataset.path_of(0), "/f0");
}

TEST(Dataset, FilesPerStepCeiling) {
  storage::FileCatalog catalog;
  for (int i = 0; i < 100; ++i) {
    catalog.add_file("/f" + std::to_string(i), 1);
  }
  Dataset dataset(catalog, 10);
  // Global batch 45 samples = 4.5 files -> 5 files/step; 4 nodes -> 2 each.
  EXPECT_EQ(dataset.files_per_step_per_node(45, 4), 2u);
  // 2 files * 4 nodes = 8 per step; 100 files -> 13 steps.
  EXPECT_EQ(dataset.steps_per_epoch(45, 4), 13u);
}

TEST(Dataset, DegenerateBatchInputs) {
  storage::FileCatalog catalog;
  catalog.add_file("/a", 1);
  Dataset dataset(catalog, 0);           // clamped to 1 sample/file
  EXPECT_EQ(dataset.samples_per_file(), 1u);
  EXPECT_EQ(dataset.files_per_step_per_node(0, 4), 1u);
  EXPECT_EQ(dataset.files_per_step_per_node(4, 0), 1u);
}

TEST(ElasticCoordinator, InitialMembership) {
  ElasticCoordinator elastic(8);
  EXPECT_EQ(elastic.alive_count(), 8u);
  EXPECT_EQ(elastic.initial_count(), 8u);
  EXPECT_TRUE(elastic.is_alive(7));
  EXPECT_EQ(elastic.alive_nodes().size(), 8u);
}

TEST(ElasticCoordinator, FailureShrinksMembership) {
  ElasticCoordinator elastic(4);
  EXPECT_TRUE(elastic.on_node_failure(2));
  EXPECT_FALSE(elastic.is_alive(2));
  EXPECT_EQ(elastic.alive_count(), 3u);
  const auto alive = elastic.alive_nodes();
  EXPECT_EQ(alive, (std::vector<std::uint32_t>{0, 1, 3}));
}

TEST(ElasticCoordinator, DuplicateFailureIgnored) {
  ElasticCoordinator elastic(4);
  EXPECT_TRUE(elastic.on_node_failure(1));
  EXPECT_FALSE(elastic.on_node_failure(1));
  EXPECT_EQ(elastic.alive_count(), 3u);
}

TEST(ElasticCoordinator, OutOfRangeFailureIgnored) {
  ElasticCoordinator elastic(4);
  EXPECT_FALSE(elastic.on_node_failure(99));
  EXPECT_EQ(elastic.alive_count(), 4u);
}

TEST(ElasticCoordinator, RankMapping) {
  ElasticCoordinator elastic(5);
  elastic.on_node_failure(1);
  // Survivors 0,2,3,4 -> ranks 0,1,2,3.
  EXPECT_EQ(elastic.rank_of(0), 0u);
  EXPECT_EQ(elastic.rank_of(2), 1u);
  EXPECT_EQ(elastic.rank_of(3), 2u);
  EXPECT_EQ(elastic.rank_of(4), 3u);
  EXPECT_EQ(elastic.rank_of(1), std::numeric_limits<std::uint32_t>::max());
}

TEST(ElasticCoordinator, RestartCounter) {
  ElasticCoordinator elastic(4);
  elastic.acknowledge_restart();
  elastic.acknowledge_restart();
  EXPECT_EQ(elastic.restart_count(), 2u);
}

}  // namespace
}  // namespace ftc::dl
