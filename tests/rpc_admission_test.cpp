#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rpc/transport.hpp"

namespace ftc::rpc {
namespace {

using namespace std::chrono_literals;

/// Lets a test hold an endpoint's worker hostage inside the handler so
/// the ingress queue backs up deterministically.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;

  void release() {
    {
      std::lock_guard lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock lock(mutex);
    cv.wait(lock, [this] { return open; });
  }
};

RpcRequest read_request() {
  RpcRequest request;
  request.op = Op::kReadFile;
  request.path = "/f";
  return request;
}

TEST(Admission, ShedsReadsAtLimitWithRetryAfter) {
  Transport transport;
  auto gate = std::make_shared<Gate>();
  ASSERT_TRUE(transport
                  .register_endpoint(0,
                                     [gate](const RpcRequest& request) {
                                       if (request.op == Op::kReadFile) {
                                         gate->wait();
                                       }
                                       RpcResponse response;
                                       response.code = StatusCode::kOk;
                                       return response;
                                     })
                  .is_ok());
  transport.set_admission(0, {/*queue_limit=*/1, /*retry_after_base_ms=*/2});

  std::atomic<int> completed{0};
  const auto on_complete = [&completed](const StatusOr<RpcResponse>&) {
    completed.fetch_add(1);
  };
  // First read occupies the single worker (blocked at the gate)...
  transport.call_async(0, read_request(), 5s, on_complete);
  std::this_thread::sleep_for(50ms);
  // ...second read fills the queue to the limit...
  transport.call_async(0, read_request(), 5s, on_complete);
  std::this_thread::sleep_for(50ms);
  // ...so the third read is shed with a fast kBusy, not a queue wait.
  auto shed = transport.call(0, read_request(), 1s);
  ASSERT_TRUE(shed.is_ok());
  EXPECT_EQ(shed.value().code, StatusCode::kBusy);
  EXPECT_GE(shed.value().retry_after_ms, 2u);
  EXPECT_EQ(transport.stats(0).requests_shed, 1u);

  gate->release();
  transport.drain_async();
  EXPECT_EQ(completed.load(), 2);
}

TEST(Admission, RecacheWritesKeepHeadroomAndMembershipNeverShed) {
  Transport transport;
  auto gate = std::make_shared<Gate>();
  std::atomic<int> puts_handled{0};
  ASSERT_TRUE(transport
                  .register_endpoint(0,
                                     [gate, &puts_handled](
                                         const RpcRequest& request) {
                                       if (request.op == Op::kReadFile) {
                                         gate->wait();
                                       }
                                       if (request.op == Op::kPut) {
                                         puts_handled.fetch_add(1);
                                       }
                                       RpcResponse response;
                                       response.code = StatusCode::kOk;
                                       return response;
                                     })
                  .is_ok());
  transport.set_admission(0, {/*queue_limit=*/1, /*retry_after_base_ms=*/1});

  const auto ignore = [](const StatusOr<RpcResponse>&) {};
  // Occupy the worker, then fill the queue to the read limit.
  transport.call_async(0, read_request(), 5s, ignore);
  std::this_thread::sleep_for(50ms);
  transport.call_async(0, read_request(), 5s, ignore);
  std::this_thread::sleep_for(50ms);

  // Reads shed at the limit, but a recache write still gets in: kPut
  // sheds only at twice the limit (post-failover backup placement is the
  // work that ends a storm).
  RpcRequest put;
  put.op = Op::kPut;
  put.path = "/f";
  transport.call_async(0, put, 5s, ignore);  // queue 2 = put bound, admitted
  std::this_thread::sleep_for(50ms);
  auto put_shed = transport.call(0, put, 1s);  // queue 2 >= bound 2: shed
  ASSERT_TRUE(put_shed.is_ok());
  EXPECT_EQ(put_shed.value().code, StatusCode::kBusy);

  // Membership-protocol traffic is NEVER shed, no matter the backlog —
  // it queues (timing out behind the hostage worker here) instead of
  // bouncing: starving detection during overload turns storms into
  // partitions.
  const std::uint64_t shed_before = transport.stats(0).requests_shed;
  RpcRequest swim;
  swim.op = Op::kSwimPing;
  auto swim_result = transport.call(0, swim, 50ms);
  EXPECT_FALSE(swim_result.is_ok());
  EXPECT_EQ(swim_result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(transport.stats(0).requests_shed, shed_before);

  gate->release();
  transport.drain_async();
  EXPECT_EQ(puts_handled.load(), 1);
}

TEST(Admission, KilledEndpointNeverSheds) {
  // A dead node cannot send rejections; a fast kBusy from a killed
  // endpoint would read as liveness and break timeout-based detection.
  Transport transport;
  ASSERT_TRUE(transport
                  .register_endpoint(0,
                                     [](const RpcRequest&) {
                                       RpcResponse response;
                                       response.code = StatusCode::kOk;
                                       return response;
                                     })
                  .is_ok());
  transport.set_admission(0, {/*queue_limit=*/1, /*retry_after_base_ms=*/1});
  transport.kill(0);
  for (int i = 0; i < 4; ++i) {
    auto result = transport.call(0, read_request(), 20ms);
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  }
  EXPECT_EQ(transport.stats(0).requests_shed, 0u);
}

TEST(Admission, UnboundedByDefault) {
  // No set_admission call: legacy behaviour, nothing is ever shed.
  Transport transport;
  auto gate = std::make_shared<Gate>();
  ASSERT_TRUE(transport
                  .register_endpoint(0,
                                     [gate](const RpcRequest&) {
                                       gate->wait();
                                       RpcResponse response;
                                       response.code = StatusCode::kOk;
                                       return response;
                                     })
                  .is_ok());
  std::atomic<int> completed{0};
  for (int i = 0; i < 16; ++i) {
    transport.call_async(0, read_request(), 5s,
                         [&completed](const StatusOr<RpcResponse>&) {
                           completed.fetch_add(1);
                         });
  }
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(transport.stats(0).requests_shed, 0u);
  gate->release();
  transport.drain_async();
  EXPECT_EQ(completed.load(), 16);
}

TEST(MultiWorkerEndpoint, RequestsActuallyRunConcurrently) {
  Transport transport;
  std::atomic<int> in_handler{0};
  std::atomic<int> peak{0};
  ASSERT_TRUE(transport
                  .register_endpoint(
                      0,
                      [&in_handler, &peak](const RpcRequest&) {
                        const int now = in_handler.fetch_add(1) + 1;
                        int seen = peak.load();
                        while (now > seen &&
                               !peak.compare_exchange_weak(seen, now)) {
                        }
                        std::this_thread::sleep_for(30ms);
                        in_handler.fetch_sub(1);
                        RpcResponse response;
                        response.code = StatusCode::kOk;
                        return response;
                      },
                      /*workers=*/3)
                  .is_ok());
  std::vector<std::thread> callers;
  callers.reserve(3);
  for (int i = 0; i < 3; ++i) {
    callers.emplace_back([&transport] {
      auto result = transport.call(0, read_request(), 5s);
      ASSERT_TRUE(result.is_ok());
      EXPECT_EQ(result.value().code, StatusCode::kOk);
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_GE(peak.load(), 2);  // a serial endpoint would never exceed 1
}

TEST(MultiWorkerEndpoint, ZeroWorkersRejected) {
  Transport transport;
  const Status status =
      transport.register_endpoint(0, [](const RpcRequest&) {
        return RpcResponse{};
      }, /*workers=*/0);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(transport.endpoint_count(), 0u);
}

}  // namespace
}  // namespace ftc::rpc
