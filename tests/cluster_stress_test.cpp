// Concurrency stress: many client threads hammer the cluster while nodes
// die underneath them.  Catches data races and lost wakeups in the
// transport/server/mover paths (run under TSan for full value; asserts
// functional correctness regardless).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

TEST(Stress, ConcurrentReadersWithFailures) {
  ClusterConfig config;
  config.node_count = 4;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 50ms;
  config.client.timeout_limit = 2;
  config.server.async_data_mover = true;  // exercise the mover thread too
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(64, 128);
  cluster.warm_caches(paths);

  std::atomic<std::uint64_t> ok_reads{0};
  std::atomic<std::uint64_t> failed_reads{0};
  std::atomic<bool> stop{false};

  // One reader thread per node's client, each doing passes over the
  // dataset.  Each HvacClient is single-threaded by contract, so one
  // thread per client is the supported concurrency pattern.
  std::vector<std::thread> readers;
  readers.reserve(cluster.node_count());
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    readers.emplace_back([&cluster, &paths, &ok_reads, &failed_reads, &stop,
                          n] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const auto& path : paths) {
          auto result = cluster.client(n).read_file(path);
          if (result.is_ok()) {
            ok_reads.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Kill two nodes while the readers run.
  std::this_thread::sleep_for(30ms);
  cluster.fail_node(1);
  std::this_thread::sleep_for(50ms);
  cluster.fail_node(3);
  std::this_thread::sleep_for(100ms);
  stop.store(true);
  for (auto& reader : readers) reader.join();

  // The two failed nodes' own clients keep working (clients live on the
  // node but the failure model kills only the server endpoint); every
  // read must eventually succeed via ring recaching.
  EXPECT_GT(ok_reads.load(), 4u * paths.size());
  EXPECT_EQ(failed_reads.load(), 0u);

  // Post-stress sanity: single-threaded full pass is clean.
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
}

TEST(Stress, AsyncCallsDuringFailure) {
  ClusterConfig config;
  config.node_count = 3;
  config.client.rpc_timeout = 40ms;
  config.server.async_data_mover = false;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(16, 64);
  cluster.warm_caches(paths);

  std::atomic<int> completions{0};
  for (int round = 0; round < 4; ++round) {
    for (NodeId target = 0; target < 3; ++target) {
      rpc::RpcRequest request;
      request.op = rpc::Op::kReadFile;
      request.path = paths[static_cast<std::size_t>(round) % paths.size()];
      cluster.transport().call_async(
          target, std::move(request), 200ms,
          [&completions](StatusOr<rpc::RpcResponse>) {
            completions.fetch_add(1);
          });
    }
    if (round == 1) cluster.fail_node(2);
  }
  cluster.transport().drain_async();
  EXPECT_EQ(completions.load(), 12);
}

}  // namespace
}  // namespace ftc::cluster
