// MetricsRegistry tests: instrument semantics, cardinality rules, and
// golden exporter output (export is deterministic by contract, so the
// goldens compare full strings).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace ftc::obs {
namespace {

TEST(Counter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, CumulativeBucketsAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (le is inclusive)
  h.observe(5.0);   // <= 10
  h.observe(1000);  // +Inf only
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.cumulative.size(), 3u);
  EXPECT_EQ(snap.cumulative[0], 2u);
  EXPECT_EQ(snap.cumulative[1], 3u);
  EXPECT_EQ(snap.cumulative[2], 3u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 1006.5);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, SameSeriesReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("ftc_reads_total", {{"node", "0"}});
  Counter& b = registry.counter("ftc_reads_total", {{"node", "0"}});
  EXPECT_EQ(&a, &b);
  // Different labels = different series.
  Counter& c = registry.counter("ftc_reads_total", {{"node", "1"}});
  EXPECT_NE(&a, &c);
}

TEST(MetricsRegistry, LabelOrderIsCanonicalized) {
  MetricsRegistry registry;
  Counter& a = registry.counter("m", {{"op", "read"}, {"node", "0"}});
  Counter& b = registry.counter("m", {{"node", "0"}, {"op", "read"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, RejectsMalformedNamesAndCardinality) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
  EXPECT_THROW(registry.counter("7starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has space"), std::invalid_argument);
  EXPECT_THROW(registry.counter("m", {{"a", "1"},
                                      {"b", "2"},
                                      {"c", "3"},
                                      {"d", "4"},
                                      {"e", "5"}}),
               std::invalid_argument);
}

TEST(MetricsRegistry, RejectsTypeClash) {
  MetricsRegistry registry;
  registry.counter("m");
  EXPECT_THROW(registry.gauge("m"), std::invalid_argument);
}

TEST(MetricsRegistry, GoldenPrometheusExport) {
  MetricsRegistry registry;
  registry.counter("ftc_reads_total", {{"node", "0"}}).add(3);
  registry.counter("ftc_reads_total", {{"node", "1"}}).add(7);
  registry.gauge("ftc_cache_used_bytes", {{"node", "0"}}).set(1024);
  Histogram& h =
      registry.histogram("ftc_latency_us", {{"node", "0"}}, {10.0, 100.0});
  h.observe(5);
  h.observe(50);
  h.observe(500);

  const std::string expected =
      "# TYPE ftc_cache_used_bytes gauge\n"
      "ftc_cache_used_bytes{node=\"0\"} 1024\n"
      "# TYPE ftc_latency_us histogram\n"
      "ftc_latency_us_bucket{node=\"0\",le=\"10\"} 1\n"
      "ftc_latency_us_bucket{node=\"0\",le=\"100\"} 2\n"
      "ftc_latency_us_bucket{node=\"0\",le=\"+Inf\"} 3\n"
      "ftc_latency_us_sum{node=\"0\"} 555\n"
      "ftc_latency_us_count{node=\"0\"} 3\n"
      "# TYPE ftc_reads_total counter\n"
      "ftc_reads_total{node=\"0\"} 3\n"
      "ftc_reads_total{node=\"1\"} 7\n";
  EXPECT_EQ(registry.export_prometheus_text(), expected);
}

TEST(MetricsRegistry, GoldenJsonExport) {
  MetricsRegistry registry;
  registry.counter("ftc_reads_total", {{"node", "0"}}).add(3);
  Histogram& h = registry.histogram("ftc_latency_us", {}, {10.0});
  h.observe(5);

  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"ftc_latency_us\",\"type\":\"histogram\",\"labels\":{},"
      "\"buckets\":[{\"le\":10,\"count\":1},{\"le\":\"+Inf\",\"count\":1}],"
      "\"count\":1,\"sum\":5},"
      "{\"name\":\"ftc_reads_total\",\"type\":\"counter\","
      "\"labels\":{\"node\":\"0\"},\"value\":3}"
      "]}";
  EXPECT_EQ(registry.export_json(), expected);
}

TEST(MetricsRegistry, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.counter("m", {{"k", "a\"b\\c\nd"}}).add(1);
  const std::string text = registry.export_prometheus_text();
  EXPECT_NE(text.find("m{k=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos)
      << text;
}

TEST(MetricsRegistry, CollectorSamplesMergeWithOwnedInstruments) {
  MetricsRegistry registry;
  registry.counter("aaa_owned_total").add(1);
  std::uint64_t source = 42;
  registry.register_collector([&source](MetricsRegistry::Collection& out) {
    out.counter("zzz_collected_total", {{"node", "3"}}, source);
    out.gauge("mmm_collected", {}, 0.5);
  });
  const std::string expected =
      "# TYPE aaa_owned_total counter\n"
      "aaa_owned_total 1\n"
      "# TYPE mmm_collected gauge\n"
      "mmm_collected 0.5\n"
      "# TYPE zzz_collected_total counter\n"
      "zzz_collected_total{node=\"3\"} 42\n";
  EXPECT_EQ(registry.export_prometheus_text(), expected);
  // Collectors re-read the source every export.
  source = 43;
  EXPECT_NE(registry.export_prometheus_text().find("zzz_collected_total{node=\"3\"} 43"),
            std::string::npos);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndExport) {
  // Lock-striped registration races against exports; TSan is the real
  // judge here, the assertions just pin the final counts.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter& mine =
          registry.counter("ftc_contended_total", {{"node", std::to_string(t % 2)}});
      for (int i = 0; i < kIncrements; ++i) mine.add();
    });
  }
  threads.emplace_back([&registry] {
    for (int i = 0; i < 20; ++i) (void)registry.export_prometheus_text();
  });
  for (auto& thread : threads) thread.join();
  const std::uint64_t total =
      registry.counter("ftc_contended_total", {{"node", "0"}}).value() +
      registry.counter("ftc_contended_total", {{"node", "1"}}).value();
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace ftc::obs
