// TieredCacheStore semantics: hot/cold placement, demotion instead of
// deletion, promotion on cold hits, watermark reclaim, overflow writes at
// the RAM hard cap, modelled NVMe latency, and warm restart from the
// device manifest with generation validation.
//
// background_reclaim is OFF throughout (reclaim runs inline at the end of
// each put), so every tier move below is deterministic; the threaded
// reclaim path is exercised by store_stress_test.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "store/tiered_store.hpp"

namespace ftc::store {
namespace {

StoreConfig test_config() {
  StoreConfig config;
  config.tiering = true;
  config.ram_bytes = 1000;
  config.nvme_bytes = 4000;
  config.policy = PolicyKind::kLru;  // deterministic victim order
  config.low_watermark = 0.5;
  config.high_watermark = 0.8;
  config.shards = 1;  // one shard = fully deterministic demotion order
  config.background_reclaim = false;
  return config;
}

std::string path_of(int i) { return "/t/file_" + std::to_string(i); }

common::Buffer bytes_of(std::size_t n, char fill = 'x') {
  return common::Buffer(std::string(n, fill));
}

TEST(TieredStore, ConstructorValidatesEvenWithTieringFlagOff) {
  StoreConfig bad = test_config();
  bad.tiering = false;  // must not dodge validation
  bad.high_watermark = 0.2;
  EXPECT_THROW(TieredCacheStore{bad}, std::invalid_argument);
}

TEST(TieredStore, HotHitIsZeroCopy) {
  TieredCacheStore store(test_config());
  common::Buffer contents = bytes_of(100);
  ASSERT_TRUE(store.put("/a", contents, 100, 0).is_ok());
  EXPECT_EQ(store.tier_of("/a"), "ram");
  auto got = store.get("/a");
  ASSERT_TRUE(got.is_ok());
  EXPECT_TRUE(got.value().shares_storage(contents));
  const StoreStats stats = store.stats_snapshot();
  EXPECT_EQ(stats.hot_hits, 1u);
  EXPECT_EQ(stats.cold_hits, 0u);
  EXPECT_EQ(stats.ram_used_bytes, 100u);
}

TEST(TieredStore, PressureDemotesInsteadOfDeleting) {
  // RAM budget 1000, high watermark 800: the 9th 100-byte file pushes
  // used past 800, and inline reclaim drains to the low watermark (500)
  // by demoting LRU victims to NVMe.  Nothing is lost.
  TieredCacheStore store(test_config());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(store.put(path_of(i), bytes_of(100), 100, 0).is_ok());
  }
  const StoreStats stats = store.stats_snapshot();
  EXPECT_GT(stats.demotions, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_LE(stats.ram_used_bytes, 500u);
  EXPECT_EQ(stats.ram_used_bytes + stats.nvme_used_bytes, 900u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(store.contains(path_of(i))) << path_of(i);
  }
  // The oldest files went cold; the newest stayed hot.
  EXPECT_EQ(store.tier_of(path_of(0)), "nvme");
  EXPECT_EQ(store.tier_of(path_of(8)), "ram");
}

TEST(TieredStore, ColdHitPromotesBackToRam) {
  TieredCacheStore store(test_config());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(store.put(path_of(i), bytes_of(100), 100, 0).is_ok());
  }
  ASSERT_EQ(store.tier_of(path_of(0)), "nvme");
  auto got = store.get(path_of(0));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().size(), 100u);
  EXPECT_EQ(store.tier_of(path_of(0)), "ram");
  const StoreStats stats = store.stats_snapshot();
  EXPECT_EQ(stats.cold_hits, 1u);
  EXPECT_EQ(stats.promotions, 1u);
}

TEST(TieredStore, RamHardCapOverflowsToColdWithoutBlocking) {
  // 8 x 100 bytes = 800 (at the high watermark but reclaim only fires
  // when used EXCEEDS it)... so instead: fill to 700, then put 400 —
  // 700+400 > 1000 overshoots the hard cap and must route cold.
  StoreConfig config = test_config();
  config.high_watermark = 0.95;  // keep inline reclaim out of the way
  config.low_watermark = 0.5;
  TieredCacheStore store(config);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(store.put(path_of(i), bytes_of(100), 100, 0).is_ok());
  }
  ASSERT_TRUE(store.put("/burst", bytes_of(400), 400, 0).is_ok());
  EXPECT_EQ(store.tier_of("/burst"), "nvme");
  const StoreStats stats = store.stats_snapshot();
  EXPECT_EQ(stats.overflow_writes, 1u);
  EXPECT_EQ(stats.ram_used_bytes, 700u);  // residents untouched
  for (int i = 0; i < 7; ++i) EXPECT_EQ(store.tier_of(path_of(i)), "ram");
}

TEST(TieredStore, FileLargerThanRamGoesStraightCold) {
  TieredCacheStore store(test_config());
  ASSERT_TRUE(store.put("/huge", bytes_of(2000), 2000, 0).is_ok());
  EXPECT_EQ(store.tier_of("/huge"), "nvme");
  // And larger than both tiers is a hard refusal.
  EXPECT_EQ(store.put("/too-big", bytes_of(5000), 5000, 0).code(),
            StatusCode::kCapacity);
}

TEST(TieredStore, ColdTierEvictsAtItsOwnWatermark) {
  // NVMe budget 4000, high 3200: demote enough bytes and the cold tier
  // starts truly evicting — the only place data is dropped.
  TieredCacheStore store(test_config());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.put(path_of(i), bytes_of(100), 100, 0).is_ok());
  }
  const StoreStats stats = store.stats_snapshot();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.nvme_used_bytes, 4000u);
  EXPECT_LT(store.file_count(), 50u);
}

TEST(TieredStore, OverwriteDropsStaleColdCopy) {
  TieredCacheStore store(test_config());
  ASSERT_TRUE(store.put("/f", bytes_of(100, 'a'), 100, 1).is_ok());
  // Force /f cold, then overwrite with new bytes (hot).
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(store.put(path_of(i), bytes_of(100), 100, 0).is_ok());
  }
  ASSERT_EQ(store.tier_of("/f"), "nvme");
  ASSERT_TRUE(store.put("/f", bytes_of(150, 'b'), 150, 2).is_ok());
  EXPECT_EQ(store.tier_of("/f"), "ram");
  EXPECT_EQ(store.generation_of("/f"), 2u);
  auto got = store.get("/f");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().size(), 150u);
  // Exactly one copy remains anywhere.
  EXPECT_EQ(store.size_of("/f").value(), 150u);
}

TEST(TieredStore, EraseAndClearCoverBothTiers) {
  TieredCacheStore store(test_config());
  ASSERT_TRUE(store.put("/hot", bytes_of(100), 100, 0).is_ok());
  ASSERT_TRUE(store.put("/cold", bytes_of(2000), 2000, 0).is_ok());
  EXPECT_TRUE(store.erase("/hot"));
  EXPECT_TRUE(store.erase("/cold"));
  EXPECT_FALSE(store.erase("/cold"));
  EXPECT_EQ(store.file_count(), 0u);
  ASSERT_TRUE(store.put("/again", bytes_of(2000), 2000, 0).is_ok());
  store.clear();
  EXPECT_EQ(store.file_count(), 0u);
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_EQ(store.device().file_count(), 0u);
}

TEST(TieredStore, ModelledNvmeLatencyIsPaidOnColdReads) {
  StoreConfig config = test_config();
  config.model_nvme_latency = true;
  config.nvme.op_latency = 2'000'000;  // 2 ms, dwarfs bandwidth terms
  TieredCacheStore store(config);
  ASSERT_TRUE(store.put("/cold", bytes_of(2000), 2000, 0).is_ok());
  ASSERT_EQ(store.tier_of("/cold"), "nvme");
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(store.get("/cold").is_ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // sleep_for guarantees at-least semantics, so this cannot flake.
  EXPECT_GE(elapsed, std::chrono::milliseconds(2));
}

// --- warm restart ------------------------------------------------------

TEST(TieredStore, WarmRestartRestoresManifestEntries) {
  auto device = std::make_shared<NvmeDevice>(4000);
  {
    TieredCacheStore first(test_config(), device);
    ASSERT_TRUE(first.put("/a", bytes_of(100, 'a'), 100, 5).is_ok());
    ASSERT_TRUE(first.put("/b", bytes_of(100, 'b'), 100, 6).is_ok());
    first.flush_hot_to_cold();  // clean shutdown: manifest covers all
    ASSERT_EQ(device->file_count(), 2u);
  }  // "crash": store (RAM tier) destroyed, device survives

  TieredCacheStore second(test_config(), device);
  EXPECT_EQ(second.file_count(), 2u);  // device entries already visible
  const std::size_t restored = second.restore_from_device();
  EXPECT_EQ(restored, 2u);
  auto got = second.get("/a");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().view()[0], 'a');
  const StoreStats stats = second.stats_snapshot();
  EXPECT_EQ(stats.manifest_restored, 2u);
  EXPECT_EQ(stats.manifest_rejected_stale, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(second.generation_of("/b"), 6u);
}

TEST(TieredStore, WarmRestartRejectsStaleGenerations) {
  auto device = std::make_shared<NvmeDevice>(4000);
  {
    TieredCacheStore first(test_config(), device);
    ASSERT_TRUE(first.put("/stale", bytes_of(100), 100, 3).is_ok());
    ASSERT_TRUE(first.put("/fresh", bytes_of(100), 100, 9).is_ok());
    ASSERT_TRUE(first.put("/unstamped", bytes_of(100), 100, 0).is_ok());
    first.flush_hot_to_cold();
  }
  TieredCacheStore second(test_config(), device);
  // Authority: the cluster has moved /stale on to generation 7; knows
  // nothing beyond generation 2 for /fresh; never stamped /unstamped.
  const std::size_t restored =
      second.restore_from_device([](const std::string& path) -> std::uint64_t {
        if (path == "/stale") return 7;
        if (path == "/fresh") return 2;
        return 0;
      });
  EXPECT_EQ(restored, 2u);
  const StoreStats stats = second.stats_snapshot();
  EXPECT_EQ(stats.manifest_rejected_stale, 1u);
  EXPECT_FALSE(second.contains("/stale"));  // dropped, not served stale
  EXPECT_TRUE(second.contains("/fresh"));
  EXPECT_TRUE(second.contains("/unstamped"));
}

TEST(TieredStore, ManifestDisabledMeansColdRejoin) {
  StoreConfig config = test_config();
  config.manifest.enabled = false;
  auto device = std::make_shared<NvmeDevice>(4000);
  {
    TieredCacheStore first(config, device);
    ASSERT_TRUE(first.put("/a", bytes_of(100), 100, 1).is_ok());
    first.flush_hot_to_cold();
    ASSERT_EQ(device->file_count(), 1u);
  }
  TieredCacheStore second(config, device);
  EXPECT_EQ(second.restore_from_device(), 0u);
  EXPECT_EQ(device->file_count(), 0u);  // volume treated as scratch
}

TEST(NvmeDeviceUnit, WriteReadEraseAccounting) {
  NvmeDevice device(1000);
  ASSERT_TRUE(device.write("/a", {bytes_of(300), 300, 4}).is_ok());
  EXPECT_EQ(device.used_bytes(), 300u);
  EXPECT_EQ(device.generation_of("/a").value(), 4u);
  ASSERT_TRUE(device.write("/a", {bytes_of(100), 100, 5}).is_ok());
  EXPECT_EQ(device.used_bytes(), 100u);  // overwrite replaces accounting
  EXPECT_EQ(device.read("/a").value().bytes, 100u);
  EXPECT_FALSE(device.read("/missing").has_value());
  EXPECT_EQ(device.write("/big", {bytes_of(2000), 2000, 0}).code(),
            StatusCode::kCapacity);
  EXPECT_TRUE(device.erase("/a"));
  EXPECT_EQ(device.used_bytes(), 0u);
  EXPECT_EQ(device.writes(), 2u);
  EXPECT_EQ(device.reads(), 1u);
}

}  // namespace
}  // namespace ftc::store
