// Parameterized invariant sweep over the DES experiment: for every
// (mode, node count, failure pattern) combination the accounting must be
// conserved and the headline orderings must hold.
#include <gtest/gtest.h>

#include <tuple>

#include "destim/experiment.hpp"

namespace ftc::destim {
namespace {

using cluster::FtMode;

ExperimentConfig sweep_config(FtMode mode, std::uint32_t nodes) {
  ExperimentConfig config;
  config.node_count = nodes;
  config.mode = mode;
  config.file_count = 512;
  config.file_bytes = 2ULL << 20;
  config.samples_per_file = 4;
  config.epochs = 3;
  config.files_per_step_per_node = 4;
  config.compute_time_per_step = 10 * simtime::kMillisecond;
  config.pfs.access_latency = 5 * simtime::kMillisecond;
  config.pfs.access_latency_tail_mean = 5 * simtime::kMillisecond;
  config.pfs.per_client_bytes_per_second = 400.0e6;
  config.rpc_timeout = 2 * simtime::kMillisecond;
  config.timeout_limit = 2;
  config.elastic_restart_overhead = 50 * simtime::kMillisecond;
  return config;
}

using SweepParam = std::tuple<FtMode, std::uint32_t /*nodes*/,
                              std::uint32_t /*failures*/>;

class DesSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DesSweep, InvariantsHold) {
  const auto [mode, nodes, failure_count] = GetParam();
  auto config = sweep_config(mode, nodes);
  cluster::FailurePlanParams plan;
  plan.node_count = nodes;
  plan.failure_count = failure_count;
  plan.first_eligible_epoch = 1;
  plan.total_epochs = config.epochs;
  plan.seed = 99;
  config.failures = cluster::plan_failures(plan);

  const auto result = run_experiment(config);

  if (mode == FtMode::kNone && failure_count > 0) {
    EXPECT_FALSE(result.completed);
    return;
  }
  ASSERT_TRUE(result.completed) << result.abort_reason;
  ASSERT_EQ(result.epochs.size(), config.epochs);

  // Time is positive and monotone-accumulated.
  SimTime sum = 0;
  for (const auto& epoch : result.epochs) {
    EXPECT_GT(epoch.duration, 0);
    EXPECT_GE(epoch.attempts, 1u);
    sum += epoch.duration;
  }
  EXPECT_LE(sum, result.total_time + 1);

  // Warm-up conservation: epoch 0 fetches every file from the PFS exactly
  // once (no failure happens before epoch 1 in the plan).
  EXPECT_EQ(result.epochs[0].pfs_reads, config.file_count);

  // Aggregate counters match per-epoch sums.
  std::uint64_t pfs = 0;
  std::uint64_t timeouts = 0;
  for (const auto& epoch : result.epochs) {
    pfs += epoch.pfs_reads;
    timeouts += epoch.timeouts;
  }
  EXPECT_EQ(pfs, result.total_pfs_reads);
  EXPECT_EQ(timeouts, result.total_timeouts);

  if (failure_count == 0) {
    EXPECT_EQ(result.restarts, 0u);
    EXPECT_EQ(result.total_timeouts, 0u);
    EXPECT_EQ(result.total_pfs_reads, config.file_count);
  } else {
    EXPECT_GE(result.restarts, 1u);
    EXPECT_GT(result.total_timeouts, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesScalesFailures, DesSweep,
    ::testing::Combine(::testing::Values(FtMode::kNone, FtMode::kPfsRedirect,
                                         FtMode::kHashRingRecache),
                       ::testing::Values<std::uint32_t>(4, 16, 32),
                       ::testing::Values<std::uint32_t>(0, 1, 3)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      const char* mode = std::get<0>(info.param) == FtMode::kNone
                             ? "none"
                             : (std::get<0>(info.param) == FtMode::kPfsRedirect
                                    ? "pfs"
                                    : "nvme");
      return std::string(mode) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_f" +
             std::to_string(std::get<2>(info.param));
    });

class DesReplicationSweep
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DesReplicationSweep, ReplicationReducesPostFailurePfs) {
  const std::uint32_t nodes = GetParam();
  auto base = sweep_config(FtMode::kHashRingRecache, nodes);
  cluster::PlannedFailure failure;
  failure.victim = nodes / 2;
  failure.epoch = 1;
  failure.epoch_fraction = 0.2;
  base.failures = {failure};

  auto replicated = base;
  replicated.replication_factor = 2;

  const auto plain = run_experiment(base);
  const auto backed = run_experiment(replicated);
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(backed.completed);

  auto post_warmup_pfs = [](const ExperimentResult& result) {
    std::uint64_t total = 0;
    for (const auto& epoch : result.epochs) {
      if (epoch.epoch > 0) total += epoch.pfs_reads;
    }
    return total;
  };
  EXPECT_LT(post_warmup_pfs(backed), post_warmup_pfs(plain) + 1);
  EXPECT_EQ(post_warmup_pfs(backed), 0u);
  // Capacity price: roughly twice the footprint.
  EXPECT_GT(backed.peak_node_cache_bytes,
            plain.peak_node_cache_bytes * 3 / 2);
}

INSTANTIATE_TEST_SUITE_P(Scales, DesReplicationSweep,
                         ::testing::Values<std::uint32_t>(8, 32),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "n" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace ftc::destim
