// Pluggable eviction policies: ordering semantics per policy, plus the
// scan-resistance regression (the reason S3-FIFO/GDSF exist here at all:
// one sequential epoch over a 4x-RAM dataset must not flush the hot set).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/eviction.hpp"

namespace ftc::store {
namespace {

std::string key_of(int i) { return "/k/" + std::to_string(i); }

TEST(PolicyKindNames, ParseRoundTrip) {
  for (const PolicyKind kind : {PolicyKind::kLru, PolicyKind::kFifo,
                                PolicyKind::kS3Fifo, PolicyKind::kGdsf}) {
    const auto parsed = parse_policy_kind(policy_kind_name(kind));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), kind);
    EXPECT_EQ(make_eviction_policy(kind)->kind(), kind);
  }
  EXPECT_FALSE(parse_policy_kind("clock").is_ok());
  EXPECT_FALSE(parse_policy_kind("").is_ok());
}

TEST(ListPolicies, LruRefreshesOnHitFifoDoesNot) {
  auto lru = make_eviction_policy(PolicyKind::kLru);
  auto fifo = make_eviction_policy(PolicyKind::kFifo);
  for (auto* policy : {lru.get(), fifo.get()}) {
    policy->on_insert("/a", 10);
    policy->on_insert("/b", 10);
    policy->on_insert("/c", 10);
    policy->on_hit("/a");
  }
  // LRU: the hit moved /a to the front, so /b is oldest.
  EXPECT_EQ(lru->pop_victim().value(), "/b");
  // FIFO: insertion order rules regardless of hits.
  EXPECT_EQ(fifo->pop_victim().value(), "/a");
}

TEST(EveryPolicy, UnknownKeysIgnoredAndEmptyPopsNullopt) {
  for (const PolicyKind kind : {PolicyKind::kLru, PolicyKind::kFifo,
                                PolicyKind::kS3Fifo, PolicyKind::kGdsf}) {
    auto policy = make_eviction_policy(kind);
    policy->on_hit("/ghost");
    policy->on_erase("/ghost");
    EXPECT_FALSE(policy->pop_victim().has_value()) << policy_kind_name(kind);
    EXPECT_EQ(policy->tracked(), 0u);
  }
}

TEST(EveryPolicy, DuplicateInsertReplacesInsteadOfLeaking) {
  // Overwrite path: re-inserting a tracked key must not leave a dangling
  // second node that later surfaces as a duplicate victim.
  for (const PolicyKind kind : {PolicyKind::kLru, PolicyKind::kFifo,
                                PolicyKind::kS3Fifo, PolicyKind::kGdsf}) {
    auto policy = make_eviction_policy(kind);
    policy->on_insert("/a", 10);
    policy->on_insert("/b", 10);
    policy->on_insert("/a", 20);  // overwrite with a different size
    EXPECT_EQ(policy->tracked(), 2u) << policy_kind_name(kind);
    std::multiset<std::string> victims;
    while (auto victim = policy->pop_victim()) victims.insert(*victim);
    EXPECT_EQ(victims.count("/a"), 1u) << policy_kind_name(kind);
    EXPECT_EQ(victims.count("/b"), 1u) << policy_kind_name(kind);
  }
}

TEST(EveryPolicy, PopDrainsAllTrackedKeysExactlyOnce) {
  for (const PolicyKind kind : {PolicyKind::kLru, PolicyKind::kFifo,
                                PolicyKind::kS3Fifo, PolicyKind::kGdsf}) {
    auto policy = make_eviction_policy(kind);
    for (int i = 0; i < 50; ++i) policy->on_insert(key_of(i), 10);
    for (int i = 0; i < 50; i += 3) policy->on_hit(key_of(i));
    std::set<std::string> victims;
    while (auto victim = policy->pop_victim()) {
      EXPECT_TRUE(victims.insert(*victim).second)
          << policy_kind_name(kind) << " duplicated " << *victim;
    }
    EXPECT_EQ(victims.size(), 50u) << policy_kind_name(kind);
    EXPECT_EQ(policy->tracked(), 0u);
  }
}

TEST(S3Fifo, OneTouchEntriesDieBeforeReReferencedOnes) {
  auto policy = make_eviction_policy(PolicyKind::kS3Fifo);
  policy->on_insert("/hot", 10);
  policy->on_hit("/hot");  // proves reuse while probationary
  policy->on_insert("/scan1", 10);
  policy->on_insert("/scan2", 10);
  // Both one-touch scan keys must fall before the re-referenced key.
  const auto first = policy->pop_victim().value();
  const auto second = policy->pop_victim().value();
  EXPECT_TRUE(first == "/scan1" || first == "/scan2");
  EXPECT_TRUE(second == "/scan1" || second == "/scan2");
  EXPECT_EQ(policy->pop_victim().value(), "/hot");
}

TEST(S3Fifo, GhostQueueFastTracksReAdmission) {
  auto policy = make_eviction_policy(PolicyKind::kS3Fifo);
  policy->on_insert("/victim", 10);
  ASSERT_EQ(policy->pop_victim().value(), "/victim");  // remembered as ghost
  // Re-admission after a ghost hit enters main directly: a fresh
  // probationary key now evicts first.
  policy->on_insert("/victim", 10);
  policy->on_insert("/fresh", 10);
  EXPECT_EQ(policy->pop_victim().value(), "/fresh");
}

TEST(Gdsf, FrequentSmallEntriesOutliveBigOneTouch) {
  auto policy = make_eviction_policy(PolicyKind::kGdsf);
  policy->on_insert("/small-hot", 4 << 10);
  for (int i = 0; i < 4; ++i) policy->on_hit("/small-hot");
  policy->on_insert("/big-cold", 1 << 20);
  EXPECT_EQ(policy->pop_victim().value(), "/big-cold");
}

TEST(Gdsf, InflationAgesOutIdleFrequentEntries) {
  auto policy = make_eviction_policy(PolicyKind::kGdsf);
  policy->on_insert("/once-hot", 8 << 10);
  for (int i = 0; i < 3; ++i) policy->on_hit("/once-hot");
  // A long churn of one-touch keys raises the inflation floor past the
  // idle entry's priority: fresh keys eventually outrank it (plain LFU
  // would protect it forever).
  bool aged_out = false;
  for (int i = 0; i < 64 && !aged_out; ++i) {
    policy->on_insert(key_of(i), 8 << 10);
    const auto victim = policy->pop_victim();
    ASSERT_TRUE(victim.has_value());
    aged_out = (*victim == "/once-hot");
  }
  EXPECT_TRUE(aged_out);
}

// --------------------------------------------------------------------
// Scan-resistance regression.  A fixed-slot cache simulated directly on
// the policy: warm a hot set with repeated hits, then stream one
// sequential epoch of a dataset 4x the cache.  LRU must lose the entire
// hot set (every scan key displaces the oldest resident); S3-FIFO and
// GDSF must keep it (one-touch scan keys never displace proven-reuse
// entries).
std::size_t hot_survivors(PolicyKind kind, std::uint64_t scan_bytes) {
  constexpr int kSlots = 32;
  constexpr int kHot = 8;
  constexpr int kScan = kSlots * 4;
  auto policy = make_eviction_policy(kind);
  std::set<std::string> resident;

  const auto insert_full = [&](const std::string& key, std::uint64_t bytes) {
    while (resident.size() >= static_cast<std::size_t>(kSlots)) {
      const auto victim = policy->pop_victim();
      ASSERT_TRUE(victim.has_value());
      resident.erase(*victim);
    }
    policy->on_insert(key, bytes);
    resident.insert(key);
  };

  for (int i = 0; i < kHot; ++i) {
    insert_full("/hot/" + std::to_string(i), 1 << 10);
  }
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kHot; ++i) policy->on_hit("/hot/" + std::to_string(i));
  }
  for (int i = 0; i < kScan; ++i) {
    insert_full("/scan/" + std::to_string(i), scan_bytes);
  }

  std::size_t survivors = 0;
  for (int i = 0; i < kHot; ++i) {
    survivors += resident.count("/hot/" + std::to_string(i));
  }
  return survivors;
}

TEST(ScanResistance, SequentialEpochFlushesLruButNotS3Fifo) {
  // Same-size scan: pure recency (LRU) loses everything, reuse-aware
  // admission (S3-FIFO) loses nothing.
  EXPECT_EQ(hot_survivors(PolicyKind::kLru, 1 << 10), 0u);
  EXPECT_EQ(hot_survivors(PolicyKind::kS3Fifo, 1 << 10), 8u);
}

TEST(ScanResistance, GdsfProtectsHotSetAgainstLargeScanObjects) {
  // GDSF's scan resistance is SIZE-aware: each evicted scan object only
  // raises the inflation floor by freq/size, so a stream of large
  // one-touch objects (checkpoint shards, raw media) cannot outbid the
  // small frequent hot set.  A uniform-size scan, by contrast, ratchets
  // inflation by 1 per eviction and legitimately ages the hot set out —
  // that aging is the mechanism InflationAgesOutIdleFrequentEntries
  // asserts, so GDSF is exercised here with the workload its heuristic
  // is built for.
  EXPECT_EQ(hot_survivors(PolicyKind::kGdsf, 1 << 20), 8u);
  EXPECT_EQ(hot_survivors(PolicyKind::kLru, 1 << 20), 0u);
}

}  // namespace
}  // namespace ftc::store
