#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "storage/sharded_cache_store.hpp"

namespace ftc::storage {
namespace {

std::string path_of(int i) { return "/s/file_" + std::to_string(i); }

TEST(ShardedCacheStore, PutGetRoundTripIsZeroCopy) {
  ShardedCacheStore cache(1 << 20);
  common::Buffer contents(std::string(256, 'x'));
  ASSERT_TRUE(cache.put("/a", contents, contents.size()).is_ok());
  auto got = cache.get("/a");
  ASSERT_TRUE(got.is_ok());
  // The returned buffer references the stored bytes — no copy was made.
  EXPECT_TRUE(got.value().shares_storage(contents));
  EXPECT_EQ(cache.used_bytes(), 256u);
  EXPECT_EQ(cache.file_count(), 1u);
  EXPECT_EQ(cache.hit_count(), 1u);
}

TEST(ShardedCacheStore, MissCounted) {
  ShardedCacheStore cache(1 << 20);
  EXPECT_EQ(cache.get("/none").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cache.miss_count(), 1u);
}

TEST(ShardedCacheStore, GlobalCapacitySharedAcrossShards) {
  // Capacity fits 3 files of 30 bytes; a 4th insert must evict, no matter
  // which shards the paths hash to.
  ShardedCacheStore cache(100, EvictionPolicy::kLru, 4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        cache.put(path_of(i), std::string(30, 'a'), 30).is_ok());
    EXPECT_LE(cache.used_bytes(), 100u);
  }
  EXPECT_EQ(cache.file_count(), 3u);
  EXPECT_EQ(cache.eviction_count(), 1u);
}

TEST(ShardedCacheStore, AnyFileUpToCapacityFits) {
  // Single-store semantics preserved: one file of exactly the global
  // capacity is admitted (evicting everything else), regardless of shard.
  ShardedCacheStore cache(100, EvictionPolicy::kLru, 8);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cache.put(path_of(i), std::string(30, 'b'), 30).is_ok());
  }
  ASSERT_TRUE(
      cache.put("/big", std::string(100, 'B'), 100).is_ok());
  EXPECT_EQ(cache.used_bytes(), 100u);
  EXPECT_TRUE(cache.contains("/big"));
}

TEST(ShardedCacheStore, FileLargerThanCapacityRejected) {
  ShardedCacheStore cache(100);
  EXPECT_EQ(cache.put("/huge", std::string(101, 'h'), 101).code(),
            StatusCode::kCapacity);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(ShardedCacheStore, ReplaceInPlaceAccounting) {
  ShardedCacheStore cache(1 << 20);
  ASSERT_TRUE(cache.put("/a", std::string(100, 'x'), 100).is_ok());
  ASSERT_TRUE(cache.put("/a", std::string(40, 'y'), 40).is_ok());
  EXPECT_EQ(cache.used_bytes(), 40u);
  EXPECT_EQ(cache.file_count(), 1u);
}

TEST(ShardedCacheStore, EraseAndClearAccounting) {
  ShardedCacheStore cache(1 << 20);
  ASSERT_TRUE(cache.put("/a", std::string(64, 'a'), 64).is_ok());
  ASSERT_TRUE(cache.put("/b", std::string(32, 'b'), 32).is_ok());
  EXPECT_TRUE(cache.erase("/a"));
  EXPECT_FALSE(cache.erase("/a"));
  EXPECT_EQ(cache.used_bytes(), 32u);
  cache.clear();
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.file_count(), 0u);
}

TEST(ShardedCacheStore, ShardForIsStable) {
  ShardedCacheStore cache(1 << 20, EvictionPolicy::kLru, 8);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(cache.shard_for(path_of(i)), cache.shard_for(path_of(i)));
    EXPECT_LT(cache.shard_for(path_of(i)), cache.shard_count());
  }
}

// The core invariant the lock-striped design must preserve under races:
// the global byte counter equals the sum of the entries actually stored,
// and the budget holds, after any interleaving of puts/erases.
TEST(ShardedCacheStore, ConcurrentMixedOpsKeepAccountingExact) {
  constexpr int kThreads = 4;
  constexpr int kUniverse = 64;
  constexpr std::uint64_t kCapacity = 20 * 64;  // forces steady eviction
  ShardedCacheStore cache(kCapacity, EvictionPolicy::kLru, 8);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 400; ++i) {
        const int id = (t * 131 + i * 7) % kUniverse;
        switch (i % 4) {
          case 0:
          case 1:
            (void)cache.put(path_of(id), std::string(64, 'z'), 64);
            break;
          case 2:
            (void)cache.get(path_of(id));
            break;
          case 3:
            (void)cache.erase(path_of(id));
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::uint64_t sum = 0;
  std::size_t present = 0;
  for (int i = 0; i < kUniverse; ++i) {
    if (const auto size = cache.size_of(path_of(i))) {
      sum += *size;
      ++present;
    }
  }
  EXPECT_EQ(cache.used_bytes(), sum);
  EXPECT_EQ(cache.file_count(), present);
  EXPECT_LE(cache.used_bytes(), kCapacity);
}

// Regression for the peer-eviction sweep.  The old evict_from_peers
// advanced the shared hand once per PROBE, so concurrent stealers
// interleaving on the counter could each land exclusively on empty
// shards (with an even shard count, two threads alternate onto one
// parity class) and report spurious kCapacity while evictable bytes sat
// in other shards.  With 32 shards holding 10 small files, every one of
// these 200 concurrent over-budget puts must succeed: each sweep now
// visits all peers from a snapshot of the hand with a local cursor.
TEST(ShardedCacheStore, ConcurrentPeerStealNeverSpuriouslyFails) {
  constexpr std::uint64_t kCapacity = 300;
  ShardedCacheStore cache(kCapacity, EvictionPolicy::kLru, 32);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache.put(path_of(i), std::string(30, 's'), 30).is_ok());
  }

  constexpr int kThreads = 4;
  constexpr int kPutsPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failures, t] {
      for (int i = 0; i < kPutsPerThread; ++i) {
        const std::string path =
            "/steal/" + std::to_string(t) + "/" + std::to_string(i);
        if (!cache.put(path, std::string(30, 'p'), 30).is_ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.used_bytes(), kCapacity);
  // Accounting stayed exact through the cross-shard eviction storm.
  std::uint64_t sum = 0;
  for (int i = 0; i < 10; ++i) {
    if (const auto size = cache.size_of(path_of(i))) sum += *size;
  }
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPutsPerThread; ++i) {
      const std::string path =
          "/steal/" + std::to_string(t) + "/" + std::to_string(i);
      if (const auto size = cache.size_of(path)) sum += *size;
    }
  }
  EXPECT_EQ(cache.used_bytes(), sum);
}

}  // namespace
}  // namespace ftc::storage
