// End-to-end data-integrity and coverage-gap tests: wire corruption,
// checksum bypass, capacity rejections, endpoint lifecycle.
#include <gtest/gtest.h>

#include <chrono>

#include "cluster/cluster.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig small_cluster(bool verify = true) {
  ClusterConfig config;
  config.node_count = 4;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 100ms;
  config.client.verify_checksums = verify;
  config.server.async_data_mover = false;
  return config;
}

TEST(Integrity, CorruptedPayloadDetectedByCrc) {
  Cluster cluster(small_cluster(/*verify=*/true));
  const auto paths = cluster.stage_dataset(20, 128);
  cluster.warm_caches(paths);
  const NodeId owner = cluster.client(0).current_owner(paths[0]);
  cluster.transport().corrupt_next(owner, 1);
  auto result = cluster.client(0).read_file(paths[0]);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(cluster.client(0).stats_snapshot().checksum_failures, 1u);
  // The corruption was transient: the next read is clean.
  EXPECT_TRUE(cluster.client(0).read_file(paths[0]).is_ok());
}

TEST(Integrity, ChecksumBypassAcceptsCorruption) {
  Cluster cluster(small_cluster(/*verify=*/false));
  const auto paths = cluster.stage_dataset(20, 128);
  cluster.warm_caches(paths);
  const NodeId owner = cluster.client(0).current_owner(paths[0]);
  cluster.transport().corrupt_next(owner, 1);
  // Without verification the corrupted payload sails through — the reason
  // the client verifies by default.
  auto result = cluster.client(0).read_file(paths[0]);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(cluster.client(0).stats_snapshot().checksum_failures, 0u);
}

TEST(Integrity, ServerKPutRejectsOverCapacity) {
  PfsStore pfs;
  HvacServerConfig config;
  config.async_data_mover = false;
  config.cache_capacity_bytes = 16;
  HvacServer server(0, pfs, config);
  rpc::RpcRequest put;
  put.op = rpc::Op::kPut;
  put.path = "/big";
  put.payload = std::string(64, 'x');
  EXPECT_EQ(server.handle(put).code, StatusCode::kCapacity);
  EXPECT_FALSE(server.has_cached("/big"));

  put.path = "/small";
  put.payload = "ok";
  EXPECT_EQ(server.handle(put).code, StatusCode::kOk);
  EXPECT_TRUE(server.has_cached("/small"));
  EXPECT_EQ(server.stats_snapshot().replicas_stored, 1u);
}

TEST(Integrity, EndpointReRegisterAfterUnregister) {
  rpc::Transport transport;
  int generation = 0;
  ASSERT_TRUE(transport
                  .register_endpoint(0,
                                     [&generation](const rpc::RpcRequest&) {
                                       rpc::RpcResponse response;
                                       response.payload =
                                           std::to_string(generation);
                                       return response;
                                     })
                  .is_ok());
  generation = 1;
  ASSERT_TRUE(transport.unregister_endpoint(0).is_ok());
  ASSERT_TRUE(transport
                  .register_endpoint(0,
                                     [](const rpc::RpcRequest&) {
                                       rpc::RpcResponse response;
                                       response.payload = "fresh";
                                       return response;
                                     })
                  .is_ok());
  auto result = transport.call(0, rpc::RpcRequest{}, 500ms);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().payload, "fresh");
}

TEST(Integrity, CorruptNextOnUnknownEndpointIsNoop) {
  rpc::Transport transport;
  transport.corrupt_next(42, 3);  // must not crash
  SUCCEED();
}

TEST(Integrity, WarmCacheSurvivesManyReaders) {
  Cluster cluster(small_cluster());
  const auto paths = cluster.stage_dataset(30, 64);
  cluster.warm_caches(paths);
  const auto pfs_reads = cluster.pfs().read_count();
  // Every client reads every file: all served from NVMe, byte-identical.
  for (NodeId c = 0; c < cluster.node_count(); ++c) {
    for (const auto& path : paths) {
      auto result = cluster.client(c).read_file(path);
      ASSERT_TRUE(result.is_ok());
      ASSERT_EQ(result.value().size(), 64u);
    }
  }
  EXPECT_EQ(cluster.pfs().read_count(), pfs_reads);
}

}  // namespace
}  // namespace ftc::cluster
