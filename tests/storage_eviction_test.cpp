// Eviction-policy behaviour: LRU vs FIFO vs CLOCK under capacity pressure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "storage/cache_store.hpp"

namespace ftc::storage {
namespace {

std::string key(int i) { return "/f" + std::to_string(i); }

void fill(CacheStore& cache, int count, std::uint64_t size = 10) {
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(cache.put(key(i), std::string(size, 'x'), size).is_ok());
  }
}

TEST(EvictionPolicyName, Names) {
  EXPECT_STREQ(eviction_policy_name(EvictionPolicy::kLru), "LRU");
  EXPECT_STREQ(eviction_policy_name(EvictionPolicy::kFifo), "FIFO");
  EXPECT_STREQ(eviction_policy_name(EvictionPolicy::kClock), "CLOCK");
}

TEST(FifoEviction, ReadDoesNotRescue) {
  CacheStore cache(30, EvictionPolicy::kFifo);
  fill(cache, 3);
  // Touch /f0 heavily; FIFO evicts it anyway (oldest insertion).
  for (int i = 0; i < 5; ++i) (void)cache.get(key(0));
  cache.put(key(3), std::string(10, 'x'), 10);
  EXPECT_FALSE(cache.contains(key(0)));
  EXPECT_TRUE(cache.contains(key(1)));
}

TEST(LruEviction, ReadRescues) {
  CacheStore cache(30, EvictionPolicy::kLru);
  fill(cache, 3);
  (void)cache.get(key(0));
  cache.put(key(3), std::string(10, 'x'), 10);
  EXPECT_TRUE(cache.contains(key(0)));
  EXPECT_FALSE(cache.contains(key(1)));
}

TEST(ClockEviction, ReferencedGetsSecondChance) {
  CacheStore cache(30, EvictionPolicy::kClock);
  fill(cache, 3);  // order oldest->newest: f0, f1, f2
  (void)cache.get(key(0));  // sets f0's reference bit
  cache.put(key(3), std::string(10, 'x'), 10);
  // The hand reaches f0 first but its bit is set -> second chance; f1 is
  // the victim.
  EXPECT_TRUE(cache.contains(key(0)));
  EXPECT_FALSE(cache.contains(key(1)));
  EXPECT_TRUE(cache.contains(key(2)));
}

TEST(ClockEviction, AllReferencedStillEvicts) {
  CacheStore cache(30, EvictionPolicy::kClock);
  fill(cache, 3);
  for (int i = 0; i < 3; ++i) (void)cache.get(key(i));  // all bits set
  cache.put(key(3), std::string(10, 'x'), 10);
  EXPECT_EQ(cache.file_count(), 3u);  // exactly one was evicted
  EXPECT_EQ(cache.eviction_count(), 1u);
  EXPECT_TRUE(cache.contains(key(3)));
}

TEST(EvictionPolicies, ConservationUnderChurn) {
  for (const auto policy : {EvictionPolicy::kLru, EvictionPolicy::kFifo,
                            EvictionPolicy::kClock}) {
    CacheStore cache(1000, policy);
    Rng rng(7);
    for (int round = 0; round < 2000; ++round) {
      const int i = static_cast<int>(rng.below(200));
      if (rng.chance(0.5)) {
        const std::uint64_t size = 10 + rng.below(40);
        (void)cache.put(key(i), std::string(size, 'y'), size);
      } else {
        (void)cache.get(key(i));
      }
      ASSERT_LE(cache.used_bytes(), 1000u) << eviction_policy_name(policy);
    }
    EXPECT_GT(cache.eviction_count(), 0u);
  }
}

TEST(EvictionPolicies, LruBeatsFifoOnSkewedAccess) {
  // 80/20 hot-set workload under pressure: LRU's recency tracking must
  // yield at least as good a hit rate as FIFO's insertion order.
  auto run = [](EvictionPolicy policy) {
    CacheStore cache(400, policy);
    Rng rng(99);
    for (int op = 0; op < 20000; ++op) {
      const bool hot = rng.chance(0.8);
      const int i = hot ? static_cast<int>(rng.below(20))
                        : 20 + static_cast<int>(rng.below(200));
      if (!cache.get(key(i)).is_ok()) {
        (void)cache.put(key(i), std::string(10, 'z'), 10);
      }
    }
    return cache.hit_rate();
  };
  EXPECT_GE(run(EvictionPolicy::kLru) + 1e-9, run(EvictionPolicy::kFifo));
}

}  // namespace
}  // namespace ftc::storage
