// Warm failover: proactive ring-successor replication (warm_standby).
// Every authoritative fill is write-behind replicated to the next ring
// successor, generation-stamped; a node death is then served from standby
// NVMe with zero PFS traffic, and a ring-epoch change lazily re-targets
// the standbys through the reads that follow it.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig warm_config(std::uint32_t nodes = 4) {
  ClusterConfig config;
  config.node_count = nodes;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 50ms;
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.client.replication.factor = 2;
  config.client.replication.warm_standby = true;
  config.server.async_data_mover = false;
  config.server.cache_capacity_bytes = 64 << 20;
  return config;
}

/// Reads every path through `client`, then flushes the write-behind puts
/// and folds their mailbox verdicts into the client's stats (ping drains
/// the mailbox at the top of the call).
void read_all_and_settle(Cluster& cluster, NodeId client,
                         const std::vector<std::string>& paths) {
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(client).read_file(path).is_ok()) << path;
  }
  cluster.transport().drain_async();
  (void)cluster.client(client).ping(client);
}

/// Live nodes currently caching `path`.
std::size_t live_holders(Cluster& cluster, const std::string& path) {
  std::size_t holders = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (cluster.node_is_failed(n)) continue;
    if (cluster.server(n).has_cached(path)) ++holders;
  }
  return holders;
}

TEST(WarmFailover, StandbysPopulateRingSuccessorsOnFill) {
  Cluster cluster(warm_config());
  const auto paths = cluster.stage_dataset(24, 64);
  read_all_and_settle(cluster, 0, paths);

  // Every file on primary + one standby, all placed write-behind.
  EXPECT_EQ(cluster.total_cached_files(), 2 * paths.size());
  for (const auto& path : paths) {
    EXPECT_EQ(live_holders(cluster, path), 2u) << path;
  }

  std::uint64_t warm_stored = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    warm_stored += cluster.server(n).stats_snapshot().warm_replicas_stored;
  }
  EXPECT_EQ(warm_stored, paths.size());

  const auto stats = cluster.client(0).stats_snapshot();
  EXPECT_EQ(stats.warm_pushes, paths.size());
  EXPECT_EQ(stats.warm_restores, 0u);
  // Warm puts fold into the one replicas_pushed total, as ever.
  EXPECT_EQ(stats.replicas_pushed, paths.size());
}

TEST(WarmFailover, StandbyPushIsOncePerGenerationNotPerRead) {
  Cluster cluster(warm_config());
  const auto paths = cluster.stage_dataset(8, 64);
  read_all_and_settle(cluster, 0, paths);
  const auto pushed_once = cluster.client(0).stats_snapshot().warm_pushes;
  // Re-reading the same files (cache hits now) must not re-push: the
  // standbys are already stamped with the current generation.
  read_all_and_settle(cluster, 0, paths);
  EXPECT_EQ(cluster.client(0).stats_snapshot().warm_pushes, pushed_once);
}

TEST(WarmFailover, DegradedReadsFromStandbyNeedZeroPfs) {
  Cluster cluster(warm_config());
  const auto paths = cluster.stage_dataset(32, 64);
  read_all_and_settle(cluster, 0, paths);
  const auto pfs_before = cluster.pfs().read_count();

  cluster.fail_node(2);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
  // The headline property: the clockwise successor — the node every lost
  // key fails over to — already held the standby, so the storm touched
  // the PFS zero times.
  EXPECT_EQ(cluster.pfs().read_count(), pfs_before);
  cluster.transport().drain_async();
}

TEST(WarmFailover, BackgroundRestoreReachievesFactorAfterKill) {
  Cluster cluster(warm_config());
  const auto paths = cluster.stage_dataset(24, 64);
  read_all_and_settle(cluster, 0, paths);

  cluster.fail_node(1);
  // The kill moves the ring (generation bump), so the reads that follow
  // re-target every file's standbys against the surviving ring.  A few
  // rounds let pushes deferred at the restore_concurrency cap retry.
  for (int round = 0; round < 3; ++round) {
    read_all_and_settle(cluster, 0, paths);
  }

  for (const auto& path : paths) {
    EXPECT_GE(live_holders(cluster, path), 2u) << path;
  }
  const auto stats = cluster.client(0).stats_snapshot();
  EXPECT_GT(stats.warm_invalidations, 0u);
  EXPECT_GT(stats.warm_restores, 0u);
}

TEST(WarmFailover, ElasticAddInvalidatesAndRetargetsStandbys) {
  Cluster cluster(warm_config(3));
  const auto paths = cluster.stage_dataset(24, 64);
  read_all_and_settle(cluster, 0, paths);
  ASSERT_EQ(cluster.client(0).stats_snapshot().warm_invalidations, 0u);

  // Scale-up moves ~1/(N+1) of the keyspace: the standbys derived from
  // the 3-node ring are stale, and the reads that follow repair them.
  cluster.add_node();
  for (int round = 0; round < 3; ++round) {
    read_all_and_settle(cluster, 0, paths);
  }
  const auto stats = cluster.client(0).stats_snapshot();
  EXPECT_GT(stats.warm_invalidations, 0u);
  EXPECT_GT(stats.warm_restores, 0u);
  for (const auto& path : paths) {
    EXPECT_GE(live_holders(cluster, path), 2u) << path;
  }
}

TEST(WarmFailover, RejoinAfterReinstatementRetargetsStandbys) {
  Cluster cluster(warm_config());
  const auto paths = cluster.stage_dataset(24, 64);
  read_all_and_settle(cluster, 0, paths);

  const NodeId victim = 1;
  cluster.fail_node(victim);
  read_all_and_settle(cluster, 0, paths);  // degrade + restore round
  const auto restores_after_kill =
      cluster.client(0).stats_snapshot().warm_restores;
  EXPECT_GT(restores_after_kill, 0u);

  // The node returns with its NVMe wiped; reinstatement (probe -> elastic
  // re-add) is another ring-epoch bump, so standbys re-target again.
  cluster.restore_node(victim, /*lose_cache=*/true);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (cluster.client(0).stats_snapshot().nodes_reinstated == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    (void)cluster.client(0).read_file(paths[0]);
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_GE(cluster.client(0).stats_snapshot().nodes_reinstated, 1u);

  for (int round = 0; round < 3; ++round) {
    read_all_and_settle(cluster, 0, paths);
  }
  EXPECT_GT(cluster.client(0).stats_snapshot().warm_restores,
            restores_after_kill);
  for (const auto& path : paths) {
    EXPECT_GE(live_holders(cluster, path), 2u) << path;
  }
}

TEST(WarmFailover, StaleGenerationPutIsRejectedByServer) {
  // Server-level freshness rule, exercised directly: a stamped put can
  // never roll a standby back to an older generation.
  PfsStore pfs;
  HvacServerConfig config;
  config.async_data_mover = false;
  HvacServer server(0, pfs, config);

  const common::Buffer fresh("fresh bytes");
  const common::Buffer stale("stale bytes");
  rpc::RpcRequest put;
  put.op = rpc::Op::kPut;
  put.path = "f";
  put.payload = fresh;
  put.replica_generation = 3;
  EXPECT_EQ(server.handle(put).code, StatusCode::kOk);

  put.payload = stale;
  put.replica_generation = 2;
  EXPECT_EQ(server.handle(put).code, StatusCode::kCancelled);
  EXPECT_EQ(server.stats_snapshot().stale_replica_puts, 1u);

  // Equal generation re-stores (a push retried after a shed must land).
  put.payload = fresh;
  put.replica_generation = 3;
  EXPECT_EQ(server.handle(put).code, StatusCode::kOk);

  // Unstamped legacy puts never consult the ledger.
  put.replica_generation = 0;
  EXPECT_EQ(server.handle(put).code, StatusCode::kOk);

  EXPECT_EQ(server.stats_snapshot().warm_replicas_stored, 2u);
  EXPECT_EQ(server.stats_snapshot().replicas_stored, 3u);

  // A wiped cache forgets the ledger too: a rejoined node must accept
  // the very standbys that repopulate it, whatever their stamp.
  server.clear_cache();
  put.replica_generation = 1;
  EXPECT_EQ(server.handle(put).code, StatusCode::kOk);
}

TEST(WarmFailover, HotFanoutAndWarmStandbyDedupeSharedSuccessor) {
  // Regression for the overlap bug: the hot fanout and the warm standby
  // walk the same successor chain, so on a promoted file's fill the
  // shared successor must receive exactly ONE put (generation-stamped),
  // never two generations of the same replica.
  ClusterConfig config = warm_config();
  config.client.hot_fanout = true;
  config.client.hot_replica_fanout = 2;
  config.client.hot_promote_threshold = 0.5;  // first access promotes
  config.client.hot_demote_threshold = 0.0;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(1, 64);

  // One read: promotion fires, the fill fires, the warm standby fires —
  // three policies, one merged put to the single successor.
  ASSERT_TRUE(cluster.client(0).read_file(paths[0]).is_ok());
  cluster.transport().drain_async();
  (void)cluster.client(0).ping(0);

  std::uint64_t stored = 0;
  std::uint64_t warm_stored = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    const auto s = cluster.server(n).stats_snapshot();
    stored += s.replicas_stored;
    warm_stored += s.warm_replicas_stored;
  }
  EXPECT_EQ(stored, 1u);       // deduped: one put, not one per policy
  EXPECT_EQ(warm_stored, 1u);  // and it carried the warm stamp
  EXPECT_EQ(cluster.client(0).stats_snapshot().replicas_pushed, 1u);
  EXPECT_TRUE(cluster.client(0).file_is_hot(paths[0]));
}

TEST(WarmFailover, WarmStandbyRequiresRingMode) {
  ClusterConfig config = warm_config();
  config.client.mode = FtMode::kPfsRedirect;
  EXPECT_EQ(config.client.validate().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ftc::cluster
