// Transient-slowdown scenarios: the TTL / false-positive trade-off of
// Sec IV-A, reproduced on the DES substrate.
#include <gtest/gtest.h>

#include "destim/experiment.hpp"

namespace ftc::destim {
namespace {

using cluster::FtMode;

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.node_count = 8;
  config.mode = FtMode::kHashRingRecache;
  config.file_count = 256;
  config.file_bytes = 2ULL << 20;
  config.samples_per_file = 2;
  config.epochs = 3;
  config.files_per_step_per_node = 4;
  config.compute_time_per_step = 10 * simtime::kMillisecond;
  config.pfs.access_latency = 5 * simtime::kMillisecond;
  config.pfs.access_latency_tail_mean = 0;
  config.rpc_timeout = 20 * simtime::kMillisecond;
  config.timeout_limit = 3;
  config.elastic_restart_overhead = 50 * simtime::kMillisecond;
  return config;
}

ExperimentConfig::TransientSlowdown slow(std::uint32_t node, double start_s,
                                         double duration_s, double extra_ms) {
  ExperimentConfig::TransientSlowdown s;
  s.node = node;
  s.start = simtime::from_seconds(start_s);
  s.duration = simtime::from_seconds(duration_s);
  s.extra_latency = simtime::from_ms(extra_ms);
  return s;
}

TEST(Slowdown, SubDeadlineSlowdownIsInvisible) {
  auto config = base_config();
  // 5 ms extra < 20 ms deadline: no timeouts at all, just a slower run.
  config.slowdowns.push_back(slow(3, 0.0, 1e6, 5.0));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.total_timeouts, 0u);
  EXPECT_EQ(result.falsely_flagged_nodes, 0u);

  auto clean = base_config();
  const auto baseline = run_experiment(clean);
  EXPECT_GT(result.total_time, baseline.total_time);
}

TEST(Slowdown, BriefOverDeadlineBlipSuppressedByThreshold) {
  auto config = base_config();
  // One very short over-deadline window: clients observe at most a couple
  // of timeouts and the counter (limit 3) resets on the next success.
  config.slowdowns.push_back(slow(3, 0.0, 0.012, 50.0));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GT(result.total_false_timeouts, 0u);
  EXPECT_EQ(result.falsely_flagged_nodes, 0u)
      << "threshold must absorb a transient blip";
}

TEST(Slowdown, SustainedOverDeadlineSlownessGetsFlagged) {
  auto config = base_config();
  // Long over-deadline window: clients exhaust the threshold and condemn
  // a perfectly alive node.
  config.slowdowns.push_back(slow(3, 0.0, 1e6, 50.0));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GT(result.falsely_flagged_nodes, 0u);
  // The false positive costs gratuitous PFS traffic: node 3's share is
  // re-fetched even though its NVMe is intact.
  EXPECT_GT(result.total_pfs_reads, 256u);
}

TEST(Slowdown, GenerousTtlAvoidsFalsePositive) {
  auto config = base_config();
  config.rpc_timeout = 100 * simtime::kMillisecond;  // > any latency
  config.slowdowns.push_back(slow(3, 0.0, 1e6, 50.0));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.total_timeouts, 0u);
  EXPECT_EQ(result.falsely_flagged_nodes, 0u);
  EXPECT_EQ(result.total_pfs_reads, 256u);  // warm-up only
}

TEST(Slowdown, NoFtDiesOnSustainedSlowness) {
  auto config = base_config();
  config.mode = FtMode::kNone;
  config.slowdowns.push_back(slow(3, 0.0, 1e6, 50.0));
  const auto result = run_experiment(config);
  // Without FT, the first over-deadline request is fatal — slowness and
  // death are indistinguishable to the baseline.
  EXPECT_FALSE(result.completed);
}

TEST(Slowdown, PfsRedirectAlsoToleratesSlowness) {
  auto config = base_config();
  config.mode = FtMode::kPfsRedirect;
  config.slowdowns.push_back(slow(3, 0.0, 1e6, 50.0));
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GT(result.total_false_timeouts, 0u);
}

TEST(Slowdown, WindowOutsideRunHasNoEffect) {
  auto config = base_config();
  config.slowdowns.push_back(slow(3, 9.9e5, 10.0, 50.0));  // far future
  const auto with = run_experiment(config);
  const auto without = run_experiment(base_config());
  EXPECT_EQ(with.total_time, without.total_time);
  EXPECT_EQ(with.total_timeouts, 0u);
}

}  // namespace
}  // namespace ftc::destim
