// Partition-grade transport faults: per-link sender blocking, message
// duplication, and bounded reordering.  These are the primitives the
// GrayFailureInjector composes into split-brain schedules; the contracts
// verified here are what the membership and fencing layers lean on —
// blocked links look exactly like timeouts, duplicates reach the handler
// but never the caller twice, reordering is bounded and loss-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rpc/transport.hpp"

namespace ftc::rpc {
namespace {

using namespace std::chrono_literals;

RpcResponse echo_handler(const RpcRequest& request) {
  RpcResponse response;
  response.code = StatusCode::kOk;
  response.payload = "echo:" + request.path;
  return response;
}

TEST(TransportPartition, BlockedSenderTimesOutAndIsCounted) {
  Transport transport;
  ASSERT_TRUE(transport.register_endpoint(0, echo_handler).is_ok());
  transport.set_blocked_senders(0, {1});
  EXPECT_TRUE(transport.is_sender_blocked(0, 1));
  EXPECT_FALSE(transport.is_sender_blocked(0, 2));

  RpcRequest from_blocked;
  from_blocked.client_node = 1;
  auto result = transport.call(0, from_blocked, 50ms);
  ASSERT_FALSE(result.is_ok());
  // A cut link is indistinguishable from a dead peer: pure timeout.
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(transport.stats(0).partition_dropped, 1u);

  // The endpoint itself is alive: an unblocked sender sails through.
  RpcRequest from_open;
  from_open.client_node = 2;
  from_open.path = "/ok";
  EXPECT_TRUE(transport.call(0, from_open, 1000ms).is_ok());

  // Healing = empty block set.
  transport.set_blocked_senders(0, {});
  EXPECT_FALSE(transport.is_sender_blocked(0, 1));
  EXPECT_TRUE(transport.call(0, from_blocked, 1000ms).is_ok());
}

TEST(TransportPartition, BlockingIsDirectional) {
  Transport transport;
  ASSERT_TRUE(transport.register_endpoint(0, echo_handler).is_ok());
  ASSERT_TRUE(transport.register_endpoint(1, echo_handler).is_ok());
  // Cut 1 -> 0 only (the asymmetric partition): 0 -> 1 still works.
  transport.set_blocked_senders(0, {1});
  RpcRequest from_zero;
  from_zero.client_node = 0;
  EXPECT_TRUE(transport.call(1, from_zero, 1000ms).is_ok());
  RpcRequest from_one;
  from_one.client_node = 1;
  EXPECT_EQ(transport.call(0, from_one, 50ms).status().code(),
            StatusCode::kTimeout);
}

TEST(TransportPartition, DuplicateDeliversHandlerTwiceCallerOnce) {
  std::atomic<int> handled{0};
  Transport transport;
  ASSERT_TRUE(transport
                  .register_endpoint(0,
                                     [&](const RpcRequest& request) {
                                       handled.fetch_add(1);
                                       return echo_handler(request);
                                     })
                  .is_ok());
  transport.set_duplicate_probability(0, 1.0, /*seed=*/7);
  RpcRequest request;
  request.path = "/dup";
  auto result = transport.call(0, request, 1000ms);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().payload, "echo:/dup");
  // At-least-once fabric: the handler ran twice, the caller saw one
  // response (the duplicate's answer goes nowhere).  The clone is served
  // by the endpoint worker AFTER our own call resolves, so wait for it.
  const auto deadline = std::chrono::steady_clock::now() + 2000ms;
  while (handled.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(handled.load(), 2);
  EXPECT_EQ(transport.stats(0).duplicated, 1u);

  // p = 0 restores exactly-once (the duplicate above has already been
  // handled, so nothing stray can leak into this count).
  transport.set_duplicate_probability(0, 0.0);
  handled.store(0);
  ASSERT_TRUE(transport.call(0, request, 1000ms).is_ok());
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(handled.load(), 1);
}

TEST(TransportPartition, ReorderIsLossFreeAndExactlyOnce) {
  std::mutex order_mutex;
  std::vector<std::string> handled_order;
  Transport transport;
  // A slow handler keeps the ingress queue populated so insertion-time
  // reordering actually has arrivals to overtake.
  ASSERT_TRUE(transport
                  .register_endpoint(0,
                                     [&](const RpcRequest& request) {
                                       {
                                         std::lock_guard<std::mutex> lock(
                                             order_mutex);
                                         handled_order.push_back(request.path);
                                       }
                                       std::this_thread::sleep_for(2ms);
                                       return echo_handler(request);
                                     })
                  .is_ok());
  transport.set_reorder(0, 1.0, /*max_displacement=*/2, /*seed=*/11);

  constexpr int kRequests = 24;
  std::atomic<int> completions{0};
  for (int i = 0; i < kRequests; ++i) {
    RpcRequest request;
    request.path = "/r" + std::to_string(i);
    transport.call_async(0, std::move(request), 5000ms,
                         [&](const StatusOr<RpcResponse>& result) {
                           EXPECT_TRUE(result.is_ok());
                           completions.fetch_add(1);
                         });
  }
  transport.drain_async();
  // Every caller got exactly its own answer back...
  EXPECT_EQ(completions.load(), kRequests);

  // ...and every request was handled exactly once: reordering shuffles the
  // queue, it must never lose or duplicate work.  (Scoped: the handler
  // locks order_mutex too, and the final call below must not deadlock.)
  {
    std::lock_guard<std::mutex> lock(order_mutex);
    ASSERT_EQ(handled_order.size(), static_cast<std::size_t>(kRequests));
    for (int i = 0; i < kRequests; ++i) {
      const std::string path = "/r" + std::to_string(i);
      EXPECT_EQ(
          std::count(handled_order.begin(), handled_order.end(), path), 1)
          << path;
    }
  }
  // The fault was actually exercised (queue depth > 1 is guaranteed by the
  // slow handler and 24 concurrent submissions).
  EXPECT_GT(transport.stats(0).reordered, 0u);

  // p = 0 restores FIFO; service still works.
  transport.set_reorder(0, 0.0, 1);
  RpcRequest request;
  request.path = "/after";
  EXPECT_TRUE(transport.call(0, request, 2000ms).is_ok());
}

}  // namespace
}  // namespace ftc::rpc
