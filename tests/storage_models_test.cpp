#include <gtest/gtest.h>

#include "storage/file_catalog.hpp"
#include "storage/nvme_model.hpp"
#include "storage/pfs_model.hpp"

namespace ftc::storage {
namespace {

TEST(FileCatalog, AddAndLookup) {
  FileCatalog catalog;
  const FileId a = catalog.add_file("/x/a", 100);
  const FileId b = catalog.add_file("/x/b", 200);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(catalog.file_count(), 2u);
  EXPECT_EQ(catalog.total_bytes(), 300u);
  EXPECT_DOUBLE_EQ(catalog.mean_file_bytes(), 150.0);
  FileId found;
  ASSERT_TRUE(catalog.find("/x/b", found));
  EXPECT_EQ(found, b);
  EXPECT_FALSE(catalog.find("/x/nope", found));
  EXPECT_EQ(catalog.file(a).path, "/x/a");
}

TEST(FileCatalog, EmptyMeanIsZero) {
  FileCatalog catalog;
  EXPECT_DOUBLE_EQ(catalog.mean_file_bytes(), 0.0);
}

TEST(CosmoflowCatalog, ShapeMatchesParams) {
  CosmoflowCatalogParams params;
  params.file_count = 512;
  params.mean_file_bytes = 4ULL << 20;
  params.size_sigma = 0.25;
  const FileCatalog catalog = make_cosmoflow_like_catalog(params);
  EXPECT_EQ(catalog.file_count(), 512u);
  // Mean within 10% of target (lognormal sampling noise).
  EXPECT_NEAR(catalog.mean_file_bytes(), 4.0 * (1 << 20),
              0.1 * 4.0 * (1 << 20));
  // Paths are unique and well-formed.
  FileId id;
  EXPECT_TRUE(catalog.find(
      "/lustre/orion/cosmoUniverse/file_0000000.tfrecord", id));
  EXPECT_TRUE(catalog.find(
      "/lustre/orion/cosmoUniverse/file_0000511.tfrecord", id));
}

TEST(CosmoflowCatalog, ZeroSigmaUniformSizes) {
  CosmoflowCatalogParams params;
  params.file_count = 10;
  params.mean_file_bytes = 1024;
  params.size_sigma = 0.0;
  const FileCatalog catalog = make_cosmoflow_like_catalog(params);
  for (const FileInfo& f : catalog.files()) {
    EXPECT_EQ(f.size_bytes, 1024u);
  }
}

TEST(CosmoflowCatalog, DeterministicForSeed) {
  CosmoflowCatalogParams params;
  params.file_count = 64;
  const FileCatalog a = make_cosmoflow_like_catalog(params);
  const FileCatalog b = make_cosmoflow_like_catalog(params);
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
}

TEST(NvmeModel, ReadTimeMatchesBandwidthPlusLatency) {
  sim::Simulator sim;
  NvmeConfig config;
  config.read_bytes_per_second = 8.0e9;
  config.op_latency = 80 * simtime::kMicrosecond;
  NvmeModel nvme(sim, config);
  SimTime done = -1;
  nvme.read(800'000'000ULL, [&] { done = sim.now(); });  // 0.1 s payload
  sim.run();
  EXPECT_NEAR(simtime::to_seconds(done), 0.1 + 80e-6, 1e-6);
  EXPECT_EQ(nvme.reads_completed(), 1u);
  EXPECT_EQ(nvme.bytes_read(), 800'000'000u);
}

TEST(NvmeModel, WriteSlowerThanRead) {
  sim::Simulator sim;
  NvmeConfig config;  // defaults: 8 GB/s read, 4 GB/s write
  NvmeModel nvme(sim, config);
  SimTime read_done = -1;
  SimTime write_done = -1;
  nvme.read(4'000'000'000ULL, [&] { read_done = sim.now(); });
  nvme.write(4'000'000'000ULL, [&] { write_done = sim.now(); });
  sim.run();
  EXPECT_LT(read_done, write_done);
  EXPECT_EQ(nvme.writes_completed(), 1u);
}

TEST(NvmeModel, ConcurrentReadsShareDevice) {
  sim::Simulator sim;
  NvmeConfig config;
  config.read_bytes_per_second = 1.0e9;
  config.op_latency = 0;
  NvmeModel nvme(sim, config);
  SimTime done = -1;
  nvme.read(500'000'000ULL, [] {});
  nvme.read(500'000'000ULL, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(simtime::to_seconds(done), 1.0, 1e-6);
}

TEST(PfsModel, SingleReadClientCapped) {
  sim::Simulator sim;
  PfsConfig config;
  config.read_bytes_per_second = 100.0e9;
  config.background_load_fraction = 0.0;
  config.per_client_bytes_per_second = 1.0e9;
  config.access_latency = 0;
  config.mds_service_time = 0;
  PfsModel pfs(sim, config);
  SimTime done = -1;
  pfs.read_file(1'000'000'000ULL, [&] { done = sim.now(); });
  sim.run();
  // Lone client: capped at 1 GB/s, not the 100 GB/s pool.
  EXPECT_NEAR(simtime::to_seconds(done), 1.0, 0.01);
}

TEST(PfsModel, BackgroundLoadReducesPool) {
  sim::Simulator sim;
  PfsConfig config;
  config.read_bytes_per_second = 10.0e9;
  config.background_load_fraction = 0.5;
  config.per_client_bytes_per_second = 0.0;  // uncapped flows
  config.access_latency = 0;
  config.mds_service_time = 0;
  PfsModel pfs(sim, config);
  SimTime done = -1;
  pfs.read_file(5'000'000'000ULL, [&] { done = sim.now(); });
  sim.run();
  // Effective pool 5 GB/s -> 1 s.
  EXPECT_NEAR(simtime::to_seconds(done), 1.0, 0.01);
}

TEST(PfsModel, MdsQueueingDelaysMetadataStorm) {
  sim::Simulator sim;
  PfsConfig config;
  config.mds_concurrency = 2;
  config.mds_service_time = 10 * simtime::kMillisecond;
  config.access_latency = 0;
  PfsModel pfs(sim, config);
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    pfs.metadata_op([&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 10);
  // 10 ops, concurrency 2, 10 ms each -> makespan 50 ms.
  EXPECT_EQ(sim.now(), 50 * simtime::kMillisecond);
  EXPECT_GT(pfs.mean_mds_wait_seconds(), 0.0);
}

TEST(PfsModel, ManyClientsShareAggregate) {
  sim::Simulator sim;
  PfsConfig config;
  config.read_bytes_per_second = 10.0e9;
  config.background_load_fraction = 0.0;
  config.per_client_bytes_per_second = 2.0e9;
  config.access_latency = 0;
  config.mds_service_time = 0;
  PfsModel pfs(sim, config);
  int done = 0;
  // 20 clients of 1 GB each: aggregate-bound -> 20 GB / 10 GB/s = 2 s.
  for (int i = 0; i < 20; ++i) {
    pfs.read_file(1'000'000'000ULL, [&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 20);
  EXPECT_NEAR(simtime::to_seconds(sim.now()), 2.0, 0.05);
  EXPECT_EQ(pfs.reads_completed(), 20u);
  EXPECT_EQ(pfs.peak_data_concurrency(), 20u);
}

}  // namespace
}  // namespace ftc::storage
