// Partial-epoch (subset) training and checkpoint-write modelling.
#include <gtest/gtest.h>

#include "destim/experiment.hpp"

namespace ftc::destim {
namespace {

using cluster::FtMode;

ExperimentConfig base_config(FtMode mode) {
  ExperimentConfig config;
  config.node_count = 8;
  config.mode = mode;
  config.file_count = 256;
  config.file_bytes = 2ULL << 20;
  config.samples_per_file = 2;
  config.epochs = 3;
  config.files_per_step_per_node = 4;
  config.compute_time_per_step = 10 * simtime::kMillisecond;
  config.pfs.access_latency = 5 * simtime::kMillisecond;
  config.pfs.access_latency_tail_mean = 0;
  config.rpc_timeout = 10 * simtime::kMillisecond;
  config.elastic_restart_overhead = 50 * simtime::kMillisecond;
  return config;
}

TEST(SubsetTraining, WarmupSpreadsAcrossEpochs) {
  auto config = base_config(FtMode::kHashRingRecache);
  config.epoch_subset_fraction = 0.5;
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  // Each epoch touches ~half the samples, so epoch 0 fetches only the
  // files behind them; later epochs keep discovering cold files.
  EXPECT_LT(result.epochs[0].pfs_reads, 256u);
  EXPECT_GT(result.epochs[0].pfs_reads, 64u);
  EXPECT_GT(result.epochs[1].pfs_reads, 0u);
  // Total distinct fetches never exceed the dataset (coalescing + cache).
  EXPECT_LE(result.total_pfs_reads, 256u);
}

TEST(SubsetTraining, ShorterEpochsThanFullPass) {
  auto full = base_config(FtMode::kHashRingRecache);
  auto half = base_config(FtMode::kHashRingRecache);
  half.epoch_subset_fraction = 0.5;
  const auto full_result = run_experiment(full);
  const auto half_result = run_experiment(half);
  ASSERT_TRUE(full_result.completed);
  ASSERT_TRUE(half_result.completed);
  EXPECT_LT(half_result.total_time, full_result.total_time);
}

TEST(SubsetTraining, InvalidFractionsFallBackToFull) {
  for (const double fraction : {0.0, -0.5, 1.0, 2.0}) {
    auto config = base_config(FtMode::kHashRingRecache);
    config.epoch_subset_fraction = fraction;
    const auto result = run_experiment(config);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.epochs[0].pfs_reads, 256u) << fraction;
  }
}

TEST(SubsetTraining, FtStillWorksUnderFailure) {
  auto config = base_config(FtMode::kHashRingRecache);
  config.epoch_subset_fraction = 0.5;
  cluster::PlannedFailure failure;
  failure.victim = 3;
  failure.epoch = 1;
  failure.epoch_fraction = 0.5;
  config.failures = {failure};
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);
}

TEST(CheckpointWrites, AddEpochBoundaryCost) {
  auto with_ckpt = base_config(FtMode::kHashRingRecache);
  with_ckpt.checkpoint_write_bytes = 512ULL << 20;  // 512 MiB model
  const auto plain = run_experiment(base_config(FtMode::kHashRingRecache));
  const auto ckpt = run_experiment(with_ckpt);
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(ckpt.completed);
  EXPECT_GT(ckpt.total_time, plain.total_time);
  // Each of the 3 epochs pays roughly bytes/write-bandwidth extra.
  const SimTime per_epoch_floor = simtime::transfer_time(
      512ULL << 20, with_ckpt.pfs.write_bytes_per_second *
                        (1.0 - with_ckpt.pfs.background_load_fraction));
  EXPECT_GT(ckpt.total_time - plain.total_time, 3 * per_epoch_floor / 2);
}

TEST(CheckpointWrites, RestartReloadsState) {
  auto config = base_config(FtMode::kNone);
  config.checkpoint_restart = true;
  config.checkpoint_restart_overhead = 100 * simtime::kMillisecond;
  config.checkpoint_write_bytes = 256ULL << 20;
  cluster::PlannedFailure failure;
  failure.victim = 3;
  failure.epoch = 1;
  failure.epoch_fraction = 0.5;
  config.failures = {failure};
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);

  // Without the checkpoint payload the requeue is cheaper.
  auto no_payload = config;
  no_payload.checkpoint_write_bytes = 0;
  const auto lighter = run_experiment(no_payload);
  ASSERT_TRUE(lighter.completed);
  EXPECT_LT(lighter.total_time, result.total_time);
}

TEST(HeterogeneousNodes, WeightedCacheFootprint) {
  auto config = base_config(FtMode::kHashRingRecache);
  // Node 0 has 3x capacity weight: it should own ~3x the average share.
  config.node_weights = {3.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const auto weighted = run_experiment(config);
  ASSERT_TRUE(weighted.completed) << weighted.abort_reason;
  // With 10 effective shares over 256 files, node 0 caches ~77 files;
  // peak footprint reflects the weighted share (uniform peak ~32 files +
  // variance).
  const auto uniform = run_experiment(base_config(FtMode::kHashRingRecache));
  EXPECT_GT(weighted.peak_node_cache_bytes,
            uniform.peak_node_cache_bytes * 3 / 2);
}

TEST(HeterogeneousNodes, StillCompletesUnderFailure) {
  auto config = base_config(FtMode::kHashRingRecache);
  config.node_weights = {2.0, 1.0, 0.5, 1.0, 1.0, 2.0, 0.5, 1.0};
  cluster::PlannedFailure failure;
  failure.victim = 0;  // kill the big node: largest lost share
  failure.epoch = 1;
  failure.epoch_fraction = 0.3;
  config.failures = {failure};
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_EQ(result.epochs.back().pfs_reads, 0u);
}

}  // namespace
}  // namespace ftc::destim
