#include "sim/shared_bandwidth.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftc::sim {
namespace {

constexpr double kGig = 1.0e9;

TEST(SharedBandwidth, SingleTransferFullRate) {
  Simulator sim;
  SharedBandwidthResource pipe(sim, kGig);
  SimTime done = -1;
  pipe.transfer(1'000'000'000ULL, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(simtime::to_seconds(done), 1.0, 1e-6);
  EXPECT_EQ(pipe.completed(), 1u);
  EXPECT_EQ(pipe.active_transfers(), 0u);
}

TEST(SharedBandwidth, TwoEqualTransfersShareFairly) {
  Simulator sim;
  SharedBandwidthResource pipe(sim, kGig);
  std::vector<SimTime> done;
  pipe.transfer(500'000'000ULL, [&] { done.push_back(sim.now()); });
  pipe.transfer(500'000'000ULL, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Each gets half rate: 0.5 GB at 0.5 GB/s = 1 s, simultaneous.
  EXPECT_NEAR(simtime::to_seconds(done[0]), 1.0, 1e-6);
  EXPECT_NEAR(simtime::to_seconds(done[1]), 1.0, 1e-6);
}

TEST(SharedBandwidth, ShortTransferFinishesFirstThenRateRecovers) {
  Simulator sim;
  SharedBandwidthResource pipe(sim, kGig);
  SimTime short_done = -1;
  SimTime long_done = -1;
  pipe.transfer(250'000'000ULL, [&] { short_done = sim.now(); });
  pipe.transfer(750'000'000ULL, [&] { long_done = sim.now(); });
  sim.run();
  // Shared until t=0.5s (each moved 250 MB); the long one then has 500 MB
  // left at full rate -> finishes at 1.0 s.
  EXPECT_NEAR(simtime::to_seconds(short_done), 0.5, 1e-6);
  EXPECT_NEAR(simtime::to_seconds(long_done), 1.0, 1e-6);
}

TEST(SharedBandwidth, LateArrivalSlowsExisting) {
  Simulator sim;
  SharedBandwidthResource pipe(sim, kGig);
  SimTime first_done = -1;
  pipe.transfer(1'000'000'000ULL, [&] { first_done = sim.now(); });
  sim.schedule(simtime::from_seconds(0.5), [&] {
    pipe.transfer(1'000'000'000ULL, [] {});
  });
  sim.run();
  // First half at full rate (0.5 GB done by 0.5 s); remaining 0.5 GB at
  // half rate takes 1 s -> done at 1.5 s.
  EXPECT_NEAR(simtime::to_seconds(first_done), 1.5, 1e-6);
}

TEST(SharedBandwidth, ZeroByteTransferCompletesImmediately) {
  Simulator sim;
  SharedBandwidthResource pipe(sim, kGig);
  bool done = false;
  pipe.transfer(0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0);
}

TEST(SharedBandwidth, PerTransferCapLimitsLoneFlow) {
  Simulator sim;
  // 10 GB/s pool but a 1 GB/s per-flow cap.
  SharedBandwidthResource pipe(sim, 10 * kGig, kGig);
  SimTime done = -1;
  pipe.transfer(1'000'000'000ULL, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(simtime::to_seconds(done), 1.0, 1e-6);
}

TEST(SharedBandwidth, CapIrrelevantUnderContention) {
  Simulator sim;
  SharedBandwidthResource pipe(sim, 10 * kGig, kGig);
  // 20 concurrent flows: fair share 0.5 GB/s < cap, so pool-bound.
  std::vector<SimTime> done;
  for (int i = 0; i < 20; ++i) {
    pipe.transfer(500'000'000ULL, [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 20u);
  EXPECT_NEAR(simtime::to_seconds(done.back()), 1.0, 1e-5);
}

TEST(SharedBandwidth, ChainedTransfersFromCallback) {
  Simulator sim;
  SharedBandwidthResource pipe(sim, kGig);
  SimTime second_done = -1;
  pipe.transfer(1'000'000'000ULL, [&] {
    pipe.transfer(1'000'000'000ULL, [&] { second_done = sim.now(); });
  });
  sim.run();
  EXPECT_NEAR(simtime::to_seconds(second_done), 2.0, 1e-6);
  EXPECT_EQ(pipe.completed(), 2u);
}

TEST(SharedBandwidth, PeakConcurrencyTracked) {
  Simulator sim;
  SharedBandwidthResource pipe(sim, kGig);
  for (int i = 0; i < 7; ++i) pipe.transfer(1000, [] {});
  sim.run();
  EXPECT_EQ(pipe.peak_concurrency(), 7u);
}

TEST(SharedBandwidth, TotalBytesAccounting) {
  Simulator sim;
  SharedBandwidthResource pipe(sim, kGig);
  pipe.transfer(100, [] {});
  pipe.transfer(200, [] {});
  pipe.transfer(0, [] {});
  sim.run();
  EXPECT_EQ(pipe.total_bytes_moved(), 300u);
  EXPECT_EQ(pipe.completed(), 3u);
}

TEST(SharedBandwidth, ManyFlowsConservation) {
  Simulator sim;
  SharedBandwidthResource pipe(sim, kGig);
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    pipe.transfer(1'000'000ULL * (1 + i % 5), [&] { ++completed; });
  }
  sim.run();
  EXPECT_EQ(completed, 200);
  EXPECT_EQ(pipe.active_transfers(), 0u);
}

}  // namespace
}  // namespace ftc::sim
