// Oracle test: the std::map-based ring must agree with a brute-force
// reference on every lookup, across random membership mutations.  The
// reference derives virtual-node positions the same way and finds the
// clockwise successor by linear scan — too slow for production, trivially
// correct by inspection.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "hash/murmur3.hpp"
#include "ring/consistent_hash_ring.hpp"

namespace ftc::ring {
namespace {

/// Trivially-correct reference ring.
class ReferenceRing {
 public:
  ReferenceRing(std::uint32_t vnodes, std::uint64_t seed)
      : vnodes_(vnodes), seed_(seed) {}

  void add_node(NodeId node) {
    if (std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end()) {
      return;
    }
    nodes_.push_back(node);
    rebuild();
  }

  void remove_node(NodeId node) {
    const auto it = std::find(nodes_.begin(), nodes_.end(), node);
    if (it == nodes_.end()) return;
    nodes_.erase(it);
    rebuild();
  }

  [[nodiscard]] NodeId owner_of_hash(std::uint64_t key_hash) const {
    if (positions_.empty()) return kInvalidNode;
    // Linear scan for the smallest position >= hash; wrap to the global
    // minimum when none exists.
    const std::pair<std::uint64_t, NodeId>* best = nullptr;
    const std::pair<std::uint64_t, NodeId>* minimum = &positions_.front();
    for (const auto& position : positions_) {
      if (position.first < minimum->first) minimum = &position;
      if (position.first >= key_hash &&
          (best == nullptr || position.first < best->first)) {
        best = &position;
      }
    }
    return (best != nullptr ? best : minimum)->second;
  }

 private:
  void rebuild() {
    positions_.clear();
    const std::uint64_t mixed =
        hash::fmix64(seed_ + 0x9E3779B97F4A7C15ULL);
    for (const NodeId node : nodes_) {
      for (std::uint32_t r = 0; r < vnodes_; ++r) {
        const std::uint64_t packed =
            (static_cast<std::uint64_t>(node) << 32) | r;
        std::uint64_t pos = hash::fmix64(packed ^ mixed);
        // Mirror the production ring's linear probing on collision.
        while (std::any_of(positions_.begin(), positions_.end(),
                           [pos](const auto& p) { return p.first == pos; })) {
          ++pos;
        }
        positions_.emplace_back(pos, node);
      }
    }
  }

  std::uint32_t vnodes_;
  std::uint64_t seed_;
  std::vector<NodeId> nodes_;
  std::vector<std::pair<std::uint64_t, NodeId>> positions_;
};

class RingOracle : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RingOracle, AgreesOnRandomLookupsUnderChurn) {
  const std::uint32_t vnodes = GetParam();
  RingConfig config;
  config.vnodes_per_node = vnodes;
  config.seed = 31337;
  ConsistentHashRing ring(config);
  ReferenceRing reference(vnodes, config.seed);

  Rng rng(2024);
  std::vector<NodeId> members;
  for (int round = 0; round < 40; ++round) {
    // Random membership mutation.
    const bool add = members.empty() || members.size() < 3 || rng.chance(0.5);
    if (add) {
      const auto node = static_cast<NodeId>(rng.below(64));
      ring.add_node(node);
      reference.add_node(node);
      if (std::find(members.begin(), members.end(), node) == members.end()) {
        members.push_back(node);
      }
    } else {
      const NodeId node = members[rng.below(members.size())];
      ring.remove_node(node);
      reference.remove_node(node);
      members.erase(std::find(members.begin(), members.end(), node));
    }
    // Cross-check a batch of random lookups.
    for (int q = 0; q < 50; ++q) {
      const std::uint64_t h = rng();
      ASSERT_EQ(ring.owner_of_hash(h), reference.owner_of_hash(h))
          << "round " << round << " hash " << h;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(VnodeCounts, RingOracle,
                         ::testing::Values<std::uint32_t>(1, 3, 10, 50),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "v" + std::to_string(i.param);
                         });

TEST(RingOracleExcluding, MatchesRemoveThenLookup) {
  // owner_of_hash_excluding(h, dead) must equal a physically-mutated
  // ring's owner_of_hash(h) for the same dead set.
  RingConfig config;
  config.vnodes_per_node = 25;
  ConsistentHashRing full(16, config);
  ConsistentHashRing mutated(16, config);
  const std::vector<NodeId> dead = {2, 7, 11};
  for (const NodeId d : dead) mutated.remove_node(d);
  auto is_dead = [&dead](NodeId n) {
    return std::find(dead.begin(), dead.end(), n) != dead.end();
  };
  Rng rng(5);
  for (int q = 0; q < 2000; ++q) {
    const std::uint64_t h = rng();
    ASSERT_EQ(full.owner_of_hash_excluding(h, is_dead),
              mutated.owner_of_hash(h))
        << h;
  }
}

TEST(RingOracleExcluding, AllExcludedGivesInvalid) {
  RingConfig config;
  config.vnodes_per_node = 5;
  ConsistentHashRing ring(4, config);
  EXPECT_EQ(ring.owner_of_hash_excluding(123, [](NodeId) { return true; }),
            kInvalidNode);
}

}  // namespace
}  // namespace ftc::ring
