#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "storage/singleflight.hpp"

namespace ftc::storage {
namespace {

TEST(Singleflight, SingleCallerIsLeader) {
  Singleflight<int> sf;
  int runs = 0;
  const auto result = sf.run("key", [&runs] {
    ++runs;
    return 42;
  });
  EXPECT_TRUE(result.leader);
  EXPECT_EQ(result.value, 42);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(sf.in_flight(), 0u);
  EXPECT_EQ(sf.joined_count(), 0u);
}

TEST(Singleflight, ConcurrentCallersShareOneExecution) {
  // M threads race on one key while the leader's function sleeps long
  // enough that every straggler arrives mid-flight: exactly one
  // execution, everyone sees its value, M-1 joiners.
  constexpr int kThreads = 8;
  Singleflight<int> sf;
  std::atomic<int> executions{0};
  std::atomic<int> leaders{0};
  std::vector<int> values(kThreads, -1);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto result = sf.run("lost-file", [&executions] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return executions.fetch_add(1) + 100;
      });
      if (result.leader) leaders.fetch_add(1);
      values[t] = result.value;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(leaders.load(), 1);
  for (const int v : values) EXPECT_EQ(v, 100);
  EXPECT_EQ(sf.joined_count(), static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(sf.in_flight(), 0u);
}

TEST(Singleflight, DistinctKeysDoNotCoalesce) {
  constexpr int kThreads = 6;
  Singleflight<int> sf;
  std::atomic<int> executions{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto result = sf.run("key-" + std::to_string(t), [&executions, t] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        executions.fetch_add(1);
        return t;
      });
      EXPECT_TRUE(result.leader);
      EXPECT_EQ(result.value, t);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(executions.load(), kThreads);
  EXPECT_EQ(sf.joined_count(), 0u);
}

TEST(Singleflight, SequentialCallsReExecute) {
  // Flights close when the leader returns: singleflight dedupes the
  // in-flight window only, it is not a result cache.
  Singleflight<int> sf;
  int runs = 0;
  const auto fn = [&runs] { return ++runs; };
  EXPECT_EQ(sf.run("k", fn).value, 1);
  EXPECT_EQ(sf.run("k", fn).value, 2);
  EXPECT_EQ(runs, 2);
}

TEST(Singleflight, StressManyRoundsManyThreads) {
  // Repeated open/close cycles under contention; run under TSan via
  // scripts/sanitize.sh (storage_test is in its binary set).  Every
  // round must elect exactly one leader.
  constexpr int kRounds = 50;
  constexpr int kThreads = 4;
  Singleflight<int> sf;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> executions{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        const auto result = sf.run("hot", [&executions] {
          executions.fetch_add(1);
          return 7;
        });
        EXPECT_EQ(result.value, 7);
      });
    }
    for (auto& thread : threads) thread.join();
    // At least one execution always; more only if a flight closed before
    // a later thread arrived (legal — they were not concurrent).
    EXPECT_GE(executions.load(), 1);
    EXPECT_LE(executions.load(), kThreads);
    EXPECT_EQ(sf.in_flight(), 0u);
  }
}

}  // namespace
}  // namespace ftc::storage
