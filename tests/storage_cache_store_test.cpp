#include "storage/cache_store.hpp"

#include <gtest/gtest.h>

namespace ftc::storage {
namespace {

TEST(CacheStore, PutGetRoundTrip) {
  CacheStore cache(1024);
  ASSERT_TRUE(cache.put("/a", "hello", 5).is_ok());
  auto got = cache.get("/a");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), "hello");
  EXPECT_EQ(cache.file_count(), 1u);
  EXPECT_EQ(cache.used_bytes(), 5u);
}

TEST(CacheStore, MissReturnsNotFound) {
  CacheStore cache(1024);
  auto got = cache.get("/missing");
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(CacheStore, HitMissCountersAndRate) {
  CacheStore cache(1024);
  cache.put("/a", "x", 1);
  (void)cache.get("/a");
  (void)cache.get("/a");
  (void)cache.get("/nope");
  EXPECT_EQ(cache.hit_count(), 2u);
  EXPECT_EQ(cache.miss_count(), 1u);
  EXPECT_NEAR(cache.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(CacheStore, HitRateEmptyIsZero) {
  CacheStore cache(16);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(CacheStore, OverwriteReplacesAndReaccounts) {
  CacheStore cache(100);
  cache.put("/a", "12345", 5);
  cache.put("/a", "123", 3);
  EXPECT_EQ(cache.used_bytes(), 3u);
  EXPECT_EQ(cache.file_count(), 1u);
  EXPECT_EQ(cache.get("/a").value(), "123");
}

TEST(CacheStore, SizeOnlyMode) {
  CacheStore cache(1ULL << 40);
  ASSERT_TRUE(cache.put_size_only("/big", 1ULL << 30).is_ok());
  EXPECT_TRUE(cache.contains("/big"));
  EXPECT_EQ(cache.used_bytes(), 1ULL << 30);
  EXPECT_EQ(cache.size_of("/big").value(), 1ULL << 30);
  EXPECT_TRUE(cache.get("/big").value().empty());
}

TEST(CacheStore, RejectsFileLargerThanDevice) {
  CacheStore cache(10);
  const Status s = cache.put("/huge", "0123456789ABCDEF", 16);
  EXPECT_EQ(s.code(), StatusCode::kCapacity);
  EXPECT_EQ(cache.file_count(), 0u);
}

TEST(CacheStore, LruEvictionOrder) {
  CacheStore cache(30);
  cache.put("/a", std::string(10, 'a'), 10);
  cache.put("/b", std::string(10, 'b'), 10);
  cache.put("/c", std::string(10, 'c'), 10);
  // Touch /a so /b becomes LRU.
  (void)cache.get("/a");
  cache.put("/d", std::string(10, 'd'), 10);
  EXPECT_FALSE(cache.contains("/b"));
  EXPECT_TRUE(cache.contains("/a"));
  EXPECT_TRUE(cache.contains("/c"));
  EXPECT_TRUE(cache.contains("/d"));
  EXPECT_EQ(cache.eviction_count(), 1u);
}

TEST(CacheStore, EvictsMultipleForLargeInsert) {
  CacheStore cache(30);
  cache.put("/a", std::string(10, 'a'), 10);
  cache.put("/b", std::string(10, 'b'), 10);
  cache.put("/c", std::string(10, 'c'), 10);
  cache.put("/big", std::string(25, 'z'), 25);
  EXPECT_TRUE(cache.contains("/big"));
  // 25 bytes fit only after evicting all three 10-byte residents
  // (10 + 25 > 30 even after two evictions).
  EXPECT_EQ(cache.eviction_count(), 3u);
  EXPECT_EQ(cache.used_bytes(), 25u);
}

TEST(CacheStore, ContainsDoesNotTouchRecency) {
  CacheStore cache(20);
  cache.put("/a", std::string(10, 'a'), 10);
  cache.put("/b", std::string(10, 'b'), 10);
  // contains(/a) must NOT refresh /a, so /a is still LRU and gets evicted.
  EXPECT_TRUE(cache.contains("/a"));
  cache.put("/c", std::string(10, 'c'), 10);
  EXPECT_FALSE(cache.contains("/a"));
}

TEST(CacheStore, EraseAndClear) {
  CacheStore cache(100);
  cache.put("/a", "1", 1);
  cache.put("/b", "2", 1);
  EXPECT_TRUE(cache.erase("/a"));
  EXPECT_FALSE(cache.erase("/a"));
  EXPECT_EQ(cache.used_bytes(), 1u);
  cache.clear();
  EXPECT_EQ(cache.file_count(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(CacheStore, SizeOfMissingIsNullopt) {
  CacheStore cache(16);
  EXPECT_FALSE(cache.size_of("/nope").has_value());
}

TEST(CacheStore, ZeroByteLogicalSize) {
  CacheStore cache(16);
  ASSERT_TRUE(cache.put("/meta", "", 0).is_ok());
  EXPECT_TRUE(cache.contains("/meta"));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

}  // namespace
}  // namespace ftc::storage
