#include <gtest/gtest.h>

#include "ring/multi_hash.hpp"
#include "ring/placement.hpp"
#include "ring/range_partition.hpp"
#include "ring/static_modulo.hpp"

namespace ftc::ring {
namespace {

TEST(StaticModulo, EmptyHasNoOwner) {
  StaticModuloPlacement p;
  EXPECT_EQ(p.owner("x"), kInvalidNode);
}

TEST(StaticModulo, OwnersWithinMembership) {
  StaticModuloPlacement p(8, hash::Algorithm::kFnv1a64);
  for (int i = 0; i < 200; ++i) {
    const NodeId owner = p.owner("key" + std::to_string(i));
    EXPECT_LT(owner, 8u);
  }
}

TEST(StaticModulo, AddRemoveMembership) {
  StaticModuloPlacement p(4, hash::Algorithm::kFnv1a64);
  EXPECT_TRUE(p.contains(2));
  p.remove_node(2);
  EXPECT_FALSE(p.contains(2));
  EXPECT_EQ(p.node_count(), 3u);
  p.add_node(2);
  EXPECT_TRUE(p.contains(2));
  p.add_node(2);  // idempotent
  EXPECT_EQ(p.node_count(), 4u);
  p.remove_node(77);  // unknown: no-op
  EXPECT_EQ(p.node_count(), 4u);
}

TEST(StaticModulo, RemovalNeverMapsToDeadNode) {
  StaticModuloPlacement p(8, hash::Algorithm::kFnv1a64);
  p.remove_node(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_NE(p.owner("k" + std::to_string(i)), 5u);
  }
}

TEST(MultiHash, PrimaryPlacementMatchesModuloOverInitialTable) {
  MultiHashPlacement p(8, hash::Algorithm::kMurmur3_64);
  // With no failures the owner is hash(key, seed=0) % 8.
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto expected = hash::hash_key(hash::Algorithm::kMurmur3_64, key, 0) % 8;
    EXPECT_EQ(p.owner(key), expected);
    EXPECT_EQ(p.last_probe_count(), 1u);
  }
}

TEST(MultiHash, FailedOwnerRehashesToSurvivor) {
  MultiHashPlacement p(8, hash::Algorithm::kMurmur3_64);
  // Find a key owned by node 3, kill node 3, verify a survivor takes it.
  std::string victim_key;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (p.owner(key) == 3u) {
      victim_key = key;
      break;
    }
  }
  ASSERT_FALSE(victim_key.empty());
  p.remove_node(3);
  const NodeId new_owner = p.owner(victim_key);
  EXPECT_NE(new_owner, 3u);
  EXPECT_NE(new_owner, kInvalidNode);
  EXPECT_GE(p.last_probe_count(), 2u);  // needed at least one rehash
}

TEST(MultiHash, SurvivingKeysDoNotMove) {
  MultiHashPlacement p(8, hash::Algorithm::kMurmur3_64);
  std::vector<std::pair<std::string, NodeId>> before;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    before.emplace_back(key, p.owner(key));
  }
  p.remove_node(6);
  for (const auto& [key, owner] : before) {
    if (owner != 6u) {
      EXPECT_EQ(p.owner(key), owner) << key;
    }
  }
}

TEST(MultiHash, RepeatedFailuresStillTerminate) {
  MultiHashPlacement p(8, hash::Algorithm::kMurmur3_64);
  for (NodeId n = 0; n < 7; ++n) p.remove_node(n);
  // Only node 7 lives; every key must land there, however long the chain.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.owner("k" + std::to_string(i)), 7u);
  }
}

TEST(MultiHash, EmptyMembership) {
  MultiHashPlacement p(2, hash::Algorithm::kMurmur3_64);
  p.remove_node(0);
  p.remove_node(1);
  EXPECT_EQ(p.owner("x"), kInvalidNode);
}

TEST(RangePartition, CoversWholeKeySpace) {
  RangePartitionPlacement p(8, hash::Algorithm::kMurmur3_64);
  for (int i = 0; i < 500; ++i) {
    const NodeId owner = p.owner("k" + std::to_string(i));
    EXPECT_LT(owner, 8u);
  }
}

TEST(RangePartition, EqualRangesGiveRoughBalance) {
  RangePartitionPlacement p(4, hash::Algorithm::kMurmur3_64);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[p.owner("k" + std::to_string(i))];
  }
  for (int c : counts) {
    EXPECT_GT(c, 1500);
    EXPECT_LT(c, 2500);
  }
}

TEST(RangePartition, RemovalNeverMapsToDeadNode) {
  for (bool rebalance : {true, false}) {
    RangePartitionPlacement p(8, hash::Algorithm::kMurmur3_64, rebalance);
    p.remove_node(4);
    for (int i = 0; i < 500; ++i) {
      EXPECT_NE(p.owner("k" + std::to_string(i)), 4u) << rebalance;
    }
  }
}

TEST(RangePartition, LazyVariantMovesOnlyDeadRange) {
  RangePartitionPlacement p(8, hash::Algorithm::kMurmur3_64,
                            /*rebalance_on_failure=*/false);
  std::vector<std::pair<std::string, NodeId>> before;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "k" + std::to_string(i);
    before.emplace_back(key, p.owner(key));
  }
  p.remove_node(2);
  for (const auto& [key, owner] : before) {
    if (owner != 2u) {
      EXPECT_EQ(p.owner(key), owner);
    }
  }
}

TEST(RangePartition, RebalancingVariantMovesSurvivorsToo) {
  RangePartitionPlacement p(8, hash::Algorithm::kMurmur3_64,
                            /*rebalance_on_failure=*/true);
  std::vector<std::pair<std::string, NodeId>> before;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(i);
    before.emplace_back(key, p.owner(key));
  }
  p.remove_node(2);
  int moved_survivors = 0;
  for (const auto& [key, owner] : before) {
    if (owner != 2u && p.owner(key) != owner) ++moved_survivors;
  }
  // Equalizing boundaries must shift a nontrivial share of surviving keys —
  // the "more extensive redistribution" the paper criticizes.
  EXPECT_GT(moved_survivors, 100);
}

TEST(RangePartition, AddNodeRebalances) {
  RangePartitionPlacement p(2, hash::Algorithm::kMurmur3_64);
  p.add_node(2);
  EXPECT_EQ(p.node_count(), 3u);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 6000; ++i) ++counts[p.owner("k" + std::to_string(i))];
  for (int c : counts) EXPECT_GT(c, 1200);
}

TEST(Factory, BuildsAllKinds) {
  for (auto kind : {StrategyKind::kHashRing, StrategyKind::kStaticModulo,
                    StrategyKind::kMultiHash, StrategyKind::kRangePartition}) {
    const auto strategy = make_strategy(kind, 8, 100);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->node_count(), 8u);
    EXPECT_EQ(strategy->name(), strategy_kind_name(kind));
    const NodeId owner = strategy->owner("file");
    EXPECT_LT(owner, 8u);
  }
}

TEST(Factory, CloneRoundTripPreservesAssignment) {
  for (auto kind : {StrategyKind::kHashRing, StrategyKind::kStaticModulo,
                    StrategyKind::kMultiHash, StrategyKind::kRangePartition}) {
    const auto strategy = make_strategy(kind, 8, 50);
    const auto clone = strategy->clone();
    for (int i = 0; i < 100; ++i) {
      const std::string key = "k" + std::to_string(i);
      EXPECT_EQ(strategy->owner(key), clone->owner(key));
    }
  }
}

}  // namespace
}  // namespace ftc::ring
