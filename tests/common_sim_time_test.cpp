#include "common/sim_time.hpp"

#include <gtest/gtest.h>

namespace ftc {
namespace {

using namespace simtime;

TEST(SimTime, UnitRelations) {
  EXPECT_EQ(kMicrosecond, 1000);
  EXPECT_EQ(kSecond, 1000000000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 3600 * kSecond);
}

TEST(SimTime, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1500 * kMillisecond);
  EXPECT_EQ(from_ms(2.0), 2 * kMillisecond);
  EXPECT_EQ(from_us(3.0), 3 * kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(to_ms(kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(to_minutes(90 * kSecond), 1.5);
}

TEST(SimTime, TransferTime) {
  // 1 GiB over 1 GiB/s = 1 s.
  const double gib = 1024.0 * 1024.0 * 1024.0;
  EXPECT_EQ(transfer_time(1ULL << 30, gib), kSecond);
  // Zero bytes takes no time.
  EXPECT_EQ(transfer_time(0, gib), 0);
  // Tiny transfers still advance the clock by >= 1 ns.
  EXPECT_GE(transfer_time(1, 1e18), 1);
  // Nonpositive bandwidth is treated as instantaneous (no divide by zero).
  EXPECT_EQ(transfer_time(100, 0.0), 0);
}

TEST(SimTime, ToStringFormats) {
  EXPECT_EQ(to_string(500 * kMillisecond), "0.500000s");
  EXPECT_EQ(to_string(90 * kSecond), "1m30.000s");
  EXPECT_EQ(to_string(kHour + 2 * kMinute + 3 * kSecond), "1h02m03.000s");
}

TEST(SimTime, ToStringNegative) {
  EXPECT_EQ(to_string(-5 * kSecond), "-5.000000s");
}

}  // namespace
}  // namespace ftc
