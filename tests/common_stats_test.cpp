#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ftc {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i * i - 3.0 * i + 1.5;
    whole.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, CvZeroMean) {
  RunningStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);  // mean 0 -> defined as 0
}

TEST(Summary, PercentilesOnKnownData) {
  Summary s({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0});
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.5);
  EXPECT_NEAR(s.percentile(25), 3.25, 1e-12);
  EXPECT_NEAR(s.percentile(90), 9.1, 1e-12);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(Summary, AddThenQuery) {
  Summary s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(10.0);  // re-sorting after further adds must work
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Summary, StddevMatchesManual) {
  Summary s({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(JainFairness, PerfectBalance) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(JainFairness, MaximalSkew) {
  // One loaded node among n: index = 1/n.
  EXPECT_NEAR(jain_fairness({8.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairness, EmptyAndZeroLoads) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(PeakToMean, Balanced) {
  EXPECT_DOUBLE_EQ(peak_to_mean({3.0, 3.0, 3.0}), 1.0);
}

TEST(PeakToMean, Skewed) {
  EXPECT_NEAR(peak_to_mean({9.0, 1.0, 1.0, 1.0}), 3.0, 1e-12);
}

}  // namespace
}  // namespace ftc
