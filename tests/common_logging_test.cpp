#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ftc {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    logging::set_sink([this](const std::string& line) {
      lines_.push_back(line);
    });
    logging::set_level(LogLevel::kInfo);
  }

  void TearDown() override {
    logging::reset_sink();
    logging::clear_time_source();
    logging::set_level(LogLevel::kWarn);
  }

  std::vector<std::string> lines_;
};

TEST_F(LoggingTest, EmitsAtOrAboveLevel) {
  FTC_LOG(kInfo, "test") << "visible";
  FTC_LOG(kError, "test") << "also visible";
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_NE(lines_[0].find("visible"), std::string::npos);
  EXPECT_NE(lines_[0].find("[INFO]"), std::string::npos);
  EXPECT_NE(lines_[1].find("[ERROR]"), std::string::npos);
}

TEST_F(LoggingTest, FiltersBelowLevel) {
  FTC_LOG(kDebug, "test") << "hidden";
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LoggingTest, ComponentTagIncluded) {
  FTC_LOG(kInfo, "hvac_server") << "msg";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("[hvac_server]"), std::string::npos);
}

TEST_F(LoggingTest, SimulatedTimePrefix) {
  logging::set_time_source([] { return 90 * simtime::kSecond; });
  FTC_LOG(kInfo, "t") << "stamped";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("1m30.000s"), std::string::npos);
}

TEST_F(LoggingTest, StreamingOperatorsCompose) {
  FTC_LOG(kInfo, "t") << "node " << 42 << " failed after " << 1.5 << "s";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("node 42 failed after 1.5s"), std::string::npos);
}

TEST(LogLevelName, Names) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace ftc
