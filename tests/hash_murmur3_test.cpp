#include "hash/murmur3.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ftc::hash {
namespace {

// Reference vectors computed with the canonical SMHasher implementation.
TEST(Murmur3_32, KnownVectors) {
  EXPECT_EQ(murmur3_32("", 0), 0x00000000U);
  EXPECT_EQ(murmur3_32("", 1), 0x514E28B7U);
  EXPECT_EQ(murmur3_32("hello", 0), 0x248BFA47U);
  EXPECT_EQ(murmur3_32("hello, world", 0), 0x149BBB7FU);
  EXPECT_EQ(murmur3_32("The quick brown fox jumps over the lazy dog", 0),
            0x2E4FF723U);
}

TEST(Murmur3_128, EmptyInputSeedZero) {
  const auto [lo, hi] = murmur3_128("", 0);
  EXPECT_EQ(lo, 0x0000000000000000ULL);
  EXPECT_EQ(hi, 0x0000000000000000ULL);
}

TEST(Murmur3_128, DeterministicAndSeedSensitive) {
  const auto a1 = murmur3_128("ftcache", 0);
  const auto a2 = murmur3_128("ftcache", 0);
  const auto b = murmur3_128("ftcache", 7);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(Murmur3_128, AllTailLengthsDiffer) {
  // Exercise every switch-case tail (1..15 trailing bytes).
  std::string base = "0123456789abcdefX";  // 17 chars: 1 block + 1 tail byte
  std::uint64_t prev = 0;
  for (std::size_t len = 1; len <= base.size(); ++len) {
    const auto h = murmur3_64(std::string_view(base).substr(0, len));
    EXPECT_NE(h, prev);
    prev = h;
  }
}

TEST(Murmur3_64, MatchesLow64Of128) {
  const auto pair = murmur3_128("some key", 3);
  EXPECT_EQ(murmur3_64("some key", 3), pair.first);
}

TEST(Fmix64, BijectiveSpotCheck) {
  // fmix64 is a bijection; distinct inputs must give distinct outputs.
  EXPECT_NE(fmix64(0), fmix64(1));
  EXPECT_NE(fmix64(1), fmix64(2));
  EXPECT_EQ(fmix64(0x1234), fmix64(0x1234));
}

TEST(Fmix64, AvalanchesLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t a = fmix64(42);
  const std::uint64_t b = fmix64(43);
  const int differing = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing, 16);
  EXPECT_LT(differing, 48);
}

}  // namespace
}  // namespace ftc::hash
