#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "cluster/hvac_server.hpp"
#include "cluster/pfs_store.hpp"
#include "hash/crc32.hpp"

namespace ftc::cluster {
namespace {

HvacServerConfig sync_config() {
  HvacServerConfig config;
  config.async_data_mover = false;  // deterministic for unit tests
  config.cache_capacity_bytes = 1 << 20;
  return config;
}

TEST(PfsStore, PutReadRoundTrip) {
  PfsStore pfs;
  pfs.put("/a", "contents");
  auto got = pfs.read("/a");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), "contents");
  EXPECT_EQ(pfs.read_count(), 1u);
  EXPECT_TRUE(pfs.contains("/a"));
  EXPECT_EQ(pfs.file_count(), 1u);
}

TEST(PfsStore, MissingFile) {
  PfsStore pfs;
  auto got = pfs.read("/none");
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(pfs.read_count(), 0u);
}

TEST(PfsStore, PopulateSynthetic) {
  PfsStore pfs;
  pfs.populate_synthetic("/data", 5, 64);
  EXPECT_EQ(pfs.file_count(), 5u);
  auto got = pfs.read("/data/file_0000003.tfrecord");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().size(), 64u);
  // Contents deterministic: same file regenerated identically.
  PfsStore other;
  other.populate_synthetic("/data", 5, 64);
  EXPECT_EQ(other.read("/data/file_0000003.tfrecord").value(), got.value());
}

TEST(HvacServer, MissFetchesFromPfsThenCaches) {
  PfsStore pfs;
  pfs.put("/f", "payload");
  HvacServer server(0, pfs, sync_config());

  rpc::RpcRequest request;
  request.op = rpc::Op::kReadFile;
  request.path = "/f";
  const auto first = server.handle(request);
  EXPECT_EQ(first.code, StatusCode::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.payload, "payload");
  EXPECT_EQ(first.checksum, hash::crc32("payload"));
  EXPECT_TRUE(server.has_cached("/f"));

  const auto second = server.handle(request);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.payload, "payload");
  EXPECT_EQ(pfs.read_count(), 1u);  // PFS touched exactly once

  const auto stats = server.stats_snapshot();
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.recache_completed, 1u);
}

TEST(HvacServer, MissingEverywhereReturnsNotFound) {
  PfsStore pfs;
  HvacServer server(0, pfs, sync_config());
  rpc::RpcRequest request;
  request.path = "/ghost";
  EXPECT_EQ(server.handle(request).code, StatusCode::kNotFound);
}

TEST(HvacServer, PingAndStatsOps) {
  PfsStore pfs;
  HvacServer server(0, pfs, sync_config());
  rpc::RpcRequest ping;
  ping.op = rpc::Op::kPing;
  EXPECT_EQ(server.handle(ping).code, StatusCode::kOk);

  rpc::RpcRequest stats;
  stats.op = rpc::Op::kStats;
  const auto response = server.handle(stats);
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_NE(response.payload.view().find("reads="), std::string::npos);
}

TEST(HvacServer, EvictOp) {
  PfsStore pfs;
  pfs.put("/f", "x");
  HvacServer server(0, pfs, sync_config());
  rpc::RpcRequest read;
  read.path = "/f";
  server.handle(read);
  ASSERT_TRUE(server.has_cached("/f"));

  rpc::RpcRequest evict;
  evict.op = rpc::Op::kEvict;
  evict.path = "/f";
  EXPECT_EQ(server.handle(evict).code, StatusCode::kOk);
  EXPECT_FALSE(server.has_cached("/f"));
  EXPECT_EQ(server.handle(evict).code, StatusCode::kNotFound);
}

TEST(HvacServer, AsyncDataMoverEventuallyCaches) {
  PfsStore pfs;
  pfs.put("/f", "abc");
  HvacServerConfig config;
  config.async_data_mover = true;
  config.cache_capacity_bytes = 1 << 20;
  HvacServer server(0, pfs, config);
  rpc::RpcRequest request;
  request.path = "/f";
  const auto response = server.handle(request);
  EXPECT_EQ(response.code, StatusCode::kOk);
  server.flush_data_mover();
  EXPECT_TRUE(server.has_cached("/f"));
  EXPECT_EQ(server.stats_snapshot().recache_completed, 1u);
}

// kStats must expose the FULL counter snapshot, not just the read trio —
// operators diff these fields across nodes to spot imbalance.
TEST(HvacServer, StatsOpEmitsFullSnapshot) {
  PfsStore pfs;
  pfs.put("/a", std::string(60, 'a'));
  pfs.put("/b", std::string(60, 'b'));
  HvacServerConfig config = sync_config();
  config.cache_capacity_bytes = 100;  // /b evicts /a
  HvacServer server(0, pfs, config);

  rpc::RpcRequest read;
  read.op = rpc::Op::kReadFile;
  read.path = "/a";
  server.handle(read);  // miss + recache
  server.handle(read);  // hit
  read.path = "/b";
  server.handle(read);  // miss + recache -> evicts /a

  rpc::RpcRequest put;
  put.op = rpc::Op::kPut;
  put.path = "/replica";
  put.payload = std::string(10, 'r');
  ASSERT_EQ(server.handle(put).code, StatusCode::kOk);

  rpc::RpcRequest stats_op;
  stats_op.op = rpc::Op::kStats;
  const auto response = server.handle(stats_op);
  ASSERT_EQ(response.code, StatusCode::kOk);

  // Parse the key=value payload.
  std::map<std::string, std::uint64_t> kv;
  std::istringstream in(std::string(response.payload.view()));
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    ASSERT_NE(eq, std::string::npos) << token;
    kv[token.substr(0, eq)] = std::stoull(token.substr(eq + 1));
  }

  const auto s = server.stats_snapshot();
  EXPECT_EQ(kv.at("reads"), s.reads);
  EXPECT_EQ(kv.at("hits"), s.cache_hits);
  EXPECT_EQ(kv.at("misses"), s.cache_misses);
  EXPECT_EQ(kv.at("pfs_fetches"), s.pfs_fetches);
  EXPECT_EQ(kv.at("recache_enqueued"), s.recache_enqueued);
  EXPECT_EQ(kv.at("recache_completed"), s.recache_completed);
  EXPECT_EQ(kv.at("replicas_stored"), 1u);
  EXPECT_EQ(kv.at("payload_bytes_copied"), 0u);
  EXPECT_EQ(kv.at("evictions"), 1u);
  EXPECT_EQ(kv.at("used_bytes"), 70u);  // /b (60) + /replica (10)
  EXPECT_EQ(kv.at("capacity_bytes"), 100u);
  EXPECT_EQ(kv.at("files"), 2u);
}

TEST(HvacServer, CachedBytesTracked) {
  PfsStore pfs;
  pfs.put("/a", std::string(100, 'x'));
  pfs.put("/b", std::string(50, 'y'));
  HvacServer server(0, pfs, sync_config());
  rpc::RpcRequest request;
  request.path = "/a";
  server.handle(request);
  request.path = "/b";
  server.handle(request);
  EXPECT_EQ(server.cached_file_count(), 2u);
  EXPECT_EQ(server.cached_bytes(), 150u);
}

}  // namespace
}  // namespace ftc::cluster
