// Property sweeps over the DES resources: conservation and capacity
// bounds that must hold for any random workload.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/resource.hpp"
#include "sim/shared_bandwidth.hpp"

namespace ftc::sim {
namespace {

class BandwidthConservation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BandwidthConservation, ThroughputNeverExceedsCapacity) {
  const std::uint64_t seed = GetParam();
  Simulator sim;
  constexpr double kBandwidth = 1.0e9;
  SharedBandwidthResource pipe(sim, kBandwidth);
  Rng rng(seed);

  std::uint64_t total_bytes = 0;
  int completed = 0;
  const int kTransfers = 100;
  // Random arrivals over ~1 s, random sizes.
  for (int i = 0; i < kTransfers; ++i) {
    const SimTime arrival = simtime::from_ms(rng.uniform(0.0, 1000.0));
    const std::uint64_t bytes = 1'000'000 + rng.below(50'000'000);
    total_bytes += bytes;
    sim.schedule_at(arrival, [&pipe, bytes, &completed] {
      pipe.transfer(bytes, [&completed] { ++completed; });
    });
  }
  sim.run();
  EXPECT_EQ(completed, kTransfers);
  EXPECT_EQ(pipe.total_bytes_moved(), total_bytes);
  EXPECT_EQ(pipe.active_transfers(), 0u);

  // Conservation: the pipe cannot move bytes faster than its capacity.
  // All data arrived by t=1s; the makespan must satisfy
  //   makespan >= arrival_window_start + total/bandwidth-ish bound.
  const double makespan = simtime::to_seconds(sim.now());
  const double lower_bound = static_cast<double>(total_bytes) / kBandwidth;
  EXPECT_GE(makespan + 1e-6, lower_bound);
}

TEST_P(BandwidthConservation, CappedPipeRespectsPerFlowLimit) {
  const std::uint64_t seed = GetParam();
  Simulator sim;
  constexpr double kBandwidth = 10.0e9;
  constexpr double kCap = 0.5e9;
  SharedBandwidthResource pipe(sim, kBandwidth, kCap);
  Rng rng(seed ^ 0xCAFE);

  // Few flows: each is cap-bound, so each transfer's duration must be at
  // least bytes/cap.
  std::vector<SimTime> durations;
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t bytes = 100'000'000 + rng.below(400'000'000);
    const SimTime start = sim.now();
    bool flag = false;
    pipe.transfer(bytes, [&flag] { flag = true; });
    sim.run();
    ASSERT_TRUE(flag);
    const SimTime elapsed = sim.now() - start;
    const double min_seconds = static_cast<double>(bytes) / kCap;
    EXPECT_GE(simtime::to_seconds(elapsed) + 1e-9, min_seconds);
    durations.push_back(elapsed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandwidthConservation,
                         ::testing::Values<std::uint64_t>(1, 7, 42, 1337),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

TEST(ResourceConservation, RandomWorkloadAccounting) {
  Simulator sim;
  Resource resource(sim, 4);
  Rng rng(9);
  const int kJobs = 500;
  SimTime total_service = 0;
  int completed = 0;
  for (int i = 0; i < kJobs; ++i) {
    const SimTime arrival = rng.uniform_int(0, 1'000'000);
    const SimTime service = 100 + rng.uniform_int(0, 10'000);
    total_service += service;
    sim.schedule_at(arrival, [&resource, service, &completed] {
      resource.acquire(service, [&completed] { ++completed; });
    });
  }
  sim.run();
  EXPECT_EQ(completed, kJobs);
  EXPECT_EQ(resource.completed(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(resource.in_service(), 0u);
  EXPECT_EQ(resource.queue_length(), 0u);
  // Capacity bound: 4 servers cannot deliver more than 4 service-units
  // per unit of wall-clock.
  EXPECT_GE(sim.now() * 4 + 4, total_service);
}

}  // namespace
}  // namespace ftc::sim
