// Elastic scale-up (node join) and measurement-driven TTL selection.
#include <gtest/gtest.h>

#include <chrono>

#include "cluster/cluster.hpp"
#include "common/latency_recorder.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig ring_config() {
  ClusterConfig config;
  config.node_count = 4;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 100ms;
  config.client.vnodes_per_node = 100;
  config.server.async_data_mover = false;
  return config;
}

TEST(ElasticScaleUp, NewNodeJoinsAndServes) {
  Cluster cluster(ring_config());
  const auto paths = cluster.stage_dataset(60, 64);
  cluster.warm_caches(paths);

  const NodeId joined = cluster.add_node();
  EXPECT_EQ(joined, 4u);
  EXPECT_EQ(cluster.node_count(), 5u);

  // Every file stays readable; the new node's share misses once (PFS
  // fetch + recache) and is NVMe-resident afterwards.
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
  const auto pfs_after_first_pass = cluster.pfs().read_count();
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }
  EXPECT_EQ(cluster.pfs().read_count(), pfs_after_first_pass);
  EXPECT_GT(cluster.server(joined).cached_file_count(), 0u);
}

TEST(ElasticScaleUp, OnlyNewShareMigrates) {
  Cluster cluster(ring_config());
  const auto paths = cluster.stage_dataset(100, 64);
  std::vector<NodeId> before;
  before.reserve(paths.size());
  for (const auto& path : paths) {
    before.push_back(cluster.client(0).current_owner(path));
  }
  const NodeId joined = cluster.add_node();
  std::size_t moved = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const NodeId now = cluster.client(0).current_owner(paths[i]);
    if (now != before[i]) {
      EXPECT_EQ(now, joined);  // movement only TOWARD the new node
      ++moved;
    }
  }
  // ~1/5 of keys, with generous slack for vnode variance.
  EXPECT_GT(moved, paths.size() / 12);
  EXPECT_LT(moved, paths.size() / 2);
}

TEST(ElasticScaleUp, ClientsAgreeAfterJoin) {
  Cluster cluster(ring_config());
  const auto paths = cluster.stage_dataset(40, 64);
  cluster.add_node();
  for (const auto& path : paths) {
    const NodeId owner = cluster.client(0).current_owner(path);
    for (NodeId c = 1; c < cluster.node_count(); ++c) {
      EXPECT_EQ(cluster.client(c).current_owner(path), owner);
    }
  }
}

TEST(ElasticScaleUp, NewNodeClientCanRead) {
  Cluster cluster(ring_config());
  const auto paths = cluster.stage_dataset(20, 64);
  cluster.warm_caches(paths);
  const NodeId joined = cluster.add_node();
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(joined).read_file(path).is_ok()) << path;
  }
}

TEST(LatencyRecorder, WindowAndStats) {
  LatencyRecorder recorder(4);
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_DOUBLE_EQ(recorder.max(), 0.0);
  for (double v : {1.0, 2.0, 3.0, 4.0}) recorder.record(v);
  EXPECT_EQ(recorder.count(), 4u);
  EXPECT_DOUBLE_EQ(recorder.max(), 4.0);
  EXPECT_DOUBLE_EQ(recorder.mean(), 2.5);
  EXPECT_DOUBLE_EQ(recorder.percentile(50), 2.5);
  // Window slides: the 1.0 is displaced.
  recorder.record(10.0);
  EXPECT_EQ(recorder.count(), 4u);
  EXPECT_DOUBLE_EQ(recorder.max(), 10.0);
  EXPECT_EQ(recorder.total_recorded(), 5u);
}

TEST(LatencyRecorder, RecommendedTimeoutRule) {
  LatencyRecorder recorder(64);
  EXPECT_DOUBLE_EQ(recorder.recommended_timeout(2.0, 16, 123.0), 123.0);
  for (int i = 0; i < 20; ++i) recorder.record(5.0 + i % 3);
  EXPECT_DOUBLE_EQ(recorder.recommended_timeout(2.0, 16, 123.0), 14.0);
}

TEST(LatencyObservation, ClientRecordsSuccessfulReads) {
  Cluster cluster(ring_config());
  const auto paths = cluster.stage_dataset(20, 64);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok());
  }
  const auto& latency = cluster.client(0).latency();
  EXPECT_EQ(latency.total_recorded(), paths.size());
  EXPECT_GT(latency.max(), 0.0);
  EXPECT_GE(latency.percentile(99), latency.percentile(50));
  // With >= 16 samples the measured rule kicks in and is sane.
  const auto ttl = cluster.client(0).recommended_timeout(2.0);
  EXPECT_GE(ttl.count(), 1);
}

TEST(Ping, HealthyNodeAnswers) {
  Cluster cluster(ring_config());
  EXPECT_TRUE(cluster.client(0).ping(1).is_ok());
  EXPECT_GT(cluster.client(0).latency().total_recorded(), 0u);
}

TEST(Ping, DeadNodeTimesOutAndFeedsDetector) {
  Cluster cluster(ring_config());
  cluster.fail_node(2);
  EXPECT_EQ(cluster.client(0).ping(2).code(), StatusCode::kTimeout);
  EXPECT_EQ(cluster.client(0).ping(2).code(), StatusCode::kTimeout);
  // timeout_limit defaults to 3 in ring_config's client (unset -> 3).
  EXPECT_GE(cluster.client(0).detector().timeout_count(2) +
                (cluster.client(0).node_failed(2) ? 99u : 0u),
            2u);
}

TEST(Ping, UnknownEndpointUnavailable) {
  Cluster cluster(ring_config());
  EXPECT_EQ(cluster.client(0).ping(99).code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace ftc::cluster
