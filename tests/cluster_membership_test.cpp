// Cluster integration of the membership service: default-off legacy
// behaviour, cluster-wide failure convergence, the stale-view replica
// regression (a stale client must not push replicas to a confirmed-failed
// node), elastic scale-up sync, and kill/restore reinstatement.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "membership/swim.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig membership_config(std::uint32_t nodes) {
  ClusterConfig config;
  config.node_count = nodes;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 50ms;
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.server.async_data_mover = false;
  config.server.cache_capacity_bytes = 64 << 20;
  config.membership.enabled = true;
  // Manual clock: tests drive tick_membership() so protocol progress is
  // bounded by explicit rounds, not a background thread's schedule.
  config.membership.background = false;
  config.membership.probe_period = 10ms;
  config.membership.probe_timeout = 25ms;
  config.membership.indirect_timeout = 60ms;
  config.membership.suspicion_periods = 3;
  config.membership.seed = 5;
  return config;
}

/// Ticks the cluster's agents until `done`, or fails after `max_rounds`.
std::optional<int> tick_until(Cluster& cluster,
                              const std::function<bool()>& done,
                              int max_rounds = 600) {
  for (int round = 0; round < max_rounds; ++round) {
    if (done()) return round;
    cluster.tick_membership();
    std::this_thread::sleep_for(2ms);
  }
  return done() ? std::optional<int>(max_rounds) : std::nullopt;
}

/// All agents outside `failed` agree: serving set, epoch, fingerprint.
bool agents_converged(Cluster& cluster, const std::vector<NodeId>& failed) {
  auto is_failed = [&](NodeId n) {
    return std::find(failed.begin(), failed.end(), n) != failed.end();
  };
  std::optional<std::uint64_t> epoch;
  std::optional<std::uint64_t> fingerprint;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (is_failed(n)) continue;
    auto& agent = cluster.membership(n);
    const auto view = agent.ring_view();
    for (NodeId m = 0; m < cluster.node_count(); ++m) {
      const bool should_serve = !is_failed(m);
      if (view->contains(m) != should_serve) return false;
      if (should_serve &&
          agent.member_state(m) != membership::MemberState::kAlive) {
        return false;
      }
    }
    if (epoch && *epoch != view->epoch()) return false;
    if (fingerprint && *fingerprint != view->fingerprint()) return false;
    epoch = view->epoch();
    fingerprint = view->fingerprint();
  }
  return true;
}

TEST(ClusterMembership, DefaultOffPreservesLegacyDetection) {
  ClusterConfig config;
  config.node_count = 4;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 50ms;
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.server.async_data_mover = false;
  ASSERT_FALSE(config.membership.enabled);

  Cluster cluster(config);
  EXPECT_FALSE(cluster.membership_enabled());

  const auto paths = cluster.stage_dataset(32, 64);
  cluster.warm_caches(paths);
  cluster.fail_node(1);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
  // The seed's client-local machinery did the work...
  const auto stats = cluster.client(0).stats_snapshot();
  EXPECT_GE(stats.nodes_flagged, 1u);
  EXPECT_GE(stats.ring_updates, 1u);
  // ...and nothing membership-flavored ever ran.
  EXPECT_EQ(stats.suspicions_reported, 0u);
  EXPECT_EQ(stats.stale_view_hints, 0u);
  EXPECT_EQ(stats.epoch_fast_forwards, 0u);
}

TEST(ClusterMembership, EightClientsConvergeOnOneKill) {
  // The acceptance scenario: 8 nodes, one killed; every agent must land
  // on the same ring epoch within a bounded number of protocol rounds,
  // after which NO client sends anything to the dead node.
  Cluster cluster(membership_config(8));
  ASSERT_TRUE(cluster.membership_enabled());
  const auto paths = cluster.stage_dataset(64, 64);
  cluster.warm_caches(paths);

  const NodeId victim = 5;
  cluster.fail_node(victim);

  const auto rounds = tick_until(cluster, [&] {
    return agents_converged(cluster, {victim});
  });
  ASSERT_TRUE(rounds.has_value()) << "agents did not converge";

  // Membership stats surface the protocol's work (satellite: stats).
  std::uint64_t probes = 0, confirms = 0, suspicions = 0, claims = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (n == victim) continue;
    const auto stats = cluster.membership(n).stats_snapshot();
    probes += stats.probes_sent;
    confirms += stats.confirms;
    suspicions += stats.suspicions;
    claims += stats.gossip_claims_sent;
    EXPECT_EQ(stats.members_failed, 1u);
    EXPECT_GE(stats.epoch, 1u);
  }
  EXPECT_GE(probes, 1u);
  EXPECT_GE(confirms, 1u);
  EXPECT_GE(suspicions, 1u);
  EXPECT_GE(claims, 1u);

  // Post-convergence reads never touch the dead node.  Quiesce the async
  // pool first: protocol errands already in flight at convergence time
  // (nested ping-req pings aimed at the victim) still enqueue on its
  // endpoint and would show up in `received`.
  cluster.transport().drain_async();
  const auto victim_traffic = cluster.transport().stats(victim).received;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (n == victim) continue;
    for (std::size_t i = n; i < paths.size(); i += cluster.node_count()) {
      ASSERT_TRUE(cluster.client(n).read_file(paths[i]).is_ok()) << paths[i];
    }
  }
  cluster.transport().drain_async();
  EXPECT_EQ(cluster.transport().stats(victim).received, victim_traffic);
}

// Satellite regression: a client holding a stale (pre-failure) ring view
// reads through a live primary, is fast-forwarded by the kStaleView
// hint on that very response, and therefore never pushes a replica to
// the node the cluster already confirmed failed.
TEST(ClusterMembership, StaleClientCannotPushReplicasToConfirmedFailedNode) {
  ClusterConfig config = membership_config(5);
  config.client.replication.factor = 2;
  Cluster cluster(config);
  const auto paths = cluster.stage_dataset(256, 64);

  // A standalone client+agent pair modelling a process on node 0 that has
  // not heard any gossip (its agent is not an RPC endpoint, so it learns
  // only from responses to its own requests).
  std::vector<NodeId> members{0, 1, 2, 3, 4};
  ring::RingConfig ring_config;
  ring_config.vnodes_per_node = config.client.vnodes_per_node;
  ring_config.seed = config.client.ring_seed;
  membership::MembershipAgent stale_agent(0, cluster.transport(),
                                          config.membership, ring_config,
                                          members);
  HvacClient stale_client(0, cluster.transport(), cluster.pfs(), members,
                          config.client);
  stale_client.attach_membership(&stale_agent);

  const NodeId victim = 3;
  cluster.fail_node(victim);
  ASSERT_TRUE(tick_until(cluster, [&] {
                return agents_converged(cluster, {victim});
              }).has_value());

  // The standalone client is still at epoch 0 and would place a backup
  // on the victim.
  ASSERT_EQ(stale_agent.epoch(), 0u);
  const auto stale_view = stale_agent.ring_view();
  ASSERT_TRUE(stale_view->contains(victim));
  std::string trap_path;
  for (const auto& path : paths) {
    const auto chain = stale_view->owner_chain(path, 2);
    if (chain.size() == 2 && chain[0] != victim && chain[1] == victim) {
      trap_path = path;
      break;
    }
  }
  ASSERT_FALSE(trap_path.empty()) << "no path with victim as backup";

  cluster.transport().drain_async();  // flush in-flight protocol errands
  const auto victim_traffic = cluster.transport().stats(victim).received;
  auto result = stale_client.read_file(trap_path);
  ASSERT_TRUE(result.is_ok());

  // The primary's response carried the fast-forward; the replica push
  // that followed it used the new view.
  cluster.transport().drain_async();
  EXPECT_EQ(cluster.transport().stats(victim).received, victim_traffic);
  EXPECT_GE(stale_agent.epoch(), 1u);
  EXPECT_FALSE(stale_agent.ring_view()->contains(victim));
  const auto stats = stale_client.stats_snapshot();
  EXPECT_GE(stats.stale_view_hints, 1u);
  EXPECT_GE(stats.epoch_fast_forwards, 1u);
  // The backup still got placed — on a live node.
  EXPECT_GE(stats.replicas_pushed, 1u);
}

TEST(ClusterMembership, AddNodeSyncsJoinerToClusterState) {
  Cluster cluster(membership_config(4));
  const auto paths = cluster.stage_dataset(32, 64);
  cluster.warm_caches(paths);

  // Make the cluster state non-trivial before the join: node 2 is dead
  // and confirmed, so the joiner's seeded assumption (everyone below me
  // serves) is wrong and must be corrected by the kMembershipSync pull.
  cluster.fail_node(2);
  ASSERT_TRUE(tick_until(cluster, [&] {
                return agents_converged(cluster, {2});
              }).has_value());

  const NodeId joiner = cluster.add_node();
  ASSERT_EQ(joiner, 4u);
  // The sync pull already taught the joiner about the dead node.
  EXPECT_FALSE(cluster.membership(joiner).ring_view()->contains(2));

  // Join claims propagate; everyone converges on the 4-member set
  // {0, 1, 3, 4} under one epoch.
  const auto rounds = tick_until(cluster, [&] {
    return agents_converged(cluster, {2});
  });
  ASSERT_TRUE(rounds.has_value()) << "join did not converge";
  for (const NodeId n : {0u, 1u, 3u, 4u}) {
    const auto view = cluster.membership(n).ring_view();
    EXPECT_TRUE(view->contains(joiner));
    EXPECT_EQ(view->node_count(), 4u);
  }
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
}

TEST(ClusterMembership, RestoredNodeIsReinstatedClusterWide) {
  Cluster cluster(membership_config(4));
  const auto paths = cluster.stage_dataset(48, 64);
  cluster.warm_caches(paths);

  const NodeId victim = 1;
  cluster.fail_node(victim);

  // Client 0 trips over the dead node first (local evidence becomes a
  // gossiped suspicion, not private ring surgery).
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
  EXPECT_GE(cluster.client(0).stats_snapshot().suspicions_reported, 1u);
  EXPECT_EQ(cluster.client(0).stats_snapshot().ring_updates, 0u);

  ASSERT_TRUE(tick_until(cluster, [&] {
                return agents_converged(cluster, {victim});
              }).has_value());

  // SLURM hands the node back, NVMe wiped.  Its refutation propagates
  // and every agent reinstates it.
  cluster.restore_node(victim, /*lose_cache=*/true);
  const auto rounds = tick_until(cluster, [&] {
    return agents_converged(cluster, {});
  });
  ASSERT_TRUE(rounds.has_value()) << "reinstatement did not converge";

  // The reinstated node owns its old arc again and recaches on first
  // touch — including for the client whose own detector flagged it.
  bool victim_serves_again = false;
  for (const auto& path : paths) {
    if (cluster.client(0).current_owner(path) == victim) {
      victim_serves_again = true;
      ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
    }
  }
  EXPECT_TRUE(victim_serves_again);
  EXPECT_GT(cluster.server(victim).cached_file_count(), 0u);

  std::uint64_t reinstatements = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    reinstatements += cluster.membership(n).stats_snapshot().reinstatements;
  }
  EXPECT_GE(reinstatements, 1u);
}

TEST(ClusterMembership, BackgroundSchedulerDrivesConvergence) {
  // Same kill scenario, but the GossipScheduler thread does the ticking.
  ClusterConfig config = membership_config(4);
  config.membership.background = true;
  Cluster cluster(config);

  cluster.fail_node(2);
  bool converged = false;
  for (int i = 0; i < 600 && !converged; ++i) {
    converged = agents_converged(cluster, {2});
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(converged) << "background scheduler did not converge";
}

TEST(ClusterMembership, InvalidSwimConfigIsRejected) {
  ClusterConfig config = membership_config(3);
  config.membership.suspicion_periods = 0;
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
}

}  // namespace
}  // namespace ftc::cluster
