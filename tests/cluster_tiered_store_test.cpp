// The tiered RAM+NVMe store wired through the cluster: knob-off stays
// legacy, tiered nodes serve and export ftc_store_* metrics, and a
// kill-and-warm-restart rebuilds the cold tier from the node's surviving
// NVMe manifest — re-serving without PFS traffic and refusing entries
// whose generation the rest of the cluster has since superseded.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace ftc::cluster {
namespace {

using namespace std::chrono_literals;

ClusterConfig tiered_config(std::uint32_t nodes = 4) {
  ClusterConfig config;
  config.node_count = nodes;
  config.client.mode = FtMode::kHashRingRecache;
  config.client.rpc_timeout = 50ms;
  config.client.timeout_limit = 2;
  config.client.vnodes_per_node = 50;
  config.server.async_data_mover = false;
  config.server.store.tiering = true;
  config.server.store.ram_bytes = 8 << 20;
  config.server.store.nvme_bytes = 32 << 20;
  config.server.store.background_reclaim = false;  // deterministic moves
  return config;
}

TEST(ClusterTieredStore, KnobOffIsLegacy) {
  ClusterConfig config = tiered_config();
  config.server.store.tiering = false;
  Cluster cluster(config);
  EXPECT_FALSE(cluster.server(0).tiered());
  EXPECT_EQ(cluster.server(0).tiered_store(), nullptr);

  const auto paths = cluster.stage_dataset(8, 256);
  cluster.warm_caches(paths);
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
  // Legacy export carries no tiered-store series.
  const std::string text = cluster.metrics_registry().export_prometheus_text();
  EXPECT_EQ(text.find("ftc_store_tier_used_bytes"), std::string::npos);
  // And restart_node_warm degrades to the lost-cache path.
  EXPECT_EQ(cluster.restart_node_warm(1), 0u);
  EXPECT_EQ(cluster.server(1).cached_file_count(), 0u);
}

TEST(ClusterTieredStore, TieredNodesServeAndExportMetrics) {
  Cluster cluster(tiered_config());
  ASSERT_TRUE(cluster.server(0).tiered());

  const auto paths = cluster.stage_dataset(16, 1024);
  cluster.warm_caches(paths);
  const auto pfs_after_warm = cluster.pfs().read_count();
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
  EXPECT_EQ(cluster.pfs().read_count(), pfs_after_warm);  // all cache hits

  std::uint64_t hot_hits = 0;
  std::uint64_t ram_used = 0;
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    const auto stats = cluster.server(n).store_stats();
    hot_hits += stats.hot_hits;
    ram_used += stats.ram_used_bytes;
  }
  EXPECT_GE(hot_hits, paths.size());
  EXPECT_EQ(ram_used, 16u * 1024u);

  const std::string text = cluster.metrics_registry().export_prometheus_text();
  for (const char* series :
       {"ftc_store_tier_used_bytes", "ftc_store_hits_total",
        "ftc_store_misses_total", "ftc_store_evictions_total",
        "ftc_store_hit_ratio", "ftc_store_manifest_restored_total"}) {
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
  EXPECT_NE(text.find("tier=\"ram\""), std::string::npos);
  EXPECT_NE(text.find("tier=\"nvme\""), std::string::npos);
  EXPECT_NE(text.find("policy=\"s3fifo\""), std::string::npos);
}

TEST(ClusterTieredStore, WarmRestartReServesWithoutPfs) {
  Cluster cluster(tiered_config());
  const auto paths = cluster.stage_dataset(24, 1024);
  cluster.warm_caches(paths);

  const NodeId victim = 2;
  const std::size_t held = cluster.server(victim).cached_file_count();
  ASSERT_GT(held, 0u);
  // Writeback before the kill: demote the RAM tier so the device manifest
  // covers everything the node held (a crash mid-epoch would cover only
  // what pressure had already demoted).
  cluster.server(victim).flush_cache_to_cold();

  const auto pfs_before = cluster.pfs().read_count();
  const std::size_t restored = cluster.restart_node_warm(victim);
  EXPECT_EQ(restored, held);
  EXPECT_EQ(cluster.server(victim).store_stats().manifest_restored, held);

  // Every path re-reads warm: survivors from their RAM tiers, the
  // restarted node from its rebuilt cold tier.  Zero PFS traffic.
  for (const auto& path : paths) {
    ASSERT_TRUE(cluster.client(0).read_file(path).is_ok()) << path;
  }
  EXPECT_EQ(cluster.pfs().read_count(), pfs_before);
  EXPECT_EQ(cluster.server(victim).stats_snapshot().pfs_fetches, 0u);
  EXPECT_GT(cluster.server(victim).store_stats().cold_hits, 0u);
}

TEST(ClusterTieredStore, WarmRestartRejectsSupersededGenerations) {
  Cluster cluster(tiered_config());
  const NodeId victim = 2;
  const NodeId peer = 1;

  // The victim holds /model/shard at generation 5 on its device...
  rpc::RpcRequest put;
  put.op = rpc::Op::kPut;
  put.path = "/model/shard";
  put.payload = common::Buffer(std::string(512, 'v'));
  put.replica_generation = 5;
  ASSERT_EQ(cluster.server(victim).handle(put).code, StatusCode::kOk);
  cluster.server(victim).flush_cache_to_cold();

  // ...but while it is down the cluster moves on to generation 7, which
  // an alive peer's freshness ledger remembers.
  put.payload = common::Buffer(std::string(512, 'p'));
  put.replica_generation = 7;
  ASSERT_EQ(cluster.server(peer).handle(put).code, StatusCode::kOk);

  const std::size_t restored = cluster.restart_node_warm(victim);
  EXPECT_EQ(restored, 0u);
  const auto stats = cluster.server(victim).store_stats();
  EXPECT_EQ(stats.manifest_rejected_stale, 1u);
  EXPECT_FALSE(cluster.server(victim).has_cached("/model/shard"));

  // The rejection seeds nothing: a fresh stamped put at the current
  // generation lands normally.
  put.replica_generation = 7;
  EXPECT_EQ(cluster.server(victim).handle(put).code, StatusCode::kOk);
  EXPECT_TRUE(cluster.server(victim).has_cached("/model/shard"));
}

TEST(ClusterTieredStore, RestartedNodeLedgerRefusesStaleStandbyPush) {
  // The ledger gap: a warm restart must RE-SEED the freshness ledger from
  // the manifest it restored, else a delayed stale standby push (from
  // before the crash) would roll the entry back.
  Cluster cluster(tiered_config());
  const NodeId victim = 2;

  rpc::RpcRequest put;
  put.op = rpc::Op::kPut;
  put.path = "/model/shard";
  put.payload = common::Buffer(std::string(512, 'v'));
  put.replica_generation = 6;
  ASSERT_EQ(cluster.server(victim).handle(put).code, StatusCode::kOk);
  cluster.server(victim).flush_cache_to_cold();

  ASSERT_EQ(cluster.restart_node_warm(victim), 1u);
  ASSERT_TRUE(cluster.server(victim).has_cached("/model/shard"));

  put.payload = common::Buffer(std::string(512, 's'));
  put.replica_generation = 4;  // delayed pre-crash push
  EXPECT_EQ(cluster.server(victim).handle(put).code, StatusCode::kCancelled);
  EXPECT_EQ(cluster.server(victim).stats_snapshot().stale_replica_puts, 1u);
}

TEST(ClusterTieredStore, InvalidStoreConfigRejectedAtValidate) {
  ClusterConfig config = tiered_config();
  config.server.store.high_watermark = 0.2;  // below low watermark
  EXPECT_EQ(config.server.validate().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ftc::cluster
