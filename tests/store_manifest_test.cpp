// The cache manifest wire format: round trips, and loud failure on
// anything truncated or malformed (a half-restored node is worse than a
// cold one).
#include <gtest/gtest.h>

#include <string>

#include "store/manifest.hpp"

namespace ftc::store {
namespace {

Manifest sample() {
  Manifest manifest;
  manifest.entries.push_back({"/lustre/a.tfrecord", "nvme", 4096, 7});
  manifest.entries.push_back({"/lustre/b.tfrecord", "nvme", 128, 0});
  manifest.entries.push_back({"/lustre/c.tfrecord", "ram", 1 << 20, 42});
  return manifest;
}

TEST(Manifest, SerializeParseRoundTrip) {
  const Manifest original = sample();
  const auto parsed = Manifest::parse(original.serialize());
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed.value().entries.size(), original.entries.size());
  for (std::size_t i = 0; i < original.entries.size(); ++i) {
    EXPECT_EQ(parsed.value().entries[i].path, original.entries[i].path);
    EXPECT_EQ(parsed.value().entries[i].tier, original.entries[i].tier);
    EXPECT_EQ(parsed.value().entries[i].bytes, original.entries[i].bytes);
    EXPECT_EQ(parsed.value().entries[i].generation,
              original.entries[i].generation);
  }
  EXPECT_EQ(parsed.value().total_bytes(), original.total_bytes());
}

TEST(Manifest, EmptyRoundTrip) {
  const auto parsed = Manifest::parse(Manifest{}.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().entries.empty());
  EXPECT_EQ(parsed.value().total_bytes(), 0u);
}

TEST(Manifest, TruncationFailsLoudly) {
  std::string text = sample().serialize();
  // Drop the footer entirely — a partially written manifest.
  const auto footer = text.rfind("end ");
  ASSERT_NE(footer, std::string::npos);
  EXPECT_FALSE(Manifest::parse(text.substr(0, footer)).is_ok());
  // Drop one row but keep the footer — the count disagrees.
  std::string missing_row = sample().serialize();
  const auto row = missing_row.find("/lustre/b.tfrecord");
  const auto row_end = missing_row.find('\n', row);
  missing_row.erase(row, row_end - row + 1);
  EXPECT_FALSE(Manifest::parse(missing_row).is_ok());
}

TEST(Manifest, GarbageRejected) {
  EXPECT_FALSE(Manifest::parse("").is_ok());
  EXPECT_FALSE(Manifest::parse("not a manifest\n").is_ok());
  EXPECT_FALSE(Manifest::parse("ftc-manifest v2\nend 0\n").is_ok());
  EXPECT_FALSE(
      Manifest::parse("ftc-manifest v1\n/p\tnvme\tNaN\t0\nend 1\n").is_ok());
}

}  // namespace
}  // namespace ftc::store
