#include "cluster/failure_injector.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ftc::cluster {
namespace {

TEST(FailurePlan, DistinctVictims) {
  FailurePlanParams params;
  params.node_count = 16;
  params.failure_count = 5;
  params.total_epochs = 5;
  const auto plan = plan_failures(params);
  ASSERT_EQ(plan.size(), 5u);
  std::set<std::uint32_t> victims;
  for (const auto& failure : plan) victims.insert(failure.victim);
  EXPECT_EQ(victims.size(), 5u);
}

TEST(FailurePlan, EpochsWithinEligibleRange) {
  FailurePlanParams params;
  params.node_count = 64;
  params.failure_count = 20;
  params.first_eligible_epoch = 1;
  params.total_epochs = 5;
  for (const auto& failure : plan_failures(params)) {
    EXPECT_GE(failure.epoch, 1u);
    EXPECT_LT(failure.epoch, 5u);
    EXPECT_GE(failure.epoch_fraction, 0.0);
    EXPECT_LT(failure.epoch_fraction, 1.0);
  }
}

TEST(FailurePlan, SortedByTime) {
  FailurePlanParams params;
  params.node_count = 64;
  params.failure_count = 10;
  const auto plan = plan_failures(params);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    const bool ordered =
        plan[i - 1].epoch < plan[i].epoch ||
        (plan[i - 1].epoch == plan[i].epoch &&
         plan[i - 1].epoch_fraction <= plan[i].epoch_fraction);
    EXPECT_TRUE(ordered);
  }
}

TEST(FailurePlan, NeverKillsEveryNode) {
  FailurePlanParams params;
  params.node_count = 4;
  params.failure_count = 10;  // more than nodes
  const auto plan = plan_failures(params);
  EXPECT_EQ(plan.size(), 3u);  // node_count - 1 survivor guaranteed
}

TEST(FailurePlan, DeterministicForSeed) {
  FailurePlanParams params;
  params.node_count = 32;
  params.failure_count = 4;
  const auto a = plan_failures(params);
  const auto b = plan_failures(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].victim, b[i].victim);
    EXPECT_EQ(a[i].epoch, b[i].epoch);
  }
}

TEST(FailurePlan, SeedVariesPlan) {
  FailurePlanParams a;
  a.node_count = 128;
  a.failure_count = 5;
  a.seed = 1;
  FailurePlanParams b = a;
  b.seed = 2;
  const auto plan_a = plan_failures(a);
  const auto plan_b = plan_failures(b);
  bool any_diff = false;
  for (std::size_t i = 0; i < plan_a.size(); ++i) {
    if (plan_a[i].victim != plan_b[i].victim) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FailurePlan, DegenerateInputs) {
  FailurePlanParams params;
  params.node_count = 0;
  EXPECT_TRUE(plan_failures(params).empty());
  params.node_count = 8;
  params.failure_count = 0;
  EXPECT_TRUE(plan_failures(params).empty());
  params.failure_count = 1;
  params.first_eligible_epoch = 5;
  params.total_epochs = 5;  // no eligible epoch
  EXPECT_TRUE(plan_failures(params).empty());
}

TEST(FailurePlan, ExecutePlanCallsKiller) {
  FailurePlanParams params;
  params.node_count = 16;
  params.failure_count = 3;
  const auto plan = plan_failures(params);
  std::vector<std::uint32_t> killed;
  execute_plan(plan, [&](std::uint32_t node) { killed.push_back(node); });
  ASSERT_EQ(killed.size(), 3u);
  for (std::size_t i = 0; i < killed.size(); ++i) {
    EXPECT_EQ(killed[i], plan[i].victim);
  }
}

}  // namespace
}  // namespace ftc::cluster
