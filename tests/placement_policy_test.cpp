// ReplicationPolicy: the unified write/replication surface.  Policies are
// pure placement arithmetic, so these tests need no transport or cluster —
// a chain vector and an exclusion lambda are the whole world.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "placement/replication_policy.hpp"

namespace ftc::placement {
namespace {

const std::function<bool(NodeId)> kNoneExcluded = [](NodeId) {
  return false;
};

PlanContext make_ctx(const std::vector<NodeId>& chain,
                     const std::function<bool(NodeId)>& excluded,
                     NodeId primary = 0, std::uint64_t generation = 7) {
  PlanContext ctx;
  ctx.path = "dataset/file_0";
  ctx.primary = primary;
  ctx.generation = generation;
  ctx.chain = &chain;
  ctx.excluded = &excluded;
  return ctx;
}

TEST(ReplicationPolicy, MissRecacheIsSyncAndSkipsPrimary) {
  MissRecachePolicy policy(3);
  EXPECT_EQ(policy.chain_length(), 3u);
  const std::vector<NodeId> chain{0, 1, 2};
  const ReplicaPlan plan = policy.plan(make_ctx(chain, kNoneExcluded));
  EXPECT_EQ(plan.write_class, WriteClass::kSyncInline);
  EXPECT_EQ(plan.generation, 0u);  // unstamped: the legacy wire put
  ASSERT_EQ(plan.targets.size(), 2u);
  EXPECT_EQ(plan.targets[0].node, 1u);
  EXPECT_EQ(plan.targets[1].node, 2u);
  EXPECT_EQ(plan.targets[0].trigger, ReplicationTrigger::kMissRecache);
}

TEST(ReplicationPolicy, FactorOneMissRecachePlansNothing) {
  MissRecachePolicy policy(1);
  const std::vector<NodeId> chain{0};
  EXPECT_TRUE(policy.plan(make_ctx(chain, kNoneExcluded)).targets.empty());
}

TEST(ReplicationPolicy, ExcludedNodesAreSkippedNotReplaced) {
  MissRecachePolicy policy(3);
  const std::vector<NodeId> chain{0, 1, 2};
  const std::function<bool(NodeId)> excluded = [](NodeId n) {
    return n == 1;
  };
  const ReplicaPlan plan = policy.plan(make_ctx(chain, excluded));
  ASSERT_EQ(plan.targets.size(), 1u);
  EXPECT_EQ(plan.targets[0].node, 2u);
}

TEST(ReplicationPolicy, HotFanoutIsAsyncAndUnstamped) {
  HotFanoutPolicy policy(2);
  const std::vector<NodeId> chain{3, 1};
  const ReplicaPlan plan = policy.plan(make_ctx(chain, kNoneExcluded, 3));
  EXPECT_EQ(plan.write_class, WriteClass::kAsyncWriteBehind);
  EXPECT_EQ(plan.generation, 0u);
  ASSERT_EQ(plan.targets.size(), 1u);
  EXPECT_EQ(plan.targets[0].node, 1u);
  EXPECT_EQ(plan.targets[0].trigger, ReplicationTrigger::kHotFanout);
}

TEST(ReplicationPolicy, WarmStandbyStampsBiasedGeneration) {
  WarmStandbyPolicy policy(2);
  const std::vector<NodeId> chain{0, 2};
  const ReplicaPlan plan =
      policy.plan(make_ctx(chain, kNoneExcluded, 0, /*generation=*/0));
  EXPECT_EQ(plan.write_class, WriteClass::kAsyncWriteBehind);
  // Generation 0 (a ring that never changed) must still produce a
  // stamped put: the wire reserves 0 for legacy senders, so the stamp is
  // generation + 1.
  EXPECT_EQ(plan.generation, 1u);
  ASSERT_EQ(plan.targets.size(), 1u);
  EXPECT_EQ(plan.targets[0].trigger, ReplicationTrigger::kWarmStandby);
}

TEST(ReplicationPolicy, LocalRecacheCarriesOnlyTheWriteClass) {
  const std::vector<NodeId> chain;
  LocalRecachePolicy async_policy(/*async_mover=*/true);
  LocalRecachePolicy sync_policy(/*async_mover=*/false);
  EXPECT_EQ(async_policy.plan(make_ctx(chain, kNoneExcluded)).write_class,
            WriteClass::kAsyncWriteBehind);
  EXPECT_EQ(sync_policy.plan(make_ctx(chain, kNoneExcluded)).write_class,
            WriteClass::kSyncInline);
  EXPECT_TRUE(async_policy.plan(make_ctx(chain, kNoneExcluded)).targets
                  .empty());
}

TEST(MergePlans, SharedSuccessorGetsOnePutWithMaxGeneration) {
  // The hot/warm overlap: both policies target node 1.  The merged set
  // must contain node 1 exactly once, stamped with the NEWER generation,
  // flagged with both triggers.
  ReplicaPlan hot;
  hot.write_class = WriteClass::kAsyncWriteBehind;
  hot.targets = {{1, ReplicationTrigger::kHotFanout}};
  ReplicaPlan warm;
  warm.write_class = WriteClass::kAsyncWriteBehind;
  warm.generation = 9;
  warm.targets = {{1, ReplicationTrigger::kWarmStandby},
                  {2, ReplicationTrigger::kWarmStandby}};

  const auto merged = merge_plans({hot, warm});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].node, 1u);
  EXPECT_EQ(merged[0].generation, 9u);
  EXPECT_TRUE(merged[0].has_trigger(ReplicationTrigger::kHotFanout));
  EXPECT_TRUE(merged[0].has_trigger(ReplicationTrigger::kWarmStandby));
  EXPECT_EQ(merged[1].node, 2u);
  EXPECT_FALSE(merged[1].has_trigger(ReplicationTrigger::kHotFanout));
}

TEST(MergePlans, SyncWriteClassWins) {
  ReplicaPlan sync_plan;
  sync_plan.write_class = WriteClass::kSyncInline;
  sync_plan.targets = {{1, ReplicationTrigger::kMissRecache}};
  ReplicaPlan async_plan;
  async_plan.write_class = WriteClass::kAsyncWriteBehind;
  async_plan.targets = {{1, ReplicationTrigger::kHotFanout}};

  // Either contribution order: the merged put is inline.
  for (const auto& plans :
       {std::vector<ReplicaPlan>{sync_plan, async_plan},
        std::vector<ReplicaPlan>{async_plan, sync_plan}}) {
    const auto merged = merge_plans(plans);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].write_class, WriteClass::kSyncInline);
  }
}

TEST(MergePlans, PreservesChainOrderOfFirstAppearance) {
  ReplicaPlan a;
  a.targets = {{3, ReplicationTrigger::kMissRecache},
               {1, ReplicationTrigger::kMissRecache}};
  ReplicaPlan b;
  b.targets = {{1, ReplicationTrigger::kWarmStandby},
               {4, ReplicationTrigger::kWarmStandby}};
  const auto merged = merge_plans({a, b});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].node, 3u);
  EXPECT_EQ(merged[1].node, 1u);
  EXPECT_EQ(merged[2].node, 4u);
}

TEST(ReplicationConfig, ValidateEnforcesDocumentedRanges) {
  ReplicationConfig config;
  EXPECT_TRUE(config.validate().is_ok());

  config.factor = 0;
  EXPECT_FALSE(config.validate().is_ok());
  config.factor = 5;
  EXPECT_TRUE(config.validate().is_ok());        // size unknown
  EXPECT_FALSE(config.validate(4).is_ok());      // exceeds cluster
  EXPECT_TRUE(config.validate(5).is_ok());

  config = {};
  config.warm_standby = true;
  EXPECT_FALSE(config.validate().is_ok());  // needs factor >= 2
  config.factor = 2;
  EXPECT_TRUE(config.validate().is_ok());
  config.write_behind_depth = 0;
  EXPECT_FALSE(config.validate().is_ok());
  config.write_behind_depth = 1;
  config.restore_concurrency = 0;
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(ReplicationPolicy, TriggerNamesAreStable) {
  EXPECT_STREQ(trigger_name(ReplicationTrigger::kMissRecache),
               "miss_recache");
  EXPECT_STREQ(trigger_name(ReplicationTrigger::kHotFanout), "hot_fanout");
  EXPECT_STREQ(trigger_name(ReplicationTrigger::kWarmStandby),
               "warm_standby");
  EXPECT_STREQ(trigger_name(ReplicationTrigger::kLocalFill), "local_fill");
}

}  // namespace
}  // namespace ftc::placement
