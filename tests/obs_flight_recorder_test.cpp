// FlightRecorder tests: roundtrip fidelity, wraparound semantics,
// dump_since paging, and torn-record detection under concurrent writers
// (the seqlock contract; TSan runs this file too via sanitize.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace ftc::obs {
namespace {

TEST(FlightRecorder, SpanRoundtripPreservesEveryField) {
  FlightRecorder recorder(64);
  TraceContext ctx = TraceContext::root().child();
  recorder.record_span(RecordKind::kClientAttempt, ctx, /*node=*/7,
                       /*start_ns=*/1000, /*end_ns=*/2500, /*code=*/4,
                       /*value=*/2, "primary");
  const std::vector<Record> records = recorder.dump();
  ASSERT_EQ(records.size(), 1u);
  const Record& r = records[0];
  EXPECT_EQ(r.seq, 0u);
  EXPECT_EQ(r.kind, RecordKind::kClientAttempt);
  EXPECT_EQ(r.node, 7u);
  EXPECT_EQ(r.trace_id, ctx.trace_id);
  EXPECT_EQ(r.span_id, ctx.span_id);
  EXPECT_EQ(r.parent_span_id, ctx.parent_span_id);
  EXPECT_EQ(r.start_ns, 1000);
  EXPECT_EQ(r.end_ns, 2500);
  EXPECT_EQ(r.code, 4u);
  EXPECT_EQ(r.value, 2u);
  EXPECT_EQ(r.detail_view(), "primary");
}

TEST(FlightRecorder, EventsAreInstantaneous) {
  FlightRecorder recorder(8);
  recorder.record_event(RecordKind::kRingUpdate, TraceContext{}, 3,
                        /*code=*/1, /*value=*/9, "probation");
  const std::vector<Record> records = recorder.dump();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].start_ns, records[0].end_ns);
  EXPECT_FALSE(record_is_span(records[0].kind));
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 8u);   // minimum
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(9).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(1000).capacity(), 1024u);
}

TEST(FlightRecorder, DetailTruncatesAtFixedWidth) {
  FlightRecorder recorder(8);
  const std::string long_tag(100, 'x');
  recorder.record_event(RecordKind::kSuspicion, TraceContext{}, 0, 0, 0,
                        long_tag);
  const std::vector<Record> records = recorder.dump();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].detail_view(), std::string(Record::kDetailBytes, 'x'));
}

TEST(FlightRecorder, WraparoundKeepsNewestRecords) {
  FlightRecorder recorder(8);
  for (std::uint64_t i = 0; i < 100; ++i) {
    recorder.record_event(RecordKind::kSuspicion, TraceContext{},
                          static_cast<ftc::NodeId>(i), 0, i, "w");
  }
  EXPECT_EQ(recorder.records_written(), 100u);
  const std::vector<Record> records = recorder.dump();
  ASSERT_EQ(records.size(), 8u);
  // The ring holds exactly the last capacity() records, in seq order.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 92 + i);
    EXPECT_EQ(records[i].value, 92 + i);
  }
}

TEST(FlightRecorder, DumpSincePagesThroughLiveRecorder) {
  FlightRecorder recorder(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.record_event(RecordKind::kSuspicion, TraceContext{}, 0, 0, i, "");
  }
  const std::vector<Record> first = recorder.dump_since(0);
  ASSERT_EQ(first.size(), 10u);
  const std::uint64_t next_epoch = first.back().seq + 1;
  EXPECT_TRUE(recorder.dump_since(next_epoch).empty());
  recorder.record_event(RecordKind::kSuspicion, TraceContext{}, 0, 0, 10, "");
  const std::vector<Record> second = recorder.dump_since(next_epoch);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].value, 10u);
}

TEST(FlightRecorder, ConcurrentWritersNeverProduceTornRecords) {
  // Each writer stamps every field with a value derived from (thread,
  // iteration); a torn read would mix fields from different writers.
  // The ring is deliberately tiny so writers collide on slots constantly.
  FlightRecorder recorder(16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread reader([&recorder, &stop, &torn] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const Record& r : recorder.dump()) {
        // Reconstruct the writer's stamp from trace_id and check every
        // field against it.
        const std::uint64_t stamp = r.trace_id;
        if (r.span_id != stamp + 1 || r.parent_span_id != stamp + 2 ||
            r.start_ns != static_cast<std::int64_t>(stamp + 3) ||
            r.end_ns != static_cast<std::int64_t>(stamp + 4) ||
            r.value != stamp + 5 ||
            r.code != static_cast<std::uint32_t>(stamp % 1000)) {
          torn.fetch_add(1);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t stamp =
            (static_cast<std::uint64_t>(t) << 32) | static_cast<std::uint64_t>(i);
        Record r;
        r.kind = RecordKind::kClientAttempt;
        r.node = static_cast<ftc::NodeId>(t);
        r.trace_id = stamp;
        r.span_id = stamp + 1;
        r.parent_span_id = stamp + 2;
        r.start_ns = static_cast<std::int64_t>(stamp + 3);
        r.end_ns = static_cast<std::int64_t>(stamp + 4);
        r.value = stamp + 5;
        r.code = static_cast<std::uint32_t>(stamp % 1000);
        r.set_detail("torn-test");
        recorder.record(r);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(recorder.records_written(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // After the dust settles the ring holds capacity() fully valid records.
  const std::vector<Record> final_dump = recorder.dump();
  EXPECT_EQ(final_dump.size(), recorder.capacity());
  for (const Record& r : final_dump) {
    EXPECT_EQ(r.detail_view(), "torn-test");
  }
}

TEST(FlightRecorder, RecordKindNamesAreStable) {
  EXPECT_STREQ(record_kind_name(RecordKind::kClientRead), "client_read");
  EXPECT_STREQ(record_kind_name(RecordKind::kPfsFetchLeader),
               "pfs_fetch_leader");
  EXPECT_STREQ(record_kind_name(RecordKind::kRingUpdate), "ring_update");
}

}  // namespace
}  // namespace ftc::obs
