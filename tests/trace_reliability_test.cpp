#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "trace/log_generator.hpp"
#include "trace/reliability_model.hpp"
#include "trace/sacct_io.hpp"

namespace ftc::trace {
namespace {

TEST(ReliabilityEstimate, FitFromHandBuiltLog) {
  std::vector<SlurmJobRecord> log;
  // 100 jobs x 10 nodes x 60 min = 1000 node-hours; 5 node-failure-class
  // events -> lambda = 0.005 per node-hour.
  for (int i = 0; i < 100; ++i) {
    SlurmJobRecord job;
    job.job_id = i;
    job.node_count = 10;
    job.elapsed_minutes = 60.0;
    job.state = i < 3   ? JobState::kNodeFail
                : i < 5 ? JobState::kTimeout
                        : JobState::kCompleted;
    log.push_back(job);
  }
  const auto estimate = estimate_failure_rate(log);
  EXPECT_EQ(estimate.node_failure_events, 5u);
  EXPECT_DOUBLE_EQ(estimate.node_hours, 1000.0);
  EXPECT_DOUBLE_EQ(estimate.lambda_per_node_hour, 0.005);
  EXPECT_DOUBLE_EQ(estimate.mtbf_hours(10), 20.0);
}

TEST(ReliabilityEstimate, CancelledJobsExcluded) {
  std::vector<SlurmJobRecord> log;
  SlurmJobRecord job;
  job.node_count = 100;
  job.elapsed_minutes = 600.0;
  job.state = JobState::kCancelled;
  log.push_back(job);
  const auto estimate = estimate_failure_rate(log);
  EXPECT_DOUBLE_EQ(estimate.node_hours, 0.0);
  EXPECT_DOUBLE_EQ(estimate.lambda_per_node_hour, 0.0);
}

TEST(FailureProbability, BasicProperties) {
  const double lambda = 1e-4;
  EXPECT_DOUBLE_EQ(job_failure_probability(lambda, 0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(job_failure_probability(0.0, 64, 2.0), 0.0);
  const double p64 = job_failure_probability(lambda, 64, 2.0);
  const double p1024 = job_failure_probability(lambda, 1024, 2.0);
  EXPECT_GT(p64, 0.0);
  EXPECT_LT(p64, p1024);  // more nodes, more exposure
  EXPECT_LT(p1024, 1.0);
  // Closed form check.
  EXPECT_NEAR(p64, 1.0 - std::exp(-1e-4 * 64 * 2.0), 1e-12);
  // Longer jobs fail more.
  EXPECT_LT(job_failure_probability(lambda, 64, 1.0),
            job_failure_probability(lambda, 64, 4.0));
}

TEST(ExpectedRuntime, RestartsMatchClosedForm) {
  const double lambda = 1e-4;
  const double base = expected_runtime_with_restarts(0.0, 64, 2.0);
  EXPECT_DOUBLE_EQ(base, 2.0);  // no failures, no stretch
  const double with_failures = expected_runtime_with_restarts(lambda, 64, 2.0);
  EXPECT_GT(with_failures, 2.0);
  const double rate = lambda * 64;
  EXPECT_NEAR(with_failures, std::expm1(rate * 2.0) / rate, 1e-9);
}

TEST(ExpectedRuntime, RestartsExplodeAtScale) {
  // The motivation for FT: restart-from-scratch becomes untenable as
  // exposure (nodes x hours) grows.
  const double lambda = 5e-4;
  const double small = expected_runtime_with_restarts(lambda, 64, 10.0);
  const double large = expected_runtime_with_restarts(lambda, 1024, 10.0);
  EXPECT_GT(large / 10.0, 10.0);     // >10x stretch at 1024 nodes
  EXPECT_LT(small / 10.0, large / 10.0);
}

TEST(ExpectedRuntime, ElasticFtFarCheaperThanRestarts) {
  const double lambda = 5e-4;
  const double restart = expected_runtime_with_restarts(lambda, 1024, 10.0);
  const double elastic =
      expected_runtime_with_elastic_ft(lambda, 1024, 10.0, 5);
  EXPECT_GT(elastic, 10.0);        // failures still cost something
  EXPECT_LT(elastic, restart / 4); // but nothing like full restarts
}

TEST(ExpectedRuntime, ElasticFtDegenerateInputs) {
  EXPECT_DOUBLE_EQ(expected_runtime_with_elastic_ft(1e-4, 0, 2.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(expected_runtime_with_elastic_ft(0.0, 64, 2.0, 5), 2.0);
  EXPECT_GT(expected_runtime_with_elastic_ft(1e-3, 64, 2.0, 0), 2.0);
}

TEST(LostNodeHours, SumsFailedJobsOnly) {
  std::vector<SlurmJobRecord> log;
  SlurmJobRecord ok;
  ok.node_count = 100;
  ok.elapsed_minutes = 60.0;
  ok.state = JobState::kCompleted;
  SlurmJobRecord failed = ok;
  failed.state = JobState::kJobFail;
  log.push_back(ok);
  log.push_back(failed);
  EXPECT_DOUBLE_EQ(lost_node_hours(log), 100.0);
}

TEST(ReliabilityOnSyntheticLog, EndToEnd) {
  LogGeneratorParams params;
  params.total_jobs = 20000;
  const auto log = generate_log(params);
  const auto estimate = estimate_failure_rate(log);
  EXPECT_GT(estimate.lambda_per_node_hour, 0.0);
  EXPECT_GT(estimate.node_hours, 0.0);
  // A 1024-node, 2-hour job on this fleet must see a meaningful but
  // non-certain failure probability.
  const double p =
      job_failure_probability(estimate.lambda_per_node_hour, 1024, 2.0);
  EXPECT_GT(p, 0.001);
  EXPECT_LT(p, 1.0);
  EXPECT_GT(lost_node_hours(log), 0.0);
}

TEST(SacctIo, RoundTrip) {
  LogGeneratorParams params;
  params.total_jobs = 500;
  const auto log = generate_log(params);
  const std::string csv = to_csv(log);
  auto parsed = from_csv(csv);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const auto& back = parsed.value();
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < log.size(); i += 97) {
    EXPECT_EQ(back[i].job_id, log[i].job_id);
    EXPECT_EQ(back[i].week, log[i].week);
    EXPECT_EQ(back[i].node_count, log[i].node_count);
    EXPECT_EQ(back[i].state, log[i].state);
    EXPECT_NEAR(back[i].elapsed_minutes, log[i].elapsed_minutes, 1e-3);
  }
}

TEST(SacctIo, RejectsMalformedInput) {
  EXPECT_FALSE(from_csv("").is_ok());
  EXPECT_FALSE(from_csv("wrong,header\n").is_ok());
  const std::string header =
      "job_id,week,node_count,elapsed_minutes,state\n";
  EXPECT_FALSE(from_csv(header + "1,2,3\n").is_ok());           // 3 fields
  EXPECT_FALSE(from_csv(header + "x,0,4,10,JOB_FAIL\n").is_ok());  // bad id
  EXPECT_FALSE(from_csv(header + "1,0,0,10,JOB_FAIL\n").is_ok());  // 0 nodes
  EXPECT_FALSE(from_csv(header + "1,0,4,-1,JOB_FAIL\n").is_ok());  // neg time
  EXPECT_FALSE(from_csv(header + "1,0,4,10,EXPLODED\n").is_ok());  // state
}

TEST(SacctIo, ParsesValidMinimalInput) {
  const std::string csv =
      "job_id,week,node_count,elapsed_minutes,state\n"
      "42,3,128,95.250,NODE_FAIL\n"
      "\n"
      "43,3,1,1.000,COMPLETED\n";
  auto parsed = from_csv(csv);
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].state, JobState::kNodeFail);
  EXPECT_EQ(parsed.value()[0].node_count, 128u);
}

TEST(SacctIo, FileRoundTrip) {
  LogGeneratorParams params;
  params.total_jobs = 100;
  const auto log = generate_log(params);
  const std::string path = ::testing::TempDir() + "/ftc_sacct_test.csv";
  ASSERT_TRUE(save_csv(log, path).is_ok());
  auto loaded = load_csv(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().size(), log.size());
  std::remove(path.c_str());
}

TEST(SacctIo, LoadMissingFile) {
  EXPECT_EQ(load_csv("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(SacctIo, FuzzedMutationsNeverCrash) {
  // Random byte mutations of a valid CSV must either parse or fail
  // cleanly — never crash, hang, or produce out-of-range records.
  LogGeneratorParams params;
  params.total_jobs = 50;
  const std::string valid = to_csv(generate_log(params));
  Rng rng(0xF0220);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.below(8));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] = static_cast<char>(rng.below(256));
    }
    auto result = from_csv(mutated);
    if (result.is_ok()) {
      for (const auto& job : result.value()) {
        EXPECT_GE(job.node_count, 1u);
        EXPECT_GE(job.elapsed_minutes, 0.0);
      }
    }
  }
}

TEST(SacctIo, TruncatedInputFailsCleanly) {
  LogGeneratorParams params;
  params.total_jobs = 20;
  const std::string valid = to_csv(generate_log(params));
  // Chop at various points; a cut mid-row must be rejected, a cut at a
  // line boundary parses the prefix.
  for (std::size_t cut = 1; cut < valid.size(); cut += 37) {
    auto result = from_csv(valid.substr(0, cut));
    if (result.is_ok()) {
      EXPECT_LE(result.value().size(), 20u);
    }
  }
}

TEST(SacctIo, ParseJobState) {
  JobState state;
  EXPECT_TRUE(parse_job_state("TIMEOUT", state));
  EXPECT_EQ(state, JobState::kTimeout);
  EXPECT_FALSE(parse_job_state("nonsense", state));
}

}  // namespace
}  // namespace ftc::trace
