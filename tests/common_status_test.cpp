#include "common/status.hpp"

#include <gtest/gtest.h>

namespace ftc {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, FactoryFunctionsSetCode) {
  EXPECT_EQ(Status::not_found().code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::timeout().code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::unavailable().code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::capacity().code(), StatusCode::kCapacity);
  EXPECT_EQ(Status::invalid_argument().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::internal().code(), StatusCode::kInternal);
  EXPECT_EQ(Status::cancelled().code(), StatusCode::kCancelled);
}

TEST(Status, MessagePreserved) {
  const Status s = Status::timeout("server 3 unresponsive");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.message(), "server 3 unresponsive");
  EXPECT_EQ(s.to_string(), "TIMEOUT: server 3 unresponsive");
}

TEST(Status, ToStringWithoutMessage) {
  EXPECT_EQ(Status::ok().to_string(), "OK");
  EXPECT_EQ(Status::not_found().to_string(), "NOT_FOUND");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::timeout("a"), Status::timeout("b"));
  EXPECT_FALSE(Status::timeout() == Status::not_found());
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::not_found("missing");
  ASSERT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.is_ok());
  const std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

}  // namespace
}  // namespace ftc
