#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "prefetch/epoch_prefetch_planner.hpp"
#include "prefetch/prefetch_config.hpp"

namespace ftc::prefetch {
namespace {

TEST(PrefetchConfig, DefaultIsOffAndValid) {
  const PrefetchConfig config;
  EXPECT_FALSE(config.enabled);
  EXPECT_FALSE(config.p2p);
  EXPECT_TRUE(config.validate().is_ok());
}

TEST(PrefetchConfig, DepthBoundsEnforcedOnlyWhenEnabled) {
  PrefetchConfig config;
  config.depth = 0;  // nonsense, but the feature is off -> ignored
  EXPECT_TRUE(config.validate().is_ok());
  config.enabled = true;
  EXPECT_FALSE(config.validate().is_ok());
  config.depth = 1;
  EXPECT_TRUE(config.validate().is_ok());
  config.depth = 256;
  EXPECT_TRUE(config.validate().is_ok());
  config.depth = 257;
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(PrefetchConfig, P2pRequiresEnabled) {
  PrefetchConfig config;
  config.p2p = true;
  EXPECT_FALSE(config.validate().is_ok());
  config.enabled = true;
  EXPECT_TRUE(config.validate().is_ok());
}

std::vector<std::string> paths(std::initializer_list<int> ids) {
  std::vector<std::string> out;
  for (int id : ids) out.push_back("/f" + std::to_string(id));
  return out;
}

constexpr auto kNeverLocal = [](const std::string&) { return false; };

TEST(EpochPrefetchPlanner, EmptyPlanWhenPlacementMatches) {
  // Regression: when the ring places every upcoming file on this node,
  // the diff must be empty — prefetch degenerates to a no-op and the
  // demand path caches everything authoritatively.
  EpochPrefetchPlanner planner;
  const auto upcoming = paths({0, 1, 2, 3, 4});
  const auto plan = planner.plan(
      upcoming, /*self=*/3, [](const std::string&) { return NodeId{3}; },
      kNeverLocal);
  EXPECT_TRUE(plan.pulls.empty());
  EXPECT_EQ(plan.self_owned, upcoming.size());
  EXPECT_EQ(plan.already_local, 0u);
}

TEST(EpochPrefetchPlanner, PullsRemoteOwnedInUpcomingOrder) {
  EpochPrefetchPlanner planner;
  // Owner = file id parsed from "/fN": node 1 owns odd ids.
  const auto owner_of = [](const std::string& path) {
    return NodeId{std::stoul(path.substr(2)) % 2 == 0 ? 0u : 1u};
  };
  const auto plan = planner.plan(paths({5, 2, 9, 4, 7}), /*self=*/0,
                                 owner_of, kNeverLocal);
  EXPECT_EQ(plan.pulls, paths({5, 9, 7}));  // order-preserving
  EXPECT_EQ(plan.self_owned, 2u);
}

TEST(EpochPrefetchPlanner, DeduplicatesRepeatedSamples) {
  EpochPrefetchPlanner planner;
  const auto plan = planner.plan(paths({1, 1, 2, 1}), /*self=*/0,
                                 [](const std::string&) { return NodeId{7}; },
                                 kNeverLocal);
  EXPECT_EQ(plan.pulls, paths({1, 2}));
  EXPECT_EQ(plan.already_local, 2u);  // the repeated samples
}

TEST(EpochPrefetchPlanner, SkipsAlreadyStagedFiles) {
  EpochPrefetchPlanner planner;
  const auto plan = planner.plan(
      paths({0, 1, 2}), /*self=*/0,
      [](const std::string&) { return NodeId{9}; },
      [](const std::string& path) { return path == "/f1"; });
  EXPECT_EQ(plan.pulls, paths({0, 2}));
  EXPECT_EQ(plan.already_local, 1u);
}

TEST(EpochPrefetchPlanner, SkipsOwnerlessFiles) {
  // kInvalidNode = nobody to pull from (empty ring); the demand path owns
  // the fallback, so the planner must not emit a pull.
  EpochPrefetchPlanner planner;
  const auto plan = planner.plan(
      paths({0, 1}), /*self=*/0,
      [](const std::string& path) {
        return path == "/f0" ? kInvalidNode : NodeId{1};
      },
      kNeverLocal);
  EXPECT_EQ(plan.pulls, paths({1}));
  EXPECT_EQ(plan.self_owned, 0u);
  EXPECT_EQ(plan.already_local, 0u);
}

}  // namespace
}  // namespace ftc::prefetch
