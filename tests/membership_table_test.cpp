// MemberTable: the SWIM precedence rules — incarnation tie-breaks,
// refutation, confirmation supremacy, rejoin budgeting — applied claim by
// claim with no clocks or threads.
#include <gtest/gtest.h>

#include <chrono>

#include "membership/member_table.hpp"

namespace ftc::membership {
namespace {

using Clock = MemberTable::Clock;

TEST(MemberTable, SeedStartsAliveAtIncarnationZero) {
  MemberTable table;
  table.seed(0);
  table.seed(1);
  EXPECT_TRUE(table.contains(0));
  EXPECT_EQ(table.state(0), MemberState::kAlive);
  EXPECT_EQ(table.incarnation(0), 0u);
  EXPECT_EQ(table.alive_count(), 2u);
  EXPECT_EQ(table.members(), (std::vector<NodeId>{0, 1}));
}

TEST(MemberTable, UnknownNodeIsReportedFailed) {
  MemberTable table;
  EXPECT_FALSE(table.contains(9));
  EXPECT_EQ(table.state(9), MemberState::kFailed);
}

TEST(MemberTable, AliveClaimNeedsStrictlyHigherIncarnation) {
  MemberTable table;
  table.seed(0);
  // Same incarnation: no-op.
  EXPECT_EQ(table.apply(MemberState::kAlive, 0, 0), Applied::kNone);
  // Higher: refresh.
  EXPECT_EQ(table.apply(MemberState::kAlive, 0, 3), Applied::kRefreshed);
  EXPECT_EQ(table.incarnation(0), 3u);
  // Lower: stale, ignored.
  EXPECT_EQ(table.apply(MemberState::kAlive, 0, 1), Applied::kNone);
  EXPECT_EQ(table.incarnation(0), 3u);
}

TEST(MemberTable, SuspectBeatsAliveAtEqualIncarnation) {
  MemberTable table;
  table.seed(0);
  // The asymmetric tie-break: suspect(i) overrides alive(i).
  EXPECT_EQ(table.apply(MemberState::kSuspect, 0, 0), Applied::kSuspected);
  EXPECT_EQ(table.state(0), MemberState::kSuspect);
  // An equal-incarnation alive claim cannot clear the suspicion — only
  // the subject, via a strictly higher incarnation, can.
  EXPECT_EQ(table.apply(MemberState::kAlive, 0, 0), Applied::kNone);
  EXPECT_EQ(table.state(0), MemberState::kSuspect);
  // A stale suspect rumor is ignored too.
  EXPECT_EQ(table.apply(MemberState::kSuspect, 0, 0), Applied::kNone);
}

TEST(MemberTable, RefutationClearsSuspicion) {
  MemberTable table;
  table.seed(0);
  ASSERT_EQ(table.apply(MemberState::kSuspect, 0, 0), Applied::kSuspected);
  // The subject bumped its incarnation past the rumor.
  EXPECT_EQ(table.apply(MemberState::kAlive, 0, 1), Applied::kRefuted);
  EXPECT_EQ(table.state(0), MemberState::kAlive);
  EXPECT_EQ(table.incarnation(0), 1u);
}

TEST(MemberTable, HigherIncarnationSuspectRefreshesSuspicion) {
  MemberTable table;
  table.seed(0);
  ASSERT_EQ(table.apply(MemberState::kSuspect, 0, 0), Applied::kSuspected);
  EXPECT_EQ(table.apply(MemberState::kSuspect, 0, 2), Applied::kRefreshed);
  EXPECT_EQ(table.incarnation(0), 2u);
  // ...and the refutation must now outbid the refreshed rumor.
  EXPECT_EQ(table.apply(MemberState::kAlive, 0, 2), Applied::kNone);
  EXPECT_EQ(table.apply(MemberState::kAlive, 0, 3), Applied::kRefuted);
}

TEST(MemberTable, FailedOverridesAliveAndSuspectAtCurrentIncarnation) {
  MemberTable table;
  table.seed(0);
  EXPECT_EQ(table.apply(MemberState::kFailed, 0, 0), Applied::kConfirmed);
  EXPECT_EQ(table.state(0), MemberState::kFailed);
  // Confirmation is indisputable: repeated confirms are no-ops, and
  // suspect claims about a failed node are meaningless.
  EXPECT_EQ(table.apply(MemberState::kFailed, 0, 5), Applied::kNone);
  EXPECT_EQ(table.apply(MemberState::kSuspect, 0, 9), Applied::kNone);
  // An alive claim at or below the recorded incarnation cannot resurrect.
  EXPECT_EQ(table.apply(MemberState::kAlive, 0, 0), Applied::kNone);
  EXPECT_EQ(table.state(0), MemberState::kFailed);
}

TEST(MemberTable, ReinstatementNeedsFreshIncarnation) {
  MemberTable table;
  table.seed(0);
  ASSERT_EQ(table.apply(MemberState::kFailed, 0, 2), Applied::kConfirmed);
  EXPECT_EQ(table.apply(MemberState::kAlive, 0, 3), Applied::kReinstated);
  EXPECT_EQ(table.state(0), MemberState::kAlive);
  EXPECT_EQ(table.rejoins(0), 1u);
}

TEST(MemberTable, StaleFailedClaimCannotResurrectConfirmation) {
  // Confirm rumors keep circulating in piggyback retransmit queues after
  // the node they name has refuted or rejoined.  If those stale claims
  // could re-confirm, a reinstated node would flap straight into the
  // terminal rejoin budget.
  MemberTable table;
  table.seed(0);
  ASSERT_EQ(table.apply(MemberState::kFailed, 0, 0), Applied::kConfirmed);
  ASSERT_EQ(table.apply(MemberState::kAlive, 0, 1), Applied::kReinstated);

  // The old confirm rumor names incarnation 0 — stale, ignored.
  EXPECT_EQ(table.apply(MemberState::kFailed, 0, 0), Applied::kNone);
  EXPECT_EQ(table.state(0), MemberState::kAlive);
  EXPECT_EQ(table.rejoins(0), 1u);

  // A confirm at the CURRENT incarnation is fresh evidence and applies.
  EXPECT_EQ(table.apply(MemberState::kFailed, 0, 1), Applied::kConfirmed);
  EXPECT_EQ(table.state(0), MemberState::kFailed);
}

TEST(MemberTable, FlappingPastRejoinBudgetIsTerminal) {
  MemberTable table(/*max_rejoins=*/2);
  table.seed(0);
  std::uint64_t inc = 0;
  for (std::uint32_t round = 0; round < 2; ++round) {
    ASSERT_EQ(table.apply(MemberState::kFailed, 0, inc), Applied::kConfirmed);
    inc = table.incarnation(0) + 1;
    ASSERT_EQ(table.apply(MemberState::kAlive, 0, inc), Applied::kReinstated);
  }
  ASSERT_EQ(table.apply(MemberState::kFailed, 0, inc), Applied::kConfirmed);
  // Third return exceeds the budget: ignored forever.
  inc = table.incarnation(0) + 1;
  EXPECT_EQ(table.apply(MemberState::kAlive, 0, inc), Applied::kNone);
  EXPECT_TRUE(table.is_terminal(0));
  EXPECT_EQ(table.state(0), MemberState::kFailed);
  EXPECT_EQ(table.apply(MemberState::kAlive, 0, inc + 10), Applied::kNone);
}

TEST(MemberTable, UnknownNodesAreIntroducedInClaimedState) {
  MemberTable table;
  bool was_known = true;
  EXPECT_EQ(table.apply(MemberState::kAlive, 1, 0, &was_known),
            Applied::kJoined);
  EXPECT_FALSE(was_known);
  EXPECT_EQ(table.apply(MemberState::kSuspect, 2, 0), Applied::kSuspected);
  EXPECT_EQ(table.apply(MemberState::kFailed, 3, 0), Applied::kConfirmed);
  EXPECT_EQ(table.state(1), MemberState::kAlive);
  EXPECT_EQ(table.state(2), MemberState::kSuspect);
  EXPECT_EQ(table.state(3), MemberState::kFailed);
  EXPECT_EQ(table.serving_members(), (std::vector<NodeId>{1, 2}));
}

TEST(MemberTable, SuspicionDeadlinesExpireInOrder) {
  MemberTable table;
  table.seed(0);
  table.seed(1);
  table.seed(2);
  const auto now = Clock::now();
  ASSERT_EQ(table.apply(MemberState::kSuspect, 2, 0), Applied::kSuspected);
  ASSERT_EQ(table.apply(MemberState::kSuspect, 1, 0), Applied::kSuspected);
  table.set_suspect_deadline(1, now + std::chrono::milliseconds(10));
  table.set_suspect_deadline(2, now + std::chrono::milliseconds(1000));
  // Deadlines on non-suspects are ignored.
  table.set_suspect_deadline(0, now);

  EXPECT_TRUE(table.expired_suspects(now).empty());
  EXPECT_EQ(table.expired_suspects(now + std::chrono::milliseconds(20)),
            (std::vector<NodeId>{1}));
  EXPECT_EQ(table.expired_suspects(now + std::chrono::seconds(2)),
            (std::vector<NodeId>{1, 2}));
}

TEST(MemberTable, CountsTrackStates) {
  MemberTable table;
  for (NodeId n = 0; n < 4; ++n) table.seed(n);
  (void)table.apply(MemberState::kSuspect, 1, 0);
  (void)table.apply(MemberState::kFailed, 2, 0);
  EXPECT_EQ(table.alive_count(), 2u);
  EXPECT_EQ(table.suspect_count(), 1u);
  EXPECT_EQ(table.failed_count(), 1u);
  EXPECT_EQ(table.serving_members(), (std::vector<NodeId>{0, 1, 3}));
}

TEST(MemberTable, StateNames) {
  EXPECT_STREQ(member_state_name(MemberState::kAlive), "alive");
  EXPECT_STREQ(member_state_name(MemberState::kSuspect), "suspect");
  EXPECT_STREQ(member_state_name(MemberState::kFailed), "failed");
}

}  // namespace
}  // namespace ftc::membership
