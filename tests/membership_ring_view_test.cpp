// VersionedRing / RingView: epoch semantics, snapshot immutability, event
// deltas, and the owner-chain distinctness guarantee over epoch'd views.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "membership/ring_view.hpp"
#include "ring/consistent_hash_ring.hpp"

namespace ftc::membership {
namespace {

ring::RingConfig make_ring_config() {
  ring::RingConfig config;
  config.vnodes_per_node = 50;
  config.seed = 7;
  return config;
}

std::vector<NodeId> iota_members(NodeId count) {
  std::vector<NodeId> members;
  for (NodeId n = 0; n < count; ++n) members.push_back(n);
  return members;
}

TEST(VersionedRing, EpochZeroMatchesIndependentlyBuiltRing) {
  // The paper's clients build rings with no coordination service; the
  // membership layer must preserve that property at epoch 0 so enabling
  // it does not reshuffle a warm cluster.
  VersionedRing versioned(make_ring_config(), iota_members(4), 16);
  const ring::ConsistentHashRing reference(4, make_ring_config());

  auto view = versioned.view();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->epoch(), 0u);
  EXPECT_EQ(versioned.epoch(), 0u);
  EXPECT_EQ(view->fingerprint(), reference.fingerprint());
  EXPECT_EQ(view->node_count(), 4u);
  EXPECT_EQ(view->owner("/lustre/some/file"), reference.owner("/lustre/some/file"));
}

TEST(VersionedRing, ServingSetChangesBumpEpochAndPublishNewView) {
  VersionedRing versioned(make_ring_config(), iota_members(4), 16);
  auto epoch0 = versioned.view();

  auto event = versioned.apply(RingEventType::kProbation, 2, 5);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->epoch, 1u);
  EXPECT_EQ(event->type, RingEventType::kProbation);
  EXPECT_EQ(event->node, 2u);
  EXPECT_EQ(event->incarnation, 5u);

  auto epoch1 = versioned.view();
  EXPECT_EQ(epoch1->epoch(), 1u);
  EXPECT_FALSE(epoch1->contains(2));
  EXPECT_EQ(epoch1->node_count(), 3u);

  // The old snapshot is immutable: it still shows node 2 serving.
  EXPECT_EQ(epoch0->epoch(), 0u);
  EXPECT_TRUE(epoch0->contains(2));
  EXPECT_EQ(epoch0->node_count(), 4u);
}

TEST(VersionedRing, RedundantEventsBurnNoEpoch) {
  VersionedRing versioned(make_ring_config(), iota_members(3), 16);
  // Joining a node that is already on the ring: no-op.
  EXPECT_FALSE(versioned.apply(RingEventType::kJoin, 1, 0).has_value());
  EXPECT_EQ(versioned.epoch(), 0u);
  ASSERT_TRUE(versioned.apply(RingEventType::kConfirmFailed, 1, 0).has_value());
  EXPECT_EQ(versioned.epoch(), 1u);
  // Removing it again (duplicate confirm from another gossip path): no-op.
  EXPECT_FALSE(versioned.apply(RingEventType::kProbation, 1, 0).has_value());
  EXPECT_FALSE(versioned.apply(RingEventType::kConfirmFailed, 1, 0).has_value());
  EXPECT_EQ(versioned.epoch(), 1u);
}

TEST(VersionedRing, MinEpochAdoptsPeerLabels) {
  // Replaying a delta from a peer that is several epochs ahead must land
  // on the peer's label, not local+1 — otherwise collapsed histories make
  // labels diverge even when serving sets agree.
  VersionedRing versioned(make_ring_config(), iota_members(5), 16);
  auto event = versioned.apply(RingEventType::kProbation, 3, 0, /*min_epoch=*/7);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->epoch, 7u);
  EXPECT_EQ(versioned.epoch(), 7u);
  // The next local event continues from the adopted label.
  auto next = versioned.apply(RingEventType::kProbation, 4, 0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->epoch, 8u);
}

TEST(VersionedRing, AdoptEpochRelabelsWithoutRingChange) {
  VersionedRing versioned(make_ring_config(), iota_members(3), 16);
  ASSERT_TRUE(versioned.apply(RingEventType::kProbation, 0, 0).has_value());
  const std::uint64_t fingerprint = versioned.view()->fingerprint();

  versioned.adopt_epoch(5);
  EXPECT_EQ(versioned.epoch(), 5u);
  EXPECT_EQ(versioned.view()->epoch(), 5u);
  EXPECT_EQ(versioned.view()->fingerprint(), fingerprint);

  // Never moves backwards.
  versioned.adopt_epoch(2);
  EXPECT_EQ(versioned.epoch(), 5u);
}

TEST(VersionedRing, DeltaSinceReturnsMissedEventsInOrder) {
  VersionedRing versioned(make_ring_config(), iota_members(4), 16);
  ASSERT_TRUE(versioned.apply(RingEventType::kProbation, 1, 2).has_value());
  ASSERT_TRUE(versioned.apply(RingEventType::kReinstate, 1, 3).has_value());
  ASSERT_TRUE(versioned.apply(RingEventType::kConfirmFailed, 2, 0).has_value());

  auto delta = versioned.delta_since(0);
  ASSERT_TRUE(delta.has_value());
  ASSERT_EQ(delta->size(), 3u);
  EXPECT_EQ((*delta)[0].epoch, 1u);
  EXPECT_EQ((*delta)[0].type, RingEventType::kProbation);
  EXPECT_EQ((*delta)[1].epoch, 2u);
  EXPECT_EQ((*delta)[1].type, RingEventType::kReinstate);
  EXPECT_EQ((*delta)[2].epoch, 3u);

  auto partial = versioned.delta_since(2);
  ASSERT_TRUE(partial.has_value());
  ASSERT_EQ(partial->size(), 1u);
  EXPECT_EQ((*partial)[0].node, 2u);

  auto empty = versioned.delta_since(3);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(VersionedRing, AdoptedLabelGapForcesFullSyncBelowFloor) {
  // adopt_epoch jumps the label WITHOUT writing log events for the gap, so
  // a requester whose epoch falls inside the gap must get a full sync —
  // serving the (empty-looking) delta would silently fast-forward it past
  // transitions it never saw.  This is the large-gap boundary after a
  // partition heals: the minority adopts the majority's label in one hop.
  VersionedRing versioned(make_ring_config(), iota_members(4), 16);
  ASSERT_TRUE(versioned.apply(RingEventType::kProbation, 1, 0).has_value());
  versioned.adopt_epoch(10);
  EXPECT_EQ(versioned.sync_floor(), 10u);

  // Below the floor: not delta-answerable, even though the log still
  // physically holds the epoch-1 event.
  EXPECT_FALSE(versioned.delta_since(0).has_value());
  EXPECT_FALSE(versioned.delta_since(1).has_value());
  EXPECT_FALSE(versioned.delta_since(9).has_value());

  // At the floor: answerable, and currently empty (nothing happened since
  // the adoption).
  auto at_floor = versioned.delta_since(10);
  ASSERT_TRUE(at_floor.has_value());
  EXPECT_TRUE(at_floor->empty());

  // Events after the adoption are delta-answerable from the floor on.
  ASSERT_TRUE(versioned.apply(RingEventType::kProbation, 2, 0).has_value());
  auto after = versioned.delta_since(10);
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->size(), 1u);
  EXPECT_EQ((*after)[0].epoch, 11u);
}

TEST(VersionedRing, MinEpochReplayAlsoRaisesFloor) {
  // Adopting a peer label through apply(min_epoch) collapses history the
  // same way adopt_epoch does: the skipped labels must not be
  // delta-answerable.
  VersionedRing versioned(make_ring_config(), iota_members(5), 16);
  ASSERT_TRUE(
      versioned.apply(RingEventType::kProbation, 3, 0, /*min_epoch=*/7)
          .has_value());
  EXPECT_EQ(versioned.epoch(), 7u);
  // A requester at epoch 3 sits inside the collapsed gap 1..6: the log
  // cannot prove what it missed, so no delta.
  EXPECT_FALSE(versioned.delta_since(3).has_value());
}

TEST(VersionedRing, TruncatedLogForcesFullSync) {
  // Capacity 2: after 4 events, epochs 1 and 2 have been evicted, so a
  // requester at epoch 0 or 1 cannot be answered with a delta.
  VersionedRing versioned(make_ring_config(), iota_members(6), /*log=*/2);
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_TRUE(versioned.apply(RingEventType::kProbation, n, 0).has_value());
  }
  EXPECT_FALSE(versioned.delta_since(0).has_value());
  EXPECT_FALSE(versioned.delta_since(1).has_value());
  auto tail = versioned.delta_since(2);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->size(), 2u);
}

TEST(EventLog, SinceSemanticsAndEviction) {
  EventLog log(3);
  for (std::uint64_t e = 1; e <= 5; ++e) {
    log.append({e, RingEventType::kProbation, static_cast<NodeId>(e), 0});
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.evicted_through(), 2u);
  EXPECT_FALSE(log.since(0).has_value());
  EXPECT_FALSE(log.since(1).has_value());
  auto from2 = log.since(2);
  ASSERT_TRUE(from2.has_value());
  EXPECT_EQ(from2->size(), 3u);
  auto from5 = log.since(5);
  ASSERT_TRUE(from5.has_value());
  EXPECT_TRUE(from5->empty());
}

// Satellite 3: owner_chain over an epoch'd view must return DISTINCT
// physical nodes even when adjacent virtual nodes belong to the same
// server — replicas on the same box would die together.
TEST(RingView, OwnerChainReturnsDistinctPhysicalNodes) {
  // Few nodes x many vnodes maximizes adjacent same-owner vnode pairs.
  ring::RingConfig config;
  config.vnodes_per_node = 200;
  config.seed = 11;
  VersionedRing versioned(config, iota_members(3), 16);
  auto view = versioned.view();

  for (int i = 0; i < 500; ++i) {
    const std::string key = "/lustre/ds/file_" + std::to_string(i);
    auto chain = view->owner_chain(key, 3);
    ASSERT_EQ(chain.size(), 3u) << key;
    const std::set<NodeId> distinct(chain.begin(), chain.end());
    EXPECT_EQ(distinct.size(), chain.size()) << key;
    EXPECT_EQ(chain.front(), view->owner(key)) << key;
  }
}

TEST(RingView, OwnerChainStaysDistinctAcrossEpochs) {
  ring::RingConfig config;
  config.vnodes_per_node = 200;
  config.seed = 11;
  VersionedRing versioned(config, iota_members(4), 16);
  ASSERT_TRUE(versioned.apply(RingEventType::kProbation, 1, 0).has_value());
  auto view = versioned.view();
  ASSERT_EQ(view->epoch(), 1u);

  for (int i = 0; i < 500; ++i) {
    const std::string key = "/lustre/ds/file_" + std::to_string(i);
    auto chain = view->owner_chain(key, 2);
    ASSERT_EQ(chain.size(), 2u) << key;
    EXPECT_NE(chain[0], chain[1]) << key;
    EXPECT_NE(chain[0], 1u) << key;  // removed node never owns
    EXPECT_NE(chain[1], 1u) << key;
  }
}

TEST(RingView, OwnerExcludingSkipsSuspectsWithoutEpochBurn) {
  VersionedRing versioned(make_ring_config(), iota_members(4), 16);
  auto view = versioned.view();
  bool skipped_any = false;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "/lustre/ds/file_" + std::to_string(i);
    const NodeId owner = view->owner(key);
    const NodeId rerouted =
        view->owner_excluding(key, [owner](NodeId n) { return n == owner; });
    EXPECT_NE(rerouted, owner);
    EXPECT_NE(rerouted, kInvalidNode);
    skipped_any = true;
  }
  EXPECT_TRUE(skipped_any);
  // Suspicion-style exclusion is per-lookup: the view's epoch is untouched.
  EXPECT_EQ(versioned.epoch(), 0u);
}

TEST(RingEvent, TypeNamesAndPolarity) {
  EXPECT_STREQ(ring_event_type_name(RingEventType::kJoin), "join");
  EXPECT_STREQ(ring_event_type_name(RingEventType::kProbation), "probation");
  EXPECT_STREQ(ring_event_type_name(RingEventType::kConfirmFailed),
               "confirm_failed");
  EXPECT_STREQ(ring_event_type_name(RingEventType::kReinstate), "reinstate");
  EXPECT_TRUE(ring_event_adds(RingEventType::kJoin));
  EXPECT_TRUE(ring_event_adds(RingEventType::kReinstate));
  EXPECT_FALSE(ring_event_adds(RingEventType::kProbation));
  EXPECT_FALSE(ring_event_adds(RingEventType::kConfirmFailed));
}

}  // namespace
}  // namespace ftc::membership
