#include "common/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ftc {
namespace {

TEST(Config, FromArgsParsesPairs) {
  const char* argv[] = {"nodes=64", "vnodes=100", "name=frontier"};
  auto result = Config::from_args(3, argv);
  ASSERT_TRUE(result.is_ok());
  const Config& cfg = result.value();
  EXPECT_EQ(cfg.get_int("nodes", 0), 64);
  EXPECT_EQ(cfg.get_int("vnodes", 0), 100);
  EXPECT_EQ(cfg.get_string("name", ""), "frontier");
}

TEST(Config, FromArgsRejectsBareToken) {
  const char* argv[] = {"nodes"};
  auto result = Config::from_args(1, argv);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Config, FromArgsRejectsEmptyKey) {
  const char* argv[] = {"=5"};
  auto result = Config::from_args(1, argv);
  EXPECT_FALSE(result.is_ok());
}

TEST(Config, TypedGettersWithFallbacks) {
  Config cfg;
  cfg.set("i", "42");
  cfg.set("d", "2.5");
  cfg.set("b", "true");
  cfg.set("bytes", "4GiB");
  EXPECT_EQ(cfg.get_int("i", -1), 42);
  EXPECT_EQ(cfg.get_int("missing", -1), -1);
  EXPECT_DOUBLE_EQ(cfg.get_double("d", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 9.0), 9.0);
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_FALSE(cfg.get_bool("missing", false));
  EXPECT_EQ(cfg.get_bytes("bytes", 0), 4ULL << 30);
}

TEST(Config, BoolSpellings) {
  Config cfg;
  cfg.set("a", "1");
  cfg.set("b", "yes");
  cfg.set("c", "off");
  cfg.set("d", "garbage");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_FALSE(cfg.get_bool("c", true));
  EXPECT_TRUE(cfg.get_bool("d", true));  // unparseable -> fallback
}

TEST(Config, IntList) {
  Config cfg;
  cfg.set("scales", "64,128,256,512,1024");
  const auto v = cfg.get_int_list("scales", {});
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v.front(), 64);
  EXPECT_EQ(v.back(), 1024);
  const auto fallback = cfg.get_int_list("missing", {1, 2});
  ASSERT_EQ(fallback.size(), 2u);
}

TEST(Config, HasAndOverwrite) {
  Config cfg;
  EXPECT_FALSE(cfg.has("k"));
  cfg.set("k", "1");
  EXPECT_TRUE(cfg.has("k"));
  cfg.set("k", "2");
  EXPECT_EQ(cfg.get_int("k", 0), 2);
}

TEST(Config, FromFileParsesAndIgnoresComments) {
  const std::string path = ::testing::TempDir() + "/ftc_config_test.conf";
  {
    std::ofstream out(path);
    out << "# experiment parameters\n"
        << "nodes = 1024\n"
        << "\n"
        << "vnodes = 100  # production value\n";
  }
  auto result = Config::from_file(path);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().get_int("nodes", 0), 1024);
  EXPECT_EQ(result.value().get_int("vnodes", 0), 100);
  std::remove(path.c_str());
}

TEST(Config, FromFileMissing) {
  auto result = Config::from_file("/nonexistent/path.conf");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(Config, FromFileMalformedLine) {
  const std::string path = ::testing::TempDir() + "/ftc_config_bad.conf";
  {
    std::ofstream out(path);
    out << "just a token\n";
  }
  auto result = Config::from_file(path);
  EXPECT_FALSE(result.is_ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ftc
