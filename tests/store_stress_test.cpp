// Concurrent pressure on the tiered store with the background reclaim
// thread live: mixed put/get/erase from many threads over tiers sized so
// demotion and cold eviction both fire continuously.  Run under TSan by
// scripts/sanitize.sh — the point is the lock hierarchy (DESIGN.md §14),
// not any particular hit ratio.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "store/tiered_store.hpp"

namespace ftc::store {
namespace {

StoreConfig stress_config(PolicyKind policy) {
  StoreConfig config;
  config.tiering = true;
  config.ram_bytes = 64 << 10;    // tiny tiers: constant watermark traffic
  config.nvme_bytes = 256 << 10;
  config.policy = policy;
  config.low_watermark = 0.6;
  config.high_watermark = 0.8;
  config.shards = 4;
  config.background_reclaim = true;
  return config;
}

void hammer(TieredCacheStore& store, std::uint64_t seed,
            std::atomic<std::uint64_t>& served) {
  Rng rng(seed);
  for (int op = 0; op < 2000; ++op) {
    const std::string path = "/s/" + std::to_string(rng.below(200));
    const std::uint64_t roll = rng.below(10);
    if (roll < 5) {
      const std::size_t bytes = 256 + rng.below(1024);
      ASSERT_TRUE(store
                      .put(path, common::Buffer(std::string(bytes, 'd')),
                           bytes, op)
                      .is_ok());
    } else if (roll < 9) {
      auto got = store.get(path);
      if (got.is_ok()) {
        served.fetch_add(1, std::memory_order_relaxed);
        ASSERT_FALSE(got.value().view().empty());
      }
    } else {
      store.erase(path);
    }
  }
}

void run_stress(PolicyKind policy) {
  TieredCacheStore store(stress_config(policy));
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> threads;
  for (std::uint64_t t = 0; t < 8; ++t) {
    threads.emplace_back(
        [&store, &served, t] { hammer(store, 0xFEED + t, served); });
  }
  for (auto& thread : threads) thread.join();
  store.wait_reclaimed();

  // Invariants, not performance: both tiers within budget, accounting
  // consistent, demotion actually exercised, lookups actually served.
  const StoreStats stats = store.stats_snapshot();
  EXPECT_LE(stats.ram_used_bytes, store.config().ram_bytes);
  EXPECT_LE(stats.nvme_used_bytes, store.config().nvme_bytes);
  EXPECT_EQ(stats.nvme_used_bytes, store.device().used_bytes());
  EXPECT_GT(stats.demotions, 0u);
  EXPECT_GT(stats.reclaim_runs, 0u);
  EXPECT_GT(served.load(), 0u);
  // Every surviving entry is still readable and non-empty.  (These gets
  // promote cold entries, which can themselves re-trigger reclaim, so
  // count readability only — file_count may legitimately shrink behind
  // the sweep.)
  std::size_t readable = 0;
  for (int i = 0; i < 200; ++i) {
    auto got = store.get("/s/" + std::to_string(i));
    if (got.is_ok()) {
      ++readable;
      EXPECT_FALSE(got.value().view().empty());
    }
  }
  EXPECT_GT(readable, 0u);
}

TEST(TieredStoreStress, MixedOpsUnderReclaimLru) {
  run_stress(PolicyKind::kLru);
}

TEST(TieredStoreStress, MixedOpsUnderReclaimS3Fifo) {
  run_stress(PolicyKind::kS3Fifo);
}

TEST(TieredStoreStress, MixedOpsUnderReclaimGdsf) {
  run_stress(PolicyKind::kGdsf);
}

}  // namespace
}  // namespace ftc::store
