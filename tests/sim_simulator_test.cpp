#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftc::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.executed_events(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 10);
  EXPECT_EQ(times[1], 15);
}

TEST(Simulator, NegativeDelayClampedToNow) {
  Simulator sim;
  sim.schedule(10, [] {});
  sim.run();
  bool ran = false;
  sim.schedule(-5, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, ScheduleAtPastRunsNow) {
  Simulator sim;
  sim.schedule(100, [] {});
  sim.run();
  SimTime when = -1;
  sim.schedule_at(50, [&] { when = sim.now(); });
  sim.run();
  EXPECT_EQ(when, 100);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator sim;
  const EventId id = sim.schedule(10, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIds) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(kInvalidEvent));
  EXPECT_FALSE(sim.cancel(999));  // never issued
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  sim.schedule(1, [] {});
  const EventId id = sim.schedule(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule(10, [&] { fired.push_back(10); });
  sim.schedule(20, [&] { fired.push_back(20); });
  sim.schedule(30, [&] { fired.push_back(30); });
  sim.run_until(20);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, MaxEventsBudget) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(i, [&] { ++count; });
  }
  sim.run(4);
  EXPECT_EQ(count, 4);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, ManyEventsStressOrder) {
  Simulator sim;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    sim.schedule((i * 7919) % 1000, [&] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed_events(), 10000u);
}

}  // namespace
}  // namespace ftc::sim
