#include "ring/movement_analysis.hpp"

#include <gtest/gtest.h>

#include "ring/consistent_hash_ring.hpp"
#include "ring/range_partition.hpp"

namespace ftc::ring {
namespace {

TEST(KeyPopulation, ShapeAndUniqueness) {
  const auto keys = make_key_population(100, "/data");
  ASSERT_EQ(keys.size(), 100u);
  EXPECT_EQ(keys[0], "/data/file_0000000.tfrecord");
  EXPECT_EQ(keys[42], "/data/file_0000042.tfrecord");
}

TEST(MovementAnalysis, HashRingMovesOnlyLostKeys) {
  const auto strategy = make_strategy(StrategyKind::kHashRing, 16, 100);
  const auto keys = make_key_population(5000);
  const auto report = analyze_removal(*strategy, keys, {7});
  EXPECT_EQ(report.total_keys, 5000u);
  // The defining consistent-hashing property: zero gratuitous movement.
  EXPECT_EQ(report.gratuitous_moves, 0u);
  EXPECT_EQ(report.moved_keys, report.lost_keys);
  EXPECT_GT(report.lost_keys, 0u);
  // Lost share ~ 1/16 of keys.
  EXPECT_NEAR(report.moved_fraction(), 1.0 / 16.0, 0.03);
}

TEST(MovementAnalysis, StaticModuloMovesAlmostEverything) {
  const auto strategy = make_strategy(StrategyKind::kStaticModulo, 16, 0);
  const auto keys = make_key_population(5000);
  const auto report = analyze_removal(*strategy, keys, {7});
  // hash % 16 -> hash % 15 relocates ~ 1 - 1/15 of surviving keys.
  EXPECT_GT(report.moved_fraction(), 0.8);
  EXPECT_GT(report.gratuitous_moves, report.lost_keys);
}

TEST(MovementAnalysis, MultiHashMovesOnlyLostKeys) {
  const auto strategy = make_strategy(StrategyKind::kMultiHash, 16, 0);
  const auto keys = make_key_population(5000);
  const auto report = analyze_removal(*strategy, keys, {3});
  EXPECT_EQ(report.gratuitous_moves, 0u);
  EXPECT_NEAR(report.moved_fraction(), 1.0 / 16.0, 0.03);
}

TEST(MovementAnalysis, RangePartitionRebalanceMovesSurvivors) {
  RangePartitionPlacement strategy(16, hash::Algorithm::kMurmur3_64,
                                   /*rebalance_on_failure=*/true);
  const auto keys = make_key_population(5000);
  const auto report = analyze_removal(strategy, keys, {7});
  EXPECT_GT(report.gratuitous_moves, 0u);
  EXPECT_GT(report.moved_fraction(), 1.0 / 16.0);
}

TEST(MovementAnalysis, MultipleFailures) {
  const auto strategy = make_strategy(StrategyKind::kHashRing, 16, 100);
  const auto keys = make_key_population(5000);
  const auto report = analyze_removal(*strategy, keys, {1, 2, 3});
  EXPECT_EQ(report.gratuitous_moves, 0u);
  EXPECT_NEAR(report.moved_fraction(), 3.0 / 16.0, 0.05);
  // No failed node may appear among receivers.
  for (const auto& [node, count] : report.received_by_node) {
    EXPECT_NE(node, 1u);
    EXPECT_NE(node, 2u);
    EXPECT_NE(node, 3u);
  }
}

TEST(MovementAnalysis, OriginalStrategyUntouched) {
  const auto strategy = make_strategy(StrategyKind::kHashRing, 8, 50);
  const auto keys = make_key_population(100);
  (void)analyze_removal(*strategy, keys, {0});
  EXPECT_TRUE(strategy->contains(0));
  EXPECT_EQ(strategy->node_count(), 8u);
}

TEST(MovementAnalysis, AdditionMovesOnlyOneShare) {
  const auto strategy = make_strategy(StrategyKind::kHashRing, 16, 100);
  const auto keys = make_key_population(5000);
  const auto report = analyze_addition(*strategy, keys, {16});
  // Adding the 17th node should claim ~1/17 of keys, all "moves" in the
  // diff sense, none of them unavoidable losses.
  EXPECT_EQ(report.lost_keys, 0u);
  EXPECT_NEAR(report.moved_fraction(), 1.0 / 17.0, 0.03);
  // All moved keys land on the new node.
  ASSERT_EQ(report.received_by_node.size(), 1u);
  EXPECT_EQ(report.received_by_node.begin()->first, 16u);
}

TEST(MovementAnalysis, ReceiverSpreadGrowsWithVnodes) {
  const auto keys = make_key_population(20000);
  const auto few = make_strategy(StrategyKind::kHashRing, 64, 2);
  const auto many = make_strategy(StrategyKind::kHashRing, 64, 200);
  const auto report_few = analyze_removal(*few, keys, {10});
  const auto report_many = analyze_removal(*many, keys, {10});
  EXPECT_GT(report_many.receiver_node_count(),
            report_few.receiver_node_count());
}

TEST(MovementReport, FractionHelpers) {
  MovementReport r;
  EXPECT_DOUBLE_EQ(r.moved_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(r.gratuitous_fraction(), 0.0);
  r.total_keys = 100;
  r.moved_keys = 25;
  r.gratuitous_moves = 5;
  EXPECT_DOUBLE_EQ(r.moved_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(r.gratuitous_fraction(), 0.05);
}

}  // namespace
}  // namespace ftc::ring
