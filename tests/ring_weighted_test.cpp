// Weighted membership and ring fingerprinting.
#include <gtest/gtest.h>

#include "ring/consistent_hash_ring.hpp"
#include "ring/movement_analysis.hpp"

namespace ftc::ring {
namespace {

TEST(WeightedRing, VnodeCountScalesWithWeight) {
  RingConfig config;
  config.vnodes_per_node = 100;
  ConsistentHashRing ring(config);
  ring.add_node_weighted(0, 1.0);
  ring.add_node_weighted(1, 2.0);
  ring.add_node_weighted(2, 0.5);
  EXPECT_EQ(ring.vnode_count_of(0), 100u);
  EXPECT_EQ(ring.vnode_count_of(1), 200u);
  EXPECT_EQ(ring.vnode_count_of(2), 50u);
  EXPECT_EQ(ring.vnode_count_of(99), 0u);
  EXPECT_EQ(ring.position_count(), 350u);
}

TEST(WeightedRing, ZeroWeightClampedToOneVnode) {
  RingConfig config;
  config.vnodes_per_node = 100;
  ConsistentHashRing ring(config);
  ring.add_node_weighted(0, 0.0);
  ring.add_node_weighted(1, -3.0);
  EXPECT_EQ(ring.vnode_count_of(0), 1u);
  EXPECT_EQ(ring.vnode_count_of(1), 1u);
}

TEST(WeightedRing, KeyShareTracksWeight) {
  RingConfig config;
  config.vnodes_per_node = 200;
  ConsistentHashRing ring(config);
  // Node 1 has twice the capacity of nodes 0 and 2.
  ring.add_node_weighted(0, 1.0);
  ring.add_node_weighted(1, 2.0);
  ring.add_node_weighted(2, 1.0);
  const auto keys = make_key_population(40000);
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& key : keys) ++counts[ring.owner(key)];
  // Expected shares 1/4, 1/2, 1/4 within sampling + vnode variance.
  EXPECT_NEAR(static_cast<double>(counts[0]) / keys.size(), 0.25, 0.05);
  EXPECT_NEAR(static_cast<double>(counts[1]) / keys.size(), 0.50, 0.06);
  EXPECT_NEAR(static_cast<double>(counts[2]) / keys.size(), 0.25, 0.05);
}

TEST(WeightedRing, RemovalDropsAllWeightedPositions) {
  RingConfig config;
  config.vnodes_per_node = 50;
  ConsistentHashRing ring(config);
  ring.add_node_weighted(0, 1.0);
  ring.add_node_weighted(1, 3.0);
  ring.remove_node(1);
  EXPECT_EQ(ring.vnode_count_of(1), 0u);
  EXPECT_EQ(ring.position_count(), 50u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(ring.owner("k" + std::to_string(i)), 0u);
  }
}

TEST(WeightedRing, ArcShareReflectsWeights) {
  RingConfig config;
  config.vnodes_per_node = 300;
  ConsistentHashRing ring(config);
  ring.add_node_weighted(0, 1.0);
  ring.add_node_weighted(1, 2.0);
  const auto share = ring.arc_share();
  EXPECT_NEAR(share.at(1) / share.at(0), 2.0, 0.5);
}

TEST(Fingerprint, IdenticalRingsAgree) {
  RingConfig config;
  config.vnodes_per_node = 100;
  config.seed = 42;
  const ConsistentHashRing a(16, config);
  const ConsistentHashRing b(16, config);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, DivergesOnMembership) {
  RingConfig config;
  config.seed = 42;
  ConsistentHashRing a(16, config);
  ConsistentHashRing b(16, config);
  b.remove_node(3);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b.add_node(3);  // restored membership -> identical state again
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, DivergesOnSeed) {
  RingConfig a_config;
  a_config.seed = 1;
  RingConfig b_config;
  b_config.seed = 2;
  const ConsistentHashRing a(8, a_config);
  const ConsistentHashRing b(8, b_config);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Describe, ContainsKeyFacts) {
  RingConfig config;
  config.vnodes_per_node = 10;
  config.seed = 7;
  const ConsistentHashRing ring(4, config);
  const std::string description = ring.describe();
  EXPECT_NE(description.find("nodes=4"), std::string::npos);
  EXPECT_NE(description.find("vnodes_per_node=10"), std::string::npos);
  EXPECT_NE(description.find("seed=7"), std::string::npos);
  EXPECT_NE(description.find("positions=40"), std::string::npos);
  EXPECT_NE(description.find("fingerprint="), std::string::npos);
}

}  // namespace
}  // namespace ftc::ring
