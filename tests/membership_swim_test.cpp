// MembershipAgent: the SWIM protocol end to end over the in-process
// transport — probe/indirect-probe/suspect/confirm, refutation, the
// kStaleView fast-forward handshake, and convergence under crash-stop and
// lossy-link faults (satellite: SWIM edge cases).
//
// Two styles on purpose: *deterministic* tests drive stamp_request /
// handle / ingest directly with no threads or clocks, and *convergence*
// tests tick real agents over the real transport (seeded, bounded
// iteration budgets far above the expected convergence point).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "cluster/failure_injector.hpp"
#include "membership/swim.hpp"
#include "ring/consistent_hash_ring.hpp"
#include "rpc/message.hpp"
#include "rpc/transport.hpp"

namespace ftc::membership {
namespace {

using namespace std::chrono_literals;

ring::RingConfig test_ring_config() {
  ring::RingConfig config;
  config.vnodes_per_node = 50;
  config.seed = 7;
  return config;
}

SwimConfig fast_swim() {
  // Timeouts generous enough that sanitizer slowdowns don't manufacture
  // false suspicions of alive nodes (and when they do anyway, refutation
  // has a 4-period window to clear them).
  SwimConfig config;
  config.enabled = true;
  config.background = false;
  config.probe_period = 10ms;
  config.probe_timeout = 25ms;
  config.indirect_timeout = 60ms;
  config.indirect_proxies = 2;
  config.suspicion_periods = 4;
  config.seed = 99;
  return config;
}

/// N agents over one Transport, each registered as its node's endpoint —
/// the membership plane with no cache traffic.
class SwimHarness {
 public:
  SwimHarness(std::uint32_t count, const SwimConfig& config) {
    std::vector<NodeId> members;
    for (NodeId n = 0; n < count; ++n) members.push_back(n);
    for (NodeId n = 0; n < count; ++n) {
      agents_.push_back(std::make_unique<MembershipAgent>(
          n, transport_, config, test_ring_config(), members));
    }
    for (NodeId n = 0; n < count; ++n) {
      MembershipAgent* agent = agents_[n].get();
      transport_.register_endpoint(
          n, [agent](const rpc::RpcRequest& request) {
            return agent->handle(request);
          });
    }
  }

  ~SwimHarness() {
    for (NodeId n = 0; n < agents_.size(); ++n) {
      (void)transport_.unregister_endpoint(n);
    }
    transport_.drain_async();
  }

  [[nodiscard]] rpc::Transport& transport() { return transport_; }
  [[nodiscard]] MembershipAgent& agent(NodeId n) { return *agents_[n]; }
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(agents_.size());
  }

  void tick_all() {
    for (auto& agent : agents_) agent->probe_tick();
  }

  /// Ticks until `done` holds; returns the number of rounds used, or
  /// nullopt when the budget ran out.  2ms per round: several protocol
  /// actions complete per round with the fast_swim() timeouts.
  std::optional<int> run_until(const std::function<bool()>& done,
                               int max_rounds = 800) {
    for (int round = 0; round < max_rounds; ++round) {
      if (done()) return round;
      tick_all();
      std::this_thread::sleep_for(2ms);
    }
    return done() ? std::optional<int>(max_rounds) : std::nullopt;
  }

  /// All agents except `skip` agree the serving set excludes `failed`
  /// and includes everything else, with identical epochs + fingerprints.
  [[nodiscard]] bool converged(const std::vector<NodeId>& failed) const {
    auto is_failed = [&](NodeId n) {
      return std::find(failed.begin(), failed.end(), n) != failed.end();
    };
    std::optional<std::uint64_t> epoch;
    std::optional<std::uint64_t> fingerprint;
    for (NodeId n = 0; n < agents_.size(); ++n) {
      if (is_failed(n)) continue;
      const auto view = agents_[n]->ring_view();
      for (NodeId m = 0; m < agents_.size(); ++m) {
        if (is_failed(m)) {
          if (view->contains(m)) return false;
          if (agents_[n]->member_state(m) != MemberState::kFailed) {
            return false;
          }
        } else {
          if (!view->contains(m)) return false;
          if (agents_[n]->member_state(m) != MemberState::kAlive) {
            return false;
          }
        }
      }
      if (epoch && *epoch != view->epoch()) return false;
      if (fingerprint && *fingerprint != view->fingerprint()) return false;
      epoch = view->epoch();
      fingerprint = view->fingerprint();
    }
    return true;
  }

 private:
  rpc::Transport transport_;
  std::vector<std::unique_ptr<MembershipAgent>> agents_;
};

std::uint64_t reference_fingerprint(const std::vector<NodeId>& members) {
  ring::ConsistentHashRing ring(test_ring_config());
  for (const NodeId n : members) ring.add_node(n);
  return ring.fingerprint();
}

// ---- deterministic protocol tests (no ticking, no clocks) ---------------

TEST(SwimAgent, EpochZeroViewsAgreeAcrossAgents) {
  SwimHarness harness(4, fast_swim());
  const std::uint64_t expected = reference_fingerprint({0, 1, 2, 3});
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(harness.agent(n).epoch(), 0u);
    EXPECT_EQ(harness.agent(n).ring_fingerprint(), expected);
  }
}

TEST(SwimAgent, FalseSuspicionIsRefutedThroughThePingItRodeOn) {
  SwimHarness harness(4, fast_swim());
  // Agent 0's local evidence (a FaultDetector verdict) suspects node 2.
  harness.agent(0).suspect(2);
  EXPECT_TRUE(harness.agent(0).is_suspect(2));

  // The rumor piggybacks on agent 0's next probe...
  rpc::RpcRequest ping;
  ping.op = rpc::Op::kSwimPing;
  ping.client_node = 0;
  harness.agent(0).stamp_request(ping);
  ASSERT_FALSE(ping.gossip.empty());

  // ...and node 2, folding the request before stamping its ack, refutes
  // by minting a higher incarnation.  The ack already carries the proof.
  const rpc::RpcResponse ack = harness.agent(2).handle(ping);
  EXPECT_EQ(harness.agent(2).incarnation(2), 1u);
  EXPECT_GE(harness.agent(2).stats_snapshot().refutations, 1u);

  (void)harness.agent(0).ingest(ack);
  EXPECT_FALSE(harness.agent(0).is_suspect(2));
  EXPECT_EQ(harness.agent(0).member_state(2), MemberState::kAlive);
  EXPECT_EQ(harness.agent(0).incarnation(2), 1u);
  // Suspicion never burns an epoch: both views are still epoch 0.
  EXPECT_EQ(harness.agent(0).epoch(), 0u);
  EXPECT_EQ(harness.agent(2).epoch(), 0u);
}

TEST(SwimAgent, IngestHonorsIncarnationTieBreaks) {
  SwimHarness harness(4, fast_swim());
  MembershipAgent& agent = harness.agent(0);

  auto claim_response = [](NodeId subject, std::uint8_t state,
                           std::uint64_t incarnation) {
    rpc::RpcResponse response;
    response.code = StatusCode::kOk;
    response.gossip.push_back(rpc::MembershipClaim{subject, state, incarnation});
    return response;
  };

  // suspect(3, 5) lands...
  (void)agent.ingest(claim_response(3, /*suspect=*/1, 5));
  EXPECT_TRUE(agent.is_suspect(3));
  // ...alive at the SAME incarnation does not clear it...
  (void)agent.ingest(claim_response(3, /*alive=*/0, 5));
  EXPECT_TRUE(agent.is_suspect(3));
  // ...a strictly higher incarnation (the subject's refutation) does.
  (void)agent.ingest(claim_response(3, /*alive=*/0, 6));
  EXPECT_FALSE(agent.is_suspect(3));
  EXPECT_EQ(agent.incarnation(3), 6u);
  // Stale gossip after the fact is a no-op.
  const std::uint64_t applied_before =
      agent.stats_snapshot().claims_applied;
  (void)agent.ingest(claim_response(3, /*suspect=*/1, 5));
  EXPECT_EQ(agent.stats_snapshot().claims_applied, applied_before);
}

TEST(SwimAgent, StaleViewHintShipsDeltaAndFastForwardsInOneRoundTrip) {
  SwimHarness harness(4, fast_swim());

  // Make agent 1 one epoch ahead: it learns (via gossip) that node 3 is
  // confirmed failed.
  rpc::RpcResponse rumor;
  rumor.code = StatusCode::kOk;
  rumor.gossip.push_back(rpc::MembershipClaim{3, /*failed=*/2, 0});
  (void)harness.agent(1).ingest(rumor);
  ASSERT_EQ(harness.agent(1).epoch(), 1u);

  // Agent 0 (still at epoch 0) pings agent 1.
  rpc::RpcRequest ping;
  ping.op = rpc::Op::kSwimPing;
  ping.client_node = 0;
  harness.agent(0).stamp_request(ping);
  ASSERT_EQ(ping.ring_epoch, 0u);

  const rpc::RpcResponse ack = harness.agent(1).handle(ping);
  EXPECT_EQ(ack.view_hint, rpc::ViewHint::kStaleView);
  EXPECT_EQ(ack.ring_epoch, 1u);
  ASSERT_EQ(ack.view_delta.size(), 1u);
  EXPECT_EQ(ack.view_delta[0].epoch, 1u);
  EXPECT_EQ(ack.view_delta[0].node, 3u);

  const auto events = harness.agent(0).ingest(ack);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, RingEventType::kProbation);
  EXPECT_EQ(events[0].epoch, 1u);
  EXPECT_EQ(harness.agent(0).epoch(), 1u);
  EXPECT_FALSE(harness.agent(0).ring_view()->contains(3));
  EXPECT_EQ(harness.agent(0).ring_fingerprint(),
            harness.agent(1).ring_fingerprint());

  const auto sender = harness.agent(1).stats_snapshot();
  EXPECT_EQ(sender.stale_view_hints_sent, 1u);
  EXPECT_EQ(sender.deltas_served, 1u);
  EXPECT_EQ(harness.agent(0).stats_snapshot().fast_forwards, 1u);
}

TEST(SwimAgent, TruncatedEventLogFallsBackToFullSync) {
  SwimConfig config = fast_swim();
  config.event_log_capacity = 1;
  SwimHarness harness(6, config);

  // Agent 1 races three epochs ahead; its 1-slot log only keeps the last.
  for (NodeId victim = 3; victim < 6; ++victim) {
    rpc::RpcResponse rumor;
    rumor.code = StatusCode::kOk;
    rumor.gossip.push_back(rpc::MembershipClaim{victim, /*failed=*/2, 0});
    (void)harness.agent(1).ingest(rumor);
  }
  ASSERT_EQ(harness.agent(1).epoch(), 3u);

  rpc::RpcRequest ping;
  ping.op = rpc::Op::kSwimPing;
  ping.client_node = 0;
  harness.agent(0).stamp_request(ping);

  const rpc::RpcResponse ack = harness.agent(1).handle(ping);
  EXPECT_EQ(ack.view_hint, rpc::ViewHint::kStaleView);
  EXPECT_TRUE(ack.view_delta.empty());
  // The full-state claim dump replaces piggybacked gossip.
  EXPECT_EQ(ack.gossip.size(), 6u);
  EXPECT_EQ(harness.agent(1).stats_snapshot().full_syncs_served, 1u);

  (void)harness.agent(0).ingest(ack);
  EXPECT_EQ(harness.agent(0).epoch(), 3u);
  EXPECT_EQ(harness.agent(0).ring_fingerprint(),
            harness.agent(1).ring_fingerprint());
  EXPECT_EQ(harness.agent(0).ring_view()->node_count(), 3u);
}

TEST(SwimAgent, MembershipSyncAlwaysShipsFullState) {
  SwimHarness harness(4, fast_swim());
  rpc::RpcResponse rumor;
  rumor.code = StatusCode::kOk;
  rumor.gossip.push_back(rpc::MembershipClaim{2, /*failed=*/2, 0});
  (void)harness.agent(1).ingest(rumor);

  rpc::RpcRequest sync;
  sync.op = rpc::Op::kMembershipSync;
  sync.client_node = 0;
  harness.agent(0).stamp_request(sync);
  const rpc::RpcResponse reply = harness.agent(1).handle(sync);
  EXPECT_EQ(reply.code, StatusCode::kOk);
  EXPECT_EQ(reply.view_hint, rpc::ViewHint::kStaleView);
  EXPECT_EQ(reply.gossip.size(), 4u);

  (void)harness.agent(0).ingest(reply);
  EXPECT_EQ(harness.agent(0).epoch(), harness.agent(1).epoch());
  EXPECT_EQ(harness.agent(0).ring_fingerprint(),
            harness.agent(1).ring_fingerprint());
}

TEST(SwimAgent, PingReqAcceptsImmediatelyAndPushesVerdict) {
  // kSwimPingReq must never block the proxy's worker on the nested ping:
  // the handler replies "accepted" at once, pings the subject on the
  // async pool, and pushes the outcome back as a kSwimVerdict RPC.
  SwimHarness harness(3, fast_swim());
  rpc::RpcRequest indirect;
  indirect.op = rpc::Op::kSwimPingReq;
  indirect.client_node = 0;
  indirect.subject = 2;
  harness.agent(0).stamp_request(indirect);

  // Subject reachable: accept now, positive verdict later.
  EXPECT_EQ(harness.agent(1).handle(indirect).code, StatusCode::kOk);
  harness.transport().drain_async();
  EXPECT_EQ(harness.agent(1).stats_snapshot().verdicts_sent, 1u);
  auto origin = harness.agent(0).stats_snapshot();
  EXPECT_EQ(origin.verdicts_received, 1u);
  EXPECT_EQ(origin.verdicts_unreachable, 0u);

  // Subject killed: the accept is unchanged (the proxy's own liveness is
  // not in question); the pushed verdict reports the failure.
  harness.transport().kill(2);
  rpc::RpcRequest again = indirect;
  harness.agent(0).stamp_request(again);
  EXPECT_EQ(harness.agent(1).handle(again).code, StatusCode::kOk);
  harness.transport().drain_async();
  EXPECT_EQ(harness.agent(1).stats_snapshot().verdicts_sent, 2u);
  origin = harness.agent(0).stats_snapshot();
  EXPECT_EQ(origin.verdicts_received, 2u);
  EXPECT_EQ(origin.verdicts_unreachable, 1u);
}

TEST(SwimAgent, NonMembershipOpsAreRejected) {
  SwimHarness harness(2, fast_swim());
  rpc::RpcRequest read;
  read.op = rpc::Op::kReadFile;
  read.path = "/some/file";
  EXPECT_EQ(harness.agent(1).handle(read).code,
            StatusCode::kInvalidArgument);
}

// ---- convergence tests (real transport, real timeouts) ------------------

TEST(SwimConvergence, SingleKillConvergesOnAllSurvivors) {
  SwimHarness harness(5, fast_swim());
  harness.transport().kill(3);

  const auto rounds = harness.run_until([&] { return harness.converged({3}); });
  ASSERT_TRUE(rounds.has_value()) << "no convergence within budget";

  const std::uint64_t expected = reference_fingerprint({0, 1, 2, 4});
  for (NodeId n = 0; n < 5; ++n) {
    if (n == 3) continue;
    EXPECT_GE(harness.agent(n).epoch(), 1u);
    EXPECT_EQ(harness.agent(n).ring_fingerprint(), expected);
    EXPECT_FALSE(harness.agent(n).is_serving(3));
  }
  // At least one survivor did the detective work; the rest learned by
  // gossip or fast-forward.
  std::uint64_t confirms = 0;
  std::uint64_t probes = 0;
  for (NodeId n = 0; n < 5; ++n) {
    if (n == 3) continue;
    const auto stats = harness.agent(n).stats_snapshot();
    confirms += stats.confirms;
    probes += stats.probes_sent;
  }
  EXPECT_GE(confirms, 1u);
  EXPECT_GE(probes, 1u);
}

TEST(SwimConvergence, SimultaneousDoubleKillConverges) {
  SwimHarness harness(6, fast_swim());
  harness.transport().kill(2);
  harness.transport().kill(4);

  const auto rounds =
      harness.run_until([&] { return harness.converged({2, 4}); });
  ASSERT_TRUE(rounds.has_value()) << "no convergence within budget";

  const std::uint64_t expected = reference_fingerprint({0, 1, 3, 5});
  for (const NodeId n : {0u, 1u, 3u, 5u}) {
    EXPECT_GE(harness.agent(n).epoch(), 2u);
    EXPECT_EQ(harness.agent(n).ring_fingerprint(), expected);
  }
}

TEST(SwimConvergence, RefutationWinsOverLiveSuspicion) {
  // Suspicion window long enough that the (alive) suspect always refutes
  // before confirmation.
  SwimConfig config = fast_swim();
  config.suspicion_periods = 200;
  SwimHarness harness(4, config);

  harness.agent(0).suspect(2);
  const auto rounds = harness.run_until(
      [&] { return harness.agent(0).member_state(2) == MemberState::kAlive; });
  ASSERT_TRUE(rounds.has_value()) << "refutation never propagated";
  EXPECT_GE(harness.agent(2).stats_snapshot().refutations, 1u);
  EXPECT_GE(harness.agent(0).incarnation(2), 1u);
  // The suspicion never matured: no serving-set change anywhere.
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(harness.agent(n).epoch(), 0u);
  }
}

TEST(SwimConvergence, KilledNodeRefutesAfterReviveAndIsReinstated) {
  SwimHarness harness(4, fast_swim());
  harness.transport().kill(2);
  ASSERT_TRUE(
      harness.run_until([&] { return harness.converged({2}); }).has_value());

  // SLURM hands the drained node back.  Its own probes draw kStaleView
  // deltas carrying failed(self); the refutation gossips back out and the
  // survivors reinstate it.
  harness.transport().revive(2);
  const auto rounds = harness.run_until([&] { return harness.converged({}); });
  ASSERT_TRUE(rounds.has_value()) << "no reinstatement within budget";

  EXPECT_EQ(harness.agent(0).ring_fingerprint(),
            reference_fingerprint({0, 1, 2, 3}));
  EXPECT_GE(harness.agent(2).stats_snapshot().refutations, 1u);
  std::uint64_t reinstatements = 0;
  for (NodeId n = 0; n < 4; ++n) {
    reinstatements += harness.agent(n).stats_snapshot().reinstatements;
  }
  EXPECT_GE(reinstatements, 1u);
}

TEST(SwimConvergence, GossipConvergesOverLossyLinks) {
  // Satellite: gossip under GrayFailureInjector drops.  Node 1's inbound
  // link drops 25% of requests (seeded); node 4 is crash-stopped.  The
  // protocol must still converge — indirect probes absorb the drops, and
  // any false suspicion of node 1 is refuted or repaired by
  // reinstatement.
  SwimConfig config = fast_swim();
  config.suspicion_periods = 10;
  SwimHarness harness(5, config);
  cluster::GrayFailureInjector chaos(harness.transport(), /*seed=*/42);
  chaos.make_lossy(1, 0.25);
  chaos.kill(4);

  const auto rounds =
      harness.run_until([&] { return harness.converged({4}); }, 1200);
  ASSERT_TRUE(rounds.has_value()) << "no convergence under lossy links";
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_TRUE(harness.agent(n).is_serving(1));
    EXPECT_FALSE(harness.agent(n).is_serving(4));
  }
}

TEST(SwimConvergence, DeadNodeNeverArguesItsOwnCase) {
  // A killed node's outbound path still works in the harness; the agent
  // must self-gate instead of refuting its own death through gossip.
  SwimHarness harness(4, fast_swim());
  harness.transport().kill(1);
  ASSERT_TRUE(
      harness.run_until([&] { return harness.converged({1}); }).has_value());

  // Keep ticking everyone — including the dead node's agent — and verify
  // the confirmation sticks.
  for (int i = 0; i < 50; ++i) {
    harness.tick_all();
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(harness.converged({1}));
  EXPECT_EQ(harness.agent(1).stats_snapshot().refutations, 0u);
  EXPECT_EQ(harness.agent(1).stats_snapshot().probes_sent, 0u);
}

// --- Partition tolerance: quorum suspicion + verdict idempotence --------

TEST(SwimQuorum, MinorityBelowQuorumDefersConfirmForever) {
  // 5 members, quorum 3, symmetric split {0,1} | {2,3,4}: the minority
  // pair can muster only 2 distinct accusers against any majority node,
  // so neither may originate a confirmation — the majority stays suspect,
  // still in the minority's serving set, and the held attempts are
  // counted.  (The quorum is capped at serving-peers-minus-one so a
  // 3-node cluster is never deadlocked; a 2-of-5 minority sits below
  // even that cap, which is exactly the split-brain guarantee.)
  SwimConfig config = fast_swim();
  config.suspicion_quorum = 3;
  SwimHarness harness(5, config);
  cluster::GrayFailureInjector injector(harness.transport(), /*seed=*/13);
  injector.partition({0, 1}, {2, 3, 4});

  const auto deferred = [&] {
    return harness.agent(0).stats_snapshot().confirms_deferred +
               harness.agent(1).stats_snapshot().confirms_deferred >
           0;
  };
  ASSERT_TRUE(harness.run_until(deferred).has_value());
  // Give the protocol ample extra time to (wrongly) confirm.
  for (int i = 0; i < 80; ++i) {
    harness.tick_all();
    std::this_thread::sleep_for(1ms);
  }
  for (NodeId minority = 0; minority < 2; ++minority) {
    for (NodeId majority = 2; majority < 5; ++majority) {
      EXPECT_NE(harness.agent(minority).member_state(majority),
                MemberState::kFailed)
          << "agent " << minority << " confirmed " << majority
          << " without quorum";
      EXPECT_TRUE(harness.agent(minority).is_serving(majority));
    }
  }
}

TEST(SwimQuorum, QuorumOfDistinctAccusersConfirms) {
  // 4 members, quorum 3: three survivors are exactly enough accusers, so
  // the legitimate confirmation still goes through (dead node excluded,
  // survivors converge).
  SwimConfig config = fast_swim();
  config.suspicion_quorum = 3;
  SwimHarness harness(4, config);
  harness.transport().kill(3);
  ASSERT_TRUE(
      harness.run_until([&] { return harness.converged({3}); }).has_value());
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(harness.agent(n).member_state(3), MemberState::kFailed);
  }
}

TEST(SwimVerdict, DuplicatedDeliveryIsIdempotent) {
  // At-least-once fabric: every RPC delivered to node 0 arrives twice,
  // including the kSwimVerdict pushes from indirect-probe proxies.  A
  // re-delivered verdict must not spend the proxy's round slot twice —
  // one proxy's opinion counting as two would suspect a node on a single
  // witness.  The protocol must still converge normally, and the dedup
  // must be visible in the counter.
  SwimConfig config = fast_swim();
  SwimHarness harness(4, config);
  cluster::GrayFailureInjector chaos(harness.transport(), /*seed=*/21);
  chaos.make_duplicating(0, 1.0);
  harness.transport().kill(3);
  ASSERT_TRUE(
      harness.run_until([&] { return harness.converged({3}); }).has_value());
  EXPECT_GT(harness.agent(0).stats_snapshot().duplicate_verdicts, 0u);
  // Idempotence means the duplicated protocol reached the same verdict as
  // the exactly-once one: node 3 confirmed, everyone else untouched.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(harness.agent(0).member_state(n), MemberState::kAlive);
  }
}

TEST(SwimConfigTest, ValidateRejectsNonsense) {
  SwimConfig config;
  EXPECT_TRUE(config.validate().is_ok());
  config.probe_period = 0ms;
  EXPECT_FALSE(config.validate().is_ok());
  config = SwimConfig{};
  config.indirect_timeout = config.probe_timeout - 1ms;
  EXPECT_FALSE(config.validate().is_ok());
  config = SwimConfig{};
  config.suspicion_periods = 0;
  EXPECT_FALSE(config.validate().is_ok());
  config = SwimConfig{};
  config.suspicion_quorum = 0;
  EXPECT_FALSE(config.validate().is_ok());
  config = SwimConfig{};
  config.max_piggyback = 0;
  EXPECT_FALSE(config.validate().is_ok());
  config = SwimConfig{};
  config.event_log_capacity = 0;
  EXPECT_FALSE(config.validate().is_ok());
}

}  // namespace
}  // namespace ftc::membership
