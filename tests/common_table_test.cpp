#include "common/table.hpp"

#include <gtest/gtest.h>

namespace ftc {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Nodes", "Time (min)"});
  t.add_row({"64", "12.5"});
  t.add_row({"1024", "3.2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Nodes | Time (min) |"), std::string::npos);
  EXPECT_NE(s.find("| 64    | 12.5       |"), std::string::npos);
  EXPECT_NE(s.find("| 1024  | 3.2        |"), std::string::npos);
}

TEST(TextTable, RowCount) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("only"), std::string::npos);  // renders without crash
}

TEST(TextTable, AddRowValuesFormatsDecimals) {
  TextTable t({"x", "y"});
  t.add_row_values({1.23456, 2.0}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, CsvHeaderAndRows) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace ftc
