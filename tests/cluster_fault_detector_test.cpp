#include "cluster/fault_detector.hpp"

#include <gtest/gtest.h>

namespace ftc::cluster {
namespace {

TEST(FaultDetector, FlagsAtThreshold) {
  FaultDetector detector(3);
  EXPECT_FALSE(detector.record_timeout(1));
  EXPECT_FALSE(detector.record_timeout(1));
  EXPECT_TRUE(detector.record_timeout(1));  // transition exactly here
  EXPECT_TRUE(detector.is_failed(1));
}

TEST(FaultDetector, TransitionReportedOnce) {
  FaultDetector detector(1);
  EXPECT_TRUE(detector.record_timeout(5));
  EXPECT_FALSE(detector.record_timeout(5));  // already failed
  EXPECT_TRUE(detector.is_failed(5));
}

TEST(FaultDetector, SuccessResetsCounter) {
  FaultDetector detector(2);
  detector.record_timeout(3);
  detector.record_success(3);  // transient delay resolved
  EXPECT_FALSE(detector.record_timeout(3));  // counter restarted at 1
  EXPECT_EQ(detector.timeout_count(3), 1u);
  EXPECT_FALSE(detector.is_failed(3));
  EXPECT_EQ(detector.suppressed_false_positives(), 1u);
}

TEST(FaultDetector, FailureIsSticky) {
  FaultDetector detector(1);
  detector.record_timeout(2);
  detector.record_success(2);  // too late; crash-stop model
  EXPECT_TRUE(detector.is_failed(2));
}

TEST(FaultDetector, IndependentCounters) {
  FaultDetector detector(2);
  detector.record_timeout(1);
  detector.record_timeout(2);
  EXPECT_EQ(detector.timeout_count(1), 1u);
  EXPECT_EQ(detector.timeout_count(2), 1u);
  EXPECT_FALSE(detector.is_failed(1));
  EXPECT_FALSE(detector.is_failed(2));
}

TEST(FaultDetector, ZeroLimitClampedToOne) {
  FaultDetector detector(0);
  EXPECT_EQ(detector.timeout_limit(), 1u);
  EXPECT_TRUE(detector.record_timeout(7));
}

TEST(FaultDetector, FailedNodesList) {
  FaultDetector detector(1);
  detector.record_timeout(4);
  detector.record_timeout(9);
  const auto failed = detector.failed_nodes();
  EXPECT_EQ(failed.size(), 2u);
  EXPECT_EQ(detector.failed_count(), 2u);
}

TEST(FaultDetector, TotalTimeoutsAccumulate) {
  FaultDetector detector(2);
  detector.record_timeout(1);
  detector.record_timeout(1);
  detector.record_timeout(1);  // post-failure timeouts still counted
  EXPECT_EQ(detector.total_timeouts(), 3u);
}

TEST(FaultDetector, SuccessForUnknownNodeIsNoop) {
  FaultDetector detector(2);
  detector.record_success(8);
  EXPECT_EQ(detector.suppressed_false_positives(), 0u);
}

}  // namespace
}  // namespace ftc::cluster
