#include "cluster/fault_detector.hpp"

#include <gtest/gtest.h>

namespace ftc::cluster {
namespace {

TEST(FaultDetector, FlagsAtThreshold) {
  FaultDetector detector(3);
  EXPECT_FALSE(detector.record_timeout(1));
  EXPECT_FALSE(detector.record_timeout(1));
  EXPECT_TRUE(detector.record_timeout(1));  // transition exactly here
  EXPECT_TRUE(detector.is_failed(1));
}

TEST(FaultDetector, TransitionReportedOnce) {
  FaultDetector detector(1);
  EXPECT_TRUE(detector.record_timeout(5));
  EXPECT_FALSE(detector.record_timeout(5));  // already failed
  EXPECT_TRUE(detector.is_failed(5));
}

TEST(FaultDetector, SuccessResetsCounter) {
  FaultDetector detector(2);
  detector.record_timeout(3);
  detector.record_success(3);  // transient delay resolved
  EXPECT_FALSE(detector.record_timeout(3));  // counter restarted at 1
  EXPECT_EQ(detector.timeout_count(3), 1u);
  EXPECT_FALSE(detector.is_failed(3));
  EXPECT_EQ(detector.suppressed_false_positives(), 1u);
}

TEST(FaultDetector, FailureIsSticky) {
  FaultDetector detector(1);
  detector.record_timeout(2);
  detector.record_success(2);  // too late; crash-stop model
  EXPECT_TRUE(detector.is_failed(2));
}

TEST(FaultDetector, IndependentCounters) {
  FaultDetector detector(2);
  detector.record_timeout(1);
  detector.record_timeout(2);
  EXPECT_EQ(detector.timeout_count(1), 1u);
  EXPECT_EQ(detector.timeout_count(2), 1u);
  EXPECT_FALSE(detector.is_failed(1));
  EXPECT_FALSE(detector.is_failed(2));
}

TEST(FaultDetector, ZeroLimitClampedToOne) {
  FaultDetector detector(0);
  EXPECT_EQ(detector.timeout_limit(), 1u);
  EXPECT_TRUE(detector.record_timeout(7));
}

TEST(FaultDetector, FailedNodesList) {
  FaultDetector detector(1);
  detector.record_timeout(4);
  detector.record_timeout(9);
  const auto failed = detector.failed_nodes();
  EXPECT_EQ(failed.size(), 2u);
  EXPECT_EQ(detector.failed_count(), 2u);
}

TEST(FaultDetector, TotalTimeoutsAccumulate) {
  FaultDetector detector(2);
  detector.record_timeout(1);
  detector.record_timeout(1);
  detector.record_timeout(1);  // post-failure timeouts still counted
  EXPECT_EQ(detector.total_timeouts(), 3u);
}

TEST(FaultDetector, SuccessForUnknownNodeIsNoop) {
  FaultDetector detector(2);
  detector.record_success(8);
  EXPECT_EQ(detector.suppressed_false_positives(), 0u);
}

using Clock = FaultDetector::Clock;
using std::chrono::milliseconds;

FaultDetector::Options reinstating_options() {
  return FaultDetector::Options{.timeout_limit = 2,
                                .allow_reinstatement = true,
                                .probe_backoff = milliseconds(50),
                                .probe_backoff_cap = milliseconds(400),
                                .max_flaps = 2};
}

/// Trips the timeout limit for `node` at `now` (2 timeouts with the
/// options above) and asserts the out-of-service transition fired.
void trip_limit(FaultDetector& detector, NodeId node, Clock::time_point now) {
  ASSERT_FALSE(detector.record_timeout(node, now));
  ASSERT_TRUE(detector.record_timeout(node, now));
}

TEST(FaultDetectorBackoff, ProbeBackoffDoublesAndStaysCapped) {
  // A node that never answers its reinstatement probes must not push its
  // own probe deadline out without bound: the backoff doubles per failed
  // probe but saturates at probe_backoff_cap, so probing slows to the cap
  // cadence and never stops.
  FaultDetector detector(reinstating_options());
  const Clock::time_point t0{};
  trip_limit(detector, 1, t0);
  ASSERT_EQ(detector.health(1), NodeHealth::kProbation);

  // First probe is due one base backoff after probation entry — not a
  // moment earlier.
  EXPECT_TRUE(detector.probe_candidates(t0 + milliseconds(49)).empty());
  EXPECT_EQ(detector.probe_candidates(t0 + milliseconds(50)),
            std::vector<NodeId>{1});

  // Eight consecutive probe failures: 100, 200, 400, then pinned at the
  // 400ms cap forever after.
  for (std::uint32_t failures = 1; failures <= 8; ++failures) {
    const auto now = t0 + milliseconds(1000) * failures;
    detector.record_probe_failure(1, now);
    const auto expected =
        std::min(milliseconds(50 << failures), milliseconds(400));
    EXPECT_TRUE(detector.probe_candidates(now + expected - milliseconds(1))
                    .empty())
        << "probe " << failures << " due too early";
    EXPECT_EQ(detector.probe_candidates(now + expected),
              std::vector<NodeId>{1})
        << "probe " << failures << " due later than the cap allows";
  }
  // Still probation, never terminal: the cap bounds cadence, not patience.
  EXPECT_EQ(detector.health(1), NodeHealth::kProbation);
}

TEST(FaultDetectorBackoff, ProbeLaunchSuppressesDuplicates) {
  FaultDetector detector(reinstating_options());
  const Clock::time_point t0{};
  trip_limit(detector, 4, t0);
  const auto due = t0 + milliseconds(50);
  ASSERT_EQ(detector.probe_candidates(due), std::vector<NodeId>{4});

  // Launching pessimistically reschedules as if the probe will fail, so a
  // back-to-back candidate scan cannot launch a second probe.
  detector.record_probe_launch(4, due);
  EXPECT_TRUE(detector.probe_candidates(due).empty());
  // The pessimistic deadline is one doubled step out (100ms), not the
  // base: a success before then reinstates and makes it moot.
  EXPECT_EQ(detector.probe_candidates(due + milliseconds(100)),
            std::vector<NodeId>{4});

  EXPECT_TRUE(detector.record_probe_success(4));
  EXPECT_EQ(detector.health(4), NodeHealth::kHealthy);
  EXPECT_TRUE(detector.probe_candidates(due + milliseconds(1000)).empty());
}

TEST(FaultDetectorBackoff, ReentryRestartsBackoffFromBase) {
  // A reinstated node that trips the limit again starts a FRESH backoff
  // ladder — probation re-entry must not inherit the escalated schedule
  // from the previous episode (the node did come back, after all).
  FaultDetector detector(reinstating_options());
  const Clock::time_point t0{};
  trip_limit(detector, 2, t0);
  detector.record_probe_failure(2, t0 + milliseconds(100));
  detector.record_probe_failure(2, t0 + milliseconds(300));
  ASSERT_TRUE(detector.record_probe_success(2));

  const auto t1 = t0 + milliseconds(5000);
  trip_limit(detector, 2, t1);
  EXPECT_TRUE(detector.probe_candidates(t1 + milliseconds(49)).empty());
  EXPECT_EQ(detector.probe_candidates(t1 + milliseconds(50)),
            std::vector<NodeId>{2});
}

TEST(FaultDetectorBackoff, RepeatedFlapsEscalateToTerminalFailure) {
  // The flap schedule: fail -> reinstate -> fail, repeatedly.  Each
  // probation re-entry is counted, and past max_flaps the node is
  // declared terminally dead — a flapper thrashes ring ownership on every
  // cycle, which is worse than staying down.
  FaultDetector detector(reinstating_options());  // max_flaps = 2
  const Clock::time_point t0{};

  trip_limit(detector, 7, t0);  // episode 1
  ASSERT_TRUE(detector.record_probe_success(7));
  EXPECT_EQ(detector.flap_count(7), 1u);

  trip_limit(detector, 7, t0 + milliseconds(1000));  // episode 2: flapping
  EXPECT_EQ(detector.health(7), NodeHealth::kProbation);
  ASSERT_TRUE(detector.record_probe_success(7));
  EXPECT_EQ(detector.flap_count(7), 2u);
  EXPECT_EQ(detector.reinstatements(), 2u);

  // Third trip: flap budget exhausted, straight to kFailed, and no probe
  // is ever scheduled again.
  trip_limit(detector, 7, t0 + milliseconds(2000));
  EXPECT_EQ(detector.health(7), NodeHealth::kFailed);
  EXPECT_TRUE(detector.is_failed(7));
  EXPECT_TRUE(detector.probe_candidates(t0 + milliseconds(60000)).empty());
  EXPECT_FALSE(detector.record_probe_success(7));  // dead is dead
  EXPECT_TRUE(detector.is_failed(7));

  // Only the membership layer's cluster-wide verdict outranks history.
  detector.reset_node(7);
  EXPECT_EQ(detector.health(7), NodeHealth::kHealthy);
  EXPECT_EQ(detector.flap_count(7), 0u);
}

}  // namespace
}  // namespace ftc::cluster
