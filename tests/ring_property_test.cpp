// Property-based sweeps over the placement strategies: invariants that must
// hold for every (strategy, node count, vnode count) combination.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "ring/consistent_hash_ring.hpp"
#include "ring/movement_analysis.hpp"
#include "ring/placement.hpp"

namespace ftc::ring {
namespace {

using PropertyParam = std::tuple<StrategyKind, std::uint32_t /*nodes*/,
                                 std::uint32_t /*vnodes*/>;

class PlacementProperty : public ::testing::TestWithParam<PropertyParam> {
 protected:
  [[nodiscard]] std::unique_ptr<PlacementStrategy> build() const {
    const auto [kind, nodes, vnodes] = GetParam();
    return make_strategy(kind, nodes, vnodes);
  }
  [[nodiscard]] std::uint32_t node_count() const {
    return std::get<1>(GetParam());
  }
};

TEST_P(PlacementProperty, OwnerAlwaysWithinMembership) {
  const auto strategy = build();
  const auto keys = make_key_population(500);
  for (const auto& key : keys) {
    EXPECT_LT(strategy->owner(key), node_count());
  }
}

TEST_P(PlacementProperty, OwnerIsDeterministic) {
  const auto strategy = build();
  const auto keys = make_key_population(200);
  for (const auto& key : keys) {
    EXPECT_EQ(strategy->owner(key), strategy->owner(key));
  }
}

TEST_P(PlacementProperty, RemovalNeverAssignsToDeadNode) {
  const auto strategy = build();
  const NodeId victim = node_count() / 2;
  strategy->remove_node(victim);
  const auto keys = make_key_population(500);
  for (const auto& key : keys) {
    EXPECT_NE(strategy->owner(key), victim);
  }
}

TEST_P(PlacementProperty, SequentialFailuresKeepValidOwners) {
  const auto strategy = build();
  const auto keys = make_key_population(200);
  // Kill half the nodes one at a time; ownership must stay within the
  // survivors at every step.
  for (NodeId victim = 0; victim < node_count() / 2; ++victim) {
    strategy->remove_node(victim);
    const auto alive = strategy->nodes();
    const std::set<NodeId> alive_set(alive.begin(), alive.end());
    for (const auto& key : keys) {
      EXPECT_TRUE(alive_set.contains(strategy->owner(key)));
    }
  }
}

TEST_P(PlacementProperty, ReAddingRestoresMembership) {
  const auto strategy = build();
  const NodeId victim = 1;
  strategy->remove_node(victim);
  strategy->add_node(victim);
  EXPECT_TRUE(strategy->contains(victim));
  EXPECT_EQ(strategy->node_count(), node_count());
}

TEST_P(PlacementProperty, LoadRoughlyBalancedBeforeFailure) {
  const auto strategy = build();
  const auto keys = make_key_population(20000);
  std::vector<std::size_t> counts(node_count(), 0);
  for (const auto& key : keys) ++counts[strategy->owner(key)];
  const double mean =
      static_cast<double>(keys.size()) / static_cast<double>(node_count());
  for (std::size_t c : counts) {
    // Bound is loose: the hash ring with few vnodes has real variance, but
    // no node may be starved or overloaded by an order of magnitude.
    EXPECT_GT(static_cast<double>(c), mean * 0.2);
    EXPECT_LT(static_cast<double>(c), mean * 4.0);
  }
}

TEST_P(PlacementProperty, CloneBehavesIdentically) {
  const auto strategy = build();
  strategy->remove_node(0);
  const auto clone = strategy->clone();
  const auto keys = make_key_population(300);
  for (const auto& key : keys) {
    EXPECT_EQ(strategy->owner(key), clone->owner(key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndScales, PlacementProperty,
    ::testing::Combine(
        ::testing::Values(StrategyKind::kHashRing, StrategyKind::kStaticModulo,
                          StrategyKind::kMultiHash,
                          StrategyKind::kRangePartition),
        ::testing::Values<std::uint32_t>(4, 16, 64),
        ::testing::Values<std::uint32_t>(10, 100)),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      return std::string(strategy_kind_name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_v" +
             std::to_string(std::get<2>(info.param));
    });

// Ring-only invariant sweep: minimal movement must hold for every scale.
class RingMinimalMovement
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(RingMinimalMovement, NoGratuitousMovesOnFailure) {
  const auto [nodes, vnodes] = GetParam();
  RingConfig config;
  config.vnodes_per_node = vnodes;
  const ConsistentHashRing ring(nodes, config);
  const auto keys = make_key_population(3000);
  const auto report = analyze_removal(ring, keys, {nodes / 3});
  EXPECT_EQ(report.gratuitous_moves, 0u)
      << "consistent hashing must move only the failed node's keys";
}

TEST_P(RingMinimalMovement, NoMovesOnAdditionBeyondNewShare) {
  const auto [nodes, vnodes] = GetParam();
  RingConfig config;
  config.vnodes_per_node = vnodes;
  const ConsistentHashRing ring(nodes, config);
  const auto keys = make_key_population(3000);
  const auto report = analyze_addition(ring, keys, {nodes});
  // Every move must target the new node only.
  for (const auto& [receiver, count] : report.received_by_node) {
    EXPECT_EQ(receiver, nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scales, RingMinimalMovement,
    ::testing::Combine(::testing::Values<std::uint32_t>(4, 16, 64, 256),
                       ::testing::Values<std::uint32_t>(1, 10, 100)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint32_t, std::uint32_t>>&
           info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_v" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ftc::ring
