# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/ring_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/dl_test[1]_include.cmake")
include("/root/repo/build/tests/destim_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
