file(REMOVE_RECURSE
  "CMakeFiles/dl_test.dir/dl_sampler_test.cpp.o"
  "CMakeFiles/dl_test.dir/dl_sampler_test.cpp.o.d"
  "CMakeFiles/dl_test.dir/dl_trainer_test.cpp.o"
  "CMakeFiles/dl_test.dir/dl_trainer_test.cpp.o.d"
  "dl_test"
  "dl_test.pdb"
  "dl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
