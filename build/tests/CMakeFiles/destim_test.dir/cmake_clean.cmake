file(REMOVE_RECURSE
  "CMakeFiles/destim_test.dir/destim_checkpoint_test.cpp.o"
  "CMakeFiles/destim_test.dir/destim_checkpoint_test.cpp.o.d"
  "CMakeFiles/destim_test.dir/destim_experiment_test.cpp.o"
  "CMakeFiles/destim_test.dir/destim_experiment_test.cpp.o.d"
  "CMakeFiles/destim_test.dir/destim_prefetch_test.cpp.o"
  "CMakeFiles/destim_test.dir/destim_prefetch_test.cpp.o.d"
  "CMakeFiles/destim_test.dir/destim_slowdown_test.cpp.o"
  "CMakeFiles/destim_test.dir/destim_slowdown_test.cpp.o.d"
  "CMakeFiles/destim_test.dir/destim_sweep_test.cpp.o"
  "CMakeFiles/destim_test.dir/destim_sweep_test.cpp.o.d"
  "CMakeFiles/destim_test.dir/destim_validation_test.cpp.o"
  "CMakeFiles/destim_test.dir/destim_validation_test.cpp.o.d"
  "CMakeFiles/destim_test.dir/destim_workload_test.cpp.o"
  "CMakeFiles/destim_test.dir/destim_workload_test.cpp.o.d"
  "destim_test"
  "destim_test.pdb"
  "destim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/destim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
