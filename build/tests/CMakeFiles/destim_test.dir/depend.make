# Empty dependencies file for destim_test.
# This may be replaced when dependencies are built.
