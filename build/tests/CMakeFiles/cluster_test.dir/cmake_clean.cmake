file(REMOVE_RECURSE
  "CMakeFiles/cluster_test.dir/cluster_client_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster_client_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster_elastic_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster_elastic_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster_failure_injector_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster_failure_injector_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster_fault_detector_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster_fault_detector_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster_integrity_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster_integrity_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster_replication_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster_replication_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster_server_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster_server_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster_stress_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster_stress_test.cpp.o.d"
  "cluster_test"
  "cluster_test.pdb"
  "cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
