file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/common_config_test.cpp.o"
  "CMakeFiles/common_test.dir/common_config_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common_histogram_test.cpp.o"
  "CMakeFiles/common_test.dir/common_histogram_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common_logging_test.cpp.o"
  "CMakeFiles/common_test.dir/common_logging_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common_rng_test.cpp.o"
  "CMakeFiles/common_test.dir/common_rng_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common_sim_time_test.cpp.o"
  "CMakeFiles/common_test.dir/common_sim_time_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common_stats_test.cpp.o"
  "CMakeFiles/common_test.dir/common_stats_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common_status_test.cpp.o"
  "CMakeFiles/common_test.dir/common_status_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common_string_util_test.cpp.o"
  "CMakeFiles/common_test.dir/common_string_util_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common_table_test.cpp.o"
  "CMakeFiles/common_test.dir/common_table_test.cpp.o.d"
  "common_test"
  "common_test.pdb"
  "common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
