file(REMOVE_RECURSE
  "CMakeFiles/ring_test.dir/ring_consistent_hash_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring_consistent_hash_test.cpp.o.d"
  "CMakeFiles/ring_test.dir/ring_flat_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring_flat_test.cpp.o.d"
  "CMakeFiles/ring_test.dir/ring_load_distribution_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring_load_distribution_test.cpp.o.d"
  "CMakeFiles/ring_test.dir/ring_movement_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring_movement_test.cpp.o.d"
  "CMakeFiles/ring_test.dir/ring_oracle_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring_oracle_test.cpp.o.d"
  "CMakeFiles/ring_test.dir/ring_property_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring_property_test.cpp.o.d"
  "CMakeFiles/ring_test.dir/ring_strategies_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring_strategies_test.cpp.o.d"
  "CMakeFiles/ring_test.dir/ring_weighted_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring_weighted_test.cpp.o.d"
  "ring_test"
  "ring_test.pdb"
  "ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
