# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/common")
subdirs("src/hash")
subdirs("src/ring")
subdirs("src/sim")
subdirs("src/storage")
subdirs("src/rpc")
subdirs("src/cluster")
subdirs("src/dl")
subdirs("src/destim")
subdirs("src/trace")
subdirs("tests")
subdirs("bench")
subdirs("examples")
