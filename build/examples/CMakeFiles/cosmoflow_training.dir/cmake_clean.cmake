file(REMOVE_RECURSE
  "CMakeFiles/cosmoflow_training.dir/cosmoflow_training.cpp.o"
  "CMakeFiles/cosmoflow_training.dir/cosmoflow_training.cpp.o.d"
  "cosmoflow_training"
  "cosmoflow_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmoflow_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
