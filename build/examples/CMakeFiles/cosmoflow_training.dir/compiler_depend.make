# Empty compiler generated dependencies file for cosmoflow_training.
# This may be replaced when dependencies are built.
