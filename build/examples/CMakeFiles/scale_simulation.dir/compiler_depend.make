# Empty compiler generated dependencies file for scale_simulation.
# This may be replaced when dependencies are built.
