file(REMOVE_RECURSE
  "CMakeFiles/scale_simulation.dir/scale_simulation.cpp.o"
  "CMakeFiles/scale_simulation.dir/scale_simulation.cpp.o.d"
  "scale_simulation"
  "scale_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
