# Empty dependencies file for load_balance_explorer.
# This may be replaced when dependencies are built.
