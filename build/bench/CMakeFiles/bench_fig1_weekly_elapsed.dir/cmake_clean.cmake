file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_weekly_elapsed.dir/bench_fig1_weekly_elapsed.cpp.o"
  "CMakeFiles/bench_fig1_weekly_elapsed.dir/bench_fig1_weekly_elapsed.cpp.o.d"
  "bench_fig1_weekly_elapsed"
  "bench_fig1_weekly_elapsed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_weekly_elapsed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
