# Empty compiler generated dependencies file for bench_fig1_weekly_elapsed.
# This may be replaced when dependencies are built.
