# Empty dependencies file for bench_ablation_vnode_cost.
# This may be replaced when dependencies are built.
