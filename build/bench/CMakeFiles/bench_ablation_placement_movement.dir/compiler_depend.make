# Empty compiler generated dependencies file for bench_ablation_placement_movement.
# This may be replaced when dependencies are built.
