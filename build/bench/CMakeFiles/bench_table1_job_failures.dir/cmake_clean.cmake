file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_job_failures.dir/bench_table1_job_failures.cpp.o"
  "CMakeFiles/bench_table1_job_failures.dir/bench_table1_job_failures.cpp.o.d"
  "bench_table1_job_failures"
  "bench_table1_job_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_job_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
