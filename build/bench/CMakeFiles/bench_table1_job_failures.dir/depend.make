# Empty dependencies file for bench_table1_job_failures.
# This may be replaced when dependencies are built.
