# Empty compiler generated dependencies file for ftc_bench_common.
# This may be replaced when dependencies are built.
