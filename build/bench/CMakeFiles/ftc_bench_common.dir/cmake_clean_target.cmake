file(REMOVE_RECURSE
  "../lib/libftc_bench_common.a"
)
