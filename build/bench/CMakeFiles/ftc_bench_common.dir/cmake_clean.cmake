file(REMOVE_RECURSE
  "../lib/libftc_bench_common.a"
  "../lib/libftc_bench_common.pdb"
  "CMakeFiles/ftc_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/ftc_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
