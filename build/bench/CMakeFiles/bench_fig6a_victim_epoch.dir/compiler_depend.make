# Empty compiler generated dependencies file for bench_fig6a_victim_epoch.
# This may be replaced when dependencies are built.
