# Empty dependencies file for bench_fig4_ring_mechanism.
# This may be replaced when dependencies are built.
