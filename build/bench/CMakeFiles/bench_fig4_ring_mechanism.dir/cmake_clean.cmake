file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ring_mechanism.dir/bench_fig4_ring_mechanism.cpp.o"
  "CMakeFiles/bench_fig4_ring_mechanism.dir/bench_fig4_ring_mechanism.cpp.o.d"
  "bench_fig4_ring_mechanism"
  "bench_fig4_ring_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ring_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
