
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6b_load_distribution.cpp" "bench/CMakeFiles/bench_fig6b_load_distribution.dir/bench_fig6b_load_distribution.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6b_load_distribution.dir/bench_fig6b_load_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ftc_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/destim/CMakeFiles/ftc_destim.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/ftc_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ftc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/ftc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/ftc_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ftc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ftc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ftc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ftc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
