# Empty dependencies file for bench_fig6b_load_distribution.
# This may be replaced when dependencies are built.
