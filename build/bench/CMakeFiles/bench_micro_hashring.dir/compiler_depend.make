# Empty compiler generated dependencies file for bench_micro_hashring.
# This may be replaced when dependencies are built.
