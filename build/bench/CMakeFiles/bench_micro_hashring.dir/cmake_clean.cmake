file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_hashring.dir/bench_micro_hashring.cpp.o"
  "CMakeFiles/bench_micro_hashring.dir/bench_micro_hashring.cpp.o.d"
  "bench_micro_hashring"
  "bench_micro_hashring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_hashring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
