file(REMOVE_RECURSE
  "CMakeFiles/ftc_common.dir/config.cpp.o"
  "CMakeFiles/ftc_common.dir/config.cpp.o.d"
  "CMakeFiles/ftc_common.dir/histogram.cpp.o"
  "CMakeFiles/ftc_common.dir/histogram.cpp.o.d"
  "CMakeFiles/ftc_common.dir/logging.cpp.o"
  "CMakeFiles/ftc_common.dir/logging.cpp.o.d"
  "CMakeFiles/ftc_common.dir/stats.cpp.o"
  "CMakeFiles/ftc_common.dir/stats.cpp.o.d"
  "CMakeFiles/ftc_common.dir/string_util.cpp.o"
  "CMakeFiles/ftc_common.dir/string_util.cpp.o.d"
  "CMakeFiles/ftc_common.dir/table.cpp.o"
  "CMakeFiles/ftc_common.dir/table.cpp.o.d"
  "libftc_common.a"
  "libftc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
