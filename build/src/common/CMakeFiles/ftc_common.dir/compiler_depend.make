# Empty compiler generated dependencies file for ftc_common.
# This may be replaced when dependencies are built.
