file(REMOVE_RECURSE
  "libftc_common.a"
)
