file(REMOVE_RECURSE
  "libftc_dl.a"
)
