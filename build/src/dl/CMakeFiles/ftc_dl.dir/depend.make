# Empty dependencies file for ftc_dl.
# This may be replaced when dependencies are built.
