
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dl/dataset.cpp" "src/dl/CMakeFiles/ftc_dl.dir/dataset.cpp.o" "gcc" "src/dl/CMakeFiles/ftc_dl.dir/dataset.cpp.o.d"
  "/root/repo/src/dl/elastic_coordinator.cpp" "src/dl/CMakeFiles/ftc_dl.dir/elastic_coordinator.cpp.o" "gcc" "src/dl/CMakeFiles/ftc_dl.dir/elastic_coordinator.cpp.o.d"
  "/root/repo/src/dl/epoch_sampler.cpp" "src/dl/CMakeFiles/ftc_dl.dir/epoch_sampler.cpp.o" "gcc" "src/dl/CMakeFiles/ftc_dl.dir/epoch_sampler.cpp.o.d"
  "/root/repo/src/dl/threaded_trainer.cpp" "src/dl/CMakeFiles/ftc_dl.dir/threaded_trainer.cpp.o" "gcc" "src/dl/CMakeFiles/ftc_dl.dir/threaded_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ftc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ftc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/ftc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/ftc_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ftc_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
