file(REMOVE_RECURSE
  "CMakeFiles/ftc_dl.dir/dataset.cpp.o"
  "CMakeFiles/ftc_dl.dir/dataset.cpp.o.d"
  "CMakeFiles/ftc_dl.dir/elastic_coordinator.cpp.o"
  "CMakeFiles/ftc_dl.dir/elastic_coordinator.cpp.o.d"
  "CMakeFiles/ftc_dl.dir/epoch_sampler.cpp.o"
  "CMakeFiles/ftc_dl.dir/epoch_sampler.cpp.o.d"
  "CMakeFiles/ftc_dl.dir/threaded_trainer.cpp.o"
  "CMakeFiles/ftc_dl.dir/threaded_trainer.cpp.o.d"
  "libftc_dl.a"
  "libftc_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
