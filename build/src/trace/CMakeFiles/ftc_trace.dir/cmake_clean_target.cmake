file(REMOVE_RECURSE
  "libftc_trace.a"
)
