file(REMOVE_RECURSE
  "CMakeFiles/ftc_trace.dir/failure_analyzer.cpp.o"
  "CMakeFiles/ftc_trace.dir/failure_analyzer.cpp.o.d"
  "CMakeFiles/ftc_trace.dir/log_generator.cpp.o"
  "CMakeFiles/ftc_trace.dir/log_generator.cpp.o.d"
  "CMakeFiles/ftc_trace.dir/reliability_model.cpp.o"
  "CMakeFiles/ftc_trace.dir/reliability_model.cpp.o.d"
  "CMakeFiles/ftc_trace.dir/sacct_io.cpp.o"
  "CMakeFiles/ftc_trace.dir/sacct_io.cpp.o.d"
  "libftc_trace.a"
  "libftc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
