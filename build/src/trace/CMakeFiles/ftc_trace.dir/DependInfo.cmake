
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/failure_analyzer.cpp" "src/trace/CMakeFiles/ftc_trace.dir/failure_analyzer.cpp.o" "gcc" "src/trace/CMakeFiles/ftc_trace.dir/failure_analyzer.cpp.o.d"
  "/root/repo/src/trace/log_generator.cpp" "src/trace/CMakeFiles/ftc_trace.dir/log_generator.cpp.o" "gcc" "src/trace/CMakeFiles/ftc_trace.dir/log_generator.cpp.o.d"
  "/root/repo/src/trace/reliability_model.cpp" "src/trace/CMakeFiles/ftc_trace.dir/reliability_model.cpp.o" "gcc" "src/trace/CMakeFiles/ftc_trace.dir/reliability_model.cpp.o.d"
  "/root/repo/src/trace/sacct_io.cpp" "src/trace/CMakeFiles/ftc_trace.dir/sacct_io.cpp.o" "gcc" "src/trace/CMakeFiles/ftc_trace.dir/sacct_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
