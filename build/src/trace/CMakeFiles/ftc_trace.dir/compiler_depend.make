# Empty compiler generated dependencies file for ftc_trace.
# This may be replaced when dependencies are built.
