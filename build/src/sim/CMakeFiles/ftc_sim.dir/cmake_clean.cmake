file(REMOVE_RECURSE
  "CMakeFiles/ftc_sim.dir/resource.cpp.o"
  "CMakeFiles/ftc_sim.dir/resource.cpp.o.d"
  "CMakeFiles/ftc_sim.dir/shared_bandwidth.cpp.o"
  "CMakeFiles/ftc_sim.dir/shared_bandwidth.cpp.o.d"
  "CMakeFiles/ftc_sim.dir/simulator.cpp.o"
  "CMakeFiles/ftc_sim.dir/simulator.cpp.o.d"
  "libftc_sim.a"
  "libftc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
