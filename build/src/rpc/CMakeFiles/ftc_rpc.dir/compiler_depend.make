# Empty compiler generated dependencies file for ftc_rpc.
# This may be replaced when dependencies are built.
