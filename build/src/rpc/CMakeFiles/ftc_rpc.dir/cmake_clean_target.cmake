file(REMOVE_RECURSE
  "libftc_rpc.a"
)
