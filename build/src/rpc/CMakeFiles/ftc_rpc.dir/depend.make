# Empty dependencies file for ftc_rpc.
# This may be replaced when dependencies are built.
