file(REMOVE_RECURSE
  "CMakeFiles/ftc_rpc.dir/transport.cpp.o"
  "CMakeFiles/ftc_rpc.dir/transport.cpp.o.d"
  "libftc_rpc.a"
  "libftc_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
