# Empty dependencies file for ftc_destim.
# This may be replaced when dependencies are built.
