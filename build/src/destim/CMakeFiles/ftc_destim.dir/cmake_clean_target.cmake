file(REMOVE_RECURSE
  "libftc_destim.a"
)
