file(REMOVE_RECURSE
  "CMakeFiles/ftc_destim.dir/experiment.cpp.o"
  "CMakeFiles/ftc_destim.dir/experiment.cpp.o.d"
  "libftc_destim.a"
  "libftc_destim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_destim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
