
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/ftc_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/ftc_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/failure_injector.cpp" "src/cluster/CMakeFiles/ftc_cluster.dir/failure_injector.cpp.o" "gcc" "src/cluster/CMakeFiles/ftc_cluster.dir/failure_injector.cpp.o.d"
  "/root/repo/src/cluster/fault_detector.cpp" "src/cluster/CMakeFiles/ftc_cluster.dir/fault_detector.cpp.o" "gcc" "src/cluster/CMakeFiles/ftc_cluster.dir/fault_detector.cpp.o.d"
  "/root/repo/src/cluster/hvac_client.cpp" "src/cluster/CMakeFiles/ftc_cluster.dir/hvac_client.cpp.o" "gcc" "src/cluster/CMakeFiles/ftc_cluster.dir/hvac_client.cpp.o.d"
  "/root/repo/src/cluster/hvac_server.cpp" "src/cluster/CMakeFiles/ftc_cluster.dir/hvac_server.cpp.o" "gcc" "src/cluster/CMakeFiles/ftc_cluster.dir/hvac_server.cpp.o.d"
  "/root/repo/src/cluster/pfs_store.cpp" "src/cluster/CMakeFiles/ftc_cluster.dir/pfs_store.cpp.o" "gcc" "src/cluster/CMakeFiles/ftc_cluster.dir/pfs_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ftc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/ftc_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/ftc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ftc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
