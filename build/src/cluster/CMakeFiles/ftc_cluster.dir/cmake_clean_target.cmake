file(REMOVE_RECURSE
  "libftc_cluster.a"
)
