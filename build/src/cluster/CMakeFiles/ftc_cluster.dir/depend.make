# Empty dependencies file for ftc_cluster.
# This may be replaced when dependencies are built.
