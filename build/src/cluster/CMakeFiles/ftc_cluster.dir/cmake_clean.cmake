file(REMOVE_RECURSE
  "CMakeFiles/ftc_cluster.dir/cluster.cpp.o"
  "CMakeFiles/ftc_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/ftc_cluster.dir/failure_injector.cpp.o"
  "CMakeFiles/ftc_cluster.dir/failure_injector.cpp.o.d"
  "CMakeFiles/ftc_cluster.dir/fault_detector.cpp.o"
  "CMakeFiles/ftc_cluster.dir/fault_detector.cpp.o.d"
  "CMakeFiles/ftc_cluster.dir/hvac_client.cpp.o"
  "CMakeFiles/ftc_cluster.dir/hvac_client.cpp.o.d"
  "CMakeFiles/ftc_cluster.dir/hvac_server.cpp.o"
  "CMakeFiles/ftc_cluster.dir/hvac_server.cpp.o.d"
  "CMakeFiles/ftc_cluster.dir/pfs_store.cpp.o"
  "CMakeFiles/ftc_cluster.dir/pfs_store.cpp.o.d"
  "libftc_cluster.a"
  "libftc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
