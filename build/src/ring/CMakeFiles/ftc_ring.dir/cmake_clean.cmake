file(REMOVE_RECURSE
  "CMakeFiles/ftc_ring.dir/consistent_hash_ring.cpp.o"
  "CMakeFiles/ftc_ring.dir/consistent_hash_ring.cpp.o.d"
  "CMakeFiles/ftc_ring.dir/flat_hash_ring.cpp.o"
  "CMakeFiles/ftc_ring.dir/flat_hash_ring.cpp.o.d"
  "CMakeFiles/ftc_ring.dir/load_distribution.cpp.o"
  "CMakeFiles/ftc_ring.dir/load_distribution.cpp.o.d"
  "CMakeFiles/ftc_ring.dir/movement_analysis.cpp.o"
  "CMakeFiles/ftc_ring.dir/movement_analysis.cpp.o.d"
  "CMakeFiles/ftc_ring.dir/multi_hash.cpp.o"
  "CMakeFiles/ftc_ring.dir/multi_hash.cpp.o.d"
  "CMakeFiles/ftc_ring.dir/placement.cpp.o"
  "CMakeFiles/ftc_ring.dir/placement.cpp.o.d"
  "CMakeFiles/ftc_ring.dir/range_partition.cpp.o"
  "CMakeFiles/ftc_ring.dir/range_partition.cpp.o.d"
  "CMakeFiles/ftc_ring.dir/static_modulo.cpp.o"
  "CMakeFiles/ftc_ring.dir/static_modulo.cpp.o.d"
  "libftc_ring.a"
  "libftc_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
