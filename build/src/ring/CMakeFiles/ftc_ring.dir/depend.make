# Empty dependencies file for ftc_ring.
# This may be replaced when dependencies are built.
