file(REMOVE_RECURSE
  "libftc_ring.a"
)
