
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ring/consistent_hash_ring.cpp" "src/ring/CMakeFiles/ftc_ring.dir/consistent_hash_ring.cpp.o" "gcc" "src/ring/CMakeFiles/ftc_ring.dir/consistent_hash_ring.cpp.o.d"
  "/root/repo/src/ring/flat_hash_ring.cpp" "src/ring/CMakeFiles/ftc_ring.dir/flat_hash_ring.cpp.o" "gcc" "src/ring/CMakeFiles/ftc_ring.dir/flat_hash_ring.cpp.o.d"
  "/root/repo/src/ring/load_distribution.cpp" "src/ring/CMakeFiles/ftc_ring.dir/load_distribution.cpp.o" "gcc" "src/ring/CMakeFiles/ftc_ring.dir/load_distribution.cpp.o.d"
  "/root/repo/src/ring/movement_analysis.cpp" "src/ring/CMakeFiles/ftc_ring.dir/movement_analysis.cpp.o" "gcc" "src/ring/CMakeFiles/ftc_ring.dir/movement_analysis.cpp.o.d"
  "/root/repo/src/ring/multi_hash.cpp" "src/ring/CMakeFiles/ftc_ring.dir/multi_hash.cpp.o" "gcc" "src/ring/CMakeFiles/ftc_ring.dir/multi_hash.cpp.o.d"
  "/root/repo/src/ring/placement.cpp" "src/ring/CMakeFiles/ftc_ring.dir/placement.cpp.o" "gcc" "src/ring/CMakeFiles/ftc_ring.dir/placement.cpp.o.d"
  "/root/repo/src/ring/range_partition.cpp" "src/ring/CMakeFiles/ftc_ring.dir/range_partition.cpp.o" "gcc" "src/ring/CMakeFiles/ftc_ring.dir/range_partition.cpp.o.d"
  "/root/repo/src/ring/static_modulo.cpp" "src/ring/CMakeFiles/ftc_ring.dir/static_modulo.cpp.o" "gcc" "src/ring/CMakeFiles/ftc_ring.dir/static_modulo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ftc_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
