
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/cache_store.cpp" "src/storage/CMakeFiles/ftc_storage.dir/cache_store.cpp.o" "gcc" "src/storage/CMakeFiles/ftc_storage.dir/cache_store.cpp.o.d"
  "/root/repo/src/storage/file_catalog.cpp" "src/storage/CMakeFiles/ftc_storage.dir/file_catalog.cpp.o" "gcc" "src/storage/CMakeFiles/ftc_storage.dir/file_catalog.cpp.o.d"
  "/root/repo/src/storage/nvme_model.cpp" "src/storage/CMakeFiles/ftc_storage.dir/nvme_model.cpp.o" "gcc" "src/storage/CMakeFiles/ftc_storage.dir/nvme_model.cpp.o.d"
  "/root/repo/src/storage/pfs_model.cpp" "src/storage/CMakeFiles/ftc_storage.dir/pfs_model.cpp.o" "gcc" "src/storage/CMakeFiles/ftc_storage.dir/pfs_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ftc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
