# Empty dependencies file for ftc_storage.
# This may be replaced when dependencies are built.
