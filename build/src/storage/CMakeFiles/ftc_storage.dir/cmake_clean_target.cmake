file(REMOVE_RECURSE
  "libftc_storage.a"
)
