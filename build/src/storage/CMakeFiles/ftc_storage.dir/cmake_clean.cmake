file(REMOVE_RECURSE
  "CMakeFiles/ftc_storage.dir/cache_store.cpp.o"
  "CMakeFiles/ftc_storage.dir/cache_store.cpp.o.d"
  "CMakeFiles/ftc_storage.dir/file_catalog.cpp.o"
  "CMakeFiles/ftc_storage.dir/file_catalog.cpp.o.d"
  "CMakeFiles/ftc_storage.dir/nvme_model.cpp.o"
  "CMakeFiles/ftc_storage.dir/nvme_model.cpp.o.d"
  "CMakeFiles/ftc_storage.dir/pfs_model.cpp.o"
  "CMakeFiles/ftc_storage.dir/pfs_model.cpp.o.d"
  "libftc_storage.a"
  "libftc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
