file(REMOVE_RECURSE
  "CMakeFiles/ftc_hash.dir/crc32.cpp.o"
  "CMakeFiles/ftc_hash.dir/crc32.cpp.o.d"
  "CMakeFiles/ftc_hash.dir/hash.cpp.o"
  "CMakeFiles/ftc_hash.dir/hash.cpp.o.d"
  "CMakeFiles/ftc_hash.dir/murmur3.cpp.o"
  "CMakeFiles/ftc_hash.dir/murmur3.cpp.o.d"
  "CMakeFiles/ftc_hash.dir/xxhash64.cpp.o"
  "CMakeFiles/ftc_hash.dir/xxhash64.cpp.o.d"
  "libftc_hash.a"
  "libftc_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
