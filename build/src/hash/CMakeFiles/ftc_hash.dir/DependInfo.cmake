
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/crc32.cpp" "src/hash/CMakeFiles/ftc_hash.dir/crc32.cpp.o" "gcc" "src/hash/CMakeFiles/ftc_hash.dir/crc32.cpp.o.d"
  "/root/repo/src/hash/hash.cpp" "src/hash/CMakeFiles/ftc_hash.dir/hash.cpp.o" "gcc" "src/hash/CMakeFiles/ftc_hash.dir/hash.cpp.o.d"
  "/root/repo/src/hash/murmur3.cpp" "src/hash/CMakeFiles/ftc_hash.dir/murmur3.cpp.o" "gcc" "src/hash/CMakeFiles/ftc_hash.dir/murmur3.cpp.o.d"
  "/root/repo/src/hash/xxhash64.cpp" "src/hash/CMakeFiles/ftc_hash.dir/xxhash64.cpp.o" "gcc" "src/hash/CMakeFiles/ftc_hash.dir/xxhash64.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
