# Empty compiler generated dependencies file for ftc_hash.
# This may be replaced when dependencies are built.
