file(REMOVE_RECURSE
  "libftc_hash.a"
)
