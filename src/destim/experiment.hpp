// experiment.hpp - DES end-to-end training experiment (Fig 5 / Fig 6a).
//
// Reproduces the paper's Frontier runs on the discrete-event substrate:
// N nodes train a CosmoFlow-like job for E epochs over a shared dataset
// cached in HVAC, with crash-stop failures injected at step boundaries
// after the first epoch, under one of the three fault-tolerance modes
// (NoFT / FT w/ PFS / FT w/ NVMe).  Every component of the timing model —
// NVMe, NIC, PFS (MDS + shared OST pool), RPC timeout detection, Horovod
// elastic restart — is parameterized by ExperimentConfig; defaults follow
// Table II and DESIGN.md's scaled-down calibration.
//
// What the model captures (and why the paper's shape emerges):
//   - epoch 0 is uncached: every file is fetched once from the PFS and
//     recached (HVAC warm-up);
//   - cached epochs read NVMe via remote RPC at NIC speed;
//   - a failure wastes the partial epoch (rollback to epoch start with the
//     survivors, plus a fixed elastic-restart overhead);
//   - after a failure each client independently pays timeout detection,
//     then: FT w/ PFS reads every lost file from the PFS in EVERY later
//     epoch (per-step stragglers, batch barrier amplifies), while
//     FT w/ NVMe re-fetches each lost file ONCE and serves NVMe after;
//   - NoFT aborts at the first post-failure read.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/failure_injector.hpp"
#include "cluster/hvac_client.hpp"  // FtMode
#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "prefetch/prefetch_config.hpp"
#include "storage/nvme_model.hpp"
#include "storage/pfs_model.hpp"

namespace ftc::destim {

struct ExperimentConfig {
  // --- Topology -----------------------------------------------------------
  std::uint32_t node_count = 64;
  cluster::FtMode mode = cluster::FtMode::kHashRingRecache;

  // --- Dataset (scaled-down cosmoUniverse; see DESIGN.md) ------------------
  std::uint32_t file_count = 10240;
  std::uint64_t file_bytes = 16ULL << 20;  // 16 MiB/TFRecord
  /// Samples packed per TFRecord.  The shuffle/shard unit is the SAMPLE,
  /// as in CosmoFlow: one file's samples land on several different nodes
  /// each epoch, so a lost file is fetched by multiple clients per epoch —
  /// the amplification that makes continuous PFS redirection so costly.
  /// 1 = file-level sharding (each file read once per epoch).
  std::uint32_t samples_per_file = 1;
  /// Validation files read (in fixed order, step-synchronized) at the end
  /// of every epoch — cosmoUniverse carries 65,536 validation samples
  /// alongside the training set.  0 disables the validation phase.
  std::uint32_t validation_file_count = 0;

  // --- Training structure ---------------------------------------------------
  std::uint32_t epochs = 5;
  /// Samples each node consumes per step (with samples_per_file == 1 this
  /// is files per step).
  std::uint32_t files_per_step_per_node = 4;
  /// Pipelined prefetch (extension; cf. the clairvoyant-prefetching line
  /// of work the paper cites): the epoch permutation is deterministic, so
  /// while step k computes, each node already fetches step k+1's files.
  /// Cached-epoch I/O hides entirely under compute.  The knob vocabulary
  /// is shared with the threaded client (prefetch::PrefetchConfig) so the
  /// DES and threaded substrates cannot drift apart; this substrate's
  /// step-pipelined model keys off `prefetch.enabled` (depth/p2p shape
  /// the threaded pull pipeline, validated here but not simulated).
  prefetch::PrefetchConfig prefetch;
  /// Fraction of the (shuffled) sample stream consumed per epoch
  /// (extension): 1.0 = classic vision-style full passes; < 1 models
  /// LLM-style partial epochs, where some lost files are never re-read
  /// and PFS redirection's recurring penalty shrinks.
  double epoch_subset_fraction = 1.0;
  /// Model-state checkpoint written to the PFS at each epoch boundary
  /// (0 = not modelled).  Checkpoint-restart reads it back on requeue.
  std::uint64_t checkpoint_write_bytes = 0;
  SimTime compute_time_per_step = 50 * simtime::kMillisecond;
  std::uint64_t shuffle_seed = 2024;

  // --- Devices --------------------------------------------------------------
  storage::NvmeConfig nvme{};
  storage::PfsConfig pfs{};

  // --- Network --------------------------------------------------------------
  double nic_bytes_per_second = 25.0e9;  // Slingshot 200 Gb/s
  SimTime rpc_latency = 30 * simtime::kMicrosecond;

  // --- Fault tolerance ------------------------------------------------------
  /// Per-read client-side cost of the FT machinery (condition checks,
  /// timeout tracking, mutexes — the NoFT-vs-FT gap in Fig 5a).  Applied
  /// only when mode != kNone.
  SimTime ft_overhead_per_read = 15 * simtime::kMicrosecond;
  /// TIMEOUT_SECONDS equivalent: per-request deadline.
  SimTime rpc_timeout = 100 * simtime::kMillisecond;
  /// TIMEOUT_LIMIT equivalent: timeouts that flag a node.
  std::uint32_t timeout_limit = 2;
  std::uint32_t vnodes_per_node = 100;
  std::uint64_t ring_seed = 7;
  /// Optional per-node capacity weights (heterogeneous NVMe sizes, e.g.
  /// the KISTI Neuron 2.9-3.5 TB mix).  Empty = uniform.  Node i gets
  /// ~weight[i] x the average key share on the ring.  Ring mode only.
  std::vector<double> node_weights;
  /// Replication extension (ring mode only): each file cached on the first
  /// `replication_factor` distinct ring owners at warm-up, so a failure is
  /// recovered from the clockwise successor's NVMe with zero PFS traffic —
  /// at replication_factor x the NVMe footprint.  1 = the paper's system.
  std::uint32_t replication_factor = 1;
  /// Fixed Horovod-elastic re-initialization cost per restart.
  SimTime elastic_restart_overhead = 300 * simtime::kMillisecond;

  /// Checkpoint-restart baseline (mode == kNone only): instead of
  /// aborting, a failure crashes the job, which is requeued from the last
  /// epoch-boundary checkpoint on the survivors — with COLD caches, since
  /// node-local NVMe contents do not survive reallocation.  This is the
  /// "model-state FT without cache FT" approach of the related work the
  /// paper argues is insufficient (Sec I).
  bool checkpoint_restart = false;
  /// Requeue + checkpoint-load cost per crash (≫ elastic restart).
  SimTime checkpoint_restart_overhead = 2 * simtime::kSecond;

  // --- Failure schedule -----------------------------------------------------
  /// Crash-stop failures; build with cluster::plan_failures or by hand.
  std::vector<cluster::PlannedFailure> failures;

  /// Transient slowdowns: the node stays alive but serves each request
  /// `extra_latency` late during [start, start+duration).  When the extra
  /// latency exceeds rpc_timeout the client sees timeouts on a HEALTHY
  /// node — the false-positive scenario the timeout-counter threshold
  /// exists to absorb (Sec IV-A).  A falsely flagged node costs the ring
  /// mode gratuitous recaching of everything it holds.
  struct TransientSlowdown {
    std::uint32_t node = 0;
    SimTime start = 0;
    SimTime duration = 0;
    SimTime extra_latency = 0;
  };
  std::vector<TransientSlowdown> slowdowns;

  /// Safety cap on simulation events (0 = default cap).
  std::uint64_t max_events = 0;
};

struct EpochRecord {
  std::uint32_t epoch = 0;
  /// Wall-clock (simulated) duration including failed attempts and restart
  /// overhead attributed to this epoch.
  SimTime duration = 0;
  std::uint32_t attempts = 1;
  bool failure_during = false;
  std::uint64_t pfs_reads = 0;     ///< data fetches that hit the PFS
  std::uint64_t local_reads = 0;   ///< served from the reader's own NVMe
  std::uint64_t remote_hits = 0;   ///< served from a remote node's NVMe
  std::uint64_t remote_misses = 0; ///< served via owner's PFS fetch+recache
  std::uint64_t timeouts = 0;      ///< RPC deadline expirations observed
  std::uint64_t false_timeouts = 0;  ///< timeouts against ALIVE nodes
};

struct ExperimentResult {
  bool completed = false;
  std::string abort_reason;
  SimTime total_time = 0;
  std::vector<EpochRecord> epochs;
  std::uint32_t restarts = 0;
  std::uint64_t total_pfs_reads = 0;
  std::uint64_t total_timeouts = 0;
  std::uint64_t simulated_events = 0;
  /// Largest per-node cached footprint reached (capacity cost of the
  /// replication extension).
  std::uint64_t peak_node_cache_bytes = 0;
  /// Alive nodes some client flagged as failed (false positives; each one
  /// costs the ring mode gratuitous recaching).
  std::uint64_t falsely_flagged_nodes = 0;
  std::uint64_t total_false_timeouts = 0;

  [[nodiscard]] double total_minutes() const {
    return simtime::to_minutes(total_time);
  }
};

/// Runs one experiment to completion (or abort) and returns the record.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Aggregate over repeated trials — the paper repeats every experiment
/// three times (Sec V-A2).  Trials vary the shuffle and PFS-latency seeds;
/// the failure schedule stays as configured.
struct TrialSummary {
  std::uint32_t trials = 0;
  std::uint32_t completed = 0;         ///< trials that finished training
  RunningStats total_minutes;          ///< over completed trials
  RunningStats total_pfs_reads;
  RunningStats restarts;
  std::vector<ExperimentResult> results;  ///< every trial, in order
};

TrialSummary run_experiment_trials(const ExperimentConfig& base,
                                   std::uint32_t trials);

}  // namespace ftc::destim
