#include "destim/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "cluster/fault_detector.hpp"
#include "common/logging.hpp"
#include "dl/elastic_coordinator.hpp"
#include "dl/epoch_sampler.hpp"
#include "hash/murmur3.hpp"
#include "ring/consistent_hash_ring.hpp"
#include "sim/shared_bandwidth.hpp"
#include "sim/simulator.hpp"

namespace ftc::destim {
namespace {

using cluster::FtMode;
using NodeId = std::uint32_t;
constexpr NodeId kNoNode = 0xFFFFFFFFu;

/// One end-to-end experiment run.  Owns the event loop and all models;
/// everything is driven by callbacks scheduled on the simulator.
class Engine {
 public:
  explicit Engine(const ExperimentConfig& config)
      : config_(config),
        samples_per_file_(config.samples_per_file == 0
                              ? 1
                              : config.samples_per_file),
        pfs_(sim_, config.pfs),
        ring_(make_ring_config(config)),
        sampler_(config.file_count * samples_per_file_, config.shuffle_seed),
        elastic_(config.node_count) {
    nodes_.reserve(config_.node_count);
    for (NodeId n = 0; n < config_.node_count; ++n) {
      nodes_.push_back(std::make_unique<Node>(sim_, config_, n));
      if (n < config_.node_weights.size()) {
        ring_.add_node_weighted(n, config_.node_weights[n]);
      } else {
        ring_.add_node(n);
      }
    }
    // Precompute per-file ring hashes and static-modulo owners once; the
    // hot path then never touches strings.
    // File ids [0, file_count) are training data; validation files follow.
    total_files_ = config_.file_count + config_.validation_file_count;
    key_hash_.resize(total_files_);
    modulo_hash_.resize(total_files_);
    for (std::uint32_t f = 0; f < total_files_; ++f) {
      const std::string path = "/lustre/orion/cosmoUniverse/file_" +
                               std::to_string(f) + ".tfrecord";
      key_hash_[f] = ring_.key_position(path);
      modulo_hash_[f] = hash::hash_key(hash::Algorithm::kFnv1a64, path);
    }
    modulo_members_.reserve(config_.node_count);
    for (NodeId n = 0; n < config_.node_count; ++n) {
      modulo_members_.push_back(n);
    }
    cached_.assign(config_.node_count,
                   std::vector<bool>(total_files_, false));
    cache_bytes_.assign(config_.node_count, 0);
    failures_ = config_.failures;
    std::sort(failures_.begin(), failures_.end(),
              [](const cluster::PlannedFailure& a,
                 const cluster::PlannedFailure& b) {
                if (a.epoch != b.epoch) return a.epoch < b.epoch;
                return a.epoch_fraction < b.epoch_fraction;
              });
  }

  ExperimentResult run() {
    start_epoch();
    const std::uint64_t cap =
        config_.max_events ? config_.max_events : 2'000'000'000ULL;
    sim_.run(cap);
    if (!finished_ && !aborted_) {
      result_.completed = false;
      result_.abort_reason = "event cap reached (model did not terminate)";
      result_.total_time = sim_.now();
    }
    result_.simulated_events = sim_.executed_events();
    return result_;
  }

 private:
  struct Node {
    Node(sim::Simulator& sim, const ExperimentConfig& config, NodeId id)
        : nvme(sim, config.nvme),
          nic_egress(sim, config.nic_bytes_per_second),
          detector(config.timeout_limit) {
      (void)id;
    }
    bool alive = true;
    storage::NvmeModel nvme;
    sim::SharedBandwidthResource nic_egress;
    /// Client-side failure view: autonomous per node, as in the paper.
    cluster::FaultDetector detector;
    std::vector<std::uint32_t> shard;  ///< samples this node reads this attempt
    std::uint32_t outstanding = 0;     ///< reads in flight this step
    // Prefetch pipeline state (config.prefetch).
    std::int64_t prefetched_step = -1;
    std::uint32_t prefetch_outstanding = 0;
    bool waiting_for_prefetch = false;
  };

  static ring::RingConfig make_ring_config(const ExperimentConfig& config) {
    ring::RingConfig rc;
    rc.vnodes_per_node = config.vnodes_per_node;
    rc.seed = config.ring_seed;
    return rc;
  }

  // ---- Placement -----------------------------------------------------------

  NodeId owner_of(NodeId client, std::uint32_t file) const {
    if (config_.mode == FtMode::kHashRingRecache) {
      const auto& detector = nodes_[client]->detector;
      return ring_.owner_of_hash_excluding(
          key_hash_[file],
          [&detector](ring::NodeId n) { return detector.is_failed(n); });
    }
    if (modulo_members_.empty()) return kNoNode;
    // Static placement over the job's allocation; only a checkpoint
    // requeue rebuilds this table (a fresh job incarnation).
    return modulo_members_[modulo_hash_[file] % modulo_members_.size()];
  }

  // ---- Read path ------------------------------------------------------------

  /// Entry point for one intercepted read: pays the FT bookkeeping cost
  /// (Fig 5a's NoFT advantage) once, then dispatches.
  void read_file(NodeId client, std::uint32_t file,
                 std::function<void()> done) {
    if (aborted_) return;
    if (config_.mode != FtMode::kNone && config_.ft_overhead_per_read > 0) {
      sim_.schedule(config_.ft_overhead_per_read,
                    [this, client, file, done = std::move(done)]() mutable {
                      dispatch_read(client, file, std::move(done));
                    });
    } else {
      dispatch_read(client, file, std::move(done));
    }
  }

  /// Resolves the owner and routes the request (also the retry target
  /// after a timeout — retries do not re-pay the entry overhead).
  void dispatch_read(NodeId client, std::uint32_t file,
                     std::function<void()> done) {
    if (aborted_) return;
    const NodeId owner = owner_of(client, file);
    if (owner == kNoNode || owner == ring::kInvalidNode) {
      pfs_direct(std::move(done));
      return;
    }
    if (config_.mode != FtMode::kHashRingRecache &&
        nodes_[client]->detector.is_failed(owner)) {
      // Static placement still maps to the flagged node: FT w/ PFS serves
      // from the PFS without waiting; NoFT never gets here (it aborted).
      if (config_.mode == FtMode::kPfsRedirect) {
        pfs_direct(std::move(done));
      } else {
        abort_run("NoFT read to failed node " + std::to_string(owner));
      }
      return;
    }
    if (owner == client) {
      local_read(client, file, std::move(done));
    } else if (!nodes_[owner]->alive) {
      unresponsive_owner(client, owner, file, std::move(done),
                         /*owner_alive=*/false);
    } else {
      const SimTime extra = current_slowdown(owner);
      if (extra >= config_.rpc_timeout) {
        // The server will answer, but not before the client's deadline:
        // from the client's viewpoint this is indistinguishable from a
        // dead node (the false-positive hazard of Sec IV-A).
        unresponsive_owner(client, owner, file, std::move(done),
                           /*owner_alive=*/true);
      } else {
        remote_read(client, owner, file, extra, std::move(done));
      }
    }
  }

  /// Extra service delay currently injected at `node` (0 when healthy).
  [[nodiscard]] SimTime current_slowdown(NodeId node) const {
    const SimTime now = sim_.now();
    for (const auto& slowdown : config_.slowdowns) {
      if (slowdown.node == node && now >= slowdown.start &&
          now < slowdown.start + slowdown.duration) {
        return slowdown.extra_latency;
      }
    }
    return 0;
  }

  /// Registers interest in (owner, file).  Returns true when a fetch for
  /// that pair is already in flight — the server coalesces concurrent
  /// misses for one file into a single PFS access.
  bool join_inflight(NodeId owner, std::uint32_t file,
                     std::function<void()> on_fetched) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(owner) << 32) | file;
    auto [it, first] = inflight_.try_emplace(key);
    it->second.push_back(std::move(on_fetched));
    return !first;
  }

  /// Completes an in-flight fetch: every coalesced waiter is served.
  void finish_inflight(NodeId owner, std::uint32_t file) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(owner) << 32) | file;
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    std::vector<std::function<void()>> waiters = std::move(it->second);
    inflight_.erase(it);
    for (auto& waiter : waiters) {
      if (waiter) waiter();
    }
  }

  void local_read(NodeId node, std::uint32_t file,
                  std::function<void()> done) {
    if (cached_[node][file]) {
      ++epoch_counters_.local_reads;
      nodes_[node]->nvme.read(config_.file_bytes, std::move(done));
      return;
    }
    // Cold local miss: fetch from PFS (coalesced with any concurrent miss
    // for the same file), serve, recache in the background.
    if (join_inflight(node, file, std::move(done))) return;
    ++epoch_counters_.pfs_reads;
    const std::uint64_t generation = attempt_generation_;
    pfs_.read_file(config_.file_bytes, [this, node, file, generation] {
      if (aborted_ || generation != attempt_generation_) return;
      mark_cached(node, file);
      replicate(node, file);
      finish_inflight(node, file);
    });
  }

  void remote_read(NodeId client, NodeId owner, std::uint32_t file,
                   SimTime extra_latency, std::function<void()> done) {
    // A sub-deadline slowdown delays service but completes; the response
    // resets the client's timeout counter (false-positive suppression).
    done = [this, client, owner, done = std::move(done)]() mutable {
      nodes_[client]->detector.record_success(owner);
      if (done) done();
    };
    sim_.schedule(config_.rpc_latency + extra_latency,
                  [this, owner, file, done = std::move(done)]() mutable {
      if (aborted_) return;
      Node& server = *nodes_[owner];
      if (cached_[owner][file]) {
        ++epoch_counters_.remote_hits;
        server.nvme.read(
            config_.file_bytes,
            [this, owner, done = std::move(done)]() mutable {
              if (aborted_) return;
              nodes_[owner]->nic_egress.transfer(config_.file_bytes,
                                                 std::move(done));
            });
      } else {
        // Server-side miss: one PFS access (coalesced across concurrent
        // requesters of the same file), then serve + recache.  This is the
        // elastic-recaching restore path after a failure and the warm-up
        // path in epoch 0.
        ++epoch_counters_.remote_misses;
        const bool pending = join_inflight(
            owner, file, [this, owner, done = std::move(done)]() mutable {
              if (aborted_) return;
              nodes_[owner]->nic_egress.transfer(config_.file_bytes,
                                                 std::move(done));
            });
        if (pending) return;
        ++epoch_counters_.pfs_reads;
        const std::uint64_t generation = attempt_generation_;
        pfs_.read_file(config_.file_bytes, [this, owner, file, generation] {
          if (aborted_ || generation != attempt_generation_) return;
          mark_cached(owner, file);
          replicate(owner, file);
          finish_inflight(owner, file);
        });
      }
    });
  }

  void unresponsive_owner(NodeId client, NodeId owner, std::uint32_t file,
                          std::function<void()> done, bool owner_alive) {
    // The request sits until the deadline expires; only then does the
    // client learn anything (autonomous timeout detection, Sec IV-A).
    ++epoch_counters_.timeouts;
    if (owner_alive) ++epoch_counters_.false_timeouts;
    sim_.schedule(config_.rpc_timeout, [this, client, owner, file,
                                        owner_alive,
                                        done = std::move(done)]() mutable {
      if (aborted_) return;
      const bool flagged = nodes_[client]->detector.record_timeout(owner);
      if (flagged) {
        FTC_LOG(kDebug, "destim") << "client " << client << " flagged node "
                                  << owner << " at "
                                  << simtime::to_string(sim_.now());
        if (owner_alive && nodes_[owner]->alive) {
          // A healthy node was condemned: every client that flags it will
          // route around it, and the ring mode will gratuitously recache
          // its share.
          ++result_.falsely_flagged_nodes;
        }
      }
      switch (config_.mode) {
        case FtMode::kNone:
          if (config_.checkpoint_restart) {
            trigger_checkpoint_restart();
          } else {
            abort_run("NoFT: node " + std::to_string(owner) +
                      " unresponsive");
          }
          return;
        case FtMode::kPfsRedirect:
          // The timed-out request itself is redirected to the PFS.
          pfs_direct(std::move(done));
          return;
        case FtMode::kHashRingRecache:
          // Re-resolve: flagged -> clockwise successor; not yet flagged ->
          // same owner, paying another timeout (threshold suppression of
          // false positives).
          dispatch_read(client, file, std::move(done));
          return;
      }
    });
  }

  void pfs_direct(std::function<void()> done) {
    ++epoch_counters_.pfs_reads;
    pfs_.read_file(config_.file_bytes, std::move(done));
  }

  void mark_cached(NodeId node, std::uint32_t file) {
    if (cached_[node][file]) return;
    cached_[node][file] = true;
    cache_bytes_[node] += config_.file_bytes;
    if (cache_bytes_[node] > result_.peak_node_cache_bytes) {
      result_.peak_node_cache_bytes = cache_bytes_[node];
    }
    // Data-mover write happens off the critical path but consumes write
    // bandwidth (can delay later reads through the device).
    nodes_[node]->nvme.write(config_.file_bytes, nullptr);
  }

  /// Replication extension: after the primary caches `file`, forward
  /// backup copies along the ring chain (off the critical path — the
  /// primary's NIC egress and each backup's NVMe write are consumed, but
  /// the reading client does not wait).
  void replicate(NodeId primary, std::uint32_t file) {
    if (config_.replication_factor <= 1 ||
        config_.mode != FtMode::kHashRingRecache) {
      return;
    }
    const auto chain = ring_.owner_chain_of_hash(
        key_hash_[file], config_.replication_factor);
    for (const NodeId backup : chain) {
      if (backup == primary || !nodes_[backup]->alive) continue;
      if (cached_[backup][file]) continue;
      nodes_[primary]->nic_egress.transfer(
          config_.file_bytes, [this, backup, file] {
            if (aborted_) return;
            if (nodes_[backup]->alive) mark_cached(backup, file);
          });
    }
  }

  // ---- Training loop --------------------------------------------------------

  void start_epoch() {
    epoch_start_ = sim_.now();
    epoch_attempts_ = 0;
    epoch_failure_ = false;
    epoch_counters_ = {};
    start_attempt();
  }

  void start_attempt() {
    ++epoch_attempts_;
    ++attempt_generation_;
    in_validation_ = false;  // rollback always restarts the training phase
    members_ = elastic_.alive_nodes();
    for (const NodeId member : members_) {
      Node& node = *nodes_[member];
      node.prefetched_step = -1;
      node.prefetch_outstanding = 0;
      node.waiting_for_prefetch = false;
    }
    if (members_.empty()) {
      abort_run("no surviving nodes");
      return;
    }
    const auto total = static_cast<std::uint32_t>(members_.size());
    // One permutation per attempt, sliced N ways (not N permutations).
    const std::vector<std::uint32_t> order =
        sampler_.epoch_permutation(epoch_);
    // Partial-epoch training consumes only a prefix of the shuffled
    // stream (epoch_subset_fraction < 1).
    auto consumed = static_cast<std::uint32_t>(order.size());
    if (config_.epoch_subset_fraction < 1.0 &&
        config_.epoch_subset_fraction > 0.0) {
      consumed = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(config_.epoch_subset_fraction *
                                        static_cast<double>(order.size())));
    }
    const std::uint32_t base = consumed / total;
    const std::uint32_t remainder = consumed % total;
    std::uint32_t max_shard = 0;
    for (std::uint32_t rank = 0; rank < total; ++rank) {
      Node& node = *nodes_[members_[rank]];
      const std::uint32_t begin =
          rank * base + (rank < remainder ? rank : remainder);
      const std::uint32_t size = base + (rank < remainder ? 1 : 0);
      node.shard.assign(order.begin() + begin, order.begin() + begin + size);
      max_shard = std::max(max_shard, size);
    }
    steps_in_attempt_ =
        (max_shard + config_.files_per_step_per_node - 1) /
        config_.files_per_step_per_node;
    if (steps_in_attempt_ == 0) steps_in_attempt_ = 1;
    current_step_ = 0;
    start_step();
  }

  void start_step() {
    if (aborted_) return;
    // Failure checkpoints land on step boundaries: SLURM drains the node
    // between batches from the job's perspective.
    while (next_failure_ < failures_.size() &&
           failures_[next_failure_].epoch <= epoch_ &&
           failure_step(failures_[next_failure_]) <= current_step_) {
      const auto& failure = failures_[next_failure_];
      ++next_failure_;
      if (!elastic_.is_alive(failure.victim)) continue;
      FTC_LOG(kInfo, "destim")
          << "node " << failure.victim << " drained in epoch " << epoch_
          << " step " << current_step_ << " at "
          << simtime::to_string(sim_.now());
      nodes_[failure.victim]->alive = false;
      elastic_.on_node_failure(failure.victim);
      epoch_failure_ = true;
      restart_pending_ = true;
    }

    expected_done_ = 0;
    for (NodeId member : members_) {
      if (nodes_[member]->alive) ++expected_done_;
    }
    if (expected_done_ == 0) {
      abort_run("all members of attempt died");
      return;
    }
    nodes_done_ = 0;
    for (NodeId member : members_) {
      if (nodes_[member]->alive) issue_node_step(member);
    }
  }

  std::uint32_t failure_step(const cluster::PlannedFailure& failure) const {
    if (failure.epoch < epoch_) return 0;  // overdue: trigger immediately
    const double f = std::min(std::max(failure.epoch_fraction, 0.0), 0.999);
    return static_cast<std::uint32_t>(f * steps_in_attempt_);
  }

  /// Distinct files backing `step`'s sample slice for a node (samples of
  /// one file packed into the same step are served by a single fetch).
  [[nodiscard]] std::vector<std::uint32_t> step_files(
      const Node& node, std::uint32_t step) const {
    const std::size_t begin =
        static_cast<std::size_t>(step) * config_.files_per_step_per_node;
    const std::size_t end = std::min(
        node.shard.size(), begin + config_.files_per_step_per_node);
    std::vector<std::uint32_t> files;
    files.reserve(end > begin ? end - begin : 0);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t file = node.shard[i] / samples_per_file_;
      if (std::find(files.begin(), files.end(), file) == files.end()) {
        files.push_back(file);
      }
    }
    return files;
  }

  void issue_node_step(NodeId node_id) {
    Node& node = *nodes_[node_id];
    if (config_.prefetch.enabled &&
        node.prefetched_step == static_cast<std::int64_t>(current_step_)) {
      // Step data was fetched during the previous step's compute.
      if (node.prefetch_outstanding == 0) {
        start_compute(node_id);
      } else {
        node.waiting_for_prefetch = true;  // residual I/O not yet hidden
      }
      return;
    }
    const std::vector<std::uint32_t> files = step_files(node, current_step_);
    node.outstanding = static_cast<std::uint32_t>(files.size());
    if (files.empty()) {
      // Short shard: the node still joins the allreduce.
      start_compute(node_id);
      return;
    }
    // Generation guard: a checkpoint restart can fire mid-step, voiding
    // every in-flight read of the superseded attempt.
    const std::uint64_t generation = attempt_generation_;
    for (const std::uint32_t file : files) {
      read_file(node_id, file, [this, node_id, generation] {
        if (generation != attempt_generation_) return;
        Node& n = *nodes_[node_id];
        if (--n.outstanding == 0) start_compute(node_id);
      });
    }
  }

  /// Starts the step's GPU phase; with prefetch on, the next step's reads
  /// are issued now so they overlap the compute window.
  void start_compute(NodeId node_id) {
    if (config_.prefetch.enabled && !in_validation_) {
      issue_prefetch(node_id, current_step_ + 1);
    }
    const std::uint64_t generation = attempt_generation_;
    sim_.schedule(config_.compute_time_per_step,
                  [this, node_id, generation] {
                    if (generation != attempt_generation_) return;
                    node_step_complete(node_id);
                  });
  }

  /// Checkpoint-restart baseline: the crash requeues the job from the
  /// last epoch-boundary checkpoint with the survivors and COLD caches.
  void trigger_checkpoint_restart() {
    if (restart_scheduled_) return;  // one requeue per crash
    restart_scheduled_ = true;
    restart_pending_ = false;  // supersedes any barrier-time restart
    ++result_.restarts;
    epoch_failure_ = true;
    FTC_LOG(kInfo, "destim")
        << "job crashed; requeueing from checkpoint at "
        << simtime::to_string(sim_.now());
    for (auto& per_node : cached_) {
      per_node.assign(per_node.size(), false);
    }
    cache_bytes_.assign(cache_bytes_.size(), 0);
    inflight_.clear();
    // The requeued incarnation hashes over its own (surviving) allocation.
    modulo_members_ = elastic_.alive_nodes();
    ++attempt_generation_;  // void all in-flight work immediately
    sim_.schedule(config_.checkpoint_restart_overhead, [this] {
      if (config_.checkpoint_write_bytes > 0) {
        // Load the model state back from the PFS before resuming.
        pfs_.read_file(config_.checkpoint_write_bytes, [this] {
          restart_scheduled_ = false;
          start_attempt();
        });
      } else {
        restart_scheduled_ = false;
        start_attempt();
      }
    });
  }

  void issue_prefetch(NodeId node_id, std::uint32_t step) {
    if (step >= steps_in_attempt_) return;
    Node& node = *nodes_[node_id];
    node.prefetched_step = step;
    node.waiting_for_prefetch = false;
    const std::vector<std::uint32_t> files = step_files(node, step);
    node.prefetch_outstanding = static_cast<std::uint32_t>(files.size());
    // Prefetch reads can outlive an elastic restart; the generation tag
    // voids completions from a superseded attempt.
    const std::uint64_t generation = attempt_generation_;
    for (const std::uint32_t file : files) {
      read_file(node_id, file, [this, node_id, generation] {
        if (generation != attempt_generation_) return;
        Node& n = *nodes_[node_id];
        if (--n.prefetch_outstanding == 0 && n.waiting_for_prefetch) {
          n.waiting_for_prefetch = false;
          start_compute(node_id);
        }
      });
    }
  }

  void node_step_complete(NodeId node_id) {
    if (aborted_) return;
    (void)node_id;
    if (++nodes_done_ < expected_done_) return;
    // Barrier released: the allreduce either succeeds (advance) or fails
    // because a participant died (Horovod elastic rollback).
    if (restart_pending_) {
      if (config_.mode == FtMode::kNone && config_.checkpoint_restart) {
        // Even if no survivor touched the dead node this step, the failed
        // allreduce crashes the job; requeue from the checkpoint.
        trigger_checkpoint_restart();
        return;
      }
      restart_pending_ = false;
      ++result_.restarts;
      sim_.schedule(config_.elastic_restart_overhead,
                    [this] { start_attempt(); });
      return;
    }
    if (in_validation_) {
      ++current_val_step_;
      if (current_val_step_ < val_steps_) {
        start_val_step();
      } else {
        in_validation_ = false;
        write_checkpoint_then_finish();
      }
      return;
    }
    ++current_step_;
    if (current_step_ < steps_in_attempt_) {
      start_step();
    } else if (config_.validation_file_count > 0) {
      start_validation();
    } else {
      write_checkpoint_then_finish();
    }
  }

  /// Epoch-boundary model checkpoint (one gathered write to the PFS; all
  /// ranks wait — the blocking-checkpoint baseline FastPersist-style
  /// systems optimize).
  void write_checkpoint_then_finish() {
    if (config_.checkpoint_write_bytes == 0) {
      finish_epoch();
      return;
    }
    const std::uint64_t generation = attempt_generation_;
    pfs_.write_file(config_.checkpoint_write_bytes, [this, generation] {
      if (aborted_ || generation != attempt_generation_) return;
      finish_epoch();
    });
  }

  // ---- Validation phase -----------------------------------------------------
  //
  // After the training steps, the epoch evaluates on the validation files:
  // fixed order (no shuffle), contiguous shard per surviving rank, the
  // same step-synchronized read+compute structure.  Validation files flow
  // through the same cache, so epoch 0 also warms them.

  void start_validation() {
    in_validation_ = true;
    const auto total = static_cast<std::uint32_t>(members_.size());
    std::uint32_t max_shard = 0;
    for (std::uint32_t rank = 0; rank < total; ++rank) {
      max_shard = std::max(max_shard, val_shard_size(rank, total));
    }
    val_steps_ = (max_shard + config_.files_per_step_per_node - 1) /
                 config_.files_per_step_per_node;
    if (val_steps_ == 0) val_steps_ = 1;
    current_val_step_ = 0;
    start_val_step();
  }

  [[nodiscard]] std::uint32_t val_shard_size(std::uint32_t rank,
                                             std::uint32_t total) const {
    const std::uint32_t base = config_.validation_file_count / total;
    const std::uint32_t remainder = config_.validation_file_count % total;
    return base + (rank < remainder ? 1 : 0);
  }

  [[nodiscard]] std::uint32_t val_shard_begin(std::uint32_t rank,
                                              std::uint32_t total) const {
    const std::uint32_t base = config_.validation_file_count / total;
    const std::uint32_t remainder = config_.validation_file_count % total;
    return rank * base + (rank < remainder ? rank : remainder);
  }

  void start_val_step() {
    if (aborted_) return;
    expected_done_ = 0;
    for (const NodeId member : members_) {
      if (nodes_[member]->alive) ++expected_done_;
    }
    if (expected_done_ == 0) {
      abort_run("all members died during validation");
      return;
    }
    nodes_done_ = 0;
    const auto total = static_cast<std::uint32_t>(members_.size());
    for (std::uint32_t rank = 0; rank < total; ++rank) {
      const NodeId member = members_[rank];
      if (nodes_[member]->alive) issue_node_val_step(member, rank, total);
    }
  }

  void issue_node_val_step(NodeId node_id, std::uint32_t rank,
                           std::uint32_t total) {
    Node& node = *nodes_[node_id];
    const std::uint32_t shard_begin = val_shard_begin(rank, total);
    const std::uint32_t shard_size = val_shard_size(rank, total);
    const std::uint32_t step_begin =
        current_val_step_ * config_.files_per_step_per_node;
    const std::uint32_t step_end = std::min(
        shard_size, step_begin + config_.files_per_step_per_node);
    const std::uint32_t reads =
        step_end > step_begin ? step_end - step_begin : 0;
    node.outstanding = reads;
    if (reads == 0) {
      start_compute(node_id);
      return;
    }
    const std::uint64_t generation = attempt_generation_;
    for (std::uint32_t i = step_begin; i < step_end; ++i) {
      const std::uint32_t file = config_.file_count + shard_begin + i;
      read_file(node_id, file, [this, node_id, generation] {
        if (generation != attempt_generation_) return;
        Node& n = *nodes_[node_id];
        if (--n.outstanding == 0) start_compute(node_id);
      });
    }
  }

  void finish_epoch() {
    EpochRecord record;
    record.epoch = epoch_;
    record.duration = sim_.now() - epoch_start_;
    record.attempts = epoch_attempts_;
    record.failure_during = epoch_failure_;
    record.pfs_reads = epoch_counters_.pfs_reads;
    record.local_reads = epoch_counters_.local_reads;
    record.remote_hits = epoch_counters_.remote_hits;
    record.remote_misses = epoch_counters_.remote_misses;
    record.timeouts = epoch_counters_.timeouts;
    record.false_timeouts = epoch_counters_.false_timeouts;
    result_.epochs.push_back(record);
    result_.total_pfs_reads += record.pfs_reads;
    result_.total_timeouts += record.timeouts;
    result_.total_false_timeouts += record.false_timeouts;

    ++epoch_;
    if (epoch_ < config_.epochs) {
      start_epoch();
    } else {
      finished_ = true;
      result_.completed = true;
      result_.total_time = sim_.now();
    }
  }

  void abort_run(std::string reason) {
    if (aborted_) return;
    aborted_ = true;
    result_.completed = false;
    result_.abort_reason = std::move(reason);
    result_.total_time = sim_.now();
  }

  // ---- State ----------------------------------------------------------------

  struct Counters {
    std::uint64_t pfs_reads = 0;
    std::uint64_t local_reads = 0;
    std::uint64_t remote_hits = 0;
    std::uint64_t remote_misses = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t false_timeouts = 0;
  };

  ExperimentConfig config_;
  std::uint32_t samples_per_file_;
  sim::Simulator sim_;
  storage::PfsModel pfs_;
  ring::ConsistentHashRing ring_;
  dl::EpochSampler sampler_;
  dl::ElasticCoordinator elastic_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::uint64_t> key_hash_;
  std::vector<std::uint64_t> modulo_hash_;
  std::vector<NodeId> modulo_members_;
  std::vector<std::vector<bool>> cached_;
  std::vector<std::uint64_t> cache_bytes_;
  /// (owner << 32 | file) -> waiters for an in-flight PFS fetch.
  std::unordered_map<std::uint64_t, std::vector<std::function<void()>>>
      inflight_;
  std::vector<cluster::PlannedFailure> failures_;
  std::size_t next_failure_ = 0;

  std::uint32_t epoch_ = 0;
  std::uint32_t epoch_attempts_ = 0;
  bool epoch_failure_ = false;
  SimTime epoch_start_ = 0;
  std::vector<NodeId> members_;
  std::uint32_t steps_in_attempt_ = 0;
  std::uint32_t current_step_ = 0;
  std::uint32_t nodes_done_ = 0;
  std::uint32_t expected_done_ = 0;
  std::uint64_t attempt_generation_ = 0;
  bool restart_pending_ = false;
  bool restart_scheduled_ = false;  ///< a checkpoint requeue is in flight
  std::uint32_t total_files_ = 0;   ///< training + validation files
  bool in_validation_ = false;
  std::uint32_t val_steps_ = 0;
  std::uint32_t current_val_step_ = 0;
  bool aborted_ = false;
  bool finished_ = false;

  Counters epoch_counters_;
  ExperimentResult result_;
};

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  // Same convention as the threaded constructors: a contradictory knob
  // set fails loudly before any event is scheduled, not as a quietly
  // wrong simulation.
  const Status prefetch_valid = config.prefetch.validate();
  if (!prefetch_valid.is_ok()) {
    throw std::invalid_argument("ExperimentConfig: " +
                                prefetch_valid.to_string());
  }
  Engine engine(config);
  return engine.run();
}

TrialSummary run_experiment_trials(const ExperimentConfig& base,
                                   std::uint32_t trials) {
  TrialSummary summary;
  summary.trials = trials;
  summary.results.reserve(trials);
  for (std::uint32_t t = 0; t < trials; ++t) {
    ExperimentConfig config = base;
    // Independent seeds per trial; 0x9E37... keeps streams uncorrelated.
    config.shuffle_seed = base.shuffle_seed + t * 0x9E3779B9ULL;
    config.pfs.seed = base.pfs.seed + t * 0xC0FFEEULL;
    ExperimentResult result = run_experiment(config);
    if (result.completed) {
      ++summary.completed;
      summary.total_minutes.add(result.total_minutes());
      summary.total_pfs_reads.add(
          static_cast<double>(result.total_pfs_reads));
      summary.restarts.add(static_cast<double>(result.restarts));
    }
    summary.results.push_back(std::move(result));
  }
  return summary;
}

}  // namespace ftc::destim
