// shared_bandwidth.hpp - Processor-sharing bandwidth pipe.
//
// Models a link/device whose total bandwidth is divided equally among all
// in-flight transfers (egalitarian processor sharing).  This is the
// mechanism behind both the NVMe device channel and — critically — the
// shared Lustre OST pool: when hundreds of clients redirect I/O to the PFS
// after a failure, each one's share collapses, producing the straggler
// amplification the paper observes at scale (Sec V-B1).
//
// Exact PS simulation: on every arrival/completion the remaining bytes of
// each active transfer advance by elapsed_time * (bandwidth / n_active) and
// the single pending completion event is rescheduled for the new minimum.
#pragma once

#include <cstdint>
#include <functional>
#include <list>

#include "common/sim_time.hpp"
#include "sim/simulator.hpp"

namespace ftc::sim {

class SharedBandwidthResource {
 public:
  /// `per_transfer_cap_bytes_per_second` bounds one flow's share even when
  /// the pipe is idle (0 = uncapped).  Models Lustre's per-client stream
  /// limit: a single reader cannot saturate the OST pool, so small node
  /// counts are client-limited while large ones are pool-limited.
  SharedBandwidthResource(Simulator& simulator, double bytes_per_second,
                          double per_transfer_cap_bytes_per_second = 0.0);

  /// Starts a transfer of `bytes`; `on_complete` fires when the last byte
  /// arrives under fair sharing with all concurrent transfers.
  void transfer(std::uint64_t bytes, std::function<void()> on_complete);

  [[nodiscard]] std::size_t active_transfers() const { return active_.size(); }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] double bytes_per_second() const { return bytes_per_second_; }
  [[nodiscard]] std::uint64_t total_bytes_moved() const {
    return total_bytes_;
  }

  /// Peak number of simultaneously active transfers seen (contention
  /// telemetry for the experiment reports).
  [[nodiscard]] std::size_t peak_concurrency() const {
    return peak_concurrency_;
  }

 private:
  struct Transfer {
    double remaining_bytes;
    std::function<void()> on_complete;
  };

  /// Equal share per active transfer under the pool and per-flow caps.
  [[nodiscard]] double current_share() const;
  /// Drains progress since `last_update_` into every active transfer.
  void advance_progress();
  /// (Re)schedules the completion event for the earliest-finishing transfer.
  void reschedule_completion();
  void on_completion_event();

  Simulator& simulator_;
  double bytes_per_second_;
  double per_transfer_cap_;
  std::list<Transfer> active_;
  SimTime last_update_ = 0;
  EventId pending_event_ = kInvalidEvent;
  std::uint64_t completed_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::size_t peak_concurrency_ = 0;
};

}  // namespace ftc::sim
