#include "sim/shared_bandwidth.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace ftc::sim {
namespace {

// Completion tolerance: transfers within half a byte of done are done.
// Doubles track remaining bytes; integer nanosecond rounding can leave
// sub-byte residues that must not spin the event loop.
constexpr double kEpsilonBytes = 0.5;

}  // namespace

SharedBandwidthResource::SharedBandwidthResource(
    Simulator& simulator, double bytes_per_second,
    double per_transfer_cap_bytes_per_second)
    : simulator_(simulator),
      bytes_per_second_(bytes_per_second > 0 ? bytes_per_second : 1.0),
      per_transfer_cap_(per_transfer_cap_bytes_per_second) {}

double SharedBandwidthResource::current_share() const {
  if (active_.empty()) return bytes_per_second_;
  double share = bytes_per_second_ / static_cast<double>(active_.size());
  if (per_transfer_cap_ > 0.0 && share > per_transfer_cap_) {
    share = per_transfer_cap_;
  }
  return share;
}

void SharedBandwidthResource::transfer(std::uint64_t bytes,
                                       std::function<void()> on_complete) {
  total_bytes_ += bytes;
  if (bytes == 0) {
    // Nothing to move: complete in the same timestamp, preserving FIFO
    // ordering with other events.
    ++completed_;
    simulator_.schedule(0, std::move(on_complete));
    return;
  }
  advance_progress();
  active_.push_back(
      Transfer{static_cast<double>(bytes), std::move(on_complete)});
  peak_concurrency_ = std::max(peak_concurrency_, active_.size());
  reschedule_completion();
}

void SharedBandwidthResource::advance_progress() {
  const SimTime now = simulator_.now();
  if (active_.empty() || now <= last_update_) {
    last_update_ = now;
    return;
  }
  const double elapsed = simtime::to_seconds(now - last_update_);
  const double per_transfer = elapsed * current_share();
  for (Transfer& t : active_) {
    t.remaining_bytes = std::max(0.0, t.remaining_bytes - per_transfer);
  }
  last_update_ = now;
}

void SharedBandwidthResource::reschedule_completion() {
  if (pending_event_ != kInvalidEvent) {
    simulator_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
  if (active_.empty()) return;
  double min_remaining = active_.front().remaining_bytes;
  for (const Transfer& t : active_) {
    min_remaining = std::min(min_remaining, t.remaining_bytes);
  }
  const double seconds = min_remaining / current_share();
  SimTime delay = simtime::from_seconds(seconds);
  if (delay < 1) delay = 1;  // always advance the clock
  pending_event_ =
      simulator_.schedule(delay, [this] { on_completion_event(); });
}

void SharedBandwidthResource::on_completion_event() {
  pending_event_ = kInvalidEvent;
  advance_progress();
  // Collect all transfers that finished (ties complete together), then run
  // callbacks after list surgery — callbacks may start new transfers.
  std::vector<std::function<void()>> done;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->remaining_bytes <= kEpsilonBytes) {
      done.push_back(std::move(it->on_complete));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  completed_ += done.size();
  reschedule_completion();
  for (auto& fn : done) {
    if (fn) fn();
  }
}

}  // namespace ftc::sim
