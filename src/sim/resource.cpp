#include "sim/resource.hpp"

#include <cassert>
#include <utility>

namespace ftc::sim {

Resource::Resource(Simulator& simulator, std::uint32_t capacity)
    : simulator_(simulator), capacity_(capacity == 0 ? 1 : capacity) {}

void Resource::acquire(SimTime service_time, std::function<void()> on_done) {
  if (in_service_ < capacity_) {
    start_service(service_time, std::move(on_done));
  } else {
    waiting_.push_back(
        Waiter{simulator_.now(), service_time, std::move(on_done)});
  }
}

void Resource::start_service(SimTime service_time,
                             std::function<void()> on_done) {
  ++in_service_;
  simulator_.schedule(service_time,
                      [this, done = std::move(on_done)]() mutable {
                        release();
                        ++completed_;
                        if (done) done();
                      });
}

void Resource::release() {
  assert(in_service_ > 0);
  --in_service_;
  if (!waiting_.empty()) {
    Waiter next = std::move(waiting_.front());
    waiting_.pop_front();
    total_wait_ += simulator_.now() - next.enqueued_at;
    start_service(next.service_time, std::move(next.on_done));
  }
}

double Resource::mean_wait_seconds() const {
  if (completed_ == 0) return 0.0;
  return simtime::to_seconds(total_wait_) / static_cast<double>(completed_);
}

}  // namespace ftc::sim
