// resource.hpp - FIFO server resource for the DES substrate.
//
// Models a service point with `capacity` concurrent slots and a FIFO wait
// queue — e.g. the Lustre metadata server whose lock contention the paper
// identifies as the PFS bottleneck (Sec II-A).  Holders run a fixed
// service time then release; queued requests observe the queueing delay
// that creates the metadata-storm behaviour.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/sim_time.hpp"
#include "sim/simulator.hpp"

namespace ftc::sim {

class Resource {
 public:
  /// `capacity` = number of requests serviced concurrently (>=1).
  Resource(Simulator& simulator, std::uint32_t capacity);

  /// Requests one slot for `service_time`; `on_done` fires when service
  /// completes (after any queueing).  The slot is released automatically.
  void acquire(SimTime service_time, std::function<void()> on_done);

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t in_service() const { return in_service_; }
  [[nodiscard]] std::size_t queue_length() const { return waiting_.size(); }

  /// Total requests that completed service.
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  /// Aggregate time requests spent waiting in queue (not in service).
  [[nodiscard]] SimTime total_wait_time() const { return total_wait_; }
  [[nodiscard]] double mean_wait_seconds() const;

 private:
  struct Waiter {
    SimTime enqueued_at;
    SimTime service_time;
    std::function<void()> on_done;
  };

  void start_service(SimTime service_time, std::function<void()> on_done);
  void release();

  Simulator& simulator_;
  std::uint32_t capacity_;
  std::uint32_t in_service_ = 0;
  std::uint64_t completed_ = 0;
  SimTime total_wait_ = 0;
  std::deque<Waiter> waiting_;
};

}  // namespace ftc::sim
