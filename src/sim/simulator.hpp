// simulator.hpp - Discrete-event simulation core.
//
// A single-threaded event loop over (time, sequence)-ordered callbacks.
// All 1024-node experiments (Fig 5, Fig 6a) run on this substrate: node
// daemons, clients, storage devices and the training loop are callbacks
// that schedule each other.  Determinism: ties at equal timestamps run in
// scheduling order, so a run is a pure function of (config, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.hpp"

namespace ftc::sim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` ns from now (delay < 0 is clamped to 0).
  EventId schedule(SimTime delay, std::function<void()> fn);

  /// Schedules at an absolute simulated time (past times run "now").
  EventId schedule_at(SimTime when, std::function<void()> fn);

  /// Cancels a pending event; returns false when already fired/cancelled.
  bool cancel(EventId id);

  /// Runs the next event.  Returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or `max_events` fire (0 = unlimited —
  /// callers are expected to build terminating models).
  void run(std::uint64_t max_events = 0);

  /// Runs events with timestamp <= `until`; the clock finishes at exactly
  /// `until` even if the queue drained earlier.
  void run_until(SimTime until);

  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  [[nodiscard]] std::size_t pending_events() const;

 private:
  struct Event {
    SimTime when;
    EventId id;
    std::function<void()> fn;
    // Min-heap ordering: earliest time first, FIFO within a timestamp
    // (ids are monotonically increasing).
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Cancelled ids are skipped lazily at pop time (cheaper than heap surgery).
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ftc::sim
