#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace ftc::sim {

EventId Simulator::schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  // Double-cancel or cancel-after-fire is answered with false; the
  // cancelled set only holds ids still sitting in the queue.
  if (cancelled_.contains(id)) return false;
  cancelled_.insert(id);
  ++cancelled_pending_;
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the handler is moved out via pop-then-run
    // on a copy of the metadata.  const_cast is confined to this one spot.
    Event& top = const_cast<Event&>(queue_.top());
    const auto it = cancelled_.find(top.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_pending_;
      queue_.pop();
      continue;
    }
    assert(top.when >= now_ && "event queue must be monotone");
    now_ = top.when;
    std::function<void()> fn = std::move(top.fn);
    queue_.pop();
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (step()) {
    if (max_events != 0 && --budget == 0) return;
  }
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.contains(top.id)) {
      cancelled_.erase(top.id);
      --cancelled_pending_;
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    step();
  }
  if (now_ < until) now_ = until;
}

std::size_t Simulator::pending_events() const {
  return queue_.size() - static_cast<std::size_t>(cancelled_pending_);
}

}  // namespace ftc::sim
