// rng.hpp - Deterministic random number generation.
//
// Every stochastic component in the library (shuffling, failure injection,
// latency jitter, synthetic log generation) draws from an explicitly seeded
// Rng so experiments are reproducible bit-for-bit; trials differ only in
// seed.  The engine is xoshiro256** seeded through SplitMix64, which is
// fast, has 256-bit state and passes BigCrush — std::mt19937_64 would also
// work but is 20x larger state with no benefit here.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ftc {

/// SplitMix64 step — used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic xoshiro256** engine.  Satisfies UniformRandomBitGenerator,
/// so it can drive std::shuffle / std::uniform_int_distribution as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EED5EED5EEDULL) { reseed(seed); }

  /// Re-initializes state from a 64-bit seed via SplitMix64 expansion.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    // 128-bit multiply rejection sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean (>0).
  double exponential(double mean);

  /// Normally distributed value (Box–Muller; consumes two uniforms).
  double normal(double mean, double stddev);

  /// Log-normal with the given underlying normal parameters.
  double lognormal(double mu, double sigma);

  /// Fisher–Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream; children with distinct tags are
  /// statistically independent of the parent and of each other.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    std::uint64_t s = state_[0] ^ rotl(state_[2], 13) ^ (tag * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

inline double Rng::exponential(double mean) {
  // Inverse-CDF; guard against log(0).
  double u = uniform();
  if (u >= 1.0) u = 1.0 - 0x1.0p-53;
  return -mean * std::log(1.0 - u);
}

inline double Rng::normal(double mean, double stddev) {
  // Box–Muller, discarding the second variate for statelessness.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 6.283185307179586476925286766559 * u2;
  return mean + stddev * r * std::cos(theta);
}

inline double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

}  // namespace ftc
