// string_util.hpp - Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ftc {

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Formats with fixed decimal places, e.g. format_double(3.14159, 2) == "3.14".
std::string format_double(double value, int decimals);

/// Renders a byte count as "1.3 TB" / "512 MiB"-style strings (binary units).
std::string format_bytes(std::uint64_t bytes);

/// Parses "4GiB", "128KiB", "1.3TB", "512" (bytes).  Returns 0 on failure.
std::uint64_t parse_bytes(std::string_view s);

/// "file_000042.tfrecord"-style zero-padded names used by the synthetic
/// dataset generator.
std::string zero_pad(std::uint64_t value, int width);

}  // namespace ftc
