// buffer.hpp - Immutable, refcounted payload bytes.
//
// The zero-copy currency of the data path: a Buffer wraps a shared,
// immutable byte string, so handing a cached file to an RPC response, the
// async data mover, or a replication request is a refcount bump instead of
// an O(size) memcpy.  The CRC of a payload is memoized in the shared
// control block, so integrity checksums are computed once per payload
// lifetime instead of once per read.
//
// Ownership discipline (see DESIGN.md "Zero-copy data path"):
//   - bytes are immutable after construction; nobody may mutate through a
//     Buffer.  Anything that must alter bytes (e.g. the transport's wire-
//     corruption fault injection) builds a *new* Buffer from a copy.
//   - constructing from std::string takes ownership (move, no copy);
//     `copy_of` is the explicit deep-copy escape hatch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ftc::common {

class Buffer {
 public:
  /// Empty payload (kNotFound responses, metadata-only cache entries).
  Buffer() = default;

  /// Takes ownership of `bytes` (move in; no copy for rvalues).  Implicit
  /// so existing `payload = some_string` call sites keep working.
  Buffer(std::string bytes)  // NOLINT(google-explicit-constructor)
      : rep_(bytes.empty() ? nullptr
                           : std::make_shared<const Rep>(std::move(bytes))) {}

  /// Literal convenience (tests, stats payloads).
  Buffer(const char* bytes)  // NOLINT(google-explicit-constructor)
      : Buffer(std::string(bytes)) {}

  /// Explicit deep copy — the only way to duplicate payload bytes.
  static Buffer copy_of(std::string_view bytes) {
    return Buffer(std::string(bytes));
  }

  [[nodiscard]] std::size_t size() const {
    return rep_ ? rep_->bytes.size() : 0;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::string_view view() const {
    return rep_ ? std::string_view(rep_->bytes) : std::string_view{};
  }
  [[nodiscard]] const char* data() const {
    return rep_ ? rep_->bytes.data() : nullptr;
  }

  /// Materializes an owned copy (O(size); callers that only need to look
  /// at bytes should use view()).
  [[nodiscard]] std::string to_string() const {
    return std::string(view());
  }

  /// Memoized checksum: `compute` runs at most once per payload (shared
  /// across all Buffers referencing the same bytes); subsequent calls
  /// return the cached value.  Racing computations store the same
  /// deterministic result, so the benign double-compute is harmless.
  template <typename Fn>
  std::uint32_t checksum(Fn&& compute) const {
    if (!rep_) return static_cast<std::uint32_t>(compute(std::string_view{}));
    if (rep_->crc_valid.load(std::memory_order_acquire)) {
      return rep_->crc.load(std::memory_order_relaxed);
    }
    const auto value =
        static_cast<std::uint32_t>(compute(std::string_view(rep_->bytes)));
    rep_->crc.store(value, std::memory_order_relaxed);
    rep_->crc_valid.store(true, std::memory_order_release);
    return value;
  }

  /// True when both Buffers reference the same underlying bytes (refcount
  /// sharing, not byte equality) — the zero-copy assertion hook.
  [[nodiscard]] bool shares_storage(const Buffer& other) const {
    return rep_ != nullptr && rep_ == other.rep_;
  }

  /// Number of Buffers referencing these bytes (0 for the empty buffer).
  [[nodiscard]] long use_count() const { return rep_ ? rep_.use_count() : 0; }

 private:
  struct Rep {
    explicit Rep(std::string b) : bytes(std::move(b)) {}
    const std::string bytes;
    mutable std::atomic<std::uint32_t> crc{0};
    mutable std::atomic<bool> crc_valid{false};
  };

  std::shared_ptr<const Rep> rep_;
};

// One canonical equality over bytes; strings/literals reach it through the
// implicit constructors (comparison cost is fine — it's a test/debug path).
inline bool operator==(const Buffer& a, const Buffer& b) {
  return a.view() == b.view();
}

inline std::ostream& operator<<(std::ostream& os, const Buffer& buffer) {
  constexpr std::size_t kPreview = 64;
  const std::string_view v = buffer.view();
  os << "Buffer(" << v.size() << "B";
  if (!v.empty()) {
    os << ", \"" << v.substr(0, kPreview)
       << (v.size() > kPreview ? "\"..." : "\"");
  }
  return os << ")";
}

}  // namespace ftc::common
