// status.hpp - Lightweight error propagation for FT-Cache.
//
// The library avoids exceptions on hot paths (RPC handling, ring lookups)
// and instead returns Status / StatusOr<T>.  This mirrors the error model of
// the original HVAC codebase where every RPC handler returns an error code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace ftc {

/// Error categories used across the library.  Values are stable so they can
/// be carried across the (simulated) wire in RPC responses.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound = 1,        ///< Key/file does not exist.
  kTimeout = 2,         ///< Operation exceeded its deadline (fault signal).
  kUnavailable = 3,     ///< Target node is marked failed / unreachable.
  kCapacity = 4,        ///< Device or cache out of space.
  kInvalidArgument = 5, ///< Caller error (bad parameter).
  kInternal = 6,        ///< Invariant violation; indicates a bug.
  kCancelled = 7,       ///< Operation aborted (e.g. shutdown in progress).
  kBusy = 8,            ///< Load shed: the target is alive but refused the
                        ///< work (admission control / open circuit breaker).
                        ///< Never a fault signal — callers back off and
                        ///< retry, they must not count it toward detection.
  kFencedEpoch = 9,     ///< Mutating RPC carried a ring epoch older than the
                        ///< server's view: the write was fenced (split-brain
                        ///< protection).  The response piggybacks a kStaleView
                        ///< fast-forward; callers refresh their view and
                        ///< re-place.  Like kBusy, never a fault signal.
};

/// Human-readable name of a status code ("OK", "TIMEOUT", ...).
constexpr const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kCapacity: return "CAPACITY";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kBusy: return "BUSY";
    case StatusCode::kFencedEpoch: return "FENCED_EPOCH";
  }
  return "UNKNOWN";
}

/// Result of an operation: a code plus an optional diagnostic message.
/// Copyable, cheap when OK (empty message).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }
  static Status not_found(std::string m = {}) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status timeout(std::string m = {}) { return {StatusCode::kTimeout, std::move(m)}; }
  static Status unavailable(std::string m = {}) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status capacity(std::string m = {}) { return {StatusCode::kCapacity, std::move(m)}; }
  static Status invalid_argument(std::string m = {}) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status internal(std::string m = {}) { return {StatusCode::kInternal, std::move(m)}; }
  static Status cancelled(std::string m = {}) { return {StatusCode::kCancelled, std::move(m)}; }
  static Status busy(std::string m = {}) { return {StatusCode::kBusy, std::move(m)}; }
  static Status fenced_epoch(std::string m = {}) { return {StatusCode::kFencedEpoch, std::move(m)}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-error holder.  `value()` must only be called when `is_ok()`.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}                 // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}         // NOLINT

  [[nodiscard]] bool is_ok() const { return status_.is_ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }

  /// Returns the contained value or `fallback` when in error state.
  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ftc
