// config.hpp - Flat key=value configuration with typed accessors.
//
// Examples and benches accept "key=value" CLI arguments and optional config
// files so experiment parameters (node counts, virtual nodes, failure
// timing, bandwidths) are adjustable without recompiling — mirroring the
// artifact's environment-variable knobs (FT_CACHE_SERVER_COUNT,
// TIMEOUT_SECONDS, TIMEOUT_LIMIT, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace ftc {

class Config {
 public:
  Config() = default;

  /// Parses "a=1 b=two"-style argv tail.  Unrecognized tokens (no '=')
  /// produce an error naming the token.
  static StatusOr<Config> from_args(int argc, const char* const* argv);

  /// Parses a file of `key = value` lines; '#' starts a comment.
  static StatusOr<Config> from_file(const std::string& path);

  void set(std::string key, std::string value);
  [[nodiscard]] bool has(std::string_view key) const;

  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  /// Parses byte-size strings like "4GiB" via parse_bytes.
  [[nodiscard]] std::uint64_t get_bytes(std::string_view key,
                                        std::uint64_t fallback) const;
  /// Comma-separated integer list, e.g. "64,128,256".
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      std::string_view key, std::vector<std::int64_t> fallback) const;

  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& entries()
      const {
    return entries_;
  }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace ftc
