// logging.hpp - Minimal leveled logger.
//
// Thread-safe (single global mutex around emission), cheap when the level
// is filtered out (message formatting is skipped).  The DES substrate logs
// with the *simulated* timestamp via set_time_source so traces line up with
// simulation time rather than wall time.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/sim_time.hpp"

namespace ftc {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* log_level_name(LogLevel level);

/// Global logger configuration + emission.  Not a class hierarchy: the
/// library needs exactly one sink and the simplicity keeps hot paths cheap.
namespace logging {

/// Sets the minimum level that will be emitted (default kWarn so tests and
/// benches stay quiet unless asked).
void set_level(LogLevel level);
LogLevel level();

/// Optional clock; when set, each line is prefixed with the simulated time.
void set_time_source(std::function<SimTime()> source);
void clear_time_source();

/// Redirects output (default stderr).  The sink receives complete lines.
void set_sink(std::function<void(const std::string&)> sink);
void reset_sink();

/// Emits one line at `level` tagged with `component`.
void emit(LogLevel level, const std::string& component,
          const std::string& message);

}  // namespace logging

/// Streaming helper: FTC_LOG(kInfo, "ring") << "node " << id << " removed";
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)),
        enabled_(level >= logging::level()) {}

  ~LogLine() {
    if (enabled_) logging::emit(level_, component_, stream_.str());
  }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};

#define FTC_LOG(level, component) ::ftc::LogLine(::ftc::LogLevel::level, component)

}  // namespace ftc
