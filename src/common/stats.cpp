#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/histogram.hpp"  // percentile_sorted

namespace ftc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  const double m = mean();
  return m != 0.0 ? stddev() / m : 0.0;
}

Summary::Summary(std::vector<double> samples) : samples_(std::move(samples)) {}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

void Summary::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::min() {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Summary::max() {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Summary::percentile(double p) {
  ensure_sorted();
  return percentile_sorted(samples_, p);
}

double jain_fairness(const std::vector<double>& loads) {
  if (loads.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : loads) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(loads.size()) * sum_sq);
}

double peak_to_mean(const std::vector<double>& loads) {
  if (loads.empty()) return 1.0;
  double sum = 0.0;
  double peak = loads.front();
  for (double x : loads) {
    sum += x;
    peak = std::max(peak, x);
  }
  const double mean = sum / static_cast<double>(loads.size());
  return mean != 0.0 ? peak / mean : 1.0;
}

}  // namespace ftc
