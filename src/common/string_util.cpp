#include "common/string_util.hpp"

#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ftc {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format_double(double value, int decimals) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", decimals, value);
  return std::string(buf.data());
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 6> units = {"B",   "KiB", "MiB",
                                                       "GiB", "TiB", "PiB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < units.size()) {
    v /= 1024.0;
    ++u;
  }
  std::array<char, 64> buf{};
  if (u == 0) {
    std::snprintf(buf.data(), buf.size(), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf.data(), buf.size(), "%.2f %s", v, units[u]);
  }
  return std::string(buf.data());
}

std::uint64_t parse_bytes(std::string_view s) {
  s = trim(s);
  if (s.empty()) return 0;
  char* end = nullptr;
  const std::string copy(s);
  const double value = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || value < 0) return 0;
  std::string_view unit = trim(std::string_view(end));
  double mult = 1.0;
  if (unit.empty() || unit == "B" || unit == "b") {
    mult = 1.0;
  } else if (unit == "KiB" || unit == "K" || unit == "k" || unit == "KB") {
    mult = 1024.0;
  } else if (unit == "MiB" || unit == "M" || unit == "MB") {
    mult = 1024.0 * 1024.0;
  } else if (unit == "GiB" || unit == "G" || unit == "GB") {
    mult = 1024.0 * 1024.0 * 1024.0;
  } else if (unit == "TiB" || unit == "T" || unit == "TB") {
    mult = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else {
    return 0;
  }
  return static_cast<std::uint64_t>(value * mult);
}

std::string zero_pad(std::uint64_t value, int width) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%0*llu", width,
                static_cast<unsigned long long>(value));
  return std::string(buf.data());
}

}  // namespace ftc

// simtime::to_string lives here to keep sim_time.hpp header-only aside from
// this one formatting function.
#include "common/sim_time.hpp"

namespace ftc::simtime {

std::string to_string(SimTime t) {
  const bool neg = t < 0;
  if (neg) t = -t;
  const std::int64_t hours = t / kHour;
  const std::int64_t minutes = (t % kHour) / kMinute;
  const double seconds = static_cast<double>(t % kMinute) /
                         static_cast<double>(kSecond);
  std::array<char, 64> buf{};
  if (hours > 0) {
    std::snprintf(buf.data(), buf.size(), "%s%lldh%02lldm%06.3fs",
                  neg ? "-" : "", static_cast<long long>(hours),
                  static_cast<long long>(minutes), seconds);
  } else if (minutes > 0) {
    std::snprintf(buf.data(), buf.size(), "%s%lldm%06.3fs", neg ? "-" : "",
                  static_cast<long long>(minutes), seconds);
  } else {
    std::snprintf(buf.data(), buf.size(), "%s%.6fs", neg ? "-" : "",
                  static_cast<double>(t) / static_cast<double>(kSecond));
  }
  return std::string(buf.data());
}

}  // namespace ftc::simtime
