#include "common/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace ftc {

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  assert(edges_.size() >= 2 && "histogram needs at least one bucket");
  assert(std::is_sorted(edges_.begin(), edges_.end()));
  counts_.assign(edges_.size() - 1, 0.0);
}

void Histogram::add(double x, double weight) {
  if (x < edges_.front()) {
    underflow_ += weight;
    return;
  }
  if (x >= edges_.back()) {
    overflow_ += weight;
    return;
  }
  // upper_bound returns the first edge > x; the bucket index is one less.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const auto idx = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[idx] += weight;
}

double Histogram::total() const {
  double t = underflow_ + overflow_;
  for (double c : counts_) t += c;
  return t;
}

std::string Histogram::bucket_label(std::size_t i) const {
  std::ostringstream os;
  os << "[" << edges_[i] << ", " << edges_[i + 1] << ")";
  return os.str();
}

double Histogram::bucket_fraction(std::size_t i) const {
  const double t = total();
  return t > 0.0 ? counts_[i] / t : 0.0;
}

void CategoricalHistogram::add(const std::string& category, double weight) {
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (order_[i] == category) {
      counts_[i] += weight;
      return;
    }
  }
  order_.push_back(category);
  counts_.push_back(weight);
}

double CategoricalHistogram::count(const std::string& category) const {
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (order_[i] == category) return counts_[i];
  }
  return 0.0;
}

double CategoricalHistogram::total() const {
  double t = 0.0;
  for (double c : counts_) t += c;
  return t;
}

double CategoricalHistogram::fraction(const std::string& category) const {
  const double t = total();
  return t > 0.0 ? count(category) / t : 0.0;
}

}  // namespace ftc
