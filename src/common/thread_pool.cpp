#include "common/thread_pool.hpp"

#include <utility>

namespace ftc::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::uint64_t ThreadPool::completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-on-stop: run queued tasks even while stopping so submitted
      // work (async completions, recaches) always executes.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      ++completed_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ftc::common
