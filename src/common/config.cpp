#include "common/config.hpp"

#include <cstdlib>
#include <fstream>

#include "common/string_util.hpp"

namespace ftc {

StatusOr<Config> Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::invalid_argument("expected key=value, got '" +
                                      std::string(arg) + "'");
    }
    cfg.set(std::string(trim(arg.substr(0, eq))),
            std::string(trim(arg.substr(eq + 1))));
  }
  return cfg;
}

StatusOr<Config> Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open config file: " + path);
  Config cfg;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::invalid_argument(path + ":" + std::to_string(lineno) +
                                      ": expected key = value");
    }
    cfg.set(std::string(trim(trimmed.substr(0, eq))),
            std::string(trim(trimmed.substr(eq + 1))));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::has(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::string Config::get_string(std::string_view key,
                               std::string fallback) const {
  const auto it = entries_.find(key);
  return it != entries_.end() ? it->second : std::move(fallback);
}

std::int64_t Config::get_int(std::string_view key,
                             std::int64_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != it->second.c_str()) ? static_cast<std::int64_t>(v) : fallback;
}

double Config::get_double(std::string_view key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != it->second.c_str()) ? v : fallback;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

std::uint64_t Config::get_bytes(std::string_view key,
                                std::uint64_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::uint64_t v = parse_bytes(it->second);
  return v != 0 ? v : fallback;
}

std::vector<std::int64_t> Config::get_int_list(
    std::string_view key, std::vector<std::int64_t> fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  std::vector<std::int64_t> out;
  for (const std::string& part : split(it->second, ',')) {
    const std::string_view t = trim(part);
    if (t.empty()) continue;
    char* end = nullptr;
    const std::string copy(t);
    const long long v = std::strtoll(copy.c_str(), &end, 10);
    if (end == copy.c_str()) return fallback;
    out.push_back(static_cast<std::int64_t>(v));
  }
  return out.empty() ? fallback : out;
}

}  // namespace ftc
