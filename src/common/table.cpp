#include "common/table.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace ftc {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_values(const std::vector<double>& values,
                               int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, decimals));
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " ";
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string e = "\"";
    for (char ch : s) {
      if (ch == '"') e += '"';
      e += ch;
    }
    return e + "\"";
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ",";
    out += escape(headers_[c]);
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ",";
      out += escape(row[c]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace ftc
