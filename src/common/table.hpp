// table.hpp - ASCII table renderer for experiment output.
//
// Every bench binary prints the rows/series the paper reports through this
// one formatter so outputs are uniform and diffable (EXPERIMENTS.md records
// them verbatim).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ftc {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `decimals` places.
  void add_row_values(const std::vector<double>& values, int decimals = 2);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with column alignment and a header separator.
  [[nodiscard]] std::string to_string() const;

  /// Renders as CSV (for machine consumption alongside the pretty print).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftc
