#include "common/logging.hpp"

#include <cstdio>
#include <mutex>
#include <utility>

namespace ftc {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace logging {
namespace {

struct State {
  std::mutex mutex;
  LogLevel level = LogLevel::kWarn;
  std::function<SimTime()> time_source;
  std::function<void(const std::string&)> sink;
};

State& state() {
  static State s;
  return s;
}

}  // namespace

void set_level(LogLevel level) {
  std::lock_guard lock(state().mutex);
  state().level = level;
}

LogLevel level() {
  // Racy read is acceptable: level changes are test-setup-time only.
  return state().level;
}

void set_time_source(std::function<SimTime()> source) {
  std::lock_guard lock(state().mutex);
  state().time_source = std::move(source);
}

void clear_time_source() {
  std::lock_guard lock(state().mutex);
  state().time_source = nullptr;
}

void set_sink(std::function<void(const std::string&)> sink) {
  std::lock_guard lock(state().mutex);
  state().sink = std::move(sink);
}

void reset_sink() {
  std::lock_guard lock(state().mutex);
  state().sink = nullptr;
}

void emit(LogLevel level, const std::string& component,
          const std::string& message) {
  std::lock_guard lock(state().mutex);
  if (level < state().level) return;
  std::string line;
  line.reserve(message.size() + component.size() + 32);
  if (state().time_source) {
    line += "[";
    line += simtime::to_string(state().time_source());
    line += "] ";
  }
  line += "[";
  line += log_level_name(level);
  line += "] [";
  line += component;
  line += "] ";
  line += message;
  if (state().sink) {
    state().sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace logging
}  // namespace ftc
