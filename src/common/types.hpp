// types.hpp - Core identifier types shared across layers.
//
// Historically each layer (ring, cluster, rpc) declared its own
// `NodeId = std::uint32_t` alias; they were always the same type but read
// as three different vocabularies and let signatures drift (e.g.
// HvacClient::current_owner returning ring::NodeId while the rest of the
// class spoke cluster::NodeId).  This header is the single definition;
// the per-layer names remain as aliases of ftc::NodeId for brevity at use
// sites.
#pragma once

#include <cstdint>
#include <limits>

namespace ftc {

/// Physical cache-server / compute-node identifier.  Dense small
/// integers: node i of an N-node allocation.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (empty membership, no owner).
constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

}  // namespace ftc
