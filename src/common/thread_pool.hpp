// thread_pool.hpp - Fixed-size worker pool with idle-wait.
//
// Replaces the two unbounded thread spawners in the data path: the
// transport's thread-per-async-call and the HVAC server's bespoke
// data-mover queue.  The pool holds a constant number of threads for its
// whole lifetime; submissions beyond the worker count queue up in FIFO
// order.  Destruction drains the queue (every submitted task runs) before
// joining — callers that need completion-before-teardown get it for free.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ftc::common {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (minimum 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (all accepted tasks run), then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Returns false (task dropped) when the pool is
  /// stopping — callers that care must complete the work themselves.
  bool submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is running a task.
  /// Reusable: new work may be submitted afterwards.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t completed() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for tasks/stop
  std::condition_variable idle_cv_;   ///< wait_idle waiters
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;            ///< tasks currently executing
  std::uint64_t completed_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ftc::common
