// latency_recorder.hpp - Sliding-window latency tracking.
//
// The paper's TTL guidance (Sec IV-A) is operational: the timeout "only
// needs to be greater than the longest observed latency".  This recorder
// keeps the last N observations in a ring buffer and answers exactly that
// question — max and percentiles over the recent window — so a client can
// derive its TIMEOUT_SECONDS from measurements instead of folklore.
//
// Not thread-safe: each HvacClient owns one and is driven by one thread.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/histogram.hpp"  // percentile_sorted

namespace ftc {

class LatencyRecorder {
 public:
  /// `window` = number of most-recent samples retained (>= 1).
  explicit LatencyRecorder(std::size_t window = 1024)
      : window_(window == 0 ? 1 : window) {
    samples_.reserve(window_);
  }

  /// Records one latency observation (any consistent unit; callers use
  /// microseconds).
  void record(double value) {
    if (samples_.size() < window_) {
      samples_.push_back(value);
    } else {
      samples_[cursor_] = value;
    }
    cursor_ = (cursor_ + 1) % window_;
    ++total_;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }

  [[nodiscard]] double max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  /// Linear-interpolated percentile over the current window, p in [0,100].
  /// Shares the interpolation with Summary::percentile (percentile_sorted).
  [[nodiscard]] double percentile(double p) const {
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    return percentile_sorted(sorted, p);
  }

  /// Cumulative bucket view of the current window (Prometheus `le`
  /// semantics: cumulative[i] = samples <= upper_bounds[i], with `count`
  /// playing the +Inf bucket).  Lets the window back a registry histogram
  /// directly — same data, no resampling through point quantiles.
  /// `upper_bounds` must be ascending.
  struct BucketSnapshot {
    std::vector<std::uint64_t> cumulative;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] BucketSnapshot cumulative_buckets(
      const std::vector<double>& upper_bounds) const {
    BucketSnapshot snap;
    snap.cumulative.assign(upper_bounds.size(), 0);
    for (double s : samples_) {
      snap.sum += s;
      // First bound >= s; samples above every bound only count toward +Inf.
      const auto it =
          std::lower_bound(upper_bounds.begin(), upper_bounds.end(), s);
      if (it != upper_bounds.end()) {
        ++snap.cumulative[static_cast<std::size_t>(it - upper_bounds.begin())];
      }
    }
    std::uint64_t running = 0;
    for (std::uint64_t& c : snap.cumulative) {
      running += c;
      c = running;
    }
    snap.count = samples_.size();
    return snap;
  }

  /// The paper's rule with a safety margin: TTL = max observed * margin.
  /// Returns `fallback` until enough samples exist to trust the window.
  [[nodiscard]] double recommended_timeout(double margin = 2.0,
                                           std::size_t min_samples = 16,
                                           double fallback = 0.0) const {
    if (samples_.size() < min_samples) return fallback;
    return max() * margin;
  }

 private:
  std::size_t window_;
  std::size_t cursor_ = 0;
  std::uint64_t total_ = 0;
  std::vector<double> samples_;
};

}  // namespace ftc
