// sim_time.hpp - Integer-nanosecond simulated time.
//
// All latency/bandwidth modelling in the discrete-event substrate uses
// SimTime to avoid floating-point drift across millions of events.  The
// threaded substrate uses real std::chrono clocks instead; both share the
// same policy code which is time-representation agnostic.
#pragma once

#include <cstdint>
#include <string>

namespace ftc {

/// Simulated time point / duration in nanoseconds since simulation start.
/// Plain integer wrapper: arithmetic is explicit and overflow-checked by
/// range (2^63 ns ~ 292 years of simulated time).
using SimTime = std::int64_t;

namespace simtime {

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

constexpr SimTime from_us(double us) {
  return static_cast<SimTime>(us * static_cast<double>(kMicrosecond));
}
constexpr SimTime from_ms(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
constexpr double to_minutes(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMinute);
}

/// Time needed to move `bytes` through a pipe of `bytes_per_second`
/// bandwidth.  Returns at least 1 ns for any positive transfer so events
/// always advance the clock.
constexpr SimTime transfer_time(std::uint64_t bytes, double bytes_per_second) {
  if (bytes == 0 || bytes_per_second <= 0.0) return 0;
  const double secs = static_cast<double>(bytes) / bytes_per_second;
  const auto t = static_cast<SimTime>(secs * static_cast<double>(kSecond));
  return t > 0 ? t : 1;
}

/// Formats a SimTime as "1h02m03.456s" style human-readable string.
std::string to_string(SimTime t);

}  // namespace simtime
}  // namespace ftc
