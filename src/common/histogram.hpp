// histogram.hpp - Fixed-bucket and categorical histograms.
//
// Used by the SLURM trace analyzer (Fig 2's node-count / elapsed-time
// buckets) and by latency distribution reporting in the RPC layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ftc {

/// Linear-interpolated percentile over an ascending-sorted sample,
/// p in [0,100]; 0 for an empty sample.  The single implementation behind
/// Summary::percentile and LatencyRecorder::percentile (they previously
/// carried byte-identical copies of this interpolation).
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double p);

/// Histogram over explicit bucket edges.  A value x lands in bucket i when
/// edges[i] <= x < edges[i+1]; values below edges[0] land in an underflow
/// bucket and values >= edges.back() in an overflow bucket.
class Histogram {
 public:
  /// `edges` must be strictly increasing and contain at least two entries.
  explicit Histogram(std::vector<double> edges);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] double bucket_weight(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double underflow() const { return underflow_; }
  [[nodiscard]] double overflow() const { return overflow_; }
  [[nodiscard]] double total() const;
  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }

  /// Label like "[10, 20)" for bucket i.
  [[nodiscard]] std::string bucket_label(std::size_t i) const;

  /// Fraction of total weight in bucket i (0 when empty histogram).
  [[nodiscard]] double bucket_fraction(std::size_t i) const;

 private:
  std::vector<double> edges_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

/// Counts per named category, preserving insertion order for display.
class CategoricalHistogram {
 public:
  void add(const std::string& category, double weight = 1.0);

  [[nodiscard]] double count(const std::string& category) const;
  [[nodiscard]] double total() const;
  [[nodiscard]] double fraction(const std::string& category) const;
  [[nodiscard]] const std::vector<std::string>& categories() const {
    return order_;
  }

 private:
  std::vector<std::string> order_;
  std::vector<double> counts_;
};

}  // namespace ftc
