// stats.hpp - Streaming and batch statistics used by every experiment.
//
// RunningStats implements Welford's online algorithm (numerically stable
// single-pass mean/variance); Summary computes order statistics from a
// retained sample vector.  Both are used to produce the mean ± stddev rows
// the paper reports (e.g. Fig 6(b) error bars).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ftc {

/// Single-pass mean / variance / min / max accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel-friendly,
  /// Chan et al. pairwise update).
  void merge(const RunningStats& other);

  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  [[nodiscard]] double cv() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary over a retained sample: percentiles + moments.
class Summary {
 public:
  Summary() = default;
  explicit Summary(std::vector<double> samples);

  void add(double x) { samples_.push_back(x); sorted_ = false; }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min();
  [[nodiscard]] double max();
  /// Linear-interpolated percentile, p in [0,100].
  [[nodiscard]] double percentile(double p);
  [[nodiscard]] double median() { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted();

  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Jain's fairness index over per-node loads: 1.0 = perfectly balanced,
/// 1/n = maximally skewed.  Used by the load-distribution experiments.
double jain_fairness(const std::vector<double>& loads);

/// Max-to-mean load ratio; 1.0 = balanced.  Complements Jain's index.
double peak_to_mean(const std::vector<double>& loads);

}  // namespace ftc
