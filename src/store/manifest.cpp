#include "store/manifest.hpp"

#include <charconv>
#include <sstream>

namespace ftc::store {

namespace {

constexpr const char* kHeader = "ftc-manifest v1";

bool parse_u64(const std::string& token, std::uint64_t& out) {
  const char* first = token.data();
  const char* last = first + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

std::uint64_t Manifest::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& entry : entries) total += entry.bytes;
  return total;
}

std::string Manifest::serialize() const {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const auto& entry : entries) {
    out << entry.path << '\t' << entry.tier << '\t' << entry.bytes << '\t'
        << entry.generation << '\n';
  }
  out << "end " << entries.size() << '\n';
  return out.str();
}

StatusOr<Manifest> Manifest::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::invalid_argument("manifest: bad header");
  }
  Manifest manifest;
  bool saw_footer = false;
  while (std::getline(in, line)) {
    if (line.rfind("end ", 0) == 0) {
      std::uint64_t count = 0;
      if (!parse_u64(line.substr(4), count) ||
          count != manifest.entries.size()) {
        return Status::invalid_argument("manifest: footer count mismatch");
      }
      saw_footer = true;
      break;
    }
    ManifestEntry entry;
    const std::size_t t1 = line.find('\t');
    const std::size_t t2 = t1 == std::string::npos ? t1 : line.find('\t', t1 + 1);
    const std::size_t t3 = t2 == std::string::npos ? t2 : line.find('\t', t2 + 1);
    if (t3 == std::string::npos) {
      return Status::invalid_argument("manifest: malformed row: " + line);
    }
    entry.path = line.substr(0, t1);
    entry.tier = line.substr(t1 + 1, t2 - t1 - 1);
    if (entry.path.empty() ||
        (entry.tier != "ram" && entry.tier != "nvme")) {
      return Status::invalid_argument("manifest: malformed row: " + line);
    }
    if (!parse_u64(line.substr(t2 + 1, t3 - t2 - 1), entry.bytes) ||
        !parse_u64(line.substr(t3 + 1), entry.generation)) {
      return Status::invalid_argument("manifest: malformed row: " + line);
    }
    manifest.entries.push_back(std::move(entry));
  }
  if (!saw_footer) {
    return Status::invalid_argument("manifest: truncated (no footer)");
  }
  return manifest;
}

}  // namespace ftc::store
