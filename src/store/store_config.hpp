// store_config.hpp - Knobs for the tiered RAM+NVMe cache store.
//
// One nested block under HvacServerConfig (`server.store.*`), following
// the PR-5 convention: default-off, validate() rejects contradictory
// combinations, and with `tiering` false the server runs the legacy
// ShardedCacheStore bit-for-bit (the legacy cache_capacity_bytes /
// eviction_policy / cache_shards knobs keep their meaning; the store.*
// block is inert).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/status.hpp"
#include "storage/nvme_model.hpp"
#include "store/eviction.hpp"

namespace ftc::store {

struct StoreConfig {
  /// Master switch: replace the single-budget ShardedCacheStore with the
  /// RAM+NVMe TieredCacheStore.
  bool tiering = false;

  /// Hot-tier (RAM) budget: entries here serve zero-copy from Buffer.
  std::uint64_t ram_bytes = 256ULL << 20;
  /// Cold-tier (NVMe) budget: demotion target; hits pay modelled NVMe
  /// latency and promote back to RAM.
  std::uint64_t nvme_bytes = 1ULL << 30;

  /// Victim selection, used by BOTH tiers (each tier runs its own
  /// instance): lru | fifo | s3fifo | gdsf.
  PolicyKind policy = PolicyKind::kS3Fifo;

  /// Watermark pair driving background reclaim, as fractions of each
  /// tier's budget: reclaim starts above `high_watermark` and drains the
  /// tier to `low_watermark`.  Writes never wait for reclaim — a put
  /// that would overshoot the RAM hard cap overflows straight into the
  /// cold tier instead of blocking.
  double low_watermark = 0.75;
  double high_watermark = 0.90;

  /// Lock stripes for the hot tier.
  std::size_t shards = 8;

  /// Dedicated reclaim thread (the production mode).  Off = reclaim runs
  /// inline at the end of each put — deterministic for unit tests.
  bool background_reclaim = true;

  /// Price cold-tier accesses at real NVMe service times (Table II via
  /// `nvme`); off keeps the device a plain map (fast tests, legacy-
  /// identical timing).
  bool model_nvme_latency = false;
  /// Bandwidth/op-latency numbers for the modelled device.  Its
  /// capacity_bytes field is ignored — `nvme_bytes` governs capacity.
  storage::NvmeConfig nvme;

  struct ManifestConfig {
    /// Warm restart: a restarted server rebuilds its cold tier from the
    /// device's crash-consistent manifest, re-validating entries by
    /// generation.  Off = a restart treats the device as scratch (wipes
    /// it), the cold-rejoin behaviour.
    bool enabled = true;
  } manifest;

  [[nodiscard]] Status validate() const {
    if (!tiering) return Status::ok();
    if (ram_bytes == 0) {
      return Status::invalid_argument("store.ram_bytes must be > 0");
    }
    if (nvme_bytes == 0) {
      return Status::invalid_argument("store.nvme_bytes must be > 0");
    }
    if (shards == 0) {
      return Status::invalid_argument("store.shards must be >= 1");
    }
    if (low_watermark <= 0.0 || low_watermark >= 1.0 ||
        high_watermark <= 0.0 || high_watermark > 1.0 ||
        low_watermark >= high_watermark) {
      return Status::invalid_argument(
          "store watermarks must satisfy 0 < low < high <= 1");
    }
    if (model_nvme_latency && (nvme.read_bytes_per_second <= 0.0 ||
                               nvme.write_bytes_per_second <= 0.0)) {
      return Status::invalid_argument(
          "store.model_nvme_latency needs positive NVMe bandwidths");
    }
    return Status::ok();
  }
};

}  // namespace ftc::store
