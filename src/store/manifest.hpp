// manifest.hpp - The per-node cache manifest: what the NVMe volume holds.
//
// The tiered store keeps the cold tier's index (path -> bytes, generation
// stamp from the replication ledger) co-located with the data on the
// NvmeDevice, journal-style: every cold-tier write or erase updates the
// index in the same critical section, so the manifest is always exactly
// the set of payloads that would survive a node crash.  A killed node
// restarted through the SWIM rejoin path re-validates manifest entries by
// generation (a metadata check) instead of re-fetching its whole shard
// from the PFS (a payload transfer per file) — that delta is what the
// warm-restart phase of bench_pressure measures.
//
// This header is the serialized exchange format: a versioned text table
// (one entry per line) with an entry-count footer so truncated files are
// detected.  Payload bytes are NOT part of the manifest — it is an index,
// exactly like a filesystem journal describes but does not contain data
// blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace ftc::store {

struct ManifestEntry {
  std::string path;
  /// "ram" entries exist only after an explicit flush (clean shutdown);
  /// a crash manifest holds "nvme" rows exclusively.
  std::string tier;
  std::uint64_t bytes = 0;
  /// Replication-ledger stamp recorded when the entry was written;
  /// 0 = never stamped (legacy fill path).
  std::uint64_t generation = 0;
};

struct Manifest {
  std::vector<ManifestEntry> entries;

  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Versioned text form:
  ///   ftc-manifest v1
  ///   <path>\t<tier>\t<bytes>\t<generation>
  ///   ...
  ///   end <count>
  [[nodiscard]] std::string serialize() const;

  /// Inverse of serialize(); kInvalidArgument on a bad header, malformed
  /// row, or a footer count that disagrees with the rows present (a
  /// truncated manifest must fail loudly, not restore half a node).
  static StatusOr<Manifest> parse(const std::string& text);
};

}  // namespace ftc::store
