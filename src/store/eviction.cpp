#include "store/eviction.hpp"

#include <list>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace ftc::store {

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kFifo: return "fifo";
    case PolicyKind::kS3Fifo: return "s3fifo";
    case PolicyKind::kGdsf: return "gdsf";
  }
  return "?";
}

StatusOr<PolicyKind> parse_policy_kind(const std::string& name) {
  if (name == "lru") return PolicyKind::kLru;
  if (name == "fifo") return PolicyKind::kFifo;
  if (name == "s3fifo") return PolicyKind::kS3Fifo;
  if (name == "gdsf") return PolicyKind::kGdsf;
  return Status::invalid_argument("unknown eviction policy: " + name +
                                  " (want lru|fifo|s3fifo|gdsf)");
}

namespace {

// ---------------------------------------------------------------------
// LRU / FIFO share one list+map skeleton; only the hit behaviour differs.
class ListPolicy : public EvictionPolicy {
 public:
  explicit ListPolicy(bool refresh_on_hit) : refresh_on_hit_(refresh_on_hit) {}

  [[nodiscard]] PolicyKind kind() const override {
    return refresh_on_hit_ ? PolicyKind::kLru : PolicyKind::kFifo;
  }

  void on_insert(const std::string& key, std::uint64_t) override {
    on_erase(key);  // re-insert of a tracked key replaces its position
    order_.push_front(key);
    index_[key] = order_.begin();
  }

  void on_hit(const std::string& key) override {
    if (!refresh_on_hit_) return;
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    order_.splice(order_.begin(), order_, it->second);
  }

  void on_erase(const std::string& key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    order_.erase(it->second);
    index_.erase(it);
  }

  std::optional<std::string> pop_victim() override {
    if (order_.empty()) return std::nullopt;
    std::string victim = std::move(order_.back());
    order_.pop_back();
    index_.erase(victim);
    return victim;
  }

  [[nodiscard]] std::size_t tracked() const override { return index_.size(); }

  void reset() override {
    order_.clear();
    index_.clear();
  }

 private:
  bool refresh_on_hit_;
  std::list<std::string> order_;  ///< front = newest
  std::unordered_map<std::string, std::list<std::string>::iterator> index_;
};

// ---------------------------------------------------------------------
// S3-FIFO (Yang et al., SOSP'23), key-granularity variant.  Three FIFO
// queues: `small_` holds probationary new keys (~10% of tracked bytes),
// `main_` holds graduated keys, `ghost_` remembers recently evicted
// small-queue keys (metadata only) so a quick re-reference re-enters
// main directly.  Reads only set a saturating frequency counter — no
// list surgery on the hit path.
class S3FifoPolicy : public EvictionPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::kS3Fifo; }

  void on_insert(const std::string& key, std::uint64_t bytes) override {
    if (const auto it = index_.find(key); it != index_.end()) unlink(it);
    Meta meta;
    meta.bytes = bytes;
    if (ghost_index_.erase(key) > 0) {
      // Remembered casualty: it proved reuse beyond the small window.
      meta.in_main = true;
      main_.push_front(key);
      meta.it = main_.begin();
      main_bytes_ += bytes;
    } else {
      meta.in_main = false;
      small_.push_front(key);
      meta.it = small_.begin();
      small_bytes_ += bytes;
    }
    index_[key] = meta;
  }

  void on_hit(const std::string& key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    if (it->second.freq < kMaxFreq) ++it->second.freq;
  }

  void on_erase(const std::string& key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    unlink(it);
  }

  std::optional<std::string> pop_victim() override {
    // Evict from small while it exceeds its ~10% byte share (or main is
    // empty); otherwise scan main.  Terminates: every pass either evicts,
    // moves a key small->main (small shrinks), or decays a main key's
    // frequency toward zero.
    while (!small_.empty() || !main_.empty()) {
      const bool from_small =
          !small_.empty() &&
          (main_.empty() ||
           small_bytes_ * 10 >= (small_bytes_ + main_bytes_));
      if (from_small) {
        const std::string key = small_.back();
        const auto it = index_.find(key);
        const std::uint64_t bytes = it->second.bytes;
        const bool graduate = it->second.freq > 0;
        unlink(it);
        if (graduate) {
          // Re-referenced while probationary: graduate to main.
          Meta meta;
          meta.bytes = bytes;
          meta.in_main = true;
          main_.push_front(key);
          meta.it = main_.begin();
          main_bytes_ += bytes;
          index_[key] = meta;
          continue;
        }
        // freq == 0: genuine one-touch entry — evict and remember it in
        // the ghost queue so a near-future re-reference skips small.
        remember_ghost(key);
        return key;
      }
      const std::string key = main_.back();
      const auto it = index_.find(key);
      if (it->second.freq > 0) {
        // Second chance: decay and recycle to the head.
        --it->second.freq;
        main_.splice(main_.begin(), main_, it->second.it);
        it->second.it = main_.begin();
        continue;
      }
      unlink(it);
      return key;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t tracked() const override { return index_.size(); }

  void reset() override {
    small_.clear();
    main_.clear();
    ghost_.clear();
    ghost_index_.clear();
    index_.clear();
    small_bytes_ = main_bytes_ = 0;
  }

 private:
  static constexpr std::uint8_t kMaxFreq = 3;

  struct Meta {
    std::uint64_t bytes = 0;
    std::list<std::string>::iterator it;
    bool in_main = false;
    std::uint8_t freq = 0;
  };

  void unlink(std::unordered_map<std::string, Meta>::iterator it) {
    if (it->second.in_main) {
      main_bytes_ -= it->second.bytes;
      main_.erase(it->second.it);
    } else {
      small_bytes_ -= it->second.bytes;
      small_.erase(it->second.it);
    }
    index_.erase(it);
  }

  void remember_ghost(const std::string& key) {
    ghost_.push_front(key);
    ghost_index_.insert(key);
    // Bound the ghost to the number of resident keys (the classic
    // sizing: as many ghosts as main can hold).
    const std::size_t cap = index_.size() + 1;
    while (ghost_.size() > cap) {
      ghost_index_.erase(ghost_.back());
      ghost_.pop_back();
    }
  }

  std::list<std::string> small_;  ///< front = newest
  std::list<std::string> main_;
  std::list<std::string> ghost_;
  std::unordered_map<std::string, Meta> index_;
  std::unordered_set<std::string> ghost_index_;
  std::uint64_t small_bytes_ = 0;
  std::uint64_t main_bytes_ = 0;
};

// ---------------------------------------------------------------------
// GDSF: H(entry) = L + freq / size_kb.  The global inflation term L is
// raised to each victim's priority, so long-idle frequent entries age
// out instead of squatting forever (the flaw of plain LFU).  Scan
// traffic enters with freq=1 and the smallest possible H above L —
// evicted first while the reused hot set floats above the waterline.
class GdsfPolicy : public EvictionPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::kGdsf; }

  void on_insert(const std::string& key, std::uint64_t bytes) override {
    on_erase(key);  // re-insert of a tracked key replaces its state
    Meta meta;
    meta.bytes = bytes;
    meta.freq = 1;
    link(key, meta);
  }

  void on_hit(const std::string& key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    Meta meta = it->second;
    ++meta.freq;
    queue_.erase(meta.qit);
    index_.erase(it);
    link(key, meta);
  }

  void on_erase(const std::string& key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    queue_.erase(it->second.qit);
    index_.erase(it);
  }

  std::optional<std::string> pop_victim() override {
    if (queue_.empty()) return std::nullopt;
    const auto qit = queue_.begin();  // minimal priority
    inflation_ = qit->first.first;
    std::string victim = qit->second;
    index_.erase(victim);
    queue_.erase(qit);
    return victim;
  }

  [[nodiscard]] std::size_t tracked() const override { return index_.size(); }

  void reset() override {
    queue_.clear();
    index_.clear();
    inflation_ = 0.0;
    seq_ = 0;
  }

 private:
  /// (priority, insertion seq) — the seq breaks ties FIFO so equal-H
  /// entries (same size, same freq) evict in deterministic order.
  using Key = std::pair<double, std::uint64_t>;

  struct Meta {
    std::uint64_t bytes = 0;
    std::uint64_t freq = 0;
    std::map<Key, std::string>::iterator qit;
  };

  void link(const std::string& key, Meta meta) {
    const double size_kb =
        static_cast<double>(meta.bytes < 1024 ? 1024 : meta.bytes) / 1024.0;
    const double priority =
        inflation_ + static_cast<double>(meta.freq) / size_kb;
    meta.qit = queue_.emplace(Key{priority, seq_++}, key).first;
    index_[key] = meta;
  }

  std::map<Key, std::string> queue_;  ///< begin() = next victim
  std::unordered_map<std::string, Meta> index_;
  double inflation_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace

std::unique_ptr<EvictionPolicy> make_eviction_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return std::make_unique<ListPolicy>(true);
    case PolicyKind::kFifo: return std::make_unique<ListPolicy>(false);
    case PolicyKind::kS3Fifo: return std::make_unique<S3FifoPolicy>();
    case PolicyKind::kGdsf: return std::make_unique<GdsfPolicy>();
  }
  return nullptr;
}

}  // namespace ftc::store
