// store_iface.hpp - The store interface the HVAC server codes against.
//
// PR-1 grew the server around ShardedCacheStore's concrete surface; this
// interface is that surface made explicit (plus a generation stamp on
// put, which the legacy store ignores), so the tiered store can replace
// the legacy one behind a knob without the server knowing which it got.
// Virtual dispatch costs one indirect call per cache access — noise next
// to the path hash, and the hit path stays zero-copy either way.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "storage/sharded_cache_store.hpp"

namespace ftc::store {

/// Tier/pressure telemetry.  The legacy adapter reports everything in
/// the RAM row with zero tier traffic, so dashboards need no special
/// case for un-tiered nodes.
struct StoreStats {
  std::uint64_t ram_used_bytes = 0;
  std::uint64_t nvme_used_bytes = 0;
  std::uint64_t hot_hits = 0;        ///< served from RAM (zero-copy)
  std::uint64_t cold_hits = 0;       ///< served from NVMe (paid latency)
  std::uint64_t misses = 0;
  std::uint64_t demotions = 0;       ///< RAM -> NVMe (pressure, not loss)
  std::uint64_t promotions = 0;      ///< NVMe -> RAM (cold hit)
  std::uint64_t evictions = 0;       ///< dropped entirely (cold-tier exit)
  std::uint64_t reclaim_runs = 0;    ///< background reclaim activations
  std::uint64_t overflow_writes = 0; ///< puts routed to NVMe at RAM hard cap
  std::uint64_t manifest_restored = 0;       ///< warm-restart entries kept
  std::uint64_t manifest_rejected_stale = 0; ///< dropped: stale generation
};

class StoreIface {
 public:
  virtual ~StoreIface() = default;

  /// `generation` is the replication-ledger stamp (0 = unstamped legacy
  /// fill); the tiered store persists it into the manifest.
  virtual Status put(const std::string& path, common::Buffer contents,
                     std::uint64_t logical_size, std::uint64_t generation) = 0;
  virtual StatusOr<common::Buffer> get(const std::string& path) = 0;
  [[nodiscard]] virtual bool contains(const std::string& path) const = 0;
  [[nodiscard]] virtual std::optional<std::uint64_t> size_of(
      const std::string& path) const = 0;
  virtual bool erase(const std::string& path) = 0;
  virtual void clear() = 0;

  [[nodiscard]] virtual std::size_t file_count() const = 0;
  [[nodiscard]] virtual std::uint64_t used_bytes() const = 0;
  [[nodiscard]] virtual std::uint64_t capacity_bytes() const = 0;
  [[nodiscard]] virtual std::uint64_t eviction_count() const = 0;
  [[nodiscard]] virtual std::uint64_t hit_count() const = 0;
  [[nodiscard]] virtual std::uint64_t miss_count() const = 0;
  [[nodiscard]] virtual StoreStats stats_snapshot() const = 0;
};

/// The legacy ShardedCacheStore behind the interface: byte-identical
/// behaviour, generation stamps ignored (the server's ledger still
/// enforces freshness at the RPC layer, as before this PR).
class LegacyStoreAdapter final : public StoreIface {
 public:
  LegacyStoreAdapter(std::uint64_t capacity_bytes,
                     storage::EvictionPolicy policy, std::size_t shard_count)
      : store_(capacity_bytes, policy, shard_count) {}

  Status put(const std::string& path, common::Buffer contents,
             std::uint64_t logical_size, std::uint64_t) override {
    return store_.put(path, std::move(contents), logical_size);
  }
  StatusOr<common::Buffer> get(const std::string& path) override {
    return store_.get(path);
  }
  [[nodiscard]] bool contains(const std::string& path) const override {
    return store_.contains(path);
  }
  [[nodiscard]] std::optional<std::uint64_t> size_of(
      const std::string& path) const override {
    return store_.size_of(path);
  }
  bool erase(const std::string& path) override { return store_.erase(path); }
  void clear() override { store_.clear(); }

  [[nodiscard]] std::size_t file_count() const override {
    return store_.file_count();
  }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return store_.used_bytes();
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return store_.capacity_bytes();
  }
  [[nodiscard]] std::uint64_t eviction_count() const override {
    return store_.eviction_count();
  }
  [[nodiscard]] std::uint64_t hit_count() const override {
    return store_.hit_count();
  }
  [[nodiscard]] std::uint64_t miss_count() const override {
    return store_.miss_count();
  }
  [[nodiscard]] StoreStats stats_snapshot() const override {
    StoreStats stats;
    stats.ram_used_bytes = store_.used_bytes();
    stats.hot_hits = store_.hit_count();
    stats.misses = store_.miss_count();
    stats.evictions = store_.eviction_count();
    return stats;
  }

 private:
  storage::ShardedCacheStore store_;
};

}  // namespace ftc::store
