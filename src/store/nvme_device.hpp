// nvme_device.hpp - The node-local NVMe volume the cold tier lives on.
//
// Separated from TieredCacheStore for one reason: LIFETIME.  A node
// crash destroys the server process — and with it the store object, the
// RAM tier, and every in-flight request — but the NVMe volume and the
// bytes on it survive.  The cluster harness therefore owns one NvmeDevice
// per node and hands it to each incarnation of that node's server; a
// warm restart is "new store, old device".  Payloads AND the manifest
// index live here, updated in the same critical section (journal-style),
// so the manifest can never describe bytes the device does not hold.
//
// Latency: every read/write pays the uncontended NVMe service time from
// storage::NvmeConfig (op latency + bytes/bandwidth) when modelling is
// on — computed under no lock and slept outside the index mutex, so a
// slow cold read never serializes unrelated device traffic.  Off (the
// default) the device is a plain thread-safe map, which keeps unit tests
// fast and the legacy substrate untouched.
//
// Thread safety: fully internally synchronized.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/buffer.hpp"
#include "storage/nvme_model.hpp"
#include "store/manifest.hpp"

namespace ftc::store {

class NvmeDevice {
 public:
  /// `capacity_bytes` is the usable cold-tier budget; `model_latency`
  /// prices each access per `nvme` (Table II defaults).
  NvmeDevice(std::uint64_t capacity_bytes, bool model_latency = false,
             storage::NvmeConfig nvme = {});

  struct Entry {
    common::Buffer contents;
    std::uint64_t bytes = 0;
    std::uint64_t generation = 0;
  };

  /// Writes/overwrites an entry, paying write latency.  The caller is
  /// responsible for capacity policy (the tiered store evicts via its
  /// cold-tier policy); the device only refuses single files larger than
  /// the whole volume.
  Status write(const std::string& path, Entry entry);

  /// Reads an entry, paying read latency; nullopt when absent.
  std::optional<Entry> read(const std::string& path);

  /// Index-only lookup: no latency (metadata lives in the device's RAM-
  /// backed index block, as on a real log-structured cache device).
  [[nodiscard]] bool contains(const std::string& path) const;
  [[nodiscard]] std::optional<std::uint64_t> size_of(
      const std::string& path) const;
  [[nodiscard]] std::optional<std::uint64_t> generation_of(
      const std::string& path) const;

  /// Removes one entry (index op, no latency); false when absent.
  bool erase(const std::string& path);

  /// Wipes payloads and index (models volume re-format on cold rejoin).
  void clear();

  [[nodiscard]] std::uint64_t used_bytes() const;
  [[nodiscard]] std::size_t file_count() const;
  [[nodiscard]] std::uint64_t capacity_bytes() const { return capacity_; }

  /// Snapshot of the on-device index — the crash-consistent manifest.
  [[nodiscard]] Manifest manifest() const;

  // Telemetry.
  [[nodiscard]] std::uint64_t reads() const {
    return reads_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t writes() const {
    return writes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  void pay(SimTime latency) const;

  std::uint64_t capacity_;
  bool model_latency_;
  storage::NvmeConfig nvme_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t used_bytes_ = 0;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace ftc::store
