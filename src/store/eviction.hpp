// eviction.hpp - Pluggable victim-selection policies for the tiered store.
//
// The legacy CacheStore hard-codes its policy into the entry bookkeeping
// (an intrusive LRU list).  The tiered store instead owns plain
// path->bytes entries and delegates ALL ordering decisions to an
// EvictionPolicy object: the policy sees inserts, hits and erases, and
// hands back victims on demand.  That makes the policy a per-workload
// choice (Chameleon's argument) instead of a compile-time one, and lets
// the RAM and NVMe tiers run the same policy code independently.
//
// Policies:
//   LRU     - classic recency list; the baseline every DL-cache paper
//             beats, because an epoch-long sequential sweep is its worst
//             case (every one-touch scan entry displaces a reused one).
//   FIFO    - insertion order; reads never refresh.  Cheaper than LRU and
//             often no worse under full-dataset sweeps.
//   S3-FIFO - three static FIFO queues (small / main / ghost).  New keys
//             enter the small probationary queue; only keys re-referenced
//             while in small (or remembered by the ghost queue of recent
//             small-queue casualties) graduate to main.  One-touch scan
//             traffic dies in small without ever displacing main — the
//             scan-resistance property the pressure bench gates on.
//   GDSF    - Greedy-Dual-Size-Frequency: priority = L + freq/size with
//             an inflation term L that ages out stale frequency.  Favors
//             small, frequently-reused files; scan traffic enters at
//             minimal priority and is evicted first.
//
// Thread safety: externally synchronized — each tier shard wraps its
// policy in the shard lock, exactly like the entry map it orders.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/status.hpp"

namespace ftc::store {

enum class PolicyKind {
  kLru,
  kFifo,
  kS3Fifo,
  kGdsf,
};

const char* policy_kind_name(PolicyKind kind);

/// Parses "lru" | "fifo" | "s3fifo" | "gdsf" (case-sensitive, the knob
/// spelling); kInvalidArgument otherwise.
StatusOr<PolicyKind> parse_policy_kind(const std::string& name);

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  [[nodiscard]] virtual PolicyKind kind() const = 0;

  /// A new entry of `bytes` was inserted under `key`.  The key is
  /// guaranteed absent from the policy's bookkeeping (the store erases
  /// before re-inserting on overwrite).
  virtual void on_insert(const std::string& key, std::uint64_t bytes) = 0;

  /// `key` was read.  Unknown keys are ignored (a hit can race an
  /// eviction in the store's unlocked windows).
  virtual void on_hit(const std::string& key) = 0;

  /// `key` was removed by the store (explicit erase / overwrite / tier
  /// move).  Unknown keys are ignored.
  virtual void on_erase(const std::string& key) = 0;

  /// Selects the next victim and REMOVES it from the policy's
  /// bookkeeping; the caller must drop the corresponding entry.  nullopt
  /// when no entries remain.
  virtual std::optional<std::string> pop_victim() = 0;

  /// Number of keys currently tracked.
  [[nodiscard]] virtual std::size_t tracked() const = 0;

  virtual void reset() = 0;
};

std::unique_ptr<EvictionPolicy> make_eviction_policy(PolicyKind kind);

}  // namespace ftc::store
