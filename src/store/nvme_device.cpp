#include "store/nvme_device.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace ftc::store {

NvmeDevice::NvmeDevice(std::uint64_t capacity_bytes, bool model_latency,
                       storage::NvmeConfig nvme)
    : capacity_(capacity_bytes), model_latency_(model_latency), nvme_(nvme) {}

void NvmeDevice::pay(SimTime latency) const {
  if (!model_latency_ || latency <= 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(latency));
}

Status NvmeDevice::write(const std::string& path, Entry entry) {
  if (entry.bytes > capacity_) {
    return Status::capacity("file larger than NVMe volume: " + path);
  }
  // Pay the service time before taking the index lock: a modelled flash
  // write must not serialize concurrent index lookups.
  pay(storage::nvme_write_latency(nvme_, entry.bytes));
  writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(entry.bytes, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(path);
  if (it != entries_.end()) {
    used_bytes_ -= it->second.bytes;
  }
  used_bytes_ += entry.bytes;
  entries_[path] = std::move(entry);
  return Status::ok();
}

std::optional<NvmeDevice::Entry> NvmeDevice::read(const std::string& path) {
  std::optional<Entry> found;
  {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(path);
    if (it == entries_.end()) return std::nullopt;
    found = it->second;  // Buffer copy = refcount bump
  }
  pay(storage::nvme_read_latency(nvme_, found->bytes));
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(found->bytes, std::memory_order_relaxed);
  return found;
}

bool NvmeDevice::contains(const std::string& path) const {
  std::lock_guard lock(mutex_);
  return entries_.contains(path);
}

std::optional<std::uint64_t> NvmeDevice::size_of(
    const std::string& path) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(path);
  if (it == entries_.end()) return std::nullopt;
  return it->second.bytes;
}

std::optional<std::uint64_t> NvmeDevice::generation_of(
    const std::string& path) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(path);
  if (it == entries_.end()) return std::nullopt;
  return it->second.generation;
}

bool NvmeDevice::erase(const std::string& path) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(path);
  if (it == entries_.end()) return false;
  used_bytes_ -= it->second.bytes;
  entries_.erase(it);
  return true;
}

void NvmeDevice::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
  used_bytes_ = 0;
}

std::uint64_t NvmeDevice::used_bytes() const {
  std::lock_guard lock(mutex_);
  return used_bytes_;
}

std::size_t NvmeDevice::file_count() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

Manifest NvmeDevice::manifest() const {
  std::lock_guard lock(mutex_);
  Manifest manifest;
  manifest.entries.reserve(entries_.size());
  for (const auto& [path, entry] : entries_) {
    manifest.entries.push_back(
        ManifestEntry{path, "nvme", entry.bytes, entry.generation});
  }
  return manifest;
}

}  // namespace ftc::store
