// tiered_store.hpp - RAM+NVMe tiered cache store with background reclaim.
//
// Production NVMe caches run permanently full; "capacity" is not a limit
// you stay under but a pressure you live at.  This store replaces the
// delete-on-pressure budget of ShardedCacheStore with a two-tier
// hierarchy:
//
//   hot tier (RAM)   lock-striped shards of path -> Buffer; hits are a
//                    refcount bump (zero-copy), ordering is delegated to
//                    a per-shard EvictionPolicy object.
//   cold tier (NVMe) the NvmeDevice; hits pay modelled NVMe latency and
//                    promote the entry back to RAM.
//
// Pressure moves data DOWN the hierarchy instead of deleting it:
//   demotion   RAM victim -> NVMe write (background reclaim)
//   eviction   NVMe victim -> gone (the only true data loss)
//
// Reclaim is watermark-driven: a dedicated thread wakes when a tier
// exceeds high_watermark x budget and drains it to low_watermark.  Puts
// NEVER block on reclaim — a put that would overshoot the RAM hard cap
// routes the payload straight to the cold tier (an overflow write, the
// price a full RAM tier costs on a real box) and returns.  There is no
// kBusy on this path and no wait on the reclaim thread, which is what
// the p99-under-reclaim gate in bench_pressure enforces.
//
// Warm restart: payloads and the manifest index live on the NvmeDevice,
// which the cluster owns per node and hands to each server incarnation.
// restore_from_device() rebuilds the cold tier from the manifest,
// re-validating each entry's generation against a caller-supplied
// authority (the replication ledger) — stale entries are dropped, the
// rest serve without a PFS read.
//
// Lock hierarchy (DESIGN.md §14): at most ONE store mutex is held at a
// time — shard locks, the cold-tier lock and the device's index lock
// never nest.  Tier moves release the source tier's lock before touching
// the destination; modelled NVMe sleeps happen under no lock at all.
//
// Thread safety: fully internally synchronized.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "store/eviction.hpp"
#include "store/nvme_device.hpp"
#include "store/store_config.hpp"
#include "store/store_iface.hpp"

namespace ftc::store {

class TieredCacheStore final : public StoreIface {
 public:
  /// `device` is the node's NVMe volume; pass the cluster-owned instance
  /// so cold-tier state survives server restarts, or nullptr to let the
  /// store own a private device (unit tests, benches).  Throws
  /// std::invalid_argument when `config.validate()` rejects.
  explicit TieredCacheStore(const StoreConfig& config,
                            std::shared_ptr<NvmeDevice> device = nullptr);
  ~TieredCacheStore() override;

  TieredCacheStore(const TieredCacheStore&) = delete;
  TieredCacheStore& operator=(const TieredCacheStore&) = delete;

  // --- StoreIface ------------------------------------------------------
  Status put(const std::string& path, common::Buffer contents,
             std::uint64_t logical_size, std::uint64_t generation) override;
  StatusOr<common::Buffer> get(const std::string& path) override;
  [[nodiscard]] bool contains(const std::string& path) const override;
  [[nodiscard]] std::optional<std::uint64_t> size_of(
      const std::string& path) const override;
  bool erase(const std::string& path) override;
  void clear() override;

  [[nodiscard]] std::size_t file_count() const override;
  [[nodiscard]] std::uint64_t used_bytes() const override;
  /// Combined budget (RAM + NVMe) — what "cache capacity" means to the
  /// rest of the system.
  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return config_.ram_bytes + config_.nvme_bytes;
  }
  [[nodiscard]] std::uint64_t eviction_count() const override {
    return stats_.evictions.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hit_count() const override;
  [[nodiscard]] std::uint64_t miss_count() const override {
    return stats_.misses.load(std::memory_order_relaxed);
  }
  [[nodiscard]] StoreStats stats_snapshot() const override;

  // --- tiered-store specifics -----------------------------------------
  /// Which tier currently holds `path` ("ram" / "nvme" / "" = absent);
  /// tests and telemetry only.
  [[nodiscard]] std::string tier_of(const std::string& path) const;

  /// Generation stamp recorded for `path` (0 when absent/unstamped).
  [[nodiscard]] std::uint64_t generation_of(const std::string& path) const;

  /// Authority consulted per manifest entry on warm restart: returns the
  /// minimum acceptable generation for a path (0 = no knowledge, accept).
  using GenerationAuthority =
      std::function<std::uint64_t(const std::string& path)>;

  /// Rebuilds the cold tier from the device's manifest: entries whose
  /// stored generation is below the authority's floor are dropped as
  /// stale (and erased from the device); the rest become servable
  /// without a PFS read.  Returns the number restored.  With
  /// config.manifest.enabled false the device is wiped instead (cold
  /// rejoin semantics).
  std::size_t restore_from_device(const GenerationAuthority& authority = {});

  /// Demotes every hot entry to the cold tier (clean shutdown: makes the
  /// manifest cover the full cache before a planned restart).
  void flush_hot_to_cold();

  /// Blocks until the reclaim thread has drained both tiers below their
  /// high watermarks (test synchronization; no-op when inline).
  void wait_reclaimed();

  [[nodiscard]] const StoreConfig& config() const { return config_; }
  [[nodiscard]] const NvmeDevice& device() const { return *device_; }

 private:
  struct HotEntry {
    common::Buffer contents;
    std::uint64_t bytes = 0;
    std::uint64_t generation = 0;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, HotEntry> entries;
    std::unique_ptr<EvictionPolicy> policy;
  };

  [[nodiscard]] std::size_t shard_for(const std::string& path) const;

  /// Inserts into the hot tier; returns false when the reservation would
  /// overshoot the RAM hard cap (caller overflows to cold).  Erases any
  /// pre-existing hot entry for the path first.
  bool put_hot(const std::string& path, const common::Buffer& contents,
               std::uint64_t bytes, std::uint64_t generation);

  /// Removes `path` from its hot shard; returns the entry when present.
  std::optional<HotEntry> take_hot(const std::string& path);

  /// Writes into the cold tier (pays NVMe latency), updates the cold
  /// policy, and enforces the NVMe hard cap inline by evicting victims.
  Status put_cold(const std::string& path, common::Buffer contents,
                  std::uint64_t bytes, std::uint64_t generation);

  /// Drops `path` from cold tier bookkeeping + device; false when absent.
  bool erase_cold(const std::string& path);

  /// One full reclaim pass: RAM above high watermark -> demote to low;
  /// NVMe above high watermark -> evict to low.
  void reclaim_pass();
  void demote_until(std::uint64_t ram_target);
  void evict_cold_until(std::uint64_t nvme_target);
  void kick_reclaim();
  void reclaim_loop();

  [[nodiscard]] std::uint64_t ram_high_bytes() const {
    return static_cast<std::uint64_t>(
        config_.high_watermark * static_cast<double>(config_.ram_bytes));
  }
  [[nodiscard]] std::uint64_t ram_low_bytes() const {
    return static_cast<std::uint64_t>(
        config_.low_watermark * static_cast<double>(config_.ram_bytes));
  }
  [[nodiscard]] std::uint64_t nvme_high_bytes() const {
    return static_cast<std::uint64_t>(
        config_.high_watermark * static_cast<double>(config_.nvme_bytes));
  }
  [[nodiscard]] std::uint64_t nvme_low_bytes() const {
    return static_cast<std::uint64_t>(
        config_.low_watermark * static_cast<double>(config_.nvme_bytes));
  }

  struct AtomicStats {
    std::atomic<std::uint64_t> hot_hits{0};
    std::atomic<std::uint64_t> cold_hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> demotions{0};
    std::atomic<std::uint64_t> promotions{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> reclaim_runs{0};
    std::atomic<std::uint64_t> overflow_writes{0};
    std::atomic<std::uint64_t> manifest_restored{0};
    std::atomic<std::uint64_t> manifest_rejected_stale{0};
  };

  StoreConfig config_;
  std::shared_ptr<NvmeDevice> device_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> ram_used_{0};

  /// Cold-tier ordering state.  Guards the policy ONLY — device index
  /// mutations happen through the device's own lock, and the two are
  /// never held together (the policy is advisory: a victim that has
  /// already vanished from the device is simply skipped).
  mutable std::mutex cold_mutex_;
  std::unique_ptr<EvictionPolicy> cold_policy_;

  AtomicStats stats_;
  std::atomic<std::size_t> demote_hand_{0};

  // Reclaim thread plumbing (background mode only).
  std::mutex reclaim_mutex_;
  std::condition_variable reclaim_cv_;
  std::condition_variable reclaim_idle_cv_;
  bool reclaim_requested_ = false;
  bool reclaim_active_ = false;
  bool shutdown_ = false;
  std::thread reclaim_thread_;
};

}  // namespace ftc::store
