#include "store/tiered_store.hpp"

#include <stdexcept>
#include <utility>

#include "hash/fnv.hpp"

namespace ftc::store {

TieredCacheStore::TieredCacheStore(const StoreConfig& config,
                                   std::shared_ptr<NvmeDevice> device)
    : config_(config), device_(std::move(device)) {
  // Validate with tiering forced on: a directly-constructed store must
  // not dodge the parameter checks just because the knob copy says off.
  config_.tiering = true;
  if (const auto status = config_.validate(); !status.is_ok()) {
    throw std::invalid_argument("TieredCacheStore: " + status.message());
  }
  if (!device_) {
    device_ = std::make_shared<NvmeDevice>(
        config_.nvme_bytes, config_.model_nvme_latency, config_.nvme);
  }
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->policy = make_eviction_policy(config_.policy);
    shards_.push_back(std::move(shard));
  }
  cold_policy_ = make_eviction_policy(config_.policy);
  if (config_.background_reclaim) {
    reclaim_thread_ = std::thread([this] { reclaim_loop(); });
  }
}

TieredCacheStore::~TieredCacheStore() {
  if (reclaim_thread_.joinable()) {
    {
      std::lock_guard lock(reclaim_mutex_);
      shutdown_ = true;
    }
    reclaim_cv_.notify_all();
    reclaim_thread_.join();
  }
}

std::size_t TieredCacheStore::shard_for(const std::string& path) const {
  return hash::fnv1a64(path) % shards_.size();
}

// --- put path ----------------------------------------------------------

Status TieredCacheStore::put(const std::string& path, common::Buffer contents,
                             std::uint64_t logical_size,
                             std::uint64_t generation) {
  if (logical_size > config_.ram_bytes && logical_size > config_.nvme_bytes) {
    return Status::capacity("file larger than either tier: " + path);
  }
  if (put_hot(path, contents, logical_size, generation)) {
    // The hot copy is now authoritative; a cold copy left from an earlier
    // demotion would serve stale bytes after the hot one is evicted.
    erase_cold(path);
    if (ram_used_.load(std::memory_order_relaxed) > ram_high_bytes()) {
      kick_reclaim();
    }
    return Status::ok();
  }
  // RAM hard cap (or an oversized file): route the payload straight to
  // the cold tier instead of waiting on reclaim — writes never block.
  stats_.overflow_writes.fetch_add(1, std::memory_order_relaxed);
  take_hot(path);  // an overflow overwrite must not leave the old version
  const Status status =
      put_cold(path, std::move(contents), logical_size, generation);
  if (status.is_ok() && device_->used_bytes() > nvme_high_bytes()) {
    kick_reclaim();
  }
  return status;
}

bool TieredCacheStore::put_hot(const std::string& path,
                               const common::Buffer& contents,
                               std::uint64_t bytes, std::uint64_t generation) {
  if (bytes > config_.ram_bytes) return false;
  Shard& shard = *shards_[shard_for(path)];
  std::lock_guard lock(shard.mutex);
  // Replace-in-place: release the old accounting first so the
  // reservation below is exactly the net growth.
  if (const auto it = shard.entries.find(path); it != shard.entries.end()) {
    ram_used_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    shard.policy->on_erase(path);
    shard.entries.erase(it);
  }
  const std::uint64_t used =
      ram_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (used > config_.ram_bytes) {
    ram_used_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;  // hard cap: caller overflows to the cold tier
  }
  shard.entries[path] = HotEntry{contents, bytes, generation};
  shard.policy->on_insert(path, bytes);
  return true;
}

std::optional<TieredCacheStore::HotEntry> TieredCacheStore::take_hot(
    const std::string& path) {
  Shard& shard = *shards_[shard_for(path)];
  std::lock_guard lock(shard.mutex);
  const auto it = shard.entries.find(path);
  if (it == shard.entries.end()) return std::nullopt;
  HotEntry entry = std::move(it->second);
  ram_used_.fetch_sub(entry.bytes, std::memory_order_relaxed);
  shard.policy->on_erase(path);
  shard.entries.erase(it);
  return entry;
}

Status TieredCacheStore::put_cold(const std::string& path,
                                  common::Buffer contents, std::uint64_t bytes,
                                  std::uint64_t generation) {
  if (bytes > config_.nvme_bytes) {
    return Status::capacity("file larger than NVMe budget: " + path);
  }
  const Status status = device_->write(
      path, NvmeDevice::Entry{std::move(contents), bytes, generation});
  if (!status.is_ok()) return status;
  {
    std::lock_guard lock(cold_mutex_);
    cold_policy_->on_insert(path, bytes);
  }
  // Enforce the NVMe hard cap inline.  The victim may be the entry just
  // written (S3-FIFO treats an unproven newcomer as the most expendable
  // key) — that is admission control, not an error: the put succeeded,
  // the cache chose not to retain it.
  while (device_->used_bytes() > config_.nvme_bytes) {
    std::optional<std::string> victim;
    {
      std::lock_guard lock(cold_mutex_);
      victim = cold_policy_->pop_victim();
    }
    if (!victim) break;
    if (device_->erase(*victim)) {
      stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::ok();
}

bool TieredCacheStore::erase_cold(const std::string& path) {
  {
    std::lock_guard lock(cold_mutex_);
    cold_policy_->on_erase(path);
  }
  return device_->erase(path);
}

// --- read path ---------------------------------------------------------

StatusOr<common::Buffer> TieredCacheStore::get(const std::string& path) {
  {
    Shard& shard = *shards_[shard_for(path)];
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(path);
    if (it != shard.entries.end()) {
      shard.policy->on_hit(path);
      stats_.hot_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second.contents;  // refcount bump, zero-copy
    }
  }
  auto cold = device_->read(path);  // pays modelled NVMe latency
  if (!cold) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return Status::not_found("not cached: " + path);
  }
  stats_.cold_hits.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(cold_mutex_);
    cold_policy_->on_hit(path);
  }
  // Promote: a cold hit is evidence of reuse, so move the entry back to
  // RAM when it fits under the hard cap.  No room → serve from cold and
  // leave placement to the next reclaim pass.
  if (put_hot(path, cold->contents, cold->bytes, cold->generation)) {
    stats_.promotions.fetch_add(1, std::memory_order_relaxed);
    erase_cold(path);
    if (ram_used_.load(std::memory_order_relaxed) > ram_high_bytes()) {
      kick_reclaim();
    }
  }
  return std::move(cold->contents);
}

// --- metadata ----------------------------------------------------------

bool TieredCacheStore::contains(const std::string& path) const {
  {
    const Shard& shard = *shards_[shard_for(path)];
    std::lock_guard lock(shard.mutex);
    if (shard.entries.contains(path)) return true;
  }
  return device_->contains(path);
}

std::optional<std::uint64_t> TieredCacheStore::size_of(
    const std::string& path) const {
  {
    const Shard& shard = *shards_[shard_for(path)];
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(path);
    if (it != shard.entries.end()) return it->second.bytes;
  }
  return device_->size_of(path);
}

std::string TieredCacheStore::tier_of(const std::string& path) const {
  {
    const Shard& shard = *shards_[shard_for(path)];
    std::lock_guard lock(shard.mutex);
    if (shard.entries.contains(path)) return "ram";
  }
  if (device_->contains(path)) return "nvme";
  return "";
}

std::uint64_t TieredCacheStore::generation_of(const std::string& path) const {
  {
    const Shard& shard = *shards_[shard_for(path)];
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(path);
    if (it != shard.entries.end()) return it->second.generation;
  }
  return device_->generation_of(path).value_or(0);
}

bool TieredCacheStore::erase(const std::string& path) {
  const bool hot = take_hot(path).has_value();
  const bool cold = erase_cold(path);
  return hot || cold;
}

void TieredCacheStore::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    for (const auto& [path, entry] : shard->entries) {
      ram_used_.fetch_sub(entry.bytes, std::memory_order_relaxed);
    }
    shard->entries.clear();
    shard->policy->reset();
  }
  {
    std::lock_guard lock(cold_mutex_);
    cold_policy_->reset();
  }
  device_->clear();
}

std::size_t TieredCacheStore::file_count() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    count += shard->entries.size();
  }
  return count + device_->file_count();
}

std::uint64_t TieredCacheStore::used_bytes() const {
  return ram_used_.load(std::memory_order_relaxed) + device_->used_bytes();
}

std::uint64_t TieredCacheStore::hit_count() const {
  return stats_.hot_hits.load(std::memory_order_relaxed) +
         stats_.cold_hits.load(std::memory_order_relaxed);
}

StoreStats TieredCacheStore::stats_snapshot() const {
  StoreStats stats;
  stats.ram_used_bytes = ram_used_.load(std::memory_order_relaxed);
  stats.nvme_used_bytes = device_->used_bytes();
  stats.hot_hits = stats_.hot_hits.load(std::memory_order_relaxed);
  stats.cold_hits = stats_.cold_hits.load(std::memory_order_relaxed);
  stats.misses = stats_.misses.load(std::memory_order_relaxed);
  stats.demotions = stats_.demotions.load(std::memory_order_relaxed);
  stats.promotions = stats_.promotions.load(std::memory_order_relaxed);
  stats.evictions = stats_.evictions.load(std::memory_order_relaxed);
  stats.reclaim_runs = stats_.reclaim_runs.load(std::memory_order_relaxed);
  stats.overflow_writes =
      stats_.overflow_writes.load(std::memory_order_relaxed);
  stats.manifest_restored =
      stats_.manifest_restored.load(std::memory_order_relaxed);
  stats.manifest_rejected_stale =
      stats_.manifest_rejected_stale.load(std::memory_order_relaxed);
  return stats;
}

// --- warm restart ------------------------------------------------------

std::size_t TieredCacheStore::restore_from_device(
    const GenerationAuthority& authority) {
  if (!config_.manifest.enabled) {
    // Cold rejoin: the knob says restarts treat the volume as scratch.
    device_->clear();
    return 0;
  }
  // Round-trip through the wire format: this is exactly the read a real
  // restart does from the device's index block, and it makes a truncated
  // or corrupt manifest fail loudly here instead of serving garbage.
  const auto parsed = Manifest::parse(device_->manifest().serialize());
  if (!parsed.is_ok()) {
    device_->clear();
    return 0;
  }
  std::size_t restored = 0;
  for (const auto& entry : parsed.value().entries) {
    const std::uint64_t floor = authority ? authority(entry.path) : 0;
    if (floor > 0 && entry.generation < floor) {
      // The cluster moved on while this node was down: the bytes on the
      // device predate the current replica generation.  Serving them
      // would resurrect overwritten data, so drop instead.
      device_->erase(entry.path);
      stats_.manifest_rejected_stale.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    {
      std::lock_guard lock(cold_mutex_);
      cold_policy_->on_insert(entry.path, entry.bytes);
    }
    stats_.manifest_restored.fetch_add(1, std::memory_order_relaxed);
    ++restored;
  }
  return restored;
}

void TieredCacheStore::flush_hot_to_cold() {
  for (auto& shard : shards_) {
    std::vector<std::pair<std::string, HotEntry>> drained;
    {
      std::lock_guard lock(shard->mutex);
      drained.reserve(shard->entries.size());
      for (auto& [path, entry] : shard->entries) {
        ram_used_.fetch_sub(entry.bytes, std::memory_order_relaxed);
        drained.emplace_back(path, std::move(entry));
      }
      shard->entries.clear();
      shard->policy->reset();
    }
    for (auto& [path, entry] : drained) {
      stats_.demotions.fetch_add(1, std::memory_order_relaxed);
      put_cold(path, std::move(entry.contents), entry.bytes, entry.generation);
    }
  }
}

// --- reclaim -----------------------------------------------------------

void TieredCacheStore::kick_reclaim() {
  if (!config_.background_reclaim) {
    reclaim_pass();  // deterministic inline mode (unit tests)
    return;
  }
  {
    std::lock_guard lock(reclaim_mutex_);
    reclaim_requested_ = true;
  }
  reclaim_cv_.notify_one();
}

void TieredCacheStore::reclaim_loop() {
  for (;;) {
    std::unique_lock lock(reclaim_mutex_);
    reclaim_cv_.wait(lock, [this] { return reclaim_requested_ || shutdown_; });
    if (shutdown_) return;
    reclaim_requested_ = false;
    reclaim_active_ = true;
    lock.unlock();
    reclaim_pass();
    lock.lock();
    reclaim_active_ = false;
    reclaim_idle_cv_.notify_all();
  }
}

void TieredCacheStore::wait_reclaimed() {
  if (!config_.background_reclaim) return;
  std::unique_lock lock(reclaim_mutex_);
  reclaim_idle_cv_.wait(
      lock, [this] { return !reclaim_requested_ && !reclaim_active_; });
}

void TieredCacheStore::reclaim_pass() {
  stats_.reclaim_runs.fetch_add(1, std::memory_order_relaxed);
  if (ram_used_.load(std::memory_order_relaxed) > ram_high_bytes()) {
    demote_until(ram_low_bytes());
  }
  // Demotion pushes bytes downhill, so check NVMe pressure after.
  if (device_->used_bytes() > nvme_high_bytes()) {
    evict_cold_until(nvme_low_bytes());
  }
}

void TieredCacheStore::demote_until(std::uint64_t ram_target) {
  std::size_t barren = 0;  // consecutive shards with no victim
  while (ram_used_.load(std::memory_order_relaxed) > ram_target &&
         barren < shards_.size()) {
    const std::size_t index =
        demote_hand_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    Shard& shard = *shards_[index];
    std::string victim_path;
    HotEntry victim;
    {
      std::lock_guard lock(shard.mutex);
      const auto popped = shard.policy->pop_victim();
      if (!popped) {
        ++barren;
        continue;
      }
      const auto it = shard.entries.find(*popped);
      if (it == shard.entries.end()) continue;  // advisory drift; re-probe
      victim_path = *popped;
      victim = std::move(it->second);
      ram_used_.fetch_sub(victim.bytes, std::memory_order_relaxed);
      shard.entries.erase(it);
    }
    barren = 0;
    stats_.demotions.fetch_add(1, std::memory_order_relaxed);
    // The NVMe write (and any modelled sleep) happens with no shard lock
    // held; a get racing this window misses both tiers and re-fetches —
    // ordinary cache behaviour, never a stale read.
    put_cold(victim_path, std::move(victim.contents), victim.bytes,
             victim.generation);
  }
}

void TieredCacheStore::evict_cold_until(std::uint64_t nvme_target) {
  while (device_->used_bytes() > nvme_target) {
    std::optional<std::string> victim;
    {
      std::lock_guard lock(cold_mutex_);
      victim = cold_policy_->pop_victim();
    }
    if (!victim) break;
    if (device_->erase(*victim)) {
      stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace ftc::store
