#include "storage/sharded_cache_store.hpp"

#include <limits>
#include <mutex>
#include <utility>

#include "hash/fnv.hpp"

namespace ftc::storage {

// Shard stores get an unbounded capacity: admission and eviction are
// driven by the wrapper against the *global* budget, so the per-shard
// capacity check must never fire on its own.
ShardedCacheStore::Shard::Shard(EvictionPolicy policy)
    : store(std::numeric_limits<std::uint64_t>::max(), policy) {}

ShardedCacheStore::ShardedCacheStore(std::uint64_t capacity_bytes,
                                     EvictionPolicy policy,
                                     std::size_t shard_count)
    : capacity_bytes_(capacity_bytes), policy_(policy) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(policy));
  }
}

std::size_t ShardedCacheStore::shard_for(const std::string& path) const {
  return hash::fnv1a64(path) % shards_.size();
}

Status ShardedCacheStore::put(const std::string& path,
                              common::Buffer contents,
                              std::uint64_t logical_size) {
  if (logical_size > capacity_bytes_) {
    return Status::capacity("file larger than device: " + path);
  }
  const std::size_t index = shard_for(path);
  Shard& shard = *shards_[index];
  std::unique_lock lock(shard.mutex);

  // Replace-in-place: drop the old accounting before reserving the new
  // bytes, so the reservation is exactly the net growth.
  if (const auto old = shard.store.size_of(path)) {
    shard.store.erase(path);
    used_bytes_.fetch_sub(*old, std::memory_order_relaxed);
  }

  // Reserve first (so concurrent puts cannot both pass an unreserved
  // check), then evict until the reservation fits the global budget.
  std::uint64_t used =
      used_bytes_.fetch_add(logical_size, std::memory_order_relaxed) +
      logical_size;
  while (used > capacity_bytes_) {
    const std::uint64_t freed = shard.store.evict_any();
    if (freed == 0) break;  // this shard is empty; steal from peers
    used = used_bytes_.fetch_sub(freed, std::memory_order_relaxed) - freed;
  }
  if (used > capacity_bytes_) {
    // Other shards hold the bytes.  Never hold two shard locks at once:
    // release ours, evict round-robin from peers, re-acquire.
    lock.unlock();
    const bool fits = evict_from_peers(index);
    lock.lock();
    if (!fits) {
      used_bytes_.fetch_sub(logical_size, std::memory_order_relaxed);
      return Status::capacity("cache full: " + path);
    }
    // The path may have been re-inserted while unlocked; drop it again so
    // `used_bytes == sum of entry sizes` stays exact.
    if (const auto old = shard.store.size_of(path)) {
      shard.store.erase(path);
      used_bytes_.fetch_sub(*old, std::memory_order_relaxed);
    }
  }

  const Status status =
      shard.store.put(path, std::move(contents), logical_size);
  if (!status.is_ok()) {
    used_bytes_.fetch_sub(logical_size, std::memory_order_relaxed);
  }
  return status;
}

bool ShardedCacheStore::evict_from_peers(std::size_t owner) {
  const std::size_t n = shards_.size();
  // Sweep from a SNAPSHOT of the shared hand with a local cursor.  The
  // previous code advanced evict_hand_ once per probe, so concurrent
  // stealers interleaving on the counter could each see only a subset of
  // shards (with an even count, two threads can alternate onto the same
  // parity class) — n probes landing exclusively on empty shards meant a
  // spurious kCapacity while evictable bytes sat elsewhere.  A local
  // cursor guarantees every caller visits all n peers; the shared hand
  // only advances past shards that actually yielded bytes, so successive
  // pressure events rotate the first victim instead of re-punishing the
  // same shard.
  bool progress = true;
  while (used_bytes_.load(std::memory_order_relaxed) > capacity_bytes_ &&
         progress) {
    progress = false;
    const std::size_t start = evict_hand_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      if (used_bytes_.load(std::memory_order_relaxed) <= capacity_bytes_) {
        break;
      }
      const std::size_t victim = (start + i) % n;
      if (victim == owner) continue;
      Shard& peer = *shards_[victim];
      std::lock_guard guard(peer.mutex);
      if (peer.store.file_count() == 0) continue;  // empty: skip quietly
      const std::uint64_t freed = peer.store.evict_any();
      if (freed > 0) {
        used_bytes_.fetch_sub(freed, std::memory_order_relaxed);
        evict_hand_.store((victim + 1) % n, std::memory_order_relaxed);
        progress = true;
      }
    }
  }
  return used_bytes_.load(std::memory_order_relaxed) <= capacity_bytes_;
}

StatusOr<common::Buffer> ShardedCacheStore::get(const std::string& path) {
  Shard& shard = *shards_[shard_for(path)];
  std::lock_guard lock(shard.mutex);
  return shard.store.get(path);
}

bool ShardedCacheStore::contains(const std::string& path) const {
  const Shard& shard = *shards_[shard_for(path)];
  std::lock_guard lock(shard.mutex);
  return shard.store.contains(path);
}

std::optional<std::uint64_t> ShardedCacheStore::size_of(
    const std::string& path) const {
  const Shard& shard = *shards_[shard_for(path)];
  std::lock_guard lock(shard.mutex);
  return shard.store.size_of(path);
}

bool ShardedCacheStore::erase(const std::string& path) {
  Shard& shard = *shards_[shard_for(path)];
  std::lock_guard lock(shard.mutex);
  const auto size = shard.store.size_of(path);
  if (!shard.store.erase(path)) return false;
  used_bytes_.fetch_sub(size.value_or(0), std::memory_order_relaxed);
  return true;
}

void ShardedCacheStore::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    used_bytes_.fetch_sub(shard->store.used_bytes(),
                          std::memory_order_relaxed);
    shard->store.clear();
  }
}

std::size_t ShardedCacheStore::file_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->store.file_count();
  }
  return total;
}

std::uint64_t ShardedCacheStore::eviction_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->store.eviction_count();
  }
  return total;
}

std::uint64_t ShardedCacheStore::hit_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->store.hit_count();
  }
  return total;
}

std::uint64_t ShardedCacheStore::miss_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->store.miss_count();
  }
  return total;
}

}  // namespace ftc::storage
