// sharded_cache_store.hpp - Lock-striped wrapper over CacheStore.
//
// The HVAC server used to serialize every cache access through one big
// mutex; under multi-client load the served-bandwidth numbers measured
// lock contention as much as cache policy.  This wrapper stripes the
// key space across N independently-locked CacheStore shards (FNV-1a path
// hash), so reads of different files proceed in parallel, while byte
// accounting stays *global*: one atomic byte counter and one capacity
// shared by all shards, exactly like the single-store semantics (any file
// <= capacity fits, regardless of which shard it lands on).
//
// Victim selection under pressure is per-shard LRU (the inserting shard
// evicts its own tail first, then steals victims round-robin from other
// shards) — approximate global LRU, standard for striped caches.
//
// Lock hierarchy (see DESIGN.md): at most ONE shard mutex is held at a
// time; cross-shard eviction releases the inserting shard's lock before
// touching another shard.  No lock is held while touching the atomics.
//
// Thread safety: fully internally synchronized.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "storage/cache_store.hpp"

namespace ftc::storage {

class ShardedCacheStore {
 public:
  /// `capacity_bytes` is the GLOBAL budget shared by all shards.
  explicit ShardedCacheStore(std::uint64_t capacity_bytes,
                             EvictionPolicy policy = EvictionPolicy::kLru,
                             std::size_t shard_count = kDefaultShards);

  static constexpr std::size_t kDefaultShards = 8;

  /// Inserts/overwrites a file; evicts (this shard first, then others,
  /// round-robin) until the global budget fits.  kCapacity when the file
  /// alone exceeds the global capacity, or when concurrent reservations
  /// transiently claim the remaining budget.
  Status put(const std::string& path, common::Buffer contents,
             std::uint64_t logical_size);

  /// Zero-copy read: the returned Buffer shares the entry's bytes.
  StatusOr<common::Buffer> get(const std::string& path);

  [[nodiscard]] bool contains(const std::string& path) const;
  [[nodiscard]] std::optional<std::uint64_t> size_of(
      const std::string& path) const;
  bool erase(const std::string& path);
  void clear();

  [[nodiscard]] std::size_t file_count() const;
  /// O(1): the global atomic byte counter.
  [[nodiscard]] std::uint64_t used_bytes() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return capacity_bytes_;
  }
  [[nodiscard]] std::uint64_t eviction_count() const;
  [[nodiscard]] std::uint64_t hit_count() const;
  [[nodiscard]] std::uint64_t miss_count() const;
  [[nodiscard]] EvictionPolicy policy() const { return policy_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Shard a path maps to (tests / telemetry).
  [[nodiscard]] std::size_t shard_for(const std::string& path) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    CacheStore store;
    explicit Shard(EvictionPolicy policy);
  };

  /// Evicts from shards other than `owner` (one lock at a time) until the
  /// global budget fits or every other shard is empty.  Returns true when
  /// the budget fits.
  bool evict_from_peers(std::size_t owner);

  std::uint64_t capacity_bytes_;
  EvictionPolicy policy_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> used_bytes_{0};
  std::atomic<std::size_t> evict_hand_{0};  ///< round-robin steal cursor
};

}  // namespace ftc::storage
