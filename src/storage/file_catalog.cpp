#include "storage/file_catalog.hpp"

#include <cmath>
#include <utility>

#include "common/string_util.hpp"

namespace ftc::storage {

FileId FileCatalog::add_file(std::string path, std::uint64_t size_bytes) {
  const auto id = static_cast<FileId>(files_.size());
  by_path_.emplace(path, id);
  files_.push_back(FileInfo{id, std::move(path), size_bytes});
  total_bytes_ += size_bytes;
  return id;
}

bool FileCatalog::find(const std::string& path, FileId& out) const {
  const auto it = by_path_.find(path);
  if (it == by_path_.end()) return false;
  out = it->second;
  return true;
}

double FileCatalog::mean_file_bytes() const {
  if (files_.empty()) return 0.0;
  return static_cast<double>(total_bytes_) /
         static_cast<double>(files_.size());
}

FileCatalog make_cosmoflow_like_catalog(const CosmoflowCatalogParams& params) {
  FileCatalog catalog;
  Rng rng(params.seed);
  // Lognormal sizes centred so the mean matches params.mean_file_bytes:
  // mean of lognormal(mu, sigma) = exp(mu + sigma^2/2).
  const double sigma = params.size_sigma;
  const double mu =
      std::log(static_cast<double>(params.mean_file_bytes)) -
      sigma * sigma / 2.0;
  for (std::uint32_t i = 0; i < params.file_count; ++i) {
    std::uint64_t size;
    if (sigma > 0.0) {
      size = static_cast<std::uint64_t>(rng.lognormal(mu, sigma));
    } else {
      size = params.mean_file_bytes;
    }
    if (size == 0) size = 1;
    catalog.add_file(params.prefix + "/file_" + zero_pad(i, 7) + ".tfrecord",
                     size);
  }
  return catalog;
}

}  // namespace ftc::storage
