#include "storage/cache_store.hpp"

#include <utility>

namespace ftc::storage {

const char* eviction_policy_name(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru: return "LRU";
    case EvictionPolicy::kFifo: return "FIFO";
    case EvictionPolicy::kClock: return "CLOCK";
  }
  return "?";
}

CacheStore::CacheStore(std::uint64_t capacity_bytes, EvictionPolicy policy)
    : capacity_bytes_(capacity_bytes), policy_(policy) {}

Status CacheStore::put(const std::string& path, common::Buffer contents,
                       std::uint64_t logical_size) {
  if (logical_size > capacity_bytes_) {
    return Status::capacity("file larger than device: " + path);
  }
  // Replace-in-place: drop the old accounting first.
  if (const auto it = entries_.find(path); it != entries_.end()) {
    used_bytes_ -= it->second.logical_size;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  make_room(logical_size);
  lru_.push_front(path);
  entries_.emplace(path,
                   Entry{std::move(contents), logical_size, lru_.begin()});
  used_bytes_ += logical_size;
  return Status::ok();
}

Status CacheStore::put_size_only(const std::string& path,
                                 std::uint64_t logical_size) {
  return put(path, common::Buffer{}, logical_size);
}

StatusOr<common::Buffer> CacheStore::get(const std::string& path) {
  const auto it = entries_.find(path);
  if (it == entries_.end()) {
    ++misses_;
    return Status::not_found(path);
  }
  ++hits_;
  switch (policy_) {
    case EvictionPolicy::kLru:
      // Refresh recency: splice to front without invalidating iterators.
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      break;
    case EvictionPolicy::kClock:
      it->second.referenced = true;
      break;
    case EvictionPolicy::kFifo:
      break;  // reads never change eviction order
  }
  return it->second.contents;
}

bool CacheStore::contains(const std::string& path) const {
  return entries_.contains(path);
}

std::optional<std::uint64_t> CacheStore::size_of(
    const std::string& path) const {
  const auto it = entries_.find(path);
  if (it == entries_.end()) return std::nullopt;
  return it->second.logical_size;
}

bool CacheStore::erase(const std::string& path) {
  const auto it = entries_.find(path);
  if (it == entries_.end()) return false;
  used_bytes_ -= it->second.logical_size;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  return true;
}

void CacheStore::clear() {
  entries_.clear();
  lru_.clear();
  used_bytes_ = 0;
}

double CacheStore::hit_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total)
                   : 0.0;
}

void CacheStore::make_room(std::uint64_t needed) {
  while (used_bytes_ + needed > capacity_bytes_) {
    if (!evict_one()) return;
  }
}

std::uint64_t CacheStore::evict_any() {
  if (lru_.empty()) return 0;
  const std::uint64_t before = used_bytes_;
  evict_one();
  return before - used_bytes_;
}

bool CacheStore::evict_one() {
  if (lru_.empty()) return false;
  if (policy_ == EvictionPolicy::kClock) {
    // Second chance: rotate referenced entries to the front (clearing the
    // bit) until an unreferenced victim surfaces.  Bounded: each rotation
    // clears one bit, so at most size() rotations precede an eviction.
    for (std::size_t rotations = 0; rotations <= lru_.size(); ++rotations) {
      Entry& candidate = entries_.find(lru_.back())->second;
      if (!candidate.referenced) break;
      candidate.referenced = false;
      lru_.splice(lru_.begin(), lru_, candidate.lru_it);
    }
  }
  const auto it = entries_.find(lru_.back());
  used_bytes_ -= it->second.logical_size;
  entries_.erase(it);
  lru_.pop_back();
  ++evictions_;
  return true;
}

}  // namespace ftc::storage
