// cache_store.hpp - Node-local cached-file store with LRU eviction.
//
// The in-memory stand-in for a node's NVMe XFS volume: maps file paths to
// contents with byte-capacity accounting.  The threaded HVAC server stores
// real payloads here (integrity-checked with CRC-32); the DES substrate
// uses it in metadata-only mode (empty payloads, sizes tracked explicitly)
// so 1024-node runs don't allocate terabytes.
//
// Thread safety: externally synchronized.  The HVAC server serializes
// access through its own mutex, mirroring the original implementation's
// data-structure locks the paper mentions in Sec V-B1.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/buffer.hpp"
#include "common/status.hpp"

namespace ftc::storage {

/// Victim-selection policy under capacity pressure.  The paper's datasets
/// fit in the 3.5 TB node-local volume, so the original HVAC never
/// evicts; these policies support the dataset-larger-than-cache regime.
enum class EvictionPolicy {
  kLru,    ///< evict the least recently used file (default)
  kFifo,   ///< evict in insertion order (reads do not refresh)
  kClock,  ///< second-chance: one reference bit per file, rotating hand
};

const char* eviction_policy_name(EvictionPolicy policy);

class CacheStore {
 public:
  /// `capacity_bytes` = usable NVMe capacity (Frontier: 3.5 TB per node).
  explicit CacheStore(std::uint64_t capacity_bytes,
                      EvictionPolicy policy = EvictionPolicy::kLru);

  /// Inserts/overwrites a file.  `logical_size` is the accounted size; for
  /// payload mode pass contents.size().  Evicts LRU entries to fit; fails
  /// with kCapacity when the file alone exceeds capacity.  The buffer is
  /// stored by reference (no byte copy).
  Status put(const std::string& path, common::Buffer contents,
             std::uint64_t logical_size);

  /// Metadata-only insert (empty payload, explicit size).
  Status put_size_only(const std::string& path, std::uint64_t logical_size);

  /// Reads contents and refreshes recency; kNotFound when absent.  The
  /// returned Buffer shares storage with the cache entry — a hit is a
  /// refcount bump, never an O(size) copy.
  StatusOr<common::Buffer> get(const std::string& path);

  /// Presence check without touching recency.
  [[nodiscard]] bool contains(const std::string& path) const;

  /// Logical size of a cached file, or nullopt.
  [[nodiscard]] std::optional<std::uint64_t> size_of(
      const std::string& path) const;

  /// Removes one file; returns false when absent.
  bool erase(const std::string& path);

  /// Drops everything (simulates node wipe on failure).
  void clear();

  /// Evicts one victim per the policy regardless of capacity pressure;
  /// returns the freed bytes (0 when the store is empty).  Used by
  /// ShardedCacheStore, whose byte budget is global while victim
  /// selection stays per-shard.
  std::uint64_t evict_any();

  [[nodiscard]] std::size_t file_count() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t used_bytes() const { return used_bytes_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return capacity_bytes_;
  }
  [[nodiscard]] std::uint64_t eviction_count() const { return evictions_; }

  [[nodiscard]] std::uint64_t hit_count() const { return hits_; }
  [[nodiscard]] std::uint64_t miss_count() const { return misses_; }
  [[nodiscard]] double hit_rate() const;
  [[nodiscard]] EvictionPolicy policy() const { return policy_; }

 private:
  struct Entry {
    common::Buffer contents;
    std::uint64_t logical_size;
    std::list<std::string>::iterator lru_it;
    bool referenced = false;  ///< CLOCK reference bit
  };

  /// Evicts entries per the policy until `needed` bytes fit.
  void make_room(std::uint64_t needed);
  /// Picks and removes one victim per the policy; returns false when empty.
  bool evict_one();

  std::uint64_t capacity_bytes_;
  EvictionPolicy policy_;
  std::uint64_t used_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  /// Front = most recently used.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace ftc::storage
