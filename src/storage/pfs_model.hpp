// pfs_model.hpp - DES model of the shared parallel file system (Lustre
// "Orion" in the paper).
//
// Two bottlenecks matter for the paper's results (Sec II-A):
//   1. the centralized metadata server — every open() queues through a
//      finite-concurrency FIFO resource, so many-small-file workloads
//      serialize on metadata lock contention;
//   2. aggregate OST data bandwidth — shared by every client in the job
//      (and, via `background_load_fraction`, by the rest of the centre),
//      modelled as a processor-sharing pipe.
// Together they produce the uncached-epoch cost and the post-failure
// straggler amplification that FT w/ PFS suffers from.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "sim/resource.hpp"
#include "sim/shared_bandwidth.hpp"
#include "sim/simulator.hpp"

namespace ftc::storage {

struct PfsConfig {
  /// Aggregate OST read bandwidth available to this job.  Orion peaks in
  /// the TB/s range centre-wide; a single job's share is far smaller.
  double read_bytes_per_second = 200.0e9;  // 200 GB/s job share
  /// Aggregate OST write bandwidth (checkpoint traffic).
  double write_bytes_per_second = 100.0e9;
  /// Metadata server concurrency (requests serviced in parallel).
  std::uint32_t mds_concurrency = 64;
  /// Service time of one metadata op (open/stat) once scheduled.
  SimTime mds_service_time = 400 * simtime::kMicrosecond;
  /// Base network+client latency per request, added outside queueing.
  SimTime access_latency = 500 * simtime::kMicrosecond;
  /// Mean of an exponential latency tail added per access, modelling the
  /// bursty contention of a production Lustre system.  The max over the k
  /// concurrent accesses of one training step grows ~ tail * ln(k), which
  /// is precisely the straggler amplification the paper observes at scale
  /// (Sec V-B1).  0 disables the tail (deterministic latency).
  SimTime access_latency_tail_mean = 0;
  /// Seed for the latency-tail stream (deterministic experiments).
  std::uint64_t seed = 99;
  /// Fraction of bandwidth consumed by other tenants [0,1).
  double background_load_fraction = 0.3;
  /// One client stream's maximum throughput (Lustre per-client limit);
  /// 0 = uncapped.  Makes small jobs client-limited, large jobs pool-limited.
  double per_client_bytes_per_second = 1.5e9;
};

class PfsModel {
 public:
  PfsModel(sim::Simulator& simulator, const PfsConfig& config);

  /// Full file read: metadata op (queued at the MDS), then payload through
  /// the shared OST pipe, then `on_done`.
  void read_file(std::uint64_t bytes, std::function<void()> on_done);

  /// Metadata-only op (stat/open without data), used by fault handling.
  void metadata_op(std::function<void()> on_done);

  /// Full file write: metadata op, then payload through the shared write
  /// pool.  Checkpoint traffic takes this path.
  void write_file(std::uint64_t bytes, std::function<void()> on_done);

  [[nodiscard]] const PfsConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t reads_completed() const { return reads_; }
  [[nodiscard]] std::uint64_t writes_completed() const { return writes_; }
  [[nodiscard]] std::uint64_t bytes_served() const {
    return data_pool_.total_bytes_moved();
  }
  [[nodiscard]] std::uint64_t bytes_written() const {
    return write_pool_.total_bytes_moved();
  }
  [[nodiscard]] double mean_mds_wait_seconds() const {
    return mds_.mean_wait_seconds();
  }
  [[nodiscard]] std::size_t peak_data_concurrency() const {
    return data_pool_.peak_concurrency();
  }

 private:
  /// Per-access latency: base + exponential tail sample.
  [[nodiscard]] SimTime sample_access_latency();

  sim::Simulator& simulator_;
  PfsConfig config_;
  sim::Resource mds_;
  sim::SharedBandwidthResource data_pool_;
  sim::SharedBandwidthResource write_pool_;
  Rng latency_rng_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace ftc::storage
