// singleflight.hpp - Duplicate-call suppression for keyed fetches.
//
// The failover-storm problem in one primitive: when a node dies, every
// client redirects to the same ring successor at once and each first-touch
// miss triggers a PFS fetch for the SAME lost file.  Singleflight
// (after Go's golang.org/x/sync/singleflight) collapses concurrent calls
// for one key into a single execution — the first caller becomes the
// *leader* and runs the function; everyone else arriving while the flight
// is open blocks and shares the leader's result.  With refcounted values
// (common::Buffer) sharing is a refcount bump, not a copy.
//
// A flight closes when the leader's call returns; later callers start a
// fresh flight (results are NOT cached here — the cache above this layer
// is the memoization, singleflight only dedupes the in-flight window).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace ftc::storage {

template <typename V>
class Singleflight {
 public:
  struct Result {
    V value;
    /// True when this call executed the function itself; false when it
    /// joined another caller's flight and shares that result.
    bool leader = false;
  };

  /// Executes `fn` for `key`, unless a flight for `key` is already open —
  /// then blocks until the leader finishes and returns a copy of its
  /// result.  `fn` runs outside all singleflight locks, so concurrent
  /// flights for distinct keys never serialize here.
  template <typename Fn>
  Result run(const std::string& key, Fn&& fn) {
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      std::lock_guard lock(mutex_);
      auto [it, inserted] = flights_.try_emplace(key);
      if (inserted) it->second = std::make_shared<Flight>();
      flight = it->second;
      leader = inserted;
      if (!leader) ++joined_;
    }
    if (!leader) {
      std::unique_lock lock(flight->mutex);
      flight->cv.wait(lock, [&flight] { return flight->done; });
      return {*flight->value, /*leader=*/false};
    }
    V value = fn();
    {
      std::lock_guard lock(flight->mutex);
      flight->value.emplace(std::move(value));
      flight->done = true;
    }
    flight->cv.notify_all();
    // Close the flight: callers from here on start a fresh execution.
    // Followers still blocked above hold their own shared_ptr, so the
    // erase never invalidates their wait.
    {
      std::lock_guard lock(mutex_);
      flights_.erase(key);
    }
    return {*flight->value, /*leader=*/true};
  }

  /// Calls that joined an existing flight instead of executing (telemetry).
  [[nodiscard]] std::uint64_t joined_count() const {
    std::lock_guard lock(mutex_);
    return joined_;
  }

  /// Flights currently open (telemetry/tests).
  [[nodiscard]] std::size_t in_flight() const {
    std::lock_guard lock(mutex_);
    return flights_.size();
  }

 private:
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::optional<V> value;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  std::uint64_t joined_ = 0;
};

}  // namespace ftc::storage
