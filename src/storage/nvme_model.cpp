#include "storage/nvme_model.hpp"

#include <utility>

namespace ftc::storage {

NvmeModel::NvmeModel(sim::Simulator& simulator, const NvmeConfig& config)
    : simulator_(simulator),
      config_(config),
      read_channel_(simulator, config.read_bytes_per_second),
      write_channel_(simulator, config.write_bytes_per_second) {}

void NvmeModel::read(std::uint64_t bytes, std::function<void()> on_done) {
  // Fixed op latency first, then the bandwidth-shared payload movement.
  simulator_.schedule(config_.op_latency,
                      [this, bytes, done = std::move(on_done)]() mutable {
                        read_channel_.transfer(bytes, std::move(done));
                      });
}

void NvmeModel::write(std::uint64_t bytes, std::function<void()> on_done) {
  simulator_.schedule(config_.op_latency,
                      [this, bytes, done = std::move(on_done)]() mutable {
                        write_channel_.transfer(bytes, std::move(done));
                      });
}

}  // namespace ftc::storage
