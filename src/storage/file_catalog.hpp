// file_catalog.hpp - Dataset description shared by every substrate.
//
// The catalog maps file paths to sizes for a training dataset (the paper's
// cosmoUniverse: 1.3 TB of TFRecords, 524,288 training + 65,536 validation
// samples).  Experiments that need a synthetic stand-in generate a catalog
// with the same aggregate shape via make_cosmoflow_like_catalog.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace ftc::storage {

using FileId = std::uint32_t;

struct FileInfo {
  FileId id = 0;
  std::string path;
  std::uint64_t size_bytes = 0;
};

class FileCatalog {
 public:
  FileCatalog() = default;

  /// Registers a file; returns its dense id.  Paths must be unique.
  FileId add_file(std::string path, std::uint64_t size_bytes);

  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  [[nodiscard]] const FileInfo& file(FileId id) const { return files_[id]; }
  [[nodiscard]] const std::vector<FileInfo>& files() const { return files_; }

  /// Id lookup by path; returns false when unknown.
  [[nodiscard]] bool find(const std::string& path, FileId& out) const;

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] double mean_file_bytes() const;

 private:
  std::vector<FileInfo> files_;
  std::unordered_map<std::string, FileId> by_path_;
  std::uint64_t total_bytes_ = 0;
};

struct CosmoflowCatalogParams {
  /// Number of TFRecord files.  The real dataset packs multiple samples
  /// per file; file_count * mean_file_bytes ~ dataset_bytes.
  std::uint32_t file_count = 16384;
  /// Mean file size; cosmoUniverse TFRecords average a few MiB.
  std::uint64_t mean_file_bytes = 8ULL << 20;
  /// Lognormal size spread (sigma of underlying normal); 0 = uniform sizes.
  double size_sigma = 0.25;
  std::string prefix = "/lustre/orion/cosmoUniverse";
  std::uint64_t seed = 1;
};

/// Builds a catalog whose population mimics the CosmoFlow TFRecord layout.
FileCatalog make_cosmoflow_like_catalog(const CosmoflowCatalogParams& params);

}  // namespace ftc::storage
