// nvme_model.hpp - DES model of a node-local NVMe volume.
//
// Frontier nodes aggregate two PM9A3 SSDs into one RAID0 XFS volume with
// ~8 GB/s sequential read and ~4 GB/s write (paper Sec V-A / Table II);
// those numbers are this model's defaults.  Reads and writes move through
// independent processor-sharing channels plus a fixed per-op latency, and
// capacity is tracked so eviction behaviour can be studied.
#pragma once

#include <cstdint>
#include <functional>

#include "common/sim_time.hpp"
#include "sim/shared_bandwidth.hpp"
#include "sim/simulator.hpp"

namespace ftc::storage {

struct NvmeConfig {
  std::uint64_t capacity_bytes = 3500ULL * 1000 * 1000 * 1000;  // 3.5 TB
  double read_bytes_per_second = 8.0e9;                         // 8 GB/s
  double write_bytes_per_second = 4.0e9;                        // 4 GB/s
  /// Per-operation latency (submission + flash access).
  SimTime op_latency = 80 * simtime::kMicrosecond;
};

/// Uncontended service time of one read/write of `bytes`: the fixed op
/// latency plus the bandwidth term.  The DES model layers queueing on
/// top via its processor-sharing channels; the threaded tiered store
/// (store::NvmeDevice) sleeps exactly this long per cold-tier access,
/// so both substrates price NVMe from the same Table II numbers.
inline SimTime nvme_read_latency(const NvmeConfig& config,
                                 std::uint64_t bytes) {
  return config.op_latency +
         static_cast<SimTime>(static_cast<double>(bytes) /
                              config.read_bytes_per_second * 1e9);
}

inline SimTime nvme_write_latency(const NvmeConfig& config,
                                  std::uint64_t bytes) {
  return config.op_latency +
         static_cast<SimTime>(static_cast<double>(bytes) /
                              config.write_bytes_per_second * 1e9);
}

class NvmeModel {
 public:
  NvmeModel(sim::Simulator& simulator, const NvmeConfig& config);

  /// Simulated read of `bytes`; `on_done` fires when data is in memory.
  void read(std::uint64_t bytes, std::function<void()> on_done);

  /// Simulated write; capacity accounting is the caller's job (the HVAC
  /// server owns the CacheStore that tracks logical occupancy).
  void write(std::uint64_t bytes, std::function<void()> on_done);

  [[nodiscard]] const NvmeConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t reads_completed() const {
    return read_channel_.completed();
  }
  [[nodiscard]] std::uint64_t writes_completed() const {
    return write_channel_.completed();
  }
  [[nodiscard]] std::uint64_t bytes_read() const {
    return read_channel_.total_bytes_moved();
  }
  [[nodiscard]] std::uint64_t bytes_written() const {
    return write_channel_.total_bytes_moved();
  }

 private:
  sim::Simulator& simulator_;
  NvmeConfig config_;
  sim::SharedBandwidthResource read_channel_;
  sim::SharedBandwidthResource write_channel_;
};

}  // namespace ftc::storage
