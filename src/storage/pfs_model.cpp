#include "storage/pfs_model.hpp"

#include <utility>

namespace ftc::storage {

PfsModel::PfsModel(sim::Simulator& simulator, const PfsConfig& config)
    : simulator_(simulator),
      config_(config),
      mds_(simulator, config.mds_concurrency),
      data_pool_(simulator,
                 config.read_bytes_per_second *
                     (1.0 - (config.background_load_fraction < 0.0
                                 ? 0.0
                                 : (config.background_load_fraction >= 1.0
                                        ? 0.99
                                        : config.background_load_fraction))),
                 config.per_client_bytes_per_second),
      write_pool_(simulator,
                  config.write_bytes_per_second > 0
                      ? config.write_bytes_per_second
                      : 1.0,
                  config.per_client_bytes_per_second),
      latency_rng_(config.seed ^ 0x9F5EA7ULL) {}

SimTime PfsModel::sample_access_latency() {
  SimTime latency = config_.access_latency;
  if (config_.access_latency_tail_mean > 0) {
    latency += static_cast<SimTime>(latency_rng_.exponential(
        static_cast<double>(config_.access_latency_tail_mean)));
  }
  return latency;
}

void PfsModel::read_file(std::uint64_t bytes, std::function<void()> on_done) {
  // access latency (base + contention tail) -> MDS queue -> shared data
  // pipe -> caller.
  simulator_.schedule(
      sample_access_latency(),
      [this, bytes, done = std::move(on_done)]() mutable {
        mds_.acquire(config_.mds_service_time,
                     [this, bytes, done = std::move(done)]() mutable {
                       data_pool_.transfer(bytes,
                                           [this, done = std::move(done)] {
                                             ++reads_;
                                             if (done) done();
                                           });
                     });
      });
}

void PfsModel::metadata_op(std::function<void()> on_done) {
  simulator_.schedule(sample_access_latency(),
                      [this, done = std::move(on_done)]() mutable {
                        mds_.acquire(config_.mds_service_time,
                                     std::move(done));
                      });
}

void PfsModel::write_file(std::uint64_t bytes,
                          std::function<void()> on_done) {
  simulator_.schedule(
      sample_access_latency(),
      [this, bytes, done = std::move(on_done)]() mutable {
        mds_.acquire(config_.mds_service_time,
                     [this, bytes, done = std::move(done)]() mutable {
                       write_pool_.transfer(bytes,
                                            [this, done = std::move(done)] {
                                              ++writes_;
                                              if (done) done();
                                            });
                     });
      });
}

}  // namespace ftc::storage
