#include "rpc/transport.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace ftc::rpc {

Transport::~Transport() {
  // Async completions first: they may still be blocked inside call(), so
  // the pool must drain while endpoints are alive.  ThreadPool's
  // destructor runs every queued task before joining.
  std::unique_ptr<common::ThreadPool> pool;
  {
    std::lock_guard lock(async_mutex_);
    async_shutdown_ = true;
    pool = std::move(async_pool_);
  }
  pool.reset();
  // Stop every worker; promises for queued requests are broken, which the
  // client side surfaces as kCancelled.
  std::vector<std::unique_ptr<Endpoint>> doomed;
  {
    std::lock_guard registry_lock(registry_mutex_);
    for (auto& [node, endpoint] : endpoints_) {
      {
        std::lock_guard lock(endpoint->mutex);
        endpoint->stopping = true;
      }
      endpoint->cv.notify_all();
      doomed.push_back(std::move(endpoint));
    }
    endpoints_.clear();
  }
  for (auto& endpoint : doomed) {
    for (auto& worker : endpoint->workers) {
      if (worker.joinable()) worker.join();
    }
  }
}

Status Transport::register_endpoint(NodeId node, Handler handler,
                                    std::size_t workers) {
  std::lock_guard registry_lock(registry_mutex_);
  if (endpoints_.contains(node)) {
    return Status::invalid_argument("endpoint already registered: " +
                                    std::to_string(node));
  }
  if (workers == 0) {
    return Status::invalid_argument("endpoint needs at least one worker");
  }
  auto endpoint = std::make_unique<Endpoint>();
  endpoint->node = node;
  endpoint->handler = std::move(handler);
  Endpoint* raw = endpoint.get();
  endpoint->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    endpoint->workers.emplace_back([this, raw] { worker_loop(*raw); });
  }
  endpoints_.emplace(node, std::move(endpoint));
  return Status::ok();
}

Status Transport::unregister_endpoint(NodeId node) {
  std::unique_ptr<Endpoint> endpoint;
  {
    std::lock_guard registry_lock(registry_mutex_);
    const auto it = endpoints_.find(node);
    if (it == endpoints_.end()) {
      return Status::not_found("no endpoint " + std::to_string(node));
    }
    endpoint = std::move(it->second);
    endpoints_.erase(it);
  }
  {
    std::lock_guard lock(endpoint->mutex);
    endpoint->stopping = true;
  }
  endpoint->cv.notify_all();
  for (auto& worker : endpoint->workers) {
    if (worker.joinable()) worker.join();
  }
  return Status::ok();
}

StatusOr<RpcResponse> Transport::call(NodeId target, RpcRequest request,
                                      std::chrono::milliseconds timeout) {
  auto call = std::make_shared<PendingCall>();
  call->request = std::move(request);
  std::future<RpcResponse> future = call->promise.get_future();
  {
    std::lock_guard registry_lock(registry_mutex_);
    const auto it = endpoints_.find(target);
    if (it == endpoints_.end()) {
      return Status::unavailable("no endpoint " + std::to_string(target));
    }
    Endpoint& endpoint = *it->second;
    {
      std::lock_guard lock(endpoint.mutex);
      ++endpoint.stats.received;
      if (!is_membership_op(call->request.op)) ++endpoint.stats.received_data;
      // Partition fault: a blocked sender's request dies on the wire — no
      // admission verdict, no response, the caller times out exactly as if
      // the link were cut.  Checked before admission so a severed link can
      // never be mistaken for a fast, live kBusy answer.
      const bool link_cut =
          !endpoint.blocked_senders.empty() &&
          endpoint.blocked_senders.contains(call->request.client_node);
      if (link_cut) {
        ++endpoint.stats.dropped;
        ++endpoint.stats.partition_dropped;
      } else {
        // Admission control: shed at enqueue so a rejection is a fast kBusy
        // answer, not a queue wait.  Membership traffic is never shed, and a
        // killed endpoint never sheds (a dead node cannot answer — a fast
        // rejection would read as liveness and break timeout detection).
        const std::size_t limit = endpoint.admission.queue_limit;
        if (limit > 0 && !endpoint.killed &&
            !is_membership_op(call->request.op)) {
          const std::size_t bound =
              call->request.op == Op::kPut ? limit * 2 : limit;
          if (endpoint.queue.size() >= bound) {
            ++endpoint.stats.requests_shed;
            if (endpoint.recorder != nullptr && call->request.trace.sampled) {
              endpoint.recorder->record_event(
                  obs::RecordKind::kServerShed, call->request.trace.child(),
                  endpoint.node, static_cast<std::uint32_t>(StatusCode::kBusy),
                  endpoint.queue.size(), "admission");
            }
            RpcResponse busy;
            busy.code = StatusCode::kBusy;
            const auto backlog =
                static_cast<std::uint32_t>(endpoint.queue.size() - bound + 1);
            busy.retry_after_ms =
                endpoint.admission.retry_after_base_ms * backlog;
            // A shed IS load evidence — the one response an overloaded node
            // is guaranteed to send quickly, so it carries the hint too.
            if (endpoint.load_report.enabled) {
              busy.load_hint = encode_load_hint(endpoint.load_ewma);
            }
            return busy;
          }
        }
        if (endpoint.recorder != nullptr && call->request.trace.sampled) {
          call->enqueue_ns = obs::now_ns();
        }
        endpoint.queue.push_back(call);
        // Duplication fault: enqueue a second, untraced delivery of the
        // same request.  Its promise has no future attached — the server
        // handles it and the response evaporates, which is exactly what a
        // fabric-level re-send looks like to an application.
        if (endpoint.duplicate_probability > 0.0 &&
            endpoint.duplicate_rng.chance(endpoint.duplicate_probability)) {
          auto clone = std::make_shared<PendingCall>();
          clone->request = call->request;
          endpoint.queue.push_back(std::move(clone));
          ++endpoint.stats.received;
          if (!is_membership_op(call->request.op)) {
            ++endpoint.stats.received_data;
          }
          ++endpoint.stats.duplicated;
        }
        // Reordering fault: let this arrival overtake up to reorder_depth
        // queued requests (bounded, seeded — deterministic per sequence).
        if (endpoint.reorder_probability > 0.0 && endpoint.queue.size() > 1 &&
            endpoint.reorder_rng.chance(endpoint.reorder_probability)) {
          const std::size_t depth = std::min<std::size_t>(
              1 + endpoint.reorder_rng.below(
                      std::max<std::uint32_t>(1, endpoint.reorder_depth)),
              endpoint.queue.size() - 1);
          auto moved = std::move(endpoint.queue.back());
          endpoint.queue.pop_back();
          endpoint.queue.insert(endpoint.queue.end() - depth,
                                std::move(moved));
          ++endpoint.stats.reordered;
        }
      }
    }
    endpoint.cv.notify_one();
  }
  // The shared_ptr keeps the pending call alive even if we time out and the
  // worker later fulfills the promise into the void.
  switch (future.wait_for(timeout)) {
    case std::future_status::ready:
      break;
    case std::future_status::timeout:
      return Status::timeout("rpc to node " + std::to_string(target));
    case std::future_status::deferred:
      return Status::internal("unexpected deferred future");
  }
  try {
    return future.get();
  } catch (const std::future_error&) {
    return Status::cancelled("endpoint shut down");
  }
}

void Transport::call_async(
    NodeId target, RpcRequest request, std::chrono::milliseconds timeout,
    std::function<void(StatusOr<RpcResponse>)> on_complete) {
  // Held across submit: the destructor sets async_shutdown_ under this
  // mutex before tearing the pool down, so an accepted submission always
  // lands in a live pool.
  std::lock_guard lock(async_mutex_);
  if (async_shutdown_) {
    if (on_complete) on_complete(Status::cancelled("transport shut down"));
    return;
  }
  if (!async_pool_) {
    async_pool_ = std::make_unique<common::ThreadPool>(kAsyncPoolThreads);
  }
  async_pool_->submit(
      [this, target, request = std::move(request), timeout,
       on_complete = std::move(on_complete)]() mutable {
        auto result = call(target, std::move(request), timeout);
        if (on_complete) on_complete(std::move(result));
      });
}

void Transport::drain_async() {
  common::ThreadPool* pool = nullptr;
  {
    std::lock_guard lock(async_mutex_);
    pool = async_pool_.get();
  }
  if (pool != nullptr) pool->wait_idle();
}

std::size_t Transport::async_pool_thread_count() const {
  std::lock_guard lock(async_mutex_);
  return async_pool_ ? async_pool_->thread_count() : 0;
}

void Transport::kill(NodeId node) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  {
    std::lock_guard lock(it->second->mutex);
    it->second->killed = true;
  }
  it->second->cv.notify_all();
}

void Transport::revive(NodeId node) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  {
    std::lock_guard lock(it->second->mutex);
    it->second->killed = false;
  }
  it->second->cv.notify_all();
}

bool Transport::is_killed(NodeId node) const {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return false;
  std::lock_guard lock(it->second->mutex);
  return it->second->killed;
}

void Transport::set_extra_latency(NodeId node,
                                  std::chrono::milliseconds latency) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  std::lock_guard lock(it->second->mutex);
  it->second->extra_latency = latency;
}

void Transport::drop_next(NodeId node, std::uint32_t count) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  std::lock_guard lock(it->second->mutex);
  it->second->drops_remaining += count;
}

void Transport::set_drop_probability(NodeId node, double p,
                                     std::uint64_t seed) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  std::lock_guard lock(it->second->mutex);
  it->second->drop_probability = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  it->second->drop_rng.reseed(seed);
}

void Transport::corrupt_next(NodeId node, std::uint32_t count) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  std::lock_guard lock(it->second->mutex);
  it->second->corruptions_remaining += count;
}

void Transport::set_blocked_senders(NodeId node,
                                    std::vector<NodeId> senders) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  std::lock_guard lock(it->second->mutex);
  it->second->blocked_senders.clear();
  it->second->blocked_senders.insert(senders.begin(), senders.end());
}

bool Transport::is_sender_blocked(NodeId node, NodeId sender) const {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return false;
  std::lock_guard lock(it->second->mutex);
  return it->second->blocked_senders.contains(sender);
}

void Transport::set_duplicate_probability(NodeId node, double p,
                                          std::uint64_t seed) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  std::lock_guard lock(it->second->mutex);
  it->second->duplicate_probability = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  it->second->duplicate_rng.reseed(seed);
}

void Transport::set_reorder(NodeId node, double p,
                            std::uint32_t max_displacement,
                            std::uint64_t seed) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  std::lock_guard lock(it->second->mutex);
  it->second->reorder_probability = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  it->second->reorder_depth = max_displacement == 0 ? 1 : max_displacement;
  it->second->reorder_rng.reseed(seed);
}

void Transport::set_admission(NodeId node, AdmissionConfig config) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  std::lock_guard lock(it->second->mutex);
  it->second->admission = config;
}

void Transport::set_load_reporting(NodeId node, LoadReportConfig config) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  std::lock_guard lock(it->second->mutex);
  if (config.alpha <= 0.0 || config.alpha > 1.0) config.alpha = 0.2;
  it->second->load_report = config;
}

void Transport::set_flight_recorder(NodeId node,
                                    obs::FlightRecorder* recorder) {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  std::lock_guard lock(it->second->mutex);
  it->second->recorder = recorder;
}

Transport::EndpointStats Transport::stats(NodeId node) const {
  std::lock_guard registry_lock(registry_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return {};
  std::lock_guard lock(it->second->mutex);
  return it->second->stats;
}

std::size_t Transport::endpoint_count() const {
  std::lock_guard registry_lock(registry_mutex_);
  return endpoints_.size();
}

void Transport::worker_loop(Endpoint& endpoint) {
  for (;;) {
    std::shared_ptr<PendingCall> call;
    std::chrono::milliseconds latency{0};
    {
      std::unique_lock lock(endpoint.mutex);
      endpoint.cv.wait(lock, [&endpoint] {
        return endpoint.stopping || !endpoint.queue.empty();
      });
      if (endpoint.stopping) return;
      call = std::move(endpoint.queue.front());
      endpoint.queue.pop_front();
      if (endpoint.killed) {
        // Crash-stop: discard silently; the caller's future never resolves
        // and the client observes a timeout.
        ++endpoint.stats.dropped;
        continue;
      }
      if (endpoint.drops_remaining > 0) {
        --endpoint.drops_remaining;
        ++endpoint.stats.dropped;
        continue;
      }
      if (endpoint.drop_probability > 0.0 &&
          endpoint.drop_rng.chance(endpoint.drop_probability)) {
        ++endpoint.stats.dropped;
        continue;
      }
      latency = endpoint.extra_latency;
      // Load sample at pickup: requests still queued plus handlers already
      // executing, this one included.  Folding it here (not at enqueue)
      // means a backlog that drains slowly keeps reporting high load for
      // as long as it exists, which is what the spill decision needs.
      ++endpoint.inflight;
      if (endpoint.load_report.enabled) {
        const auto raw =
            static_cast<double>(endpoint.queue.size() + endpoint.inflight);
        endpoint.load_ewma += endpoint.load_report.alpha *
                              (raw - endpoint.load_ewma);
      }
      // Queue-phase span: admission (enqueue) to worker pickup.  Recorded
      // under the endpoint mutex like the counters; the recorder itself is
      // wait-free so this adds no blocking.
      if (endpoint.recorder != nullptr && call->enqueue_ns != 0) {
        endpoint.recorder->record_span(
            obs::RecordKind::kServerQueue, call->request.trace.child(),
            endpoint.node, call->enqueue_ns, obs::now_ns(),
            static_cast<std::uint32_t>(StatusCode::kOk), endpoint.queue.size(),
            "queue");
      }
    }
    if (latency.count() > 0) std::this_thread::sleep_for(latency);
    // Handler runs outside the endpoint lock so slow service does not block
    // enqueue/kill operations.
    RpcResponse response = endpoint.handler(call->request);
    {
      std::lock_guard lock(endpoint.mutex);
      if (endpoint.corruptions_remaining > 0 && !response.payload.empty()) {
        --endpoint.corruptions_remaining;
        // Post-checksum bit-flip on the wire.  Payload bytes are shared
        // and immutable, so the corrupted copy must be a fresh buffer —
        // the server's cached bytes stay intact, exactly like real wire
        // corruption.
        std::string corrupted = response.payload.to_string();
        corrupted[0] ^= 0x01;
        response.payload = common::Buffer(std::move(corrupted));
      }
      // Count BEFORE resolving the promise: a caller that observes the
      // response must also observe it in the stats.
      ++endpoint.stats.handled;
      --endpoint.inflight;
      // Piggyback the smoothed load estimate.  Stamped at the transport
      // layer (not in the handler) so every op — reads, puts, pings,
      // SWIM — carries the same signal without the server knowing.
      if (endpoint.load_report.enabled) {
        response.load_hint = encode_load_hint(endpoint.load_ewma);
      }
    }
    call->promise.set_value(std::move(response));
  }
}

}  // namespace ftc::rpc
