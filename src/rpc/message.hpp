// message.hpp - RPC request/response types.
//
// The wire vocabulary between HVAC clients and servers, mirroring the
// Mercury RPCs of the original system: a read request carries the file
// path (the hash key) and returns status + payload.  The threaded
// transport passes these by value in-process; no serialization is needed,
// which is fine because the FT logic only observes request/response/timeout
// semantics, not encodings.
//
// Membership piggyback: every request/response can additionally carry
// (a) the sender's current ring epoch, (b) a handful of SWIM membership
// claims (gossip rides on data traffic, it never gets its own connection),
// and (c) — on responses to stale-epoch requests — a kStaleView hint with
// the epoch delta, so a lagging client fast-forwards its ring view in one
// round trip instead of rediscovering failures through its own timeouts.
// The wire structs below are deliberately plain (no membership headers):
// rpc sits beneath membership in the layer order.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "obs/trace_context.hpp"

namespace ftc::rpc {

enum class Op : std::uint8_t {
  kReadFile = 0,   ///< Fetch a whole cached file.
  kPing = 1,       ///< Liveness probe (used by diagnostics, not detection —
                   ///< the paper's detection is purely timeout-on-request).
  kEvict = 2,      ///< Drop a file from the server's cache (tests/tools).
  kStats = 3,      ///< Server cache statistics snapshot.
  kPut = 4,        ///< Store a payload in the server's cache — the
                   ///< replication extension's backup-placement op.
  kSwimPing = 5,   ///< SWIM direct probe; ack proves the node serves.
  kSwimPingReq = 6,     ///< SWIM indirect probe: "ping `subject` for me".
  kMembershipSync = 7,  ///< Full membership pull (joiners, truncated logs).
  kSwimVerdict = 8,     ///< Proxy -> origin: outcome of a kSwimPingReq
                        ///< errand (`subject` + `subject_reachable`).  A
                        ///< separate push, never an inline reply — the
                        ///< proxy must not block its server worker on the
                        ///< nested ping.
  kPeerGet = 9,    ///< Cache-only peer transfer: serve the file from NVMe
                   ///< or answer kNotFound — never touch the PFS.  The
                   ///< prefetch planner's background pulls and the p2p
                   ///< recache path use it to move bytes node-to-node;
                   ///< responses carry the server's replica-generation
                   ///< ledger stamp so a pulled standby copy keeps its
                   ///< provenance.  Data plane: sheds at the read class.
};

/// True for the SWIM membership-protocol verbs (probe/indirect/verdict/
/// sync), false for the data plane (reads, puts, diagnostics).
constexpr bool is_membership_op(Op op) {
  return op == Op::kSwimPing || op == Op::kSwimPingReq ||
         op == Op::kSwimVerdict || op == Op::kMembershipSync;
}

/// Absolute request deadline carried on the wire: integer nanoseconds on
/// the steady clock's epoch, the threaded substrate's analogue of the DES
/// substrate's integer SimTime.  A plain integer (not a time_point) so the
/// wire struct stays POD-ish and the DES substrate can reuse the field
/// with its own clock.  kNoDeadline (0) = the request never expires (every
/// legacy sender).
using DeadlineNs = std::int64_t;
constexpr DeadlineNs kNoDeadline = 0;

/// Now, on the deadline clock.
inline DeadlineNs deadline_clock_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Absolute deadline `budget` from now.
inline DeadlineNs deadline_in(std::chrono::nanoseconds budget) {
  return deadline_clock_ns() + budget.count();
}

/// True when `deadline` is set and has passed — the signal for a server to
/// shed the work instead of executing it.
inline bool deadline_expired(DeadlineNs deadline) {
  return deadline != kNoDeadline && deadline_clock_ns() >= deadline;
}

/// Budget left before `deadline` (negative when already expired; the
/// maximum duration when no deadline is set).
inline std::chrono::nanoseconds deadline_remaining(DeadlineNs deadline) {
  if (deadline == kNoDeadline) return std::chrono::nanoseconds::max();
  return std::chrono::nanoseconds(deadline - deadline_clock_ns());
}

/// `ring_epoch` value of a sender that does not participate in the
/// membership protocol (legacy mode).  Distinct from 0, which means "I am
/// epoch-aware but have seen no membership events yet" and therefore wants
/// the full delta.
constexpr std::uint64_t kEpochUnaware =
    std::numeric_limits<std::uint64_t>::max();

/// One SWIM membership assertion, piggybacked on any RPC: "I believe
/// `subject` is in `state` at `incarnation`".  State values are
/// membership::MemberState underlying values (alive=0 suspect=1 failed=2);
/// kept as a raw byte here so rpc does not depend on membership headers.
struct MembershipClaim {
  ftc::NodeId subject = ftc::kInvalidNode;
  std::uint8_t state = 0;
  std::uint64_t incarnation = 0;
};

/// One epoch-stamped ring transition — an entry of the membership event
/// log, shipped as the kStaleView fast-forward delta.  Kind values are
/// membership::RingEventType underlying values.
struct RingDelta {
  std::uint64_t epoch = 0;
  std::uint8_t kind = 0;
  ftc::NodeId node = ftc::kInvalidNode;
  std::uint64_t incarnation = 0;
};

/// Response-side freshness verdict about the requester's ring view.
enum class ViewHint : std::uint8_t {
  kNone = 0,       ///< Request epoch current (or sender epoch-unaware).
  kStaleView = 1,  ///< Request epoch lags; view_delta/gossip carry the fix.
};

struct RpcRequest {
  Op op = Op::kReadFile;
  std::string path;
  /// Payload for kPut (backup replica contents); empty otherwise.
  /// Refcounted: a replication fan-out shares one payload across every
  /// backup request instead of copying per target.
  common::Buffer payload;
  /// Originating client node (telemetry only; servers must not use it for
  /// placement decisions).
  ftc::NodeId client_node = 0;
  /// kSwimPingReq: the node the proxy should probe on our behalf.
  /// kSwimVerdict: the node the verdict is about.
  ftc::NodeId subject = ftc::kInvalidNode;
  /// kSwimVerdict only: whether the proxy's nested ping reached `subject`.
  bool subject_reachable = false;
  /// Sender's current ring epoch (kEpochUnaware in legacy mode).
  std::uint64_t ring_epoch = kEpochUnaware;
  /// Sender's ring fingerprint (0 = unstamped).  Epoch labels are local
  /// counters, so two sides of a healed partition can present the SAME
  /// number for DIFFERENT rings — the fingerprint is what lets a responder
  /// see through the label collision and force a full reconciliation
  /// instead of concluding the views already agree.
  std::uint64_t ring_fingerprint = 0;
  /// Piggybacked membership claims (empty in legacy mode).
  std::vector<MembershipClaim> gossip;
  /// Absolute deadline after which the sender no longer wants the answer.
  /// Servers shed expired work before executing it; hedge legs and
  /// retries inherit the read's remaining budget through this field.
  /// kNoDeadline = never expires (legacy senders).
  DeadlineNs deadline_ns = kNoDeadline;
  /// kPut only: the placement generation (ring epoch) the sender derived
  /// the replica target from.  A server remembers the highest stamped
  /// generation per path and answers kCancelled to anything older, so a
  /// lagging client can never roll a warm standby back to a dead ring's
  /// placement.  0 = unstamped (every legacy sender, bit-for-bit).
  std::uint64_t replica_generation = 0;
  /// Tracing context for this request (all-zero / unsampled by default —
  /// the wire default is bit-for-bit an uninstrumented sender).  Lets a
  /// server attribute its admission/queue/execute phases to the exact
  /// client attempt (primary, hedge leg, busy retry) that sent the work.
  obs::TraceContext trace;
};

struct RpcResponse {
  StatusCode code = StatusCode::kOk;
  /// Refcounted payload: a cache hit hands out a reference to the stored
  /// bytes — the response, the cache entry, and (on a miss) the data-mover
  /// queue all share one allocation.
  common::Buffer payload;
  /// True when the server had the file cached (vs fetched from PFS).
  bool cache_hit = false;
  /// CRC-32 of payload for end-to-end integrity verification.
  std::uint32_t checksum = 0;
  /// Responder's current ring epoch (kEpochUnaware in legacy mode).
  std::uint64_t ring_epoch = kEpochUnaware;
  /// kStaleView when the request's epoch lagged the responder's.
  ViewHint view_hint = ViewHint::kNone;
  /// The epoch delta backing a kStaleView hint: every ring transition the
  /// requester is missing, oldest first.  Empty when the responder's event
  /// log was truncated past the requester's epoch — `gossip` then carries
  /// a full-state claim dump instead.
  std::vector<RingDelta> view_delta;
  /// Piggybacked membership claims (empty in legacy mode).
  std::vector<MembershipClaim> gossip;
  /// With code == kBusy: how long the sender suggests waiting before a
  /// retry, scaled by its backlog.  Advisory — clients combine it with
  /// their own jittered backoff.  0 otherwise.
  std::uint32_t retry_after_ms = 0;
  /// Piggybacked load telemetry: the responder's smoothed queue depth +
  /// in-flight work (EWMA, fixed-point ×256), encoded as value + 1 so a
  /// genuinely idle responder (load 0) is distinguishable from a legacy
  /// one.  0 = unset — the wire default, bit-for-bit identical to a
  /// sender without load reporting.  Clients feed these into the
  /// bounded-load spill and power-of-two-choices decisions; no extra
  /// round trips are ever spent on load discovery.
  std::uint32_t load_hint = 0;
  /// kPeerGet only: the responder's replica-generation ledger stamp for
  /// the served path (0 = unstamped / ledger has no entry — also the wire
  /// default, bit-for-bit identical for every other op).  A puller that
  /// re-places the bytes forwards this stamp so the generation ledger's
  /// staleness rules keep holding across node-to-node hops.
  std::uint64_t replica_generation = 0;
};

/// Fixed-point scale of RpcResponse::load_hint.
constexpr double kLoadHintScale = 256.0;

/// Encodes a non-negative load estimate into the +1-biased wire form.
inline std::uint32_t encode_load_hint(double load) {
  if (load < 0.0) load = 0.0;
  const double fixed = load * kLoadHintScale + 1.0;
  constexpr double kMax = 4294967295.0;
  return static_cast<std::uint32_t>(fixed < kMax ? fixed : kMax);
}

/// True when a response carries a load estimate.
inline bool has_load_hint(const RpcResponse& response) {
  return response.load_hint != 0;
}

/// Decodes the +1-biased wire form back into a load estimate.  Only
/// meaningful when has_load_hint(); returns 0 otherwise.
inline double decode_load_hint(std::uint32_t hint) {
  if (hint == 0) return 0.0;
  return static_cast<double>(hint - 1) / kLoadHintScale;
}

}  // namespace ftc::rpc
