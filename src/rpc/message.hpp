// message.hpp - RPC request/response types.
//
// The wire vocabulary between HVAC clients and servers, mirroring the
// Mercury RPCs of the original system: a read request carries the file
// path (the hash key) and returns status + payload.  The threaded
// transport passes these by value in-process; no serialization is needed,
// which is fine because the FT logic only observes request/response/timeout
// semantics, not encodings.
#pragma once

#include <cstdint>
#include <string>

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace ftc::rpc {

enum class Op : std::uint8_t {
  kReadFile = 0,   ///< Fetch a whole cached file.
  kPing = 1,       ///< Liveness probe (used by diagnostics, not detection —
                   ///< the paper's detection is purely timeout-on-request).
  kEvict = 2,      ///< Drop a file from the server's cache (tests/tools).
  kStats = 3,      ///< Server cache statistics snapshot.
  kPut = 4,        ///< Store a payload in the server's cache — the
                   ///< replication extension's backup-placement op.
};

struct RpcRequest {
  Op op = Op::kReadFile;
  std::string path;
  /// Payload for kPut (backup replica contents); empty otherwise.
  /// Refcounted: a replication fan-out shares one payload across every
  /// backup request instead of copying per target.
  common::Buffer payload;
  /// Originating client node (telemetry only; servers must not use it for
  /// placement decisions).
  ftc::NodeId client_node = 0;
};

struct RpcResponse {
  StatusCode code = StatusCode::kOk;
  /// Refcounted payload: a cache hit hands out a reference to the stored
  /// bytes — the response, the cache entry, and (on a miss) the data-mover
  /// queue all share one allocation.
  common::Buffer payload;
  /// True when the server had the file cached (vs fetched from PFS).
  bool cache_hit = false;
  /// CRC-32 of payload for end-to-end integrity verification.
  std::uint32_t checksum = 0;
};

}  // namespace ftc::rpc
