// transport.hpp - In-process threaded RPC transport with fault injection.
//
// Substitute for Mercury-over-Slingshot: each registered endpoint runs a
// worker thread consuming a FIFO request queue; clients block on a future
// with a deadline.  Faults are injected at this layer:
//   - kill():  endpoint silently discards requests (crash-stop node — the
//              client sees only timeouts, exactly like a drained Frontier
//              node); revive() undoes it (a drained node handed back to
//              the job, the gray-failure reinstatement experiments);
//   - set_extra_latency(): per-endpoint added delay (a *slow* node — the
//              gray failure the hedged-read path is built to mask);
//   - drop_next(): drop exactly N requests then behave (packet-loss blips);
//   - set_drop_probability(): drop each request with seeded probability p
//              (lossy link; deterministic per request sequence);
//   - set_blocked_senders(): drop every request whose client_node is in a
//              per-endpoint block set (a severed LINK, not a dead node —
//              the building block for symmetric and asymmetric network
//              partitions; both sides stay alive and serve their side);
//   - set_duplicate_probability(): deliver some requests twice (at-least-
//              once fabrics re-send on lost acks; exercises idempotency);
//   - set_reorder(): displace some arrivals a bounded number of slots
//              deeper into the FIFO (multi-path fabrics reorder; bounded
//              so determinism is preserved for a fixed seed).
//
// The FT policy above this layer must work with *no* information other
// than per-request timeouts, matching the paper's autonomous detection.
// cluster::GrayFailureInjector composes these primitives into scheduled,
// seed-deterministic fault scenarios (flapping, staged degradation).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "obs/flight_recorder.hpp"
#include "rpc/message.hpp"

namespace ftc::rpc {

/// Alias of the library-wide node identifier (see common/types.hpp).
using NodeId = ftc::NodeId;
using Clock = std::chrono::steady_clock;

class Transport {
 public:
  using Handler = std::function<RpcResponse(const RpcRequest&)>;

  Transport() = default;
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Registers a server endpoint; spawns `workers` worker threads
  /// (default 1, the seed's serial endpoint — more lets concurrent
  /// requests to one node actually contend, which the failover-storm
  /// experiments need).  Registering an existing id replaces the handler
  /// only if the old endpoint was unregistered first (returns
  /// kInvalidArgument otherwise).
  Status register_endpoint(NodeId node, Handler handler,
                           std::size_t workers = 1);

  /// Stops and joins an endpoint's worker.  Outstanding requests fail with
  /// kCancelled.
  Status unregister_endpoint(NodeId node);

  /// Blocking call with deadline.  Timeout produces StatusCode::kTimeout;
  /// calling an unknown endpoint produces kUnavailable immediately (models
  /// a connection refused, distinct from an unresponsive node).
  StatusOr<RpcResponse> call(NodeId target, RpcRequest request,
                             std::chrono::milliseconds timeout);

  /// Non-blocking variant (Mercury-style): `on_complete` runs on a
  /// background thread with the same result `call` would return.  Async
  /// calls run on a fixed-size completion pool (kAsyncPoolThreads workers,
  /// created lazily on first use) — issuing N calls never spawns N
  /// threads; excess calls queue FIFO.  Pending completions are drained
  /// before the transport destructs; callbacks must not destroy the
  /// transport.
  void call_async(NodeId target, RpcRequest request,
                  std::chrono::milliseconds timeout,
                  std::function<void(StatusOr<RpcResponse>)> on_complete);

  /// Blocks until every in-flight async call has completed.
  void drain_async();

  /// Upper bound on completion threads, independent of async-call volume.
  /// Sized for hedged reads: every hedged read holds up to two slots
  /// (primary + hedge), and a slot aimed at a dead node blocks for the
  /// full RPC deadline.  Generous because orphaned primary legs to a
  /// *slow* (gray) node keep their slot for the node's full stall after
  /// the hedge already won — if those orphans exhaust the pool, hedge
  /// legs queue behind them and re-import the very tail hedging masks.
  static constexpr std::size_t kAsyncPoolThreads = 16;

  /// Threads currently owned by the async completion pool: 0 before the
  /// first call_async, kAsyncPoolThreads after — never per-call.
  [[nodiscard]] std::size_t async_pool_thread_count() const;

  /// Crash-stop fault: the endpoint stays registered but discards every
  /// request without replying.  Lasts until revive() (never called in the
  /// paper's model — a drained node does not come back within a job).
  void kill(NodeId node);

  /// Undoes kill(): the endpoint serves requests again.  Queued requests
  /// that arrived while killed were already discarded and stay lost.
  void revive(NodeId node);

  [[nodiscard]] bool is_killed(NodeId node) const;

  /// Adds fixed latency before each request is handled (transient
  /// slowness injection; 0 restores normal service).
  void set_extra_latency(NodeId node, std::chrono::milliseconds latency);

  /// Silently drops the next `count` requests to `node`.
  void drop_next(NodeId node, std::uint32_t count);

  /// Drops each request to `node` independently with probability p in
  /// [0, 1], drawn from a seeded per-endpoint stream (deterministic for a
  /// fixed request sequence).  p = 0 restores reliable delivery.
  void set_drop_probability(NodeId node, double p, std::uint64_t seed = 0);

  /// Corrupts the payload of the next `count` responses from `node`
  /// (bit-flip after the checksum is computed) — exercises the client's
  /// end-to-end CRC verification.
  void corrupt_next(NodeId node, std::uint32_t count);

  /// Partition primitive: requests arriving at `node` whose client_node is
  /// in `senders` are silently dropped at admission (the caller times out,
  /// exactly as if the link were cut — the endpoint itself stays alive and
  /// keeps serving everyone else).  Replaces any previous block set; an
  /// empty vector restores full connectivity.  Directional by design: to
  /// sever a link both ways, block each endpoint from the other.
  void set_blocked_senders(NodeId node, std::vector<NodeId> senders);

  /// True when `sender` is currently blocked at `node`'s endpoint.
  [[nodiscard]] bool is_sender_blocked(NodeId node, NodeId sender) const;

  /// Message-duplication fault: each request accepted at `node` is, with
  /// probability p in [0, 1], enqueued twice.  The duplicate is handled by
  /// the server like any request but its response goes nowhere (the caller
  /// already holds the first delivery's future) — exactly an at-least-once
  /// fabric re-send.  Seeded per endpoint; p = 0 restores exactly-once.
  void set_duplicate_probability(NodeId node, double p,
                                 std::uint64_t seed = 0);

  /// Bounded-reordering fault: each request accepted at `node` is, with
  /// probability p in [0, 1], inserted up to `max_displacement` slots
  /// ahead of the back of the FIFO, overtaking requests that arrived
  /// before it.  Deterministic for a fixed seed and arrival sequence;
  /// p = 0 restores FIFO delivery.
  void set_reorder(NodeId node, double p, std::uint32_t max_displacement,
                   std::uint64_t seed = 0);

  /// Server admission control: bounds the endpoint's ingress queue.
  /// Enforced at enqueue so a rejection costs the caller one fast kBusy
  /// response instead of a queue wait.  Class-aware shedding:
  ///   - membership-protocol ops (SWIM probes/gossip/sync) are NEVER shed
  ///     — starving the failure detector of liveness evidence during an
  ///     overload is how storms become partitions;
  ///   - data reads shed at `queue_limit`;
  ///   - recache writes (kPut) shed only at twice it — post-failover
  ///     backup placement is the work that ends the storm, so it keeps
  ///     headroom after reads are already bouncing.
  /// A killed endpoint never sheds: a dead node cannot send rejections,
  /// and a fast kBusy would masquerade as liveness.
  struct AdmissionConfig {
    /// 0 = unbounded (legacy behaviour, the default).
    std::size_t queue_limit = 0;
    /// Base of the kBusy retry-after hint; scaled by queue overflow.
    std::uint32_t retry_after_base_ms = 1;
  };
  void set_admission(NodeId node, AdmissionConfig config);

  /// Load reporting: when enabled, every response from `node` (including
  /// admission kBusy rejections) carries an RpcResponse::load_hint — an
  /// EWMA of the endpoint's instantaneous load (ingress queue depth plus
  /// handlers in flight), sampled at worker pickup.  This is the piggyback
  /// channel the bounded-load lookup and hot-file load spreading consume;
  /// clients learn server load purely from traffic they were sending
  /// anyway.  `alpha` in (0, 1] is the EWMA smoothing factor.  Disabled
  /// (the default) leaves load_hint at 0 — bit-for-bit legacy wire.
  struct LoadReportConfig {
    bool enabled = false;
    double alpha = 0.2;
  };
  void set_load_reporting(NodeId node, LoadReportConfig config);

  /// Attaches the node's flight recorder (not owned; must outlive the
  /// endpoint).  Once attached, *sampled* requests get their server-side
  /// admission verdicts recorded: a kServerQueue span from enqueue to
  /// worker pickup, and a kServerShed event when admission rejects.
  /// nullptr detaches.  Untraced requests pay one null/flag check.
  void set_flight_recorder(NodeId node, obs::FlightRecorder* recorder);

  /// Telemetry counters.
  struct EndpointStats {
    std::uint64_t received = 0;
    /// Of `received`, requests on the data plane (everything except the
    /// SWIM verbs) — lets benchmarks separate duplicated client work
    /// aimed at a dead node from the bounded membership-protocol traffic.
    std::uint64_t received_data = 0;
    std::uint64_t handled = 0;
    std::uint64_t dropped = 0;
    /// Requests rejected with kBusy by admission control (counted in
    /// `received` too; never includes membership-protocol traffic).
    std::uint64_t requests_shed = 0;
    /// Requests dropped because their sender was in the endpoint's
    /// partition block set (counted in `dropped` too).
    std::uint64_t partition_dropped = 0;
    /// Extra deliveries manufactured by the duplication fault (each also
    /// counts in `received`/`received_data`).
    std::uint64_t duplicated = 0;
    /// Requests displaced out of FIFO order by the reordering fault.
    std::uint64_t reordered = 0;
  };
  [[nodiscard]] EndpointStats stats(NodeId node) const;

  [[nodiscard]] std::size_t endpoint_count() const;

 private:
  struct PendingCall {
    RpcRequest request;
    std::promise<RpcResponse> promise;
    /// Enqueue timestamp for the kServerQueue span; 0 when untraced.
    std::int64_t enqueue_ns = 0;
  };

  struct Endpoint {
    NodeId node = ftc::kInvalidNode;
    Handler handler;
    std::vector<std::thread> workers;
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::shared_ptr<PendingCall>> queue;
    AdmissionConfig admission;
    LoadReportConfig load_report;
    /// Handlers currently executing (incremented at pickup, decremented
    /// when the response is stamped); part of the load sample.
    std::size_t inflight = 0;
    /// Smoothed load estimate (queue depth + inflight), updated at worker
    /// pickup under the endpoint mutex.  Only advances while load
    /// reporting is enabled.
    double load_ewma = 0.0;
    bool stopping = false;
    bool killed = false;
    std::chrono::milliseconds extra_latency{0};
    std::uint32_t drops_remaining = 0;
    std::uint32_t corruptions_remaining = 0;
    double drop_probability = 0.0;
    Rng drop_rng{0};
    /// Senders currently cut off from this endpoint (partition fault).
    std::unordered_set<NodeId> blocked_senders;
    double duplicate_probability = 0.0;
    Rng duplicate_rng{0};
    double reorder_probability = 0.0;
    std::uint32_t reorder_depth = 1;
    Rng reorder_rng{0};
    EndpointStats stats;
    /// Per-node flight recorder (not owned); nullptr = tracing off.
    obs::FlightRecorder* recorder = nullptr;
  };

  void worker_loop(Endpoint& endpoint);

  mutable std::mutex registry_mutex_;
  std::unordered_map<NodeId, std::unique_ptr<Endpoint>> endpoints_;

  // Async-call bookkeeping: completions run on a bounded pool, created
  // lazily so transports that never go async pay no threads.
  mutable std::mutex async_mutex_;
  std::unique_ptr<common::ThreadPool> async_pool_;
  bool async_shutdown_ = false;
};

}  // namespace ftc::rpc
