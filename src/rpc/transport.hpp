// transport.hpp - In-process threaded RPC transport with fault injection.
//
// Substitute for Mercury-over-Slingshot: each registered endpoint runs a
// worker thread consuming a FIFO request queue; clients block on a future
// with a deadline.  Faults are injected at this layer:
//   - kill():  endpoint silently discards requests (crash-stop node — the
//              client sees only timeouts, exactly like a drained Frontier
//              node);
//   - set_extra_latency(): per-endpoint added delay (transient slowness,
//              used by the timeout-threshold/false-positive experiments);
//   - drop_next(): drop exactly N requests then behave (packet-loss blips).
//
// The FT policy above this layer must work with *no* information other
// than per-request timeouts, matching the paper's autonomous detection.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "rpc/message.hpp"

namespace ftc::rpc {

using NodeId = std::uint32_t;
using Clock = std::chrono::steady_clock;

class Transport {
 public:
  using Handler = std::function<RpcResponse(const RpcRequest&)>;

  Transport() = default;
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Registers a server endpoint; spawns its worker thread.  Registering
  /// an existing id replaces the handler only if the old endpoint was
  /// unregistered first (returns kInvalidArgument otherwise).
  Status register_endpoint(NodeId node, Handler handler);

  /// Stops and joins an endpoint's worker.  Outstanding requests fail with
  /// kCancelled.
  Status unregister_endpoint(NodeId node);

  /// Blocking call with deadline.  Timeout produces StatusCode::kTimeout;
  /// calling an unknown endpoint produces kUnavailable immediately (models
  /// a connection refused, distinct from an unresponsive node).
  StatusOr<RpcResponse> call(NodeId target, RpcRequest request,
                             std::chrono::milliseconds timeout);

  /// Non-blocking variant (Mercury-style): `on_complete` runs on a
  /// background thread with the same result `call` would return.  Async
  /// calls run on a fixed-size completion pool (kAsyncPoolThreads workers,
  /// created lazily on first use) — issuing N calls never spawns N
  /// threads; excess calls queue FIFO.  Pending completions are drained
  /// before the transport destructs; callbacks must not destroy the
  /// transport.
  void call_async(NodeId target, RpcRequest request,
                  std::chrono::milliseconds timeout,
                  std::function<void(StatusOr<RpcResponse>)> on_complete);

  /// Blocks until every in-flight async call has completed.
  void drain_async();

  /// Upper bound on completion threads, independent of async-call volume.
  static constexpr std::size_t kAsyncPoolThreads = 4;

  /// Threads currently owned by the async completion pool: 0 before the
  /// first call_async, kAsyncPoolThreads after — never per-call.
  [[nodiscard]] std::size_t async_pool_thread_count() const;

  /// Crash-stop fault: the endpoint stays registered but discards every
  /// request without replying.  Irreversible for the endpoint's lifetime
  /// (a drained node does not come back within a job).
  void kill(NodeId node);

  [[nodiscard]] bool is_killed(NodeId node) const;

  /// Adds fixed latency before each request is handled (transient
  /// slowness injection; 0 restores normal service).
  void set_extra_latency(NodeId node, std::chrono::milliseconds latency);

  /// Silently drops the next `count` requests to `node`.
  void drop_next(NodeId node, std::uint32_t count);

  /// Corrupts the payload of the next `count` responses from `node`
  /// (bit-flip after the checksum is computed) — exercises the client's
  /// end-to-end CRC verification.
  void corrupt_next(NodeId node, std::uint32_t count);

  /// Telemetry counters.
  struct EndpointStats {
    std::uint64_t received = 0;
    std::uint64_t handled = 0;
    std::uint64_t dropped = 0;
  };
  [[nodiscard]] EndpointStats stats(NodeId node) const;

  [[nodiscard]] std::size_t endpoint_count() const;

 private:
  struct PendingCall {
    RpcRequest request;
    std::promise<RpcResponse> promise;
  };

  struct Endpoint {
    Handler handler;
    std::thread worker;
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::shared_ptr<PendingCall>> queue;
    bool stopping = false;
    bool killed = false;
    std::chrono::milliseconds extra_latency{0};
    std::uint32_t drops_remaining = 0;
    std::uint32_t corruptions_remaining = 0;
    EndpointStats stats;
  };

  void worker_loop(Endpoint& endpoint);

  mutable std::mutex registry_mutex_;
  std::unordered_map<NodeId, std::unique_ptr<Endpoint>> endpoints_;

  // Async-call bookkeeping: completions run on a bounded pool, created
  // lazily so transports that never go async pay no threads.
  mutable std::mutex async_mutex_;
  std::unique_ptr<common::ThreadPool> async_pool_;
  bool async_shutdown_ = false;
};

}  // namespace ftc::rpc
