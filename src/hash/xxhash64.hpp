// xxhash64.hpp - xxHash64 implementation.
//
// Provided as an alternative ring hash (faster than Murmur3 on long keys);
// the hash-quality benchmark compares it against FNV/Murmur for ring
// position uniformity.
#pragma once

#include <cstdint>
#include <string_view>

namespace ftc::hash {

std::uint64_t xxhash64(std::string_view data, std::uint64_t seed = 0);

}  // namespace ftc::hash
