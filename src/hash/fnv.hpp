// fnv.hpp - FNV-1a hashing (32- and 64-bit), constexpr-capable.
//
// FNV-1a is the hash the original HVAC uses for its static modulo
// partitioning of file paths; we keep it as the default key hash for the
// baseline placement strategies so their behaviour matches upstream.
#pragma once

#include <cstdint>
#include <string_view>

namespace ftc::hash {

constexpr std::uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnv64Prime = 0x100000001b3ULL;
constexpr std::uint32_t kFnv32OffsetBasis = 0x811c9dc5U;
constexpr std::uint32_t kFnv32Prime = 0x01000193U;

constexpr std::uint64_t fnv1a64(std::string_view data,
                                std::uint64_t seed = kFnv64OffsetBasis) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnv64Prime;
  }
  return h;
}

constexpr std::uint32_t fnv1a32(std::string_view data,
                                std::uint32_t seed = kFnv32OffsetBasis) {
  std::uint32_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnv32Prime;
  }
  return h;
}

}  // namespace ftc::hash
