// murmur3.hpp - MurmurHash3 x86_32 and x64_128 finalizing hashes.
//
// MurmurHash3's 128-bit variant feeds the consistent-hash ring: ring
// positions need good avalanche behaviour so virtual nodes spread uniformly
// on the [0, 2^64) circle (Sec IV-B of the paper relies on uniformity for
// load balance).
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>

namespace ftc::hash {

/// 32-bit MurmurHash3 (x86 variant).
std::uint32_t murmur3_32(std::string_view data, std::uint32_t seed = 0);

/// 128-bit MurmurHash3 (x64 variant); returns {low64, high64}.
std::pair<std::uint64_t, std::uint64_t> murmur3_128(std::string_view data,
                                                    std::uint32_t seed = 0);

/// Convenience: low 64 bits of murmur3_128 — the ring-position hash.
std::uint64_t murmur3_64(std::string_view data, std::uint32_t seed = 0);

/// 64-bit integer finalizer (fmix64) — used to derive virtual-node
/// positions from (node_id, replica_index) pairs without string formatting.
constexpr std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace ftc::hash
