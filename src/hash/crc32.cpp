#include "hash/crc32.hpp"

#include <array>

namespace ftc::hash {
namespace {

// Table generated at first use from the reflected polynomial 0xEDB88320.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t initial) {
  const auto& table = crc_table();
  std::uint32_t c = initial ^ 0xFFFFFFFFU;
  for (char ch : data) {
    c = table[(c ^ static_cast<std::uint8_t>(ch)) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace ftc::hash
