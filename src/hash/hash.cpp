#include "hash/hash.hpp"

#include <vector>

#include "hash/fnv.hpp"
#include "hash/murmur3.hpp"
#include "hash/xxhash64.hpp"

namespace ftc::hash {

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFnv1a64: return "fnv1a64";
    case Algorithm::kMurmur3_64: return "murmur3_64";
    case Algorithm::kXxHash64: return "xxhash64";
  }
  return "?";
}

std::uint64_t hash_key(Algorithm algorithm, std::string_view key,
                       std::uint64_t seed) {
  switch (algorithm) {
    case Algorithm::kFnv1a64:
      // Mix the seed into the offset basis; plain FNV has no seed input.
      return fnv1a64(key, kFnv64OffsetBasis ^ fmix64(seed));
    case Algorithm::kMurmur3_64:
      return murmur3_64(key, static_cast<std::uint32_t>(seed ^ (seed >> 32)));
    case Algorithm::kXxHash64:
      return xxhash64(key, seed);
  }
  return 0;
}

double chi_squared_uniformity(Algorithm algorithm, std::uint64_t n,
                              std::uint64_t buckets) {
  if (buckets == 0 || n == 0) return 0.0;
  std::vector<std::uint64_t> counts(buckets, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string key = "/lustre/orion/dataset/file_" + std::to_string(i) +
                            ".tfrecord";
    ++counts[hash_key(algorithm, key) % buckets];
  }
  const double expected =
      static_cast<double>(n) / static_cast<double>(buckets);
  double chi2 = 0.0;
  for (std::uint64_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

}  // namespace ftc::hash
