// hash.hpp - Unified key-hash interface.
//
// Placement strategies are parameterized over the key hash so the
// hash-quality ablation can swap algorithms without touching ring code.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ftc::hash {

enum class Algorithm {
  kFnv1a64,
  kMurmur3_64,
  kXxHash64,
};

const char* algorithm_name(Algorithm algorithm);

/// Hashes `key` with the chosen algorithm and optional seed.  The seed
/// parameter is what the multi-hash placement baseline varies to derive
/// independent hash functions.
std::uint64_t hash_key(Algorithm algorithm, std::string_view key,
                       std::uint64_t seed = 0);

/// Chi-squared uniformity statistic for hashing `n` sequential keys into
/// `buckets` buckets; expected value ~= buckets for a uniform hash.  Used
/// by hash-quality tests/benches.
double chi_squared_uniformity(Algorithm algorithm, std::uint64_t n,
                              std::uint64_t buckets);

}  // namespace ftc::hash
