// crc32.hpp - CRC-32 (IEEE 802.3 polynomial, table-driven).
//
// Used for payload integrity checks in the simulated RPC layer — the data
// mover verifies recached file contents match the PFS copy.
#pragma once

#include <cstdint>
#include <string_view>

namespace ftc::hash {

/// Standard zlib-compatible CRC-32.
std::uint32_t crc32(std::string_view data, std::uint32_t initial = 0);

}  // namespace ftc::hash
